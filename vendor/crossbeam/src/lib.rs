//! Minimal offline shim with the `crossbeam` scoped-thread API surface used
//! by this workspace, backed by `std::thread::scope` (Rust >= 1.63).
//!
//! Differences from real crossbeam: thread panics propagate when the scope
//! unwinds (std semantics) rather than being collected into the outer
//! `Err`; callers here always `.expect()` the scope result and join every
//! handle, so the behaviors coincide.

use std::any::Any;

/// A scope for spawning borrowing threads. Mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Handle to a scoped thread. Mirrors `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result (or the panic
    /// payload if it panicked).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope (so it can
    /// spawn further threads), matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            }),
        }
    }
}

/// Creates a scope in which borrowing threads can be spawned; all threads
/// are joined before the call returns. Mirrors `crossbeam::scope`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| {
        let wrapper = Scope { inner: s };
        f(&wrapper)
    }))
}

/// `crossbeam::thread` module alias, for `crossbeam::thread::scope` callers.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n: u64 = super::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 21u64).join().unwrap() * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}

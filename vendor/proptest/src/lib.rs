//! Minimal offline shim with the `proptest` API surface used by this
//! workspace: the [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/
//! [`prop_assume!`] macros, the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`/`prop_flat_map`, strategies for integer ranges, tuples,
//! fixed-size arrays, [`collection::vec`], [`any`](arbitrary::any) over
//! `bool` and [`sample::Index`], a literal-pattern string strategy, and
//! [`ProptestConfig`](test_runner::ProptestConfig).
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and message but is not minimised), and cases are seeded
//! deterministically from the test name so runs are reproducible without
//! `.proptest-regressions` files (which this shim ignores).

/// Pseudo-random source for strategies (SplitMix64; deterministic per seed).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`; panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample an empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Value` (upstream's core trait,
    /// minus shrinking).
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Uses each generated value to build a second strategy and draws
        /// from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + unit as $t * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
    }

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|i| self[i].generate(rng))
        }
    }

    /// String-pattern strategy (upstream generates strings matching the
    /// regex). This shim only distinguishes the trailing `{lo,hi}` length
    /// repetition and otherwise emits printable characters — ASCII
    /// punctuation, alphanumerics, whitespace, and the occasional
    /// multi-byte char — which is what the workspace's
    /// parser-never-panics fuzz test needs from `"\\PC{0,40}"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repeat_suffix(self).unwrap_or((0, 40));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            const POOL: &[char] = &[
                'a', 'b', 'c', 'd', 'e', 'h', 'i', 'm', 'n', 'o', 'r', 's', 't', 'u', 'w', 'y',
                'A', 'M', 'Z', '0', '1', '2', '3', '5', '8', '9', ' ', ':', '-', ',', '(', ')',
                '.', '/', '*', '_', '\t', 'é', '時', '🦀',
            ];
            (0..len)
                .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_repeat_suffix(pat: &str) -> Option<(usize, usize)> {
        let body = pat.strip_suffix('}')?;
        let brace = body.rfind('{')?;
        let (lo, hi) = body[brace + 1..].split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Sizes accepted by [`vec`]: a fixed `usize` or a `usize` range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }
    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "cannot sample empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }
    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// An opaque index, resolved against a collection length with
    /// [`Index::index`]. Mirrors `proptest::sample::Index`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps this index into `[0, len)`; panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index called with empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Strategy producing [`Index`] (used via `any::<prop::sample::Index>()`).
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;
        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

pub mod arbitrary {
    use super::sample;
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical strategy, usable via [`any`].
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Strategy behind `any::<bool>()`.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    impl Arbitrary for sample::Index {
        type Strategy = sample::IndexStrategy;
        fn arbitrary() -> sample::IndexStrategy {
            sample::IndexStrategy
        }
    }

    macro_rules! any_int {
        ($($t:ty => $name:ident),*) => {$(
            /// Full-range integer strategy behind `any`.
            pub struct $name;
            impl Strategy for $name {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = $name;
                fn arbitrary() -> $name { $name }
            }
        )*};
    }
    any_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
             i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64);
}

pub mod test_runner {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Runner configuration (subset: `cases`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; this shim trims it since there is
            // no persistence of found failures and tier-1 runs every case
            // from scratch each time.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion; the run aborts with this message.
        Fail(String),
        /// The case's assumptions did not hold; it is retried with new input.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a [`TestCaseError::Fail`].
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a [`TestCaseError::Reject`].
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    fn seed_for(name: &str) -> u64 {
        // FNV-1a over the test path — stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property test: draws inputs from `strategy` until
    /// `config.cases` cases pass, panicking on the first failure.
    /// Called by the [`proptest!`](crate::proptest) macro.
    pub fn run<S, F>(name: &str, config: &ProptestConfig, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_seed(seed_for(name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(16).max(1024);
        while passed < config.cases {
            let value = strategy.generate(&mut rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected} rejects for {passed} passes): {why}"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {} (seed {}): {msg}",
                        passed + 1,
                        seed_for(name),
                    );
                }
            }
        }
    }
}

/// Everything the workspace's tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror so `prop::sample::Index`, `prop::collection::vec`
    /// work as they do with upstream's prelude.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
/// Supports an optional leading `#![proptest_config(...)]` and any number
/// of `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    &strategy,
                    |($($arg,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Discards the current case (retried with fresh input) when `cond` fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_arrays_vecs() {
        let mut rng = crate::TestRng::from_seed(1);
        use crate::strategy::Strategy;
        let s = (0i64..10, [0usize..3, 0usize..3], crate::collection::vec(0u32..5, 1..4));
        for _ in 0..200 {
            let (a, [b, c], v) = s.generate(&mut rng);
            assert!((0..10).contains(&a));
            assert!(b < 3 && c < 3);
            assert!(!v.is_empty() && v.len() < 4);
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn map_and_flat_map() {
        use crate::strategy::Strategy;
        let mut rng = crate::TestRng::from_seed(2);
        let s = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0i64..100, n))
            .prop_map(|v| (v.len(), v));
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(n, v.len());
            assert!((1..5).contains(&n));
        }
    }

    #[test]
    fn string_pattern_length_bounds() {
        use crate::strategy::Strategy;
        let mut rng = crate::TestRng::from_seed(3);
        for _ in 0..200 {
            let s = "\\PC{0,40}".generate(&mut rng);
            assert!(s.chars().count() <= 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            x in -50i64..50,
            flip in any::<bool>(),
            pick in any::<prop::sample::Index>(),
            v in prop::collection::vec(0u8..10, 1..6),
        ) {
            prop_assume!(x != 0);
            prop_assert!(x.abs() > 0);
            prop_assert_eq!(x + x, 2 * x);
            prop_assert_ne!(x, x + 1);
            let i = pick.index(v.len());
            prop_assert!(v[i] < 10, "element {} out of range", v[i]);
            if flip {
                return Ok(());
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::test_runner::run(
            "shim::failing",
            &ProptestConfig::with_cases(8),
            &(0i64..10,),
            |(x,)| {
                prop_assert!(x < 0, "x was {}", x);
                Ok(())
            },
        );
    }
}

//! Minimal offline shim with the `rand` 0.8 API surface used by this
//! workspace: [`Rng`] (`gen_range`, `gen_bool`, `gen`), [`SeedableRng`]
//! (`seed_from_u64`, `from_entropy`), [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! for a given seed, which is all the workspace's seeded workload
//! generators and tests rely on. It is NOT the same stream as upstream
//! rand's `StdRng` (ChaCha12), so absolute values of "random" fixtures
//! differ from what upstream would produce; everything in this repo derives
//! expectations from the generated data itself.

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// A uniform value in `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }

    /// A value of a [`Standard`](distributions::Standard)-sampleable type
    /// (`f64` in `[0, 1)`, `bool`, full-range integers).
    fn gen<T>(&mut self) -> T
    where
        T: distributions::StandardSample,
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from seeds (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Constructs a generator with a time-derived seed. Offline shim: uses
    /// the system clock, so streams differ per process but need no OS RNG.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos ^ (std::process::id() as u64).rotate_left(32))
    }
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 top bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Small fast generator — alias of [`StdRng`] in this shim.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A process-local generator seeded from the clock (API parity with
/// `rand::thread_rng`, minus thread-local caching).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// Distributions (subset: uniform ranges and the `Standard` distribution).
pub mod distributions {
    use super::{unit_f64, Rng};

    /// Types samplable by [`Rng::gen`].
    pub trait StandardSample: Sized {
        /// Samples one value.
        fn sample<R: Rng>(rng: &mut R) -> Self;
    }

    impl StandardSample for f64 {
        fn sample<R: Rng>(rng: &mut R) -> Self {
            unit_f64(rng.next_u64())
        }
    }
    impl StandardSample for f32 {
        fn sample<R: Rng>(rng: &mut R) -> Self {
            unit_f64(rng.next_u64()) as f32
        }
    }
    impl StandardSample for bool {
        fn sample<R: Rng>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
    impl StandardSample for u64 {
        fn sample<R: Rng>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }
    impl StandardSample for u32 {
        fn sample<R: Rng>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    /// Uniform-range sampling.
    pub mod uniform {
        use super::super::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Ranges that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Samples one value from the range. Panics on empty ranges.
            fn sample_from<R: Rng>(self, rng: &mut R) -> T;
        }

        /// Uniform `u64` in `[0, n)` via Lemire-style widening multiply
        /// (unbiased enough for test workloads; exact rejection for the
        /// tiny biases is not worth the code here — the multiply-shift is
        /// bias-free when `n` divides 2^64 and off by at most 2^-64 else).
        #[inline]
        fn below<R: Rng>(rng: &mut R, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((rng.next_u64() as u128 * n as u128) >> 64) as u64
        }

        macro_rules! int_sample_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + below(rng, span) as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128 + 1) as u64;
                        if span == 0 {
                            // Full-width range.
                            return rng.next_u64() as $t;
                        }
                        (lo as i128 + below(rng, span) as i128) as $t
                    }
                }
            )*};
        }
        int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

        macro_rules! float_sample_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let u = super::super::unit_f64(rng.next_u64()) as $t;
                        self.start + u * (self.end - self.start)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let u = super::super::unit_f64(rng.next_u64()) as $t;
                        lo + u * (hi - lo)
                    }
                }
            )*};
        }
        float_sample_range!(f32, f64);
    }

    /// The standard distribution marker (API parity).
    pub struct Standard;
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                Some(&self[i])
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub use rngs::StdRng as _StdRngReexportGuard; // keeps rngs referenced in docs

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let mut seen = [false; 11];
        for _ in 0..10_000 {
            let x: i64 = rng.gen_range(-5..=5);
            seen[(x + 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 11 values should occur");
    }

    #[test]
    fn gen_bool_frequencies() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = rngs::StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = rngs::StdRng::seed_from_u64(17);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}

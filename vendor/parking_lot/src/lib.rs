//! Minimal offline shim with the `parking_lot` API surface used by this
//! workspace, backed by `std::sync`. Unlike std, locks are not poisoning:
//! a panic while holding a lock does not wedge later accesses.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutex with the `parking_lot` non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}
impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with the `parking_lot` non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}
impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}
impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}

//! Minimal offline shim with the `criterion` API surface used by this
//! workspace's `harness = false` benches: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`]/[`bench_with_input`][BenchmarkGroup::bench_with_input],
//! `sample_size`, `throughput`, [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a simple calibrated wall-clock loop printing mean
//! time-per-iteration (and element throughput when declared) — no
//! statistics, plots, or baseline comparisons.
//!
//! Like real criterion, `--test` on the command line (`cargo bench --
//! --test`) switches to smoke mode: every benchmark body runs exactly
//! once, so CI can verify benches compile and run without paying for
//! measurement.

use std::fmt;
use std::time::{Duration, Instant};

/// Whether `--test` smoke mode was requested on the command line.
fn smoke_mode() -> bool {
    static SMOKE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Opaque value barrier so the optimiser cannot elide benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared workload per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs the closure under timing. Passed to bench closures.
pub struct Bencher {
    samples: usize,
    /// (total elapsed, iterations) of the measured run.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, running it enough times for a stable mean: at least
    /// `sample_size` iterations, stopping early once ~300 ms have elapsed.
    /// In `--test` smoke mode, runs `f` exactly once.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if smoke_mode() {
            let start = Instant::now();
            black_box(f());
            self.measured = Some((start.elapsed(), 1));
            return;
        }
        black_box(f()); // warm-up, excluded from timing
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            let elapsed = start.elapsed();
            if iters >= self.samples as u64 || elapsed >= budget {
                self.measured = Some((elapsed, iters));
                break;
            }
        }
    }
}

/// Entry point handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Benches a standalone function (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A set of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the target number of iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benches `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            measured: None,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Benches `f(bencher, input)` under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            measured: None,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group (report lines are already printed per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let label = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        let Some((elapsed, iters)) = b.measured else {
            println!("{label:<50} (no measurement: Bencher::iter not called)");
            return;
        };
        let per_iter = elapsed.as_secs_f64() / iters as f64;
        let mut line = format!("{label:<50} {:>12}  ({iters} iters)", fmt_time(per_iter));
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            line.push_str(&format!("  {:.3e} {unit}", count as f64 / per_iter));
        }
        println!("{line}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles bench functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2)));
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }
}

//! The unified error type for the `tgm` facade.
//!
//! Each workspace crate defines its own focused error enum (granularity
//! registry errors, structure-construction errors, the exact checker's
//! budget errors, CSV/JSON parse errors). Applications composing several
//! layers can funnel all of them into [`enum@Error`] with `?`: every
//! per-crate error has a `From` conversion, and the enum is
//! `#[non_exhaustive]` so later PRs can add variants without breaking
//! downstream matches.
//!
//! ```
//! use tgm::prelude::*;
//!
//! fn build() -> Result<EventStructure, Error> {
//!     let cal = Calendar::standard();
//!     let day = cal.get("day")?; // GranularityError -> Error
//!     let mut b = StructureBuilder::new();
//!     let x0 = b.var("X0");
//!     let x1 = b.var("X1");
//!     b.constrain(x0, x1, Tcg::new(0, 2, day));
//!     Ok(b.build()?) // StructureError -> Error
//! }
//! assert!(build().is_ok());
//! ```

use std::fmt;

use tgm_core::exact::ExactError;
use tgm_core::StructureError;
use tgm_events::io::CsvError;
use tgm_events::minijson::JsonError;
use tgm_granularity::parse::ParseError;
use tgm_granularity::GranularityError;
use tgm_limits::{Interrupt, WorkerPanic};

use crate::json::StructureJsonError;

/// Any error the `tgm` workspace can produce, unified for `?`-style
/// composition across layers.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Calendar / granularity registry errors (unknown name, duplicate
    /// registration, out-of-horizon tick).
    Granularity(GranularityError),
    /// Errors parsing a textual granularity specification.
    GranularitySpec(ParseError),
    /// Event-structure construction errors (cycles, unknown variables,
    /// unreachable nodes).
    Structure(StructureError),
    /// The exact (NP-hard) consistency checker gave up: too many
    /// candidates or search budget exhausted.
    Exact(ExactError),
    /// Malformed CSV event input.
    Csv(CsvError),
    /// Malformed JSON input.
    Json(JsonError),
    /// A structurally invalid JSON event-structure document.
    StructureJson(StructureJsonError),
    /// A bounded run stopped early: deadline exceeded, work budget
    /// exhausted, or cooperatively cancelled.
    Interrupted(Interrupt),
    /// A parallel worker panicked; siblings were cancelled and the first
    /// panic was contained as a typed error instead of unwinding.
    WorkerPanicked(WorkerPanic),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Granularity(e) => write!(f, "granularity: {e}"),
            Error::GranularitySpec(e) => write!(f, "granularity spec: {e}"),
            Error::Structure(e) => write!(f, "event structure: {e}"),
            Error::Exact(e) => write!(f, "exact check: {e}"),
            Error::Csv(e) => write!(f, "csv: {e}"),
            Error::Json(e) => write!(f, "json: {e}"),
            Error::StructureJson(e) => write!(f, "structure json: {e}"),
            Error::Interrupted(e) => write!(f, "interrupted: {e}"),
            Error::WorkerPanicked(e) => write!(f, "worker panicked: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Granularity(e) => Some(e),
            Error::GranularitySpec(e) => Some(e),
            Error::Structure(e) => Some(e),
            Error::Exact(e) => Some(e),
            Error::Csv(e) => Some(e),
            Error::Json(e) => Some(e),
            Error::StructureJson(e) => Some(e),
            Error::Interrupted(e) => Some(e),
            Error::WorkerPanicked(e) => Some(e),
        }
    }
}

impl From<GranularityError> for Error {
    fn from(e: GranularityError) -> Self {
        Error::Granularity(e)
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::GranularitySpec(e)
    }
}

impl From<StructureError> for Error {
    fn from(e: StructureError) -> Self {
        Error::Structure(e)
    }
}

impl From<ExactError> for Error {
    fn from(e: ExactError) -> Self {
        Error::Exact(e)
    }
}

impl From<CsvError> for Error {
    fn from(e: CsvError) -> Self {
        Error::Csv(e)
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Self {
        Error::Json(e)
    }
}

impl From<StructureJsonError> for Error {
    fn from(e: StructureJsonError) -> Self {
        Error::StructureJson(e)
    }
}

impl From<Interrupt> for Error {
    fn from(e: Interrupt) -> Self {
        Error::Interrupted(e)
    }
}

impl From<WorkerPanic> for Error {
    fn from(e: WorkerPanic) -> Self {
        Error::WorkerPanicked(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let cal = tgm_granularity::Calendar::standard();
        let e: Error = cal.get("no-such-granularity").unwrap_err().into();
        assert!(matches!(e, Error::Granularity(_)));
        assert!(e.to_string().starts_with("granularity: "));
        assert!(std::error::Error::source(&e).is_some());

        let mut b = tgm_core::StructureBuilder::new();
        let x = b.var("X");
        b.constrain(
            x,
            x,
            tgm_core::Tcg::new(0, 1, cal.get("day").unwrap()),
        );
        let e: Error = b.build().unwrap_err().into();
        assert!(matches!(e, Error::Structure(_)));
    }

    #[test]
    fn question_mark_composes_layers() {
        fn inner() -> Result<(), Error> {
            let cal = tgm_granularity::Calendar::standard();
            cal.get("week")?;
            tgm_events::minijson::parse("{")?;
            Ok(())
        }
        assert!(matches!(inner(), Err(Error::Json(_))));
    }
}

//! # tgm — Temporal Granularity Mining
//!
//! A production-quality reproduction of **Bettini, Wang & Jajodia,
//! *Testing Complex Temporal Relationships Involving Multiple Granularities
//! and Its Application to Data Mining* (PODS 1996)**: temporal constraints
//! with granularities (TCGs), event structures, sound approximate
//! constraint propagation, exact (NP-hard) consistency checking, timed
//! automata with granularities (TAGs), and frequent-complex-event
//! discovery.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`granularity`] | `tgm-granularity` | temporal types, calendars, tick conversion, size tables |
//! | [`limits`] | `tgm-limits` | deadlines, work budgets, cooperative cancellation, panic containment |
//! | [`obs`] | `tgm-obs` | spans, metrics, pruning-funnel reports (process-wide toggle, off by default) |
//! | [`stp`] | `tgm-stp` | Simple Temporal Problem networks (Dechter–Meiri–Pearl) |
//! | [`events`] | `tgm-events` | event types, sequences, JSON I/O, workload generators |
//! | [`core`] | `tgm-core` | TCGs, event structures, conversion, propagation, exact checking |
//! | [`tag`] | `tgm-tag` | timed automata with granularities and matching |
//! | [`mining`] | `tgm-mining` | naive + optimized discovery, WINEPI episode baseline |
//! | [`serve`] | `tgm-serve` | multi-tenant session server: framed protocol, admission control, load shedding, graceful drain |
//!
//! # Quickstart
//!
//! Everything below comes from `tgm::prelude` alone; fallible calls
//! compose through the unified [`enum@Error`] with `?`.
//!
//! ```
//! use tgm::prelude::*;
//!
//! fn quickstart() -> Result<(), Error> {
//!     // "The earnings report came one business day after the rise, and
//!     // the stock fell in the same or the next week."
//!     let cal = Calendar::standard();
//!     let mut b = StructureBuilder::new();
//!     let rise = b.var("rise");
//!     let report = b.var("report");
//!     let fall = b.var("fall");
//!     b.constrain(rise, report, Tcg::new(1, 1, cal.get("business-day")?));
//!     b.constrain(report, fall, Tcg::new(0, 1, cal.get("week")?));
//!     let structure = b.build()?;
//!
//!     // Sound propagation derives implied constraints across
//!     // granularities.
//!     let p = propagate(&structure);
//!     assert!(p.is_consistent());
//!     let window = p.seconds_window(rise, fall).unwrap();
//!     assert!(window.lo >= 1);
//!
//!     // Match the pattern over an event stream with a TAG, reading
//!     // pre-resolved tick columns.
//!     let mut reg = TypeRegistry::new();
//!     let tys: Vec<EventType> =
//!         ["rise", "report", "fall"].iter().map(|n| reg.intern(n)).collect();
//!     let cet = ComplexEventType::new(structure, tys.clone());
//!     let tag = build_tag(&cet);
//!     const DAY: i64 = 86_400;
//!     // Mon 2000-01-03 rise, Tue report, Thu fall.
//!     let mut sb = SequenceBuilder::new();
//!     sb.push(tys[0], 2 * DAY + 9 * 3600);
//!     sb.push(tys[1], 3 * DAY + 9 * 3600);
//!     sb.push(tys[2], 5 * DAY + 9 * 3600);
//!     let seq = sb.build();
//!     let grans: Vec<Gran> = tag.clocks().iter().map(|(_, g)| g.clone()).collect();
//!     let cols = TickColumns::build(seq.events(), &grans);
//!     let matcher = Matcher::new(&tag);
//!     assert!(matcher.run_columns(seq.events(), &cols, 0, false).accepted);
//!
//!     // The shared resolution cache served those calendar lookups.
//!     assert!(cache::global_stats().lookups() > 0);
//!     Ok(())
//! }
//! quickstart().unwrap();
//! ```

mod error;

pub mod cli;
pub mod json;

pub use error::Error;

pub use tgm_core as core;
pub use tgm_events as events;
pub use tgm_granularity as granularity;
pub use tgm_limits as limits;
pub use tgm_mining as mining;
pub use tgm_obs as obs;
pub use tgm_serve as serve;
pub use tgm_stp as stp;
pub use tgm_tag as tag;

/// The most commonly used items across the workspace.
///
/// One `use tgm::prelude::*;` is enough to build event structures,
/// propagate and exact-check them, construct and run TAG matchers (direct
/// or over pre-resolved [`TickColumns`](tgm_events::TickColumns)), mine
/// discovery problems, and observe the shared resolution
/// [`cache`](tgm_granularity::cache) — with all fallible calls funneled
/// into [`Error`](crate::Error).
pub mod prelude {
    pub use crate::Error;
    pub use tgm_core::exact::{
        check as exact_check, check_bounded as exact_check_bounded,
        check_with as exact_check_with, ExactOutcome,
    };
    pub use tgm_core::propagate::{propagate, propagate_bounded, Propagated};
    pub use tgm_limits::{CancelToken, Interrupt, Limits, Verdict, WorkerPanic};
    pub use tgm_core::{
        convert_constraint, ComplexEventType, EventStructure, StructureBuilder, Tcg, VarId,
    };
    pub use tgm_events::{
        Event, EventSequence, EventType, SequenceBuilder, TickColumns, TypeRegistry,
    };
    pub use tgm_granularity::{cache, CacheStats, Calendar, Gran, Granularity, Second, Tick};
    pub use tgm_mining::pipeline::{mine_with, PipelineOptions, PipelineStats};
    pub use tgm_mining::{naive, pipeline, BoundedMining, DiscoveryProblem, Solution};
    pub use tgm_obs::{Observable, ObsOptions, Report};
    pub use tgm_tag::{
        build_tag, BoundedRun, Completion, MatchOptions, MatchSession, Matcher, RunStats,
        SessionStats, Tag,
    };
}

//! # tgm — Temporal Granularity Mining
//!
//! A production-quality reproduction of **Bettini, Wang & Jajodia,
//! *Testing Complex Temporal Relationships Involving Multiple Granularities
//! and Its Application to Data Mining* (PODS 1996)**: temporal constraints
//! with granularities (TCGs), event structures, sound approximate
//! constraint propagation, exact (NP-hard) consistency checking, timed
//! automata with granularities (TAGs), and frequent-complex-event
//! discovery.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`granularity`] | `tgm-granularity` | temporal types, calendars, tick conversion, size tables |
//! | [`stp`] | `tgm-stp` | Simple Temporal Problem networks (Dechter–Meiri–Pearl) |
//! | [`events`] | `tgm-events` | event types, sequences, JSON I/O, workload generators |
//! | [`core`] | `tgm-core` | TCGs, event structures, conversion, propagation, exact checking |
//! | [`tag`] | `tgm-tag` | timed automata with granularities and matching |
//! | [`mining`] | `tgm-mining` | naive + optimized discovery, WINEPI episode baseline |
//!
//! # Quickstart
//!
//! ```
//! use tgm::prelude::*;
//!
//! // "The earnings report came one business day after the rise, and the
//! // stock fell in the same or the next week."
//! let cal = Calendar::standard();
//! let mut b = StructureBuilder::new();
//! let rise = b.var("rise");
//! let report = b.var("report");
//! let fall = b.var("fall");
//! b.constrain(rise, report, Tcg::new(1, 1, cal.get("business-day").unwrap()));
//! b.constrain(report, fall, Tcg::new(0, 1, cal.get("week").unwrap()));
//! let structure = b.build().unwrap();
//!
//! // Sound propagation derives implied constraints across granularities.
//! let p = propagate(&structure);
//! assert!(p.is_consistent());
//! let window = p.seconds_window(rise, fall).unwrap();
//! assert!(window.lo >= 1);
//! ```

pub mod cli;
pub mod json;

pub use tgm_core as core;
pub use tgm_events as events;
pub use tgm_granularity as granularity;
pub use tgm_mining as mining;
pub use tgm_stp as stp;
pub use tgm_tag as tag;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use tgm_core::exact::{check as exact_check, check_with as exact_check_with, ExactOutcome};
    pub use tgm_core::propagate::{propagate, Propagated};
    pub use tgm_core::{
        convert_constraint, ComplexEventType, EventStructure, StructureBuilder, Tcg, VarId,
    };
    pub use tgm_events::{Event, EventSequence, EventType, SequenceBuilder, TypeRegistry};
    pub use tgm_granularity::{Calendar, Gran, Granularity, Second, Tick};
    pub use tgm_mining::{naive, pipeline, DiscoveryProblem, Solution};
    pub use tgm_tag::{build_tag, MatchOptions, Matcher, Tag};
}

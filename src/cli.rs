//! Implementation of the `tgm` command-line interface (see the `tgm`
//! binary). Factored into the library so the command logic is unit- and
//! integration-testable: [`run`] takes the argument vector and returns the
//! text to print (or a user-facing error).

use tgm_core::exact::{check_with, ExactOptions, ExactOutcome};
use tgm_core::propagate::propagate;
use tgm_events::io as events_io;
use tgm_granularity::format_instant;
use crate::json::structure_from_json;
use crate::prelude::*;

pub(crate) const USAGE: &str = "usage:
  tgm calendar
  tgm convert <lo> <hi> <granularity> --to <granularity>
  tgm check <structure.json> [--horizon-days <n>]
  tgm match <structure.json> --types <t0,t1,...> <events.json>
  tgm stream <structure.json> --types <t0,t1,...> <events.ndjson> \\
           [--stats-every <n>] [--stats-format ndjson|openmetrics] \\
           [--drain-after-chunks <n>]
  tgm mine <structure.json> <events.json> --reference <type> \\
           [--confidence <x>] [--pin <var>=<type>]...
  tgm serve [--addr <host:port>] [--workers <n>] [--queue-depth <n>] \\
           [--max-inflight <n>] [--max-sessions <n>] [--budget <rows>] \\
           [--timeout-ms <n>] [--port-file <path>] [--max-requests <n>]

global flags (all commands):
  --calendar <file>       load a calendar config (holiday/gran directives)
  --holiday <day-index>   add a holiday to the business calendar (repeatable)
  --gran <spec>           register a custom granularity from the spec DSL,
                          e.g. --gran '3 month' --gran '12 month @ 2000-04'
                          --gran 'days(mon,wed,fri)' (repeatable)";

/// Dispatches a CLI invocation; returns the text to print.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("calendar") => cmd_calendar(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("match") => cmd_match(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("mine") => cmd_mine(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given".into()),
    }
}

fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1) {
                out.push(v.as_str());
                i += 1;
            }
        }
        i += 1;
    }
    out
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    flag_values(args, name).into_iter().next()
}

fn positionals(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // All our flags take one value.
            skip = args.get(i + 1).is_some();
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn calendar_from(args: &[String]) -> Result<Calendar, String> {
    // A whole calendar config file replaces the standard calendar and any
    // --holiday flags; --gran flags still register on top of it.
    let mut cal = match flag_value(args, "--calendar") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            tgm_granularity::parse::calendar_from_config(&text).map_err(|e| e.to_string())?
        }
        None => {
            let holidays: Result<Vec<i64>, _> = flag_values(args, "--holiday")
                .into_iter()
                .map(str::parse::<i64>)
                .collect();
            Calendar::with_holidays(holidays.map_err(|e| format!("bad --holiday value: {e}"))?)
        }
    };
    // Custom granularities from the spec DSL, e.g.
    //   --gran "3 month"  --gran "days(mon,wed,fri)"  --gran "12 month @ 2000-04"
    for spec in flag_values(args, "--gran") {
        let g = tgm_granularity::parse::parse_granularity(spec).map_err(|e| e.to_string())?;
        cal.register(g).map_err(|e| e.to_string())?;
    }
    Ok(cal)
}

fn cmd_calendar(args: &[String]) -> Result<String, String> {
    let cal = calendar_from(args)?;
    let mut out = String::from("registered granularities:\n");
    for g in cal.iter() {
        let sample = g
            .tick_intervals(1)
            .map(|s| {
                format!(
                    "tick 1: {} .. {}",
                    format_instant(s.min()),
                    format_instant(s.max())
                )
            })
            .unwrap_or_else(|| "tick 1 out of horizon".into());
        out.push_str(&format!(
            "  {:<16} gaps: {:<5} {}\n",
            g.name(),
            Granularity::has_gaps(g),
            sample
        ));
    }
    Ok(out)
}

fn cmd_convert(args: &[String]) -> Result<String, String> {
    let cal = calendar_from(args)?;
    let pos = positionals(args);
    let [lo, hi, src] = pos.as_slice() else {
        return Err("convert needs <lo> <hi> <granularity>".into());
    };
    let lo: u64 = lo.parse().map_err(|e| format!("bad lo: {e}"))?;
    let hi: u64 = hi.parse().map_err(|e| format!("bad hi: {e}"))?;
    let target_name = flag_value(args, "--to").ok_or("missing --to <granularity>")?;
    let src_g = cal.get(src).map_err(|e| e.to_string())?;
    let dst_g = cal.get(target_name).map_err(|e| e.to_string())?;
    if lo > hi {
        return Err(format!("empty bounds [{lo}, {hi}]"));
    }
    if hi > Tcg::MAX_BOUND {
        return Err(format!("bound {hi} exceeds the supported maximum {}", Tcg::MAX_BOUND));
    }
    let tcg = Tcg::new(lo, hi, src_g);
    Ok(match convert_constraint(&tcg, &dst_g) {
        Some(c) => format!("{tcg}  =>  {c}"),
        None => format!("{tcg}  =>  infeasible (target `{target_name}` has gaps)"),
    })
}

/// Loads an event file, dispatching on extension: `.csv` uses the
/// `type,time` format, anything else is parsed as JSON.
fn load_events(path: &str) -> Result<(tgm_events::TypeRegistry, EventSequence), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".csv") {
        events_io::from_csv(&text).map_err(|e| e.to_string())
    } else {
        events_io::from_json(&text).map_err(|e| e.to_string())
    }
}

fn load_structure(path: &str, cal: &Calendar) -> Result<EventStructure, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    structure_from_json(&json, cal).map_err(|e| e.to_string())
}

fn cmd_check(args: &[String]) -> Result<String, String> {
    let cal = calendar_from(args)?;
    let pos = positionals(args);
    let [path] = pos.as_slice() else {
        return Err("check needs <structure.json>".into());
    };
    let s = load_structure(path, &cal)?;
    let mut out = format!("{s:?}\n");
    let p = propagate(&s);
    if !p.is_consistent() {
        out.push_str("propagation: INCONSISTENT (refuted by the sound §3.2 algorithm)\n");
        return Ok(out);
    }
    out.push_str("propagation: not refuted; derived constraints:\n");
    for line in p.describe(&s).lines() {
        out.push_str(&format!("  {line}\n"));
    }
    let horizon_days: i64 = flag_value(args, "--horizon-days")
        .map(|v| v.parse().map_err(|e| format!("bad --horizon-days: {e}")))
        .transpose()?
        .unwrap_or(366);
    let opts = ExactOptions {
        horizon_start: 0,
        horizon_end: horizon_days * 86_400,
        ..ExactOptions::default()
    };
    match check_with(&s, &opts) {
        Ok(ExactOutcome::Consistent(times)) => {
            out.push_str(&format!("exact ({horizon_days}-day horizon): CONSISTENT, witness:\n"));
            for v in s.vars() {
                out.push_str(&format!(
                    "  {} = {}\n",
                    s.name(v),
                    format_instant(times[v.index()])
                ));
            }
        }
        Ok(ExactOutcome::InconsistentWithinHorizon) => {
            out.push_str(&format!(
                "exact ({horizon_days}-day horizon): INCONSISTENT within horizon\n"
            ));
        }
        Err(e) => out.push_str(&format!("exact: gave up ({e})\n")),
    }
    Ok(out)
}

/// Builds the TAG for a structure file plus a `--types` assignment,
/// interning the type names into `reg` (shared between `match` and
/// `stream`).
fn tag_from_args(
    args: &[String],
    spath: &str,
    cal: &Calendar,
    reg: &mut TypeRegistry,
) -> Result<Tag, String> {
    let s = load_structure(spath, cal)?;
    let type_names = flag_value(args, "--types").ok_or("missing --types t0,t1,...")?;
    let phi: Vec<EventType> = type_names
        .split(',')
        .map(|n| reg.intern(n.trim()))
        .collect();
    if phi.len() != s.len() {
        return Err(format!(
            "--types lists {} types but the structure has {} variables",
            phi.len(),
            s.len()
        ));
    }
    Ok(build_tag(&ComplexEventType::new(s, phi)))
}

fn cmd_match(args: &[String]) -> Result<String, String> {
    let cal = calendar_from(args)?;
    let pos = positionals(args);
    let [spath, epath] = pos.as_slice() else {
        return Err("match needs <structure.json> <events.json>".into());
    };
    let (mut reg, seq) = load_events(epath)?;
    let tag = tag_from_args(args, spath, &cal, &mut reg)?;
    let mut session = MatchSession::new(&tag);
    session.push_batch(seq.events());
    let completions_at: Vec<Second> = session.completed().map(|c| c.at).collect();
    let mut out = format!(
        "TAG: {} states, {} clocks; scanned {} events\n",
        tag.n_states(),
        tag.clocks().len(),
        seq.len()
    );
    if completions_at.is_empty() {
        out.push_str("no occurrence found\n");
    } else {
        out.push_str(&format!("{} completion(s):\n", completions_at.len()));
        for t in completions_at {
            out.push_str(&format!("  at {}\n", format_instant(t)));
        }
    }
    Ok(out)
}

/// Events per resolve-and-push chunk in `tgm stream` — small enough to
/// behave like a stream, large enough to amortize the column append.
const STREAM_CHUNK: usize = 256;

/// Emits one `tgm stream` telemetry frame (shared by the periodic
/// `--stats-every` emissions and the final frame a drain flushes).
fn emit_stream_frame(
    ex: &mut tgm_obs::Exporter,
    s: &tgm_tag::SessionStats,
    lag: Option<f64>,
    last_frame_at: &mut std::time::Instant,
    last_frame_events: &mut u64,
    stats_format: &str,
) -> String {
    let mut frame = ex.frame();
    let now = std::time::Instant::now();
    let dt = now.duration_since(*last_frame_at).as_secs_f64();
    let delta_events = (s.events as u64).saturating_sub(*last_frame_events);
    frame.set_gauge("frontier", s.frontier as f64);
    frame.set_gauge("events_total", s.events as f64);
    frame.set_gauge(
        "events_per_sec",
        if dt > 0.0 { delta_events as f64 / dt } else { 0.0 },
    );
    frame.set_gauge("evicted_rows_total", s.evicted_rows as f64);
    // Thm-4 watermark: ticks the slowest live frontier row still has
    // before its eviction horizon (-1 = no live clocked rows).
    frame.set_gauge("watermark_lag", lag.unwrap_or(-1.0));
    *last_frame_at = now;
    *last_frame_events = s.events as u64;
    match stats_format {
        "openmetrics" => frame.to_openmetrics(),
        _ => frame.to_ndjson(),
    }
}

fn cmd_stream(args: &[String]) -> Result<String, String> {
    let cal = calendar_from(args)?;
    let pos = positionals(args);
    let [spath, epath] = pos.as_slice() else {
        return Err("stream needs <structure.json> <events.ndjson>".into());
    };
    let text =
        std::fs::read_to_string(epath).map_err(|e| format!("cannot read {epath}: {e}"))?;
    let mut reg = TypeRegistry::new();
    // The parser rejects out-of-order timestamps with the offending line.
    let seq = tgm_events::io::from_ndjson_into(&text, &mut reg).map_err(|e| e.to_string())?;
    let events = seq.events();
    let tag = tag_from_args(args, spath, &cal, &mut reg)?;
    // Live telemetry: --stats-every N attaches a recorder-equipped scoped
    // metric domain to the session and emits one `tgm_obs_stream/v1`
    // delta frame (or an OpenMetrics block) every N events, ahead of the
    // final summary.
    let stats_every: Option<u64> = match flag_value(args, "--stats-every") {
        Some(v) => {
            let n: u64 = v
                .parse()
                .map_err(|e| format!("bad --stats-every value: {e}"))?;
            (n > 0).then_some(n)
        }
        None => None,
    };
    let stats_format = flag_value(args, "--stats-format").unwrap_or("ndjson");
    if !matches!(stats_format, "ndjson" | "openmetrics") {
        return Err(format!(
            "bad --stats-format `{stats_format}` (expected ndjson or openmetrics)"
        ));
    }
    let was_enabled = tgm_obs::enabled();
    let scope = stats_every.map(|_| {
        tgm_obs::set_enabled(true);
        tgm_obs::ObsScope::with_recorder(256)
    });
    // Enter the scope for the whole stream so every emission on this
    // thread lands in it rather than the default registry.
    let _scope_guard = scope.as_ref().map(|s| s.enter());
    let mut exporter = scope.as_ref().map(|s| tgm_obs::Exporter::new(s.clone()));
    // The streaming pipeline proper: resolve tick columns incrementally
    // per chunk, feed the session by row, drain completions as they fire.
    let grans: Vec<Gran> = tag.clocks().iter().map(|(_, g)| g.clone()).collect();
    let mut cols = TickColumns::with_granularities(&grans);
    let mut session = MatchSession::new(&tag).with_eviction();
    if let (Some(n), Some(scope)) = (stats_every, scope.as_ref()) {
        session = session.with_scope(scope.clone()).with_stats_every(n);
    }
    let mut completions_at = Vec::new();
    let mut frames = String::new();
    let mut last_frame_at = std::time::Instant::now();
    let mut last_frame_events = 0u64;
    // A shutdown request (Ctrl-C/SIGTERM via the serve layer's token)
    // observed at a chunk boundary switches to the bounded finalize path:
    // stop consuming, flush one final frame, print the summary.
    // `--drain-after-chunks <n>` forces the same path after n chunks, so
    // the finalize behaviour is testable without delivering a signal.
    tgm_serve::shutdown::install();
    let shutdown_baseline = tgm_serve::shutdown::trigger_count();
    let drain_after: Option<usize> = flag_value(args, "--drain-after-chunks")
        .map(|v| v.parse().map_err(|e| format!("bad --drain-after-chunks: {e}")))
        .transpose()?;
    let mut drained = false;
    'stream: for (ci, chunk) in events.chunks(STREAM_CHUNK.max(1)).enumerate() {
        if tgm_serve::shutdown::trigger_count() > shutdown_baseline
            || drain_after.is_some_and(|n| ci >= n)
        {
            drained = true;
            break 'stream;
        }
        let base = cols.len();
        cols.append(chunk);
        for (i, &e) in chunk.iter().enumerate() {
            match session.push_row(e, &cols, base + i) {
                tgm_tag::Push::Advanced { .. } => {}
                tgm_tag::Push::Dead | tgm_tag::Push::Interrupted(_) => break 'stream,
            }
            if session.stats_due() {
                if let Some(ex) = exporter.as_mut() {
                    let lag = session.watermark_lag().map(|v| v as f64);
                    let s = session.stats();
                    frames.push_str(&emit_stream_frame(
                        ex,
                        &s,
                        lag,
                        &mut last_frame_at,
                        &mut last_frame_events,
                        stats_format,
                    ));
                }
            }
        }
        completions_at.extend(session.completed().map(|c| c.at));
    }
    completions_at.extend(session.completed().map(|c| c.at));
    let stats = session.stats();
    if drained {
        // Final telemetry frame so an operator's last scrape is complete.
        if let Some(ex) = exporter.as_mut() {
            let lag = session.watermark_lag().map(|v| v as f64);
            frames.push_str(&emit_stream_frame(
                ex,
                &stats,
                lag,
                &mut last_frame_at,
                &mut last_frame_events,
                stats_format,
            ));
        }
    }
    if scope.is_some() {
        tgm_obs::set_enabled(was_enabled);
    }
    let mut out = frames;
    if drained {
        out.push_str(&format!(
            "stream: drained ({} of {} events consumed)\n",
            stats.events,
            events.len()
        ));
    }
    out.push_str(&format!(
        "TAG: {} states, {} clocks; streamed {} events\n",
        tag.n_states(),
        tag.clocks().len(),
        stats.events
    ));
    if completions_at.is_empty() {
        out.push_str("no occurrence found\n");
    } else {
        out.push_str(&format!("{} completion(s):\n", completions_at.len()));
        for t in &completions_at {
            out.push_str(&format!("  at {}\n", format_instant(*t)));
        }
    }
    out.push_str(&format!(
        "frontier: {} live rows (peak {}), {} evicted across {} eviction pass(es)\n",
        stats.frontier, stats.peak_frontier, stats.evicted_rows, stats.evictions
    ));
    Ok(out)
}

fn cmd_mine(args: &[String]) -> Result<String, String> {
    let cal = calendar_from(args)?;
    let pos = positionals(args);
    let [spath, epath] = pos.as_slice() else {
        return Err("mine needs <structure.json> <events.json>".into());
    };
    let s = load_structure(spath, &cal)?;
    let (reg, seq) = load_events(epath)?;
    let ref_name = flag_value(args, "--reference").ok_or("missing --reference <type>")?;
    let reference = reg
        .get(ref_name)
        .ok_or_else(|| format!("reference type `{ref_name}` does not occur in the events"))?;
    let confidence: f64 = flag_value(args, "--confidence")
        .map(|v| v.parse().map_err(|e| format!("bad --confidence: {e}")))
        .transpose()?
        .unwrap_or(0.5);
    if !(0.0..=1.0).contains(&confidence) {
        return Err(format!("--confidence must be within [0, 1], got {confidence}"));
    }
    let mut problem = DiscoveryProblem::new(s, confidence, reference);
    for pin in flag_values(args, "--pin") {
        let (var, ty_name) = pin
            .split_once('=')
            .ok_or_else(|| format!("bad --pin `{pin}` (want <var-index>=<type>)"))?;
        let var: usize = var.parse().map_err(|e| format!("bad --pin variable: {e}"))?;
        let ty = reg
            .get(ty_name)
            .ok_or_else(|| format!("pinned type `{ty_name}` does not occur in the events"))?;
        if var >= problem.structure.len() {
            return Err(format!("--pin variable {var} out of range"));
        }
        if VarId(var) == problem.structure.root() {
            return Err(format!(
                "--pin {var}=... targets the root variable, which is fixed to --reference {ref_name}"
            ));
        }
        problem.candidates.restrict(VarId(var), [ty]);
    }
    let (solutions, stats) = pipeline::mine(&problem, &seq);
    let mut out = format!(
        "references: {} ({}), candidates scanned: {}, TAG runs: {}\n",
        stats.refs_total, ref_name, stats.candidates_scanned, stats.tag_runs
    );
    if solutions.is_empty() {
        out.push_str(&format!("no assignment exceeds confidence {confidence}\n"));
    } else {
        for sol in &solutions {
            let names: Vec<&str> = sol.assignment.iter().map(|&t| reg.name(t)).collect();
            out.push_str(&format!(
                "  {:<60} frequency {:.3} (support {})\n",
                names.join(", "),
                sol.frequency,
                sol.support
            ));
        }
    }
    Ok(out)
}

fn cmd_serve(args: &[String]) -> Result<String, String> {
    let parse_u64 = |name: &str| -> Result<Option<u64>, String> {
        flag_value(args, name)
            .map(|v| v.parse().map_err(|e| format!("bad {name}: {e}")))
            .transpose()
    };
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:0");
    let mut quotas = tgm_limits::Quotas::unlimited();
    if let Some(n) = parse_u64("--max-inflight")? {
        quotas = quotas.with_max_inflight(n as u32);
    }
    if let Some(n) = parse_u64("--max-sessions")? {
        quotas = quotas.with_max_sessions(n as u32);
    }
    if let Some(n) = parse_u64("--budget")? {
        quotas = quotas.with_budget(n);
    }
    if let Some(n) = parse_u64("--timeout-ms")? {
        quotas = quotas.with_timeout(std::time::Duration::from_millis(n));
    }
    let config = tgm_serve::ServerConfig {
        workers: parse_u64("--workers")?.unwrap_or(2) as usize,
        queue_depth: parse_u64("--queue-depth")?.unwrap_or(64) as usize,
        default_quotas: quotas,
        tenant_quotas: Vec::new(),
    };
    // Ctrl-C / SIGTERM flips the shared token; the loop below sees it and
    // drains. `--max-requests` gives tests and scripted smoke runs a
    // deterministic self-drain on the same path.
    tgm_serve::shutdown::install();
    let shutdown_baseline = tgm_serve::shutdown::trigger_count();
    let server = tgm_serve::Server::bind(addr, config)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    if let Some(pf) = flag_value(args, "--port-file") {
        std::fs::write(pf, format!("{}\n", server.local_addr().port()))
            .map_err(|e| format!("cannot write {pf}: {e}"))?;
    }
    let max_requests = parse_u64("--max-requests")?;
    loop {
        if tgm_serve::shutdown::trigger_count() > shutdown_baseline {
            break;
        }
        if max_requests.is_some_and(|n| server.core().requests_handled() >= n) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let handled = server.core().requests_handled();
    let sheds = server.core().sheds();
    let frames = server.drain();
    let mut out = String::new();
    for f in &frames {
        out.push_str(f);
    }
    out.push_str(&format!(
        "serve: drained after {handled} request(s), {sheds} shed, {} tenant(s)\n",
        frames.len()
    ));
    Ok(out)
}

/// The usage text shown on errors.
pub fn usage() -> &'static str {
    USAGE
}

//! JSON serialization of event structures — re-exported from
//! [`tgm_core::json`] (the implementation moved into the core crate so the
//! serve layer can parse structure documents without depending on this
//! facade).

pub use tgm_core::json::{
    structure_from_json, structure_from_value, structure_to_json, StructureJsonError,
};

//! JSON serialization of event structures and discovery problems, resolving
//! granularities by name against a [`Calendar`].
//!
//! Format:
//!
//! ```json
//! {
//!   "variables": ["X0", "X1", "X2"],
//!   "constraints": [
//!     { "from": 0, "to": 1, "lo": 1, "hi": 1, "granularity": "business-day" },
//!     { "from": 1, "to": 2, "lo": 0, "hi": 1, "granularity": "week" }
//!   ]
//! }
//! ```

use serde::{Deserialize, Serialize};
use tgm_core::{EventStructure, StructureBuilder, Tcg, VarId};
use tgm_granularity::Calendar;

#[derive(Serialize, Deserialize)]
struct JsonConstraint {
    from: usize,
    to: usize,
    lo: u64,
    hi: u64,
    granularity: String,
}

#[derive(Serialize, Deserialize)]
struct JsonStructure {
    variables: Vec<String>,
    constraints: Vec<JsonConstraint>,
}

/// Errors from structure (de)serialization.
#[derive(Debug)]
pub enum StructureJsonError {
    /// Malformed JSON.
    Json(serde_json::Error),
    /// A constraint references an unknown granularity name.
    UnknownGranularity(String),
    /// A constraint has `lo > hi` or references an out-of-range variable.
    InvalidConstraint(String),
    /// The graph is not a rooted DAG.
    Structure(tgm_core::StructureError),
}

impl std::fmt::Display for StructureJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructureJsonError::Json(e) => write!(f, "malformed JSON: {e}"),
            StructureJsonError::UnknownGranularity(g) => {
                write!(f, "unknown granularity `{g}`")
            }
            StructureJsonError::InvalidConstraint(msg) => write!(f, "invalid constraint: {msg}"),
            StructureJsonError::Structure(e) => write!(f, "invalid structure: {e}"),
        }
    }
}

impl std::error::Error for StructureJsonError {}

/// Serializes an event structure (granularities stored by name).
pub fn structure_to_json(s: &EventStructure) -> String {
    let out = JsonStructure {
        variables: s.vars().map(|v| s.name(v).to_owned()).collect(),
        constraints: s
            .arcs()
            .flat_map(|(a, b, cs)| {
                cs.iter().map(move |c| JsonConstraint {
                    from: a.index(),
                    to: b.index(),
                    lo: c.lo(),
                    hi: c.hi(),
                    granularity: c.gran().name().to_owned(),
                })
            })
            .collect(),
    };
    serde_json::to_string_pretty(&out).expect("structures always serialize")
}

/// Parses an event structure, resolving granularity names against `cal`.
pub fn structure_from_json(
    json: &str,
    cal: &Calendar,
) -> Result<EventStructure, StructureJsonError> {
    let parsed: JsonStructure = serde_json::from_str(json).map_err(StructureJsonError::Json)?;
    let mut b = StructureBuilder::new();
    let n = parsed.variables.len();
    let vars: Vec<VarId> = parsed.variables.iter().map(|name| b.var(name)).collect();
    for c in parsed.constraints {
        if c.from >= n || c.to >= n {
            return Err(StructureJsonError::InvalidConstraint(format!(
                "variable index out of range in ({}, {})",
                c.from, c.to
            )));
        }
        if c.lo > c.hi {
            return Err(StructureJsonError::InvalidConstraint(format!(
                "empty bounds [{}, {}]",
                c.lo, c.hi
            )));
        }
        if c.hi > Tcg::MAX_BOUND {
            return Err(StructureJsonError::InvalidConstraint(format!(
                "bound {} exceeds the supported maximum {}",
                c.hi,
                Tcg::MAX_BOUND
            )));
        }
        let gran = cal
            .get(&c.granularity)
            .map_err(|_| StructureJsonError::UnknownGranularity(c.granularity.clone()))?;
        b.constrain(vars[c.from], vars[c.to], Tcg::new(c.lo, c.hi, gran));
    }
    b.build().map_err(StructureJsonError::Structure)
}

#[cfg(test)]
mod tests {
    use tgm_core::examples::figure_1a;

    use super::*;

    #[test]
    fn round_trip_figure_1a() {
        let cal = Calendar::standard();
        let (s, _) = figure_1a(&cal);
        let json = structure_to_json(&s);
        let back = structure_from_json(&json, &cal).unwrap();
        assert_eq!(back.len(), s.len());
        assert_eq!(back.constraint_count(), s.constraint_count());
        for (a, b, cs) in s.arcs() {
            assert_eq!(back.constraints(a, b), cs);
        }
        // Same witnesses.
        let w = tgm_core::examples::figure_1a_witness();
        assert!(back.satisfied_by(&w));
    }

    #[test]
    fn unknown_granularity_rejected() {
        let cal = Calendar::standard();
        let json = r#"{"variables": ["A", "B"],
            "constraints": [{"from":0,"to":1,"lo":0,"hi":1,"granularity":"fortnight"}]}"#;
        assert!(matches!(
            structure_from_json(json, &cal),
            Err(StructureJsonError::UnknownGranularity(_))
        ));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let cal = Calendar::standard();
        assert!(matches!(
            structure_from_json("nonsense", &cal),
            Err(StructureJsonError::Json(_))
        ));
        let oob = r#"{"variables": ["A"],
            "constraints": [{"from":0,"to":5,"lo":0,"hi":1,"granularity":"day"}]}"#;
        assert!(matches!(
            structure_from_json(oob, &cal),
            Err(StructureJsonError::InvalidConstraint(_))
        ));
        let empty_bounds = r#"{"variables": ["A","B"],
            "constraints": [{"from":0,"to":1,"lo":3,"hi":1,"granularity":"day"}]}"#;
        assert!(matches!(
            structure_from_json(empty_bounds, &cal),
            Err(StructureJsonError::InvalidConstraint(_))
        ));
        let cyclic = r#"{"variables": ["A","B"],
            "constraints": [{"from":0,"to":1,"lo":0,"hi":1,"granularity":"day"},
                            {"from":1,"to":0,"lo":0,"hi":1,"granularity":"day"}]}"#;
        assert!(matches!(
            structure_from_json(cyclic, &cal),
            Err(StructureJsonError::Structure(_))
        ));
    }

    #[test]
    fn custom_calendar_names_resolve() {
        let mut cal = Calendar::standard();
        cal.register(tgm_granularity::Gran::new(
            tgm_granularity::builtin::n_month(6),
        ))
        .unwrap();
        let json = r#"{"variables": ["A", "B"],
            "constraints": [{"from":0,"to":1,"lo":1,"hi":1,"granularity":"6-month"}]}"#;
        let s = structure_from_json(json, &cal).unwrap();
        assert_eq!(s.constraint_count(), 1);
    }
}

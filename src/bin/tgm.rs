//! `tgm` — command-line front end for the temporal-granularity toolkit.
//!
//! ```text
//! tgm calendar
//! tgm convert <lo> <hi> <granularity> --to <granularity>
//! tgm check <structure.json> [--horizon-days <n>]
//! tgm match <structure.json> --types <t0,t1,...> <events.json>
//! tgm mine <structure.json> <events.json> --reference <type>
//!          [--confidence <x>] [--pin <var>=<type>]...
//! ```
//!
//! Structures are JSON (see `tgm::json`); event files are JSON arrays of
//! `{"ty": "...", "time": <seconds>}` records (see `tgm::events::io`).
//! All logic lives in `tgm::cli` so it is testable.

use std::io::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match tgm::cli::run(&args) {
        Ok(output) => {
            // A closed pipe (`tgm ... | head`) is a normal way for output
            // to end, not a panic.
            let _ = writeln!(std::io::stdout(), "{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", tgm::cli::usage());
            ExitCode::FAILURE
        }
    }
}

//! Industrial-plant telemetry (paper §1 motivation): discover the
//! malfunction cascade embedded in the sensor stream — a temperature spike,
//! a pressure drop a few hours later, and a valve fault the *next calendar
//! day* (not "within 24 hours").
//!
//! Run with `cargo run --release --example plant_monitoring`.

use tgm::events::gen::{plant_telemetry, PlantConfig};
use tgm::prelude::*;

fn main() {
    let cal = Calendar::standard();
    let mut reg = TypeRegistry::new();
    let seq = plant_telemetry(
        &PlantConfig {
            days: 365,
            cascade_period_days: 4.0,
            noise_per_day: 4.0,
            seed: 0xBEEF,
        },
        &mut reg,
    );
    let temp = reg.get("temp-spike").unwrap();
    println!(
        "{} events over one year; {} temperature spikes",
        seq.len(),
        seq.count_of(temp)
    );

    // Hypothesis structure: spike -> ? within [2,6] hours, then ? on the
    // next calendar day.
    let mut b = StructureBuilder::new();
    let x0 = b.var("spike");
    let x1 = b.var("soon-after");
    let x2 = b.var("next-day");
    b.constrain(x0, x1, Tcg::new(0, 6, cal.get("hour").unwrap()));
    b.constrain(x0, x1, Tcg::new(0, 0, cal.get("day").unwrap()));
    b.constrain(x1, x2, Tcg::new(1, 1, cal.get("day").unwrap()));
    let s = b.build().unwrap();
    let monitor_structure = s.clone();

    // Which (X1, X2) type pairs complete the cascade for >= 70% of spikes?
    let problem = DiscoveryProblem::new(s, 0.7, temp);
    let opts = pipeline::PipelineOptions::builder().pair_screening(true).build();
    let (solutions, stats) = pipeline::mine_with(&problem, &seq, &opts);
    println!(
        "candidates {} -> {} after screening; {} TAG runs over {} spikes",
        stats.candidates_initial,
        stats.candidates_scanned,
        stats.tag_runs,
        stats.refs_total
    );
    println!("\nDiscovered cascades (frequency > 0.7 per spike):");
    for sol in &solutions {
        println!(
            "  spike -> {:<14} -> {:<12} frequency {:.2}",
            reg.name(sol.assignment[1]),
            reg.name(sol.assignment[2]),
            sol.frequency
        );
    }
    let pressure = reg.get("pressure-drop").unwrap();
    let valve = reg.get("valve-fault").unwrap();
    assert!(
        solutions
            .iter()
            .any(|s| s.assignment[1] == pressure && s.assignment[2] == valve),
        "the generator's embedded cascade must be discovered"
    );
    println!("\nThe embedded temp-spike -> pressure-drop -> valve-fault cascade was recovered.");

    // Deploy the discovered cascade as a *live monitor*: one long-lived
    // MatchSession consumes the telemetry feed incrementally (here in
    // day-sized chunks), raising an alert at every completed occurrence.
    // Horizon eviction keeps the frontier bounded over the unbounded
    // stream — old partial matches whose clocks have drifted past every
    // remaining TCG window are aged out deterministically.
    let cet = ComplexEventType::new(monitor_structure, vec![temp, pressure, valve]);
    let tag = build_tag(&cet);
    let mut monitor = MatchSession::new(&tag).with_eviction();
    let mut alerts = 0u64;
    for day_chunk in seq.events().chunks(96) {
        monitor.push_batch(day_chunk);
        for c in monitor.completed() {
            alerts += 1;
            if alerts <= 3 {
                println!(
                    "  ALERT: cascade completed at stream event #{} (t = {})",
                    c.index, c.at
                );
            }
        }
    }
    let stats = monitor.stats();
    println!(
        "\nlive monitor: {} events streamed, {} alerts; frontier {} live / {} peak, \
         {} rows evicted in {} passes",
        stats.events,
        alerts,
        stats.frontier,
        stats.peak_frontier,
        stats.evicted_rows,
        stats.evictions
    );
    assert!(alerts > 0, "the embedded cascades must alert the live monitor");
}

//! Custom calendars via the calendar expression DSL: a fiscal year starting
//! in April, fiscal quarters, and discovery relative to "the beginning of a
//! fiscal quarter" (the paper's §6 generalized-reference extension).
//!
//! Run with `cargo run --release --example fiscal_calendar`.

use tgm::events::stats::render_summary;
use tgm::granularity::parse::parse_granularity;
use tgm::granularity::format_instant;
use tgm::mining::{mine_with_reference, Reference};
use tgm::prelude::*;

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;

fn main() {
    // A fiscal calendar: FY starts April 1st, quarters follow it.
    let mut cal = Calendar::standard();
    let fy = Gran::from_expr("fiscal-years starting apr").expect("valid expression");
    let fq = Gran::from_expr("quarters starting apr").expect("valid expression");
    cal.register(fy.clone()).unwrap();
    cal.register(fq.clone()).unwrap();
    // The DSL expressions are sugar for the core spec grammar — same ticks.
    let fq_spec = parse_granularity("3 month @ 2000-04").expect("valid spec");
    for z in [-4, 1, 2, 9] {
        assert_eq!(fq.tick_intervals(z), fq_spec.tick_intervals(z));
    }
    println!(
        "fiscal year 1:    {} .. {}",
        format_instant(fy.tick_intervals(1).unwrap().min()),
        format_instant(fy.tick_intervals(1).unwrap().max())
    );
    println!(
        "fiscal quarter 1: {} .. {}",
        format_instant(fq.tick_intervals(1).unwrap().min()),
        format_instant(fq.tick_intervals(1).unwrap().max())
    );

    // TCGs in fiscal granularities behave like any other: "same fiscal
    // year" and "next fiscal quarter".
    let same_fy = Tcg::new(0, 0, fy.clone());
    let next_fq = Tcg::new(1, 1, fq.clone());
    let t_may = tgm::granularity::instant(2000, 5, 10, 12, 0, 0);
    let t_aug = tgm::granularity::instant(2000, 8, 2, 9, 0, 0);
    let t_feb = tgm::granularity::instant(2001, 2, 1, 9, 0, 0);
    println!("\nMay-2000 -> Aug-2000: same FY = {}, next FQ = {}",
        same_fy.satisfied(t_may, t_aug), next_fq.satisfied(t_may, t_aug));
    println!("May-2000 -> Feb-2001: same FY = {} (fiscal years run Apr..Mar)",
        same_fy.satisfied(t_may, t_feb));

    // Synthesize two fiscal years of bookkeeping: a `close-books` event in
    // the first 5 days of almost every fiscal quarter, plus audits and
    // noise.
    let mut reg = TypeRegistry::new();
    let close = reg.intern("close-books");
    let audit = reg.intern("audit");
    let misc = reg.intern("misc");
    let mut sb = SequenceBuilder::new();
    for q in 1..=8i64 {
        let Some(start) = fq.tick_intervals(q).map(|s| s.min()) else { continue };
        if q != 5 {
            sb.push(close, start + 2 * DAY + 10 * HOUR);
        }
        if q % 2 == 0 {
            sb.push(audit, start + 20 * DAY);
        }
        sb.push(misc, start + 40 * DAY);
    }
    let seq = sb.build();
    println!("\n{}", render_summary(&seq, &reg));

    // "What happens in the first business week of most fiscal quarters?"
    let mut b = StructureBuilder::new();
    let q_start = b.var("fq-start");
    let what = b.var("what");
    b.constrain(q_start, what, Tcg::new(0, 0, fq));
    b.constrain(q_start, what, Tcg::new(0, 5, cal.get("day").unwrap()));
    let s = b.build().unwrap();

    let (ref_ty, sols, stats) = mine_with_reference(
        s,
        0.7,
        &Reference::TickStart(cal.get("quarters starting apr").unwrap()),
        &seq,
        &mut reg,
        &tgm::mining::pipeline::PipelineOptions::default(),
    );
    println!(
        "reference: {} ({} occurrences)",
        reg.name(ref_ty),
        stats.refs_total
    );
    println!("frequent starts-of-fiscal-quarter events (> 70% of quarters):");
    for sol in &sols {
        println!(
            "  {:<16} frequency {:.2}",
            reg.name(sol.assignment[1]),
            sol.frequency
        );
    }
    assert!(
        sols.iter().any(|s| s.assignment[1] == close),
        "close-books must be discovered"
    );
}

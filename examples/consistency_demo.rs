//! Consistency of event structures: the granularity-encoded disjunction of
//! the paper's Figure 1(b), and the NP-hardness gadget of Theorem 1
//! (including the erratum this reproduction uncovered).
//!
//! Run with `cargo run --release --example consistency_demo`.

use tgm::core::examples::figure_1b;
use tgm::core::exact::{check_with, ExactOptions, ExactOutcome};
use tgm::core::reductions::{
    gadget_ground_truth, subset_sum_dp, subset_sum_options, subset_sum_structure,
};
use tgm::prelude::*;

fn main() {
    let cal = Calendar::standard();

    // --- Figure 1(b): a disjunction expressed purely by granularities. ---
    // X1 pins X0 to the first month of a year; X3 pins X2 likewise; with
    // X0..X2 within [0,12] months their distance must be 0 or 12.
    let (s, v) = figure_1b(&cal);
    println!("Figure 1(b):\n{s:?}");
    let month = cal.get("month").unwrap();
    print!("feasible X0..X2 month distances within 3 years:");
    for d in 0..=12u64 {
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        let x3 = b.var("X3");
        for (a, bb, cs) in s.arcs() {
            let map = |x: VarId| [x0, x1, x2, x3][x.index()];
            for c in cs {
                b.constrain(map(a), map(bb), c.clone());
            }
        }
        b.constrain(x0, x2, Tcg::new(d, d, month.clone()));
        let pinned = b.build().unwrap();
        let opts = ExactOptions {
            horizon_start: 0,
            horizon_end: 3 * 366 * 86_400,
            ..ExactOptions::default()
        };
        if matches!(
            check_with(&pinned, &opts).unwrap(),
            ExactOutcome::Consistent(_)
        ) {
            print!(" {d}");
        }
    }
    println!("   (the paper's §3.1 argument: exactly 0 and 12)");
    let _ = v;

    // --- Theorem 1: consistency is NP-hard (SUBSET SUM gadget). ---
    println!("\nSUBSET SUM as event-structure consistency:");
    for (values, target) in [(vec![2u64, 3, 5], 8u64), (vec![2, 3, 5], 4), (vec![2, 3], 4)] {
        let s = subset_sum_structure(&values, target);
        let opts = subset_sum_options(&values, target);
        let consistent = matches!(
            check_with(&s, &opts).unwrap(),
            ExactOutcome::Consistent(_)
        );
        println!(
            "  values {values:?} target {target}: gadget consistent = {consistent}, \
             subset-sum = {}",
            subset_sum_dp(&values, target)
        );
    }

    // --- The erratum: with repeated values the literal gadget encodes
    //     subset sum PLUS congruence side-conditions. ---
    let values = vec![3u64, 1, 3, 2];
    let target = 7u64;
    let s = subset_sum_structure(&values, target);
    let opts = subset_sum_options(&values, target);
    let consistent = matches!(check_with(&s, &opts).unwrap(), ExactOutcome::Consistent(_));
    println!(
        "\nErratum instance values {values:?} target {target}:\n  \
         plain subset-sum solvable: {}\n  \
         gadget ground truth (subset sum + CRT conditions): {}\n  \
         gadget consistent (exact checker): {consistent}",
        subset_sum_dp(&values, target),
        gadget_ground_truth(&values, target),
    );
    println!(
        "  -> the paper's reduction is faithful only for pairwise-coprime \
         values (see tgm_core::reductions)."
    );

    // --- Sound propagation cannot see granularity-encoded disjunctions. ---
    let p = propagate(&s);
    println!(
        "\npropagation (polynomial, sound) refutes the erratum gadget: {} \
         — as expected, the disjunction is invisible to it (Theorem 2 vs 1).",
        !p.is_consistent()
    );
}

//! ATM transaction analysis (paper §1 motivation): find account-activity
//! patterns with quantitative bounds in the *right* granularity — "a large
//! withdrawal on the same day as a PIN failure" is not the same thing as
//! "within 24 hours".
//!
//! Run with `cargo run --release --example atm_fraud`.

use tgm::events::gen::{atm_transactions, with_planted, AtmConfig};
use tgm::prelude::*;

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;

fn main() {
    let cal = Calendar::standard();
    let mut reg = TypeRegistry::new();
    let mut seq = atm_transactions(
        &AtmConfig {
            customers: 12,
            days: 120,
            txns_per_day: 0.8,
            seed: 0xF00D,
        },
        &mut reg,
    );
    let pin_fail = reg.get("pin-failure").unwrap();
    let large = reg.get("large-withdrawal").unwrap();

    // Plant a fraud signature after most PIN failures: a large withdrawal
    // 1-3 hours later the same day.
    let mut groups = Vec::new();
    for (i, e) in seq.occurrences_of(pin_fail).enumerate() {
        if i % 5 == 0 {
            continue; // 80% of failures are followed by the signature
        }
        let offset = (1 + (i as i64 % 3)) * HOUR;
        let t = (e.time + offset).min((e.time / DAY) * DAY + DAY - 1);
        groups.push(vec![(large, t)]);
    }
    // Also plant cross-midnight impostors: a PIN failure at 22:30 followed
    // by a large withdrawal at 01:00 the next day — within 4 hours, but not
    // the same day.
    for d in (10..110i64).step_by(9) {
        groups.push(vec![
            (pin_fail, d * DAY + 22 * HOUR + 1_800),
            (large, (d + 1) * DAY + HOUR),
        ]);
    }
    seq = with_planted(&seq, &groups);
    println!(
        "{} events, {} PIN failures, {} large withdrawals",
        seq.len(),
        seq.count_of(pin_fail),
        seq.count_of(large)
    );

    // The fraud pattern: pin-failure -> large-withdrawal within [0,4] hours
    // AND the same day.
    let mut b = StructureBuilder::new();
    let x0 = b.var("pin-failure");
    let x1 = b.var("follow-up");
    b.constrain(x0, x1, Tcg::new(0, 4, cal.get("hour").unwrap()));
    b.constrain(x0, x1, Tcg::new(0, 0, cal.get("day").unwrap()));
    let s = b.build().unwrap();

    let problem = DiscoveryProblem::new(s, 0.5, pin_fail);
    let (solutions, stats) = pipeline::mine(&problem, &seq);
    println!(
        "\ncandidates {} -> {}, {} TAG runs",
        stats.candidates_initial, stats.candidates_scanned, stats.tag_runs
    );
    println!("\nEvent types frequently following a PIN failure (same day, <= 4h):");
    for sol in &solutions {
        println!(
            "  {:<20} frequency {:.2} (support {}/{})",
            reg.name(sol.assignment[1]),
            sol.frequency,
            sol.support,
            stats.refs_total
        );
    }
    assert!(
        solutions.iter().any(|s| s.assignment[1] == large),
        "the planted fraud signature must surface"
    );

    // Contrast with a naive 4-hour rule that ignores day boundaries: a PIN
    // failure at 23:00 followed by a withdrawal at 01:30 is NOT the
    // same-day signature.
    let same_day = Tcg::new(0, 0, cal.get("day").unwrap());
    let within_4h = Tcg::new(0, 4 * HOUR as u64, cal.get("second").unwrap());
    let mut cross_midnight = 0;
    for f in seq.occurrences_of(pin_fail) {
        for w in seq.window(f.time..=f.time + 4 * HOUR) {
            if w.ty == large && within_4h.satisfied(f.time, w.time) && !same_day.satisfied(f.time, w.time)
            {
                cross_midnight += 1;
            }
        }
    }
    println!(
        "\ncross-midnight (pin-failure, large-withdrawal) pairs a flat 4h rule \
         would wrongly flag: {cross_midnight}"
    );
}

//! ATM transaction analysis (paper §1 motivation): find account-activity
//! patterns with quantitative bounds in the *right* granularity — "a large
//! withdrawal on the same day as a PIN failure" is not the same thing as
//! "within 24 hours".
//!
//! Run with `cargo run --release --example atm_fraud`.

use tgm::events::gen::{atm_transactions, with_planted, AtmConfig};
use tgm::prelude::*;

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;

fn main() {
    let cal = Calendar::standard();
    let mut reg = TypeRegistry::new();
    let mut seq = atm_transactions(
        &AtmConfig {
            customers: 12,
            days: 120,
            txns_per_day: 0.8,
            seed: 0xF00D,
        },
        &mut reg,
    );
    let pin_fail = reg.get("pin-failure").unwrap();
    let large = reg.get("large-withdrawal").unwrap();

    // Plant a fraud signature after most PIN failures: a large withdrawal
    // 1-3 hours later the same day.
    let mut groups = Vec::new();
    for (i, e) in seq.occurrences_of(pin_fail).enumerate() {
        if i % 5 == 0 {
            continue; // 80% of failures are followed by the signature
        }
        let offset = (1 + (i as i64 % 3)) * HOUR;
        let t = (e.time + offset).min((e.time / DAY) * DAY + DAY - 1);
        groups.push(vec![(large, t)]);
    }
    // Also plant cross-midnight impostors: a PIN failure at 22:30 followed
    // by a large withdrawal at 01:00 the next day — within 4 hours, but not
    // the same day.
    for d in (10..110i64).step_by(9) {
        groups.push(vec![
            (pin_fail, d * DAY + 22 * HOUR + 1_800),
            (large, (d + 1) * DAY + HOUR),
        ]);
    }
    seq = with_planted(&seq, &groups);
    println!(
        "{} events, {} PIN failures, {} large withdrawals",
        seq.len(),
        seq.count_of(pin_fail),
        seq.count_of(large)
    );

    // The fraud pattern: pin-failure -> large-withdrawal within [0,4] hours
    // AND the same day.
    let mut b = StructureBuilder::new();
    let x0 = b.var("pin-failure");
    let x1 = b.var("follow-up");
    b.constrain(x0, x1, Tcg::new(0, 4, cal.get("hour").unwrap()));
    b.constrain(x0, x1, Tcg::new(0, 0, cal.get("day").unwrap()));
    let s = b.build().unwrap();

    let problem = DiscoveryProblem::new(s, 0.5, pin_fail);
    let (solutions, stats) = pipeline::mine(&problem, &seq);
    println!(
        "\ncandidates {} -> {}, {} TAG runs",
        stats.candidates_initial, stats.candidates_scanned, stats.tag_runs
    );
    println!("\nEvent types frequently following a PIN failure (same day, <= 4h):");
    for sol in &solutions {
        println!(
            "  {:<20} frequency {:.2} (support {}/{})",
            reg.name(sol.assignment[1]),
            sol.frequency,
            sol.support,
            stats.refs_total
        );
    }
    assert!(
        solutions.iter().any(|s| s.assignment[1] == large),
        "the planted fraud signature must surface"
    );

    // Now deploy the signature as a *live monitor*: two long-lived
    // MatchSessions consume the transaction feed incrementally, one with
    // the paper's same-day granularity constraint and one with a naive
    // flat 4-hour rule that ignores day boundaries. Streaming replay is
    // bit-identical to the batch matcher, so the difference between the
    // two alert streams is exactly the cross-midnight false positives.
    let fraud_tag = {
        let mut b = StructureBuilder::new();
        let x0 = b.var("pin-failure");
        let x1 = b.var("follow-up");
        b.constrain(x0, x1, Tcg::new(0, 4, cal.get("hour").unwrap()));
        b.constrain(x0, x1, Tcg::new(0, 0, cal.get("day").unwrap()));
        build_tag(&ComplexEventType::new(b.build().unwrap(), vec![pin_fail, large]))
    };
    let naive_tag = {
        let mut b = StructureBuilder::new();
        let x0 = b.var("pin-failure");
        let x1 = b.var("follow-up");
        b.constrain(x0, x1, Tcg::new(0, 4 * HOUR as u64, cal.get("second").unwrap()));
        build_tag(&ComplexEventType::new(b.build().unwrap(), vec![pin_fail, large]))
    };
    let mut strict = MatchSession::new(&fraud_tag).with_eviction();
    let mut naive = MatchSession::new(&naive_tag).with_eviction();
    let mut strict_alerts = Vec::new();
    let mut naive_alerts = Vec::new();
    for chunk in seq.events().chunks(128) {
        strict.push_batch(chunk);
        naive.push_batch(chunk);
        strict_alerts.extend(strict.completed().map(|c| c.at));
        naive_alerts.extend(naive.completed().map(|c| c.at));
    }
    let false_positives: Vec<i64> = naive_alerts
        .iter()
        .copied()
        .filter(|t| !strict_alerts.contains(t))
        .collect();
    println!(
        "\nlive monitors over {} events: same-day rule raised {} alerts \
         (frontier peak {}, {} rows evicted); flat 4h rule raised {}",
        strict.stats().events,
        strict_alerts.len(),
        strict.stats().peak_frontier,
        strict.stats().evicted_rows,
        naive_alerts.len()
    );
    println!(
        "cross-midnight withdrawals only the flat 4h rule flags: {}",
        false_positives.len()
    );
    assert!(!strict_alerts.is_empty(), "the planted signatures must alert");
    assert!(
        !false_positives.is_empty(),
        "the cross-midnight impostors must separate the two rules"
    );
    // Every disputed alert really does cross midnight: no same-day PIN
    // failure precedes it within the window.
    let same_day = Tcg::new(0, 0, cal.get("day").unwrap());
    for &t in &false_positives {
        assert!(
            !seq.occurrences_of(pin_fail)
                .any(|f| t - f.time >= 0 && t - f.time <= 4 * HOUR && same_day.satisfied(f.time, t)),
            "alert at {t} should not have a same-day trigger"
        );
    }
    println!("every disputed alert verified to cross a midnight boundary — not fraud-signature matches.");
}

//! The paper's running example (Examples 1 & 2): mine what happens between
//! a rise and a fall of IBM stock, with constraints in business days,
//! weeks, and hours.
//!
//! Run with `cargo run --release --example stock_mining`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tgm::core::examples::example_1;
use tgm::granularity::{weekday_from_days, Weekday};
use tgm::prelude::*;

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;

fn main() {
    let cal = Calendar::standard();
    let mut reg = TypeRegistry::new();
    // The complex event type of paper Example 1 over Figure 1(a):
    //   X0 = IBM-rise, X1 = IBM-earnings-report (1 b-day later),
    //   X2 = HP-rise (within 5 b-days), X3 = IBM-fall (same/next week of
    //   the report, within 8 hours after the HP rise).
    let (cet, tys) = example_1(&cal, &mut reg);
    println!("Example 1 structure:\n{:?}", cet.structure());

    // Synthesize a year of daily closes for four symbols; after 80% of the
    // IBM rises, plant the full Example-1 episode.
    let mut rng = StdRng::seed_from_u64(96);
    let symbols = ["IBM", "HP", "SUN", "DEC"];
    let sym_tys: Vec<(EventType, EventType)> = symbols
        .iter()
        .map(|s| (reg.intern(&format!("{s}-rise")), reg.intern(&format!("{s}-fall"))))
        .collect();
    let mut sb = SequenceBuilder::new();
    let next_bday = |d: i64| {
        (d + 1..)
            .find(|&x| !matches!(weekday_from_days(x), Weekday::Sat | Weekday::Sun))
            .unwrap()
    };
    let mut planted = 0;
    for d in 0..365i64 {
        if matches!(weekday_from_days(d), Weekday::Sat | Weekday::Sun) {
            continue;
        }
        let mut ibm_rose = false;
        for (i, &(rise, fall)) in sym_tys.iter().enumerate() {
            let ty = if rng.gen_bool(0.5) { rise } else { fall };
            sb.push(ty, d * DAY + 10 * HOUR + i as i64 * 60);
            if i == 0 && ty == rise {
                ibm_rose = true;
            }
        }
        if ibm_rose && d + 7 < 365 && rng.gen_bool(0.8) {
            let d1 = next_bday(d);
            let d2 = next_bday(d1);
            sb.push(tys.ibm_report, d1 * DAY + 9 * HOUR);
            sb.push(tys.hp_rise, d2 * DAY + 6 * HOUR);
            sb.push(tys.ibm_fall, d2 * DAY + 11 * HOUR);
            planted += 1;
        }
    }
    let seq = sb.build();
    println!("\n{} events, {planted} planted Example-1 episodes", seq.len());

    // Example 2's discovery problem: (S, 0.6, IBM-rise, δ) with X3 pinned
    // to IBM-fall and X1, X2 free.
    let problem = DiscoveryProblem::new(cet.structure().clone(), 0.6, tys.ibm_rise)
        .with_candidates(VarId(3), [tys.ibm_fall]);

    let (solutions, stats) = pipeline::mine(&problem, &seq);
    println!(
        "\ncandidates: {} initial -> {} after screening; {} TAG runs; {} refs",
        stats.candidates_initial,
        stats.candidates_scanned,
        stats.tag_runs,
        stats.refs_total
    );
    println!("\nDiscovered complex event types (frequency > 0.6 per IBM-rise):");
    for sol in &solutions {
        let names: Vec<&str> = sol.assignment.iter().map(|&t| reg.name(t)).collect();
        println!(
            "  X1 = {:<22} X2 = {:<10} frequency {:.2}",
            names[1], names[2], sol.frequency
        );
    }
    assert!(
        solutions.iter().any(|s| s.assignment[1] == tys.ibm_report
            && s.assignment[2] == tys.hp_rise),
        "the planted Example-1 assignment must be discovered"
    );
    println!("\nThe planted pattern (report, HP-rise) was recovered.");
}

//! Quickstart: build a multi-granularity temporal pattern, check it,
//! compile it to a timed automaton, and find it in an event stream.
//!
//! Run with `cargo run --example quickstart`.

use tgm::prelude::*;

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;

fn main() -> Result<(), Error> {
    // 1. A calendar of granularities (second/hour/day/week/month/...,
    //    business days, business weeks, weekends).
    let cal = Calendar::standard();

    // 2. An event structure: "a deploy, then an alert within 4 to 12 hours,
    //    on the same business day".
    let mut b = StructureBuilder::new();
    let deploy = b.var("deploy");
    let alert = b.var("alert");
    b.constrain(deploy, alert, Tcg::new(4, 12, cal.get("hour")?));
    b.constrain(deploy, alert, Tcg::new(0, 0, cal.get("business-day")?));
    let structure = b.build()?;
    println!("structure:\n{structure:?}");

    // 3. Consistency: sound polynomial propagation (paper §3.2) derives
    //    implied constraints and refutes contradictions.
    let p = propagate(&structure);
    println!("propagation refuted: {}", !p.is_consistent());
    println!(
        "derived window (seconds): {:?}",
        p.seconds_window(deploy, alert).unwrap()
    );

    // 4. Exact (horizon-bounded) consistency with a witness (paper Thm 1 is
    //    NP-hard, so this is exponential in general).
    match exact_check(&structure)? {
        ExactOutcome::Consistent(witness) => {
            println!("exact witness timestamps: {witness:?}")
        }
        ExactOutcome::InconsistentWithinHorizon => println!("inconsistent"),
    }

    // 5. Compile to a timed automaton with granularities (paper §4) and
    //    match against an event stream.
    let mut reg = TypeRegistry::new();
    let deploy_ty = reg.intern("deploy");
    let alert_ty = reg.intern("alert");
    let noise_ty = reg.intern("heartbeat");
    let cet = ComplexEventType::new(structure.clone(), vec![deploy_ty, alert_ty]);
    let tag = build_tag(&cet);
    println!(
        "TAG: {} states, {} clocks, {} transitions",
        tag.n_states(),
        tag.clocks().len(),
        tag.n_transitions()
    );

    // Monday 2000-01-03 09:00 deploy, 15:00 alert (6h later, same b-day).
    let monday = 2 * DAY;
    let mut sb = SequenceBuilder::new();
    sb.push(deploy_ty, monday + 9 * HOUR);
    sb.push(noise_ty, monday + 11 * HOUR);
    sb.push(alert_ty, monday + 15 * HOUR);
    // A Friday deploy whose alert lands on Saturday: NOT the same b-day.
    let friday = 6 * DAY;
    sb.push(deploy_ty, friday + 20 * HOUR);
    sb.push(alert_ty, friday + 28 * HOUR);
    let seq = sb.build();

    // Resolve every event's tick per clock granularity once (the shared
    // resolution layer); the matcher reads the columns instead of
    // repeating calendar arithmetic.
    let grans: Vec<Gran> = tag.clocks().iter().map(|(_, g)| g.clone()).collect();
    let cols = TickColumns::build(seq.events(), &grans);
    let matcher = Matcher::new(&tag);
    println!(
        "stream matches pattern: {}",
        matcher.matches_within_columns(seq.events(), &cols, 0)
    );

    // 6. Discovery (paper §5): which alert-like types frequently follow
    //    deploys under these constraints?
    let problem = DiscoveryProblem::new(structure, 0.4, deploy_ty);
    let (solutions, stats) = pipeline::mine(&problem, &seq);
    for sol in &solutions {
        let names: Vec<&str> = sol.assignment.iter().map(|&t| reg.name(t)).collect();
        println!(
            "frequent: {:?} (frequency {:.2}, support {})",
            names, sol.frequency, sol.support
        );
    }
    println!(
        "pipeline stats: {} candidates scanned, {} TAG runs",
        stats.candidates_scanned, stats.tag_runs
    );
    let cstats = cache::global_stats();
    println!(
        "resolution cache: {} lookups, {:.0}% hits",
        cstats.lookups(),
        cstats.hit_rate() * 100.0
    );
    Ok(())
}

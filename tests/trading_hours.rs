//! End-to-end test over an *intra-day* granularity: trading hours
//! (09:30–16:00 on business days), exercising the full stack — calendar
//! expression DSL → TCG → propagation → TAG → mining — on an order/fill
//! workload.

use tgm::granularity::builtin;
use tgm::granularity::instant;
use tgm::prelude::*;

#[test]
fn same_trading_day_fill_discovery() {
    let th = Gran::from_expr("trading-hours").unwrap();
    // Differential: the DSL expression matches the hand-rolled builtin
    // window, tick for tick.
    let hand_rolled = Gran::new(builtin::trading_hours(Vec::new()));
    for z in [-7, 1, 2, 30] {
        assert_eq!(th.tick_intervals(z), hand_rolled.tick_intervals(z));
    }
    let mut cal = Calendar::standard();
    cal.register(th.clone()).unwrap();

    // The pattern: an order filled within 2 hours, during the SAME trading
    // session. An order at 15:30 filled at 17:00 is within 2 hours but
    // outside the session — not a fill-by-close.
    let mut b = StructureBuilder::new();
    let order = b.var("order");
    let fill = b.var("fill");
    b.constrain(order, fill, Tcg::new(0, 0, th.clone()));
    b.constrain(order, fill, Tcg::new(0, 2, cal.get("hour").unwrap()));
    let s = b.build().unwrap();

    // Propagation handles the gapped intra-day granularity soundly.
    let p = tgm::core::propagate::propagate(&s);
    assert!(p.is_consistent());

    let mut reg = TypeRegistry::new();
    let order_ty = reg.intern("order");
    let fill_ty = reg.intern("fill");
    let late_ty = reg.intern("late-fill");

    let mut sb = SequenceBuilder::new();
    // Mon-Thu 2000-01-03..06: order 11:00, fill 12:30 (same session).
    for (y, m, d) in [(2000, 1, 3), (2000, 1, 4), (2000, 1, 5), (2000, 1, 6)] {
        sb.push(order_ty, instant(y, m, d as u8, 11, 0, 0));
        sb.push(fill_ty, instant(y, m, d as u8, 12, 30, 0));
    }
    // Friday: order at 15:30, "fill" at 17:00 — within 2h but after close.
    sb.push(order_ty, instant(2000, 1, 7, 15, 30, 0));
    sb.push(late_ty, instant(2000, 1, 7, 17, 0, 0));
    let seq = sb.build();

    // TAG semantics: the Friday pair must NOT match.
    let cet = ComplexEventType::new(s.clone(), vec![order_ty, late_ty]);
    let tag = build_tag(&cet);
    assert!(!Matcher::new(&tag).accepts(seq.events()));

    // Discovery: fills follow 4 of 5 orders within the session.
    let problem = DiscoveryProblem::new(s, 0.5, order_ty);
    let (sols, stats) = pipeline::mine(&problem, &seq);
    assert_eq!(sols.len(), 1, "{sols:?} (stats {stats:?})");
    assert_eq!(sols[0].assignment[1], fill_ty);
    assert_eq!(sols[0].support, 4);
    assert!((sols[0].frequency - 0.8).abs() < 1e-9);

    // Sequence reduction drops the after-hours event for the fill slot...
    // it can still bind nothing (late-fill at 17:00 is outside every
    // trading-hours tick), so step 2 removes it.
    assert!(stats.events_kept < stats.events_total);
}

#[test]
fn cross_session_constraint() {
    // "Next trading session" via tick distance 1 on trading-hours.
    let th = Gran::from_expr("hours 9..16 of business-days").unwrap();
    let next_session = Tcg::new(1, 1, th);
    // Friday 2000-01-07 10:00 -> Monday 2000-01-10 10:00: next session
    // (the weekend has no sessions).
    assert!(next_session.satisfied(
        instant(2000, 1, 7, 10, 0, 0),
        instant(2000, 1, 10, 10, 0, 0)
    ));
    // Friday -> Tuesday skips a session.
    assert!(!next_session.satisfied(
        instant(2000, 1, 7, 10, 0, 0),
        instant(2000, 1, 11, 10, 0, 0)
    ));
    // An after-hours timestamp has no tick: constraint unsatisfied.
    assert!(!next_session.satisfied(
        instant(2000, 1, 7, 18, 0, 0),
        instant(2000, 1, 10, 10, 0, 0)
    ));
}

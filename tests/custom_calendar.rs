//! User-defined granularities through the whole stack: custom calendars
//! with holidays, composed grouped granularities, and their use in
//! constraints, propagation, automata, and mining.

use std::sync::Arc;

use tgm::core::propagate::propagate;
use tgm::granularity::builtin::{self, GroupInto, SECONDS_PER_DAY};
use tgm::granularity::convert_tick;
use tgm::prelude::*;

const DAY: i64 = SECONDS_PER_DAY;
const HOUR: i64 = 3_600;

#[test]
fn holidays_change_business_day_semantics() {
    // Tuesday 2000-01-04 (day 3) declared a holiday.
    let with_holiday = Calendar::with_holidays(vec![3]);
    let plain = Calendar::standard();
    let next_bday_plain = Tcg::new(1, 1, plain.get("business-day").unwrap());
    let next_bday_hol = Tcg::new(1, 1, with_holiday.get("business-day").unwrap());
    // Monday 2000-01-03 -> Tuesday 2000-01-04.
    let (mon, tue, wed) = (2 * DAY + HOUR, 3 * DAY + HOUR, 4 * DAY + HOUR);
    assert!(next_bday_plain.satisfied(mon, tue));
    assert!(!next_bday_hol.satisfied(mon, tue)); // Tuesday has no b-day tick
    assert!(next_bday_hol.satisfied(mon, wed)); // Wednesday is the next one
}

#[test]
fn custom_semester_granularity_in_constraints() {
    let mut cal = Calendar::standard();
    let semester = Gran::from_expr("6 months").unwrap();
    // Differential: the DSL expression matches the hand-rolled builtin.
    let hand_rolled = Gran::new(builtin::n_month(6));
    for z in [-3, 1, 2, 8] {
        assert_eq!(semester.tick_intervals(z), hand_rolled.tick_intervals(z));
    }
    cal.register(semester.clone()).unwrap();
    let semester = cal.get("6 months").unwrap();
    let tcg = Tcg::new(1, 1, semester.clone());
    // Jan 2000 -> Aug 2000: next semester.
    let jan = 10 * DAY;
    let aug = 210 * DAY;
    assert!(tcg.satisfied(jan, aug));
    // Jan -> Mar: same semester.
    assert!(!tcg.satisfied(jan, 70 * DAY));

    // Propagation handles the custom granularity (converting into months,
    // days, seconds).
    let mut b = StructureBuilder::new();
    let x0 = b.var("X0");
    let x1 = b.var("X1");
    b.constrain(x0, x1, tcg);
    let s = b.build().unwrap();
    let p = propagate(&s);
    assert!(p.is_consistent());
    let w = p.seconds_window(x0, x1).unwrap();
    assert!(w.lo >= 1);
    assert!(w.hi <= 366 * DAY, "next semester within a year: {w:?}");
}

#[test]
fn grouped_business_quarter_composes() {
    let bq =
        Gran::from_expr("business-days except 2000-01-04,2000-01-11 into quarters").unwrap();
    // Differential: the DSL grouping matches the hand-rolled composition
    // (holiday day-indices 3 and 10 are those dates).
    let bday: Arc<dyn Granularity> = Arc::new(builtin::business_day(vec![3, 10]));
    let quarter: Arc<dyn Granularity> = Arc::new(builtin::n_month(3));
    let hand_rolled = Gran::new(GroupInto::new("business-quarter", bday, quarter));
    for z in [-2, 1, 2, 5] {
        assert_eq!(bq.tick_intervals(z), hand_rolled.tick_intervals(z));
    }
    // Q1 2000 business days: 65 minus the two holidays.
    assert_eq!(
        bq.tick_intervals(1).unwrap().count(),
        63 * DAY,
        "business quarter content"
    );
    // Ticks of business-quarter convert into quarters.
    let q = Gran::new(builtin::n_month(3));
    assert_eq!(convert_tick(&bq, 1, &q), Some(1));
    // Saturday is covered by no business quarter.
    assert_eq!(bq.covering_tick(0), None);
}

#[test]
fn mining_with_custom_calendar() {
    // Pattern: order placed, then shipped within the same business week
    // (with a Wednesday holiday making some weeks shorter).
    let cal = Calendar::with_holidays(vec![4]); // Wed 2000-01-05
    let mut reg = TypeRegistry::new();
    let order = reg.intern("order");
    let ship = reg.intern("ship");
    let mut b = StructureBuilder::new();
    let x0 = b.var("X0");
    let x1 = b.var("X1");
    b.constrain(x0, x1, Tcg::new(0, 0, cal.get("business-week").unwrap()));
    let s = b.build().unwrap();

    let mut sb = SequenceBuilder::new();
    // Week of Jan 3: order Monday, ship Friday (same business week).
    sb.push(order, 2 * DAY + 9 * HOUR).push(ship, 6 * DAY + 9 * HOUR);
    // Week of Jan 10: order Friday, ship next Monday (different week).
    sb.push(order, 13 * DAY + 9 * HOUR).push(ship, 16 * DAY + 9 * HOUR);
    let seq = sb.build();

    let (sols, _) = pipeline::mine(&DiscoveryProblem::new(s, 0.4, order), &seq);
    assert_eq!(sols.len(), 1);
    assert_eq!(sols[0].assignment, vec![order, ship]);
    assert_eq!(sols[0].support, 1, "only the Monday order ships in-week");
}

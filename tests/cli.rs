//! Integration tests for the `tgm` CLI logic (`tgm::cli::run`).

use std::io::Write as _;

use tgm::cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_string()).collect()
}

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tgm-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const STRUCTURE: &str = r#"{
  "variables": ["rise", "report", "fall"],
  "constraints": [
    {"from": 0, "to": 1, "lo": 1, "hi": 1, "granularity": "business-day"},
    {"from": 1, "to": 2, "lo": 0, "hi": 1, "granularity": "week"}
  ]
}"#;

// Monday 2000-01-03 10:00 rise; Tuesday 09:00 report; Thursday fall;
// plus a second rise with no follow-up.
const EVENTS: &str = r#"[
  {"ty":"rise","time":208800},
  {"ty":"noise","time":250000},
  {"ty":"report","time":291600},
  {"ty":"fall","time":500000},
  {"ty":"rise","time":813600}
]"#;

#[test]
fn calendar_lists_granularities() {
    let out = run(&args(&["calendar"])).unwrap();
    for name in ["second", "business-day", "weekend", "month"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn calendar_with_custom_gran() {
    let out = run(&args(&["calendar", "--gran", "3 month"])).unwrap();
    assert!(out.contains("3 month"));
    // Bad spec is a user error.
    assert!(run(&args(&["calendar", "--gran", "lightyear"])).is_err());
}

#[test]
fn convert_command() {
    let out = run(&args(&["convert", "0", "0", "day", "--to", "hour"])).unwrap();
    assert!(out.contains("[0,24]hour"), "{out}");
    let out = run(&args(&["convert", "0", "3", "day", "--to", "business-day"])).unwrap();
    assert!(out.contains("infeasible"), "{out}");
    assert!(run(&args(&["convert", "5", "2", "day", "--to", "hour"])).is_err());
    assert!(run(&args(&["convert", "0", "1", "day"])).is_err()); // missing --to
}

#[test]
fn check_command() {
    let path = temp_file("structure.json", STRUCTURE);
    let out = run(&args(&["check", path.to_str().unwrap(), "--horizon-days", "30"])).unwrap();
    assert!(out.contains("propagation: not refuted"), "{out}");
    assert!(out.contains("CONSISTENT"), "{out}");
    assert!(out.contains("rise ="), "{out}");
}

#[test]
fn check_refuted_structure() {
    let path = temp_file(
        "bad.json",
        r#"{"variables": ["a","b"],
            "constraints": [
              {"from":0,"to":1,"lo":0,"hi":0,"granularity":"day"},
              {"from":0,"to":1,"lo":26,"hi":30,"granularity":"hour"}
            ]}"#,
    );
    let out = run(&args(&["check", path.to_str().unwrap()])).unwrap();
    assert!(out.contains("INCONSISTENT"), "{out}");
}

#[test]
fn match_command() {
    let spath = temp_file("structure2.json", STRUCTURE);
    let epath = temp_file("events.json", EVENTS);
    let out = run(&args(&[
        "match",
        spath.to_str().unwrap(),
        epath.to_str().unwrap(),
        "--types",
        "rise,report,fall",
    ]))
    .unwrap();
    assert!(out.contains("1 completion(s)"), "{out}");
    // Arity mismatch is a user error.
    assert!(run(&args(&[
        "match",
        spath.to_str().unwrap(),
        epath.to_str().unwrap(),
        "--types",
        "rise,report",
    ]))
    .is_err());
}

#[test]
fn stream_command() {
    let spath = temp_file("structure3.json", STRUCTURE);
    // The same events as `match_command`, as NDJSON with a comment line.
    let epath = temp_file(
        "events.ndjson",
        r#"{"ty":"rise","time":208800}
# mid-stream comment
{"ty":"noise","time":250000}
{"ty":"report","time":291600}
{"ty":"fall","time":500000}
{"ty":"rise","time":813600}
"#,
    );
    let out = run(&args(&[
        "stream",
        spath.to_str().unwrap(),
        "--types",
        "rise,report,fall",
        epath.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(out.contains("streamed 5 events"), "{out}");
    assert!(out.contains("1 completion(s)"), "{out}");
    assert!(out.contains("frontier:"), "{out}");
    // Out-of-order timestamps are a user error.
    let bad = temp_file(
        "bad.ndjson",
        "{\"ty\":\"rise\",\"time\":500}\n{\"ty\":\"fall\",\"time\":100}\n",
    );
    assert!(run(&args(&[
        "stream",
        spath.to_str().unwrap(),
        "--types",
        "rise,report,fall",
        bad.to_str().unwrap(),
    ]))
    .is_err());
}

#[test]
fn stream_command_with_live_stats() {
    let spath = temp_file("structure_stats.json", STRUCTURE);
    // A longer stream so several cadence windows elapse (2-hour spacing
    // keeps timestamps strictly increasing).
    let mut ndjson = String::new();
    for i in 0..24i64 {
        ndjson.push_str(&format!("{{\"ty\":\"rise\",\"time\":{}}}\n", 208_800 + i * 7_200));
    }
    let epath = temp_file("events_stats.ndjson", &ndjson);
    let base = [
        "stream",
        spath.to_str().unwrap(),
        "--types",
        "rise,report,fall",
        epath.to_str().unwrap(),
    ];
    let mut with_stats: Vec<&str> = base.to_vec();
    with_stats.extend(["--stats-every", "4"]);
    let out = run(&args(&with_stats)).unwrap();
    let frames: Vec<&str> = out.lines().filter(|l| l.starts_with('{')).collect();
    assert!(frames.len() >= 2, "expected several stats frames:\n{out}");
    for (i, f) in frames.iter().enumerate() {
        assert!(
            f.starts_with(&format!("{{\"schema\":\"tgm_obs_stream/v1\",\"seq\":{i},")),
            "{f}"
        );
        assert!(f.contains("\"gauges\":{"), "{f}");
        for gauge in [
            "\"frontier\":",
            "\"events_total\":",
            "\"events_per_sec\":",
            "\"evicted_rows_total\":",
            "\"watermark_lag\":",
        ] {
            assert!(f.contains(gauge), "frame missing {gauge}: {f}");
        }
    }
    // The human summary still follows the frames.
    assert!(out.contains("streamed 24 events"), "{out}");
    assert!(out.contains("frontier:"), "{out}");
    // OpenMetrics rendering carries the sanitized, prefixed gauges.
    let mut with_om: Vec<&str> = with_stats.clone();
    with_om.extend(["--stats-format", "openmetrics"]);
    let out = run(&args(&with_om)).unwrap();
    assert!(out.contains("# TYPE tgm_watermark_lag gauge"), "{out}");
    assert!(out.contains("tgm_frontier "), "{out}");
    // Unknown format is a user error.
    let mut with_bad: Vec<&str> = with_stats.clone();
    with_bad.extend(["--stats-format", "xml"]);
    assert!(run(&args(&with_bad)).is_err());
}

#[test]
fn mine_command() {
    let spath = temp_file("structure3.json", STRUCTURE);
    let epath = temp_file("events2.json", EVENTS);
    let out = run(&args(&[
        "mine",
        spath.to_str().unwrap(),
        epath.to_str().unwrap(),
        "--reference",
        "rise",
        "--confidence",
        "0.3",
        "--pin",
        "2=fall",
    ]))
    .unwrap();
    assert!(out.contains("rise, report, fall"), "{out}");
    assert!(out.contains("frequency 0.500"), "{out}");
    // Unknown reference type is a user error.
    assert!(run(&args(&[
        "mine",
        spath.to_str().unwrap(),
        epath.to_str().unwrap(),
        "--reference",
        "crash",
    ]))
    .is_err());
}

#[test]
fn bad_invocations() {
    assert!(run(&args(&[])).is_err());
    assert!(run(&args(&["frobnicate"])).is_err());
    assert!(run(&args(&["check", "/nonexistent/file.json"])).is_err());
}

#[test]
fn calendar_config_file() {
    let cfg = temp_file(
        "calendar.cfg",
        "# test calendar\nholiday 2000-01-03\ngran 3 month\n",
    );
    let out = run(&args(&["calendar", "--calendar", cfg.to_str().unwrap()])).unwrap();
    assert!(out.contains("3 month"), "{out}");
    // The holiday shifts business-day tick 1 to Tuesday 2000-01-04.
    assert!(out.contains("2000-01-04"), "{out}");
    // Bad config is a user error.
    let bad = temp_file("bad.cfg", "frobnicate\n");
    assert!(run(&args(&["calendar", "--calendar", bad.to_str().unwrap()])).is_err());
}

#[test]
fn csv_event_files() {
    let spath = temp_file("structure4.json", STRUCTURE);
    let epath = temp_file(
        "events.csv",
        "ty,time\nrise,208800\nreport,291600\nfall,500000\n",
    );
    let out = run(&args(&[
        "match",
        spath.to_str().unwrap(),
        epath.to_str().unwrap(),
        "--types",
        "rise,report,fall",
    ]))
    .unwrap();
    assert!(out.contains("1 completion(s)"), "{out}");
}

#[test]
fn out_of_range_confidence_is_a_clean_error() {
    let spath = temp_file("structure5.json", STRUCTURE);
    let epath = temp_file("events3.json", EVENTS);
    let err = run(&args(&[
        "mine",
        spath.to_str().unwrap(),
        epath.to_str().unwrap(),
        "--reference",
        "rise",
        "--confidence",
        "1.5",
    ]))
    .unwrap_err();
    assert!(err.contains("within [0, 1]"), "{err}");
}

#[test]
fn stream_drain_finalizes_with_a_last_frame() {
    let spath = temp_file("structure_drain.json", STRUCTURE);
    // 600 events span three 256-row chunks; draining after one chunk
    // consumes exactly 256 of them on the bounded finalize path (the same
    // path a Ctrl-C/SIGTERM trigger takes at a chunk boundary).
    let mut ndjson = String::new();
    for i in 0..600i64 {
        ndjson.push_str(&format!("{{\"ty\":\"rise\",\"time\":{}}}\n", 208_800 + i * 7_200));
    }
    let epath = temp_file("events_drain.ndjson", &ndjson);
    let base = [
        "stream",
        spath.to_str().unwrap(),
        "--types",
        "rise,report,fall",
        epath.to_str().unwrap(),
    ];
    let mut drained: Vec<&str> = base.to_vec();
    drained.extend(["--stats-every", "100", "--drain-after-chunks", "1"]);
    let out = run(&args(&drained)).unwrap();
    assert!(
        out.contains("stream: drained (256 of 600 events consumed)"),
        "{out}"
    );
    assert!(out.contains("streamed 256 events"), "{out}");
    // Beyond the two cadence emissions (at 100 and 200 events), the drain
    // flushes one final frame carrying the full consumed count, so an
    // operator's last scrape is complete.
    let frames: Vec<&str> = out.lines().filter(|l| l.starts_with('{')).collect();
    assert!(frames.len() >= 3, "expected cadence + final frames:\n{out}");
    assert!(
        frames.last().unwrap().contains("\"events_total\":256"),
        "{out}"
    );
    // Draining before the first chunk consumes nothing, cleanly.
    let mut immediate: Vec<&str> = base.to_vec();
    immediate.extend(["--drain-after-chunks", "0"]);
    let out = run(&args(&immediate)).unwrap();
    assert!(
        out.contains("stream: drained (0 of 600 events consumed)"),
        "{out}"
    );
    // A malformed count is a user error.
    let mut bad: Vec<&str> = base.to_vec();
    bad.extend(["--drain-after-chunks", "soon"]);
    assert!(run(&args(&bad)).is_err());
}

#[test]
fn serve_command_drains_after_max_requests() {
    use std::io::BufReader;

    use tgm::serve::frame::{read_frame, write_frame};
    use tgm::serve::proto::Response;

    let port_file = temp_file("serve.port", "");
    let pf = port_file.to_str().unwrap().to_string();
    // `--max-requests 3` makes the server self-drain on the same path a
    // Ctrl-C/SIGTERM trigger takes, once the third request is handled.
    let server = std::thread::spawn(move || {
        run(&args(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            &pf,
            "--max-requests",
            "3",
        ]))
    });
    // The port file is written after bind; poll until it is non-empty.
    let port: u16 = {
        let mut contents = String::new();
        for _ in 0..200 {
            contents = std::fs::read_to_string(&port_file).unwrap_or_default();
            if !contents.trim().is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        contents.trim().parse().expect("server never wrote its port")
    };

    let mut conn = std::net::TcpStream::connect(("127.0.0.1", port)).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut roundtrip = |payload: String| -> Response {
        write_frame(&mut conn, payload.as_bytes()).unwrap();
        let raw = read_frame(&mut reader).unwrap().expect("connection closed");
        Response::parse(&String::from_utf8(raw).unwrap()).unwrap()
    };

    let pong = roundtrip(r#"{"op":"ping"}"#.to_string());
    assert!(matches!(pong, Response::Ok(_)), "{pong:?}");

    let matched = roundtrip(format!(
        r#"{{"op":"match","tenant":"acme","structure":{STRUCTURE},
            "types":["rise","report","fall"],"events":{EVENTS}}}"#
    ));
    let result = matched.result().expect("match should succeed");
    let at: Vec<i64> = result
        .get("completions")
        .and_then(tgm::events::minijson::Value::as_array)
        .unwrap()
        .iter()
        .filter_map(|c| c.get("at").and_then(tgm::events::minijson::Value::as_i64))
        .collect();
    assert_eq!(at, [500000]);

    let stats = roundtrip(r#"{"op":"stats","tenant":"acme"}"#.to_string());
    assert!(matches!(stats, Response::Ok(_)), "{stats:?}");

    // Third request handled: the server drains, flushing one labelled
    // telemetry frame per tenant ahead of the human summary.
    let out = server.join().unwrap().unwrap();
    assert!(out.contains("serve: drained after 3 request(s)"), "{out}");
    assert!(out.contains("\"labels\":{\"tenant\":\"acme\"}"), "{out}");

    // Flag parse errors fail before binding anything.
    assert!(run(&args(&["serve", "--max-requests", "soon"])).is_err());
    assert!(run(&args(&["serve", "--timeout-ms", "never"])).is_err());
}

#[test]
fn pinning_the_root_is_rejected() {
    let spath = temp_file("structure6.json", STRUCTURE);
    let epath = temp_file("events4.json", EVENTS);
    let err = run(&args(&[
        "mine",
        spath.to_str().unwrap(),
        epath.to_str().unwrap(),
        "--reference",
        "rise",
        "--pin",
        "0=fall",
    ]))
    .unwrap_err();
    assert!(err.contains("root variable"), "{err}");
}

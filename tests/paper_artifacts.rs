//! Integration tests pinning the paper's concrete artifacts: Figure 1,
//! Figure 2, the §3.1 disjunction, the §5.1 derived constraints, the §3
//! "one day ≠ 24 hours" example, and the Theorem 1 gadget (with erratum).

use tgm::core::examples::{example_1, figure_1a, figure_1a_witness, figure_1b};
use tgm::core::exact::{check_with, ExactOptions, ExactOutcome};
use tgm::core::propagate::propagate;
use tgm::core::reductions::{
    gadget_ground_truth, subset_sum_dp, subset_sum_options, subset_sum_structure,
    values_pairwise_coprime,
};
use tgm::prelude::*;
use tgm::tag::minimal_chain_cover;

const DAY: i64 = 86_400;

#[test]
fn figure_1a_and_example_1() {
    let cal = Calendar::standard();
    let (s, v) = figure_1a(&cal);
    assert_eq!(s.len(), 4);
    assert!(s.satisfied_by(&figure_1a_witness()));
    assert!(propagate(&s).is_consistent());

    // The chains of the Theorem 3 construction.
    let chains = minimal_chain_cover(&s);
    assert_eq!(chains.len(), 2);

    // The constructed TAG is Figure 2: 6 states, 4 clocks.
    let mut reg = TypeRegistry::new();
    let (cet, tys) = example_1(&cal, &mut reg);
    let tag = build_tag(&cet);
    assert_eq!(tag.n_states(), 6);
    assert_eq!(tag.clocks().len(), 4);
    let w = figure_1a_witness();
    let seq = [
        Event::new(tys.ibm_rise, w[0]),
        Event::new(tys.ibm_report, w[1]),
        Event::new(tys.hp_rise, w[2]),
        Event::new(tys.ibm_fall, w[3]),
    ];
    assert!(Matcher::new(&tag).accepts(&seq));
    let _ = v;
}

#[test]
fn figure_1b_disjunction_is_exactly_0_or_12() {
    let cal = Calendar::standard();
    let month = cal.get("month").unwrap();
    let (s, v) = figure_1b(&cal);
    let mut feasible = Vec::new();
    for d in 0..=12u64 {
        let mut b = StructureBuilder::new();
        let ids: Vec<VarId> = (0..4).map(|i| b.var(format!("X{i}"))).collect();
        for (a, to, cs) in s.arcs() {
            for c in cs {
                b.constrain(ids[a.index()], ids[to.index()], c.clone());
            }
        }
        b.constrain(ids[v.x0.index()], ids[v.x2.index()], Tcg::new(d, d, month.clone()));
        let pinned = b.build().unwrap();
        let opts = ExactOptions {
            horizon_start: 0,
            horizon_end: 3 * 366 * DAY,
            ..ExactOptions::default()
        };
        if matches!(
            check_with(&pinned, &opts).unwrap(),
            ExactOutcome::Consistent(_)
        ) {
            feasible.push(d);
        }
    }
    assert_eq!(feasible, vec![0, 12], "the §3.1 disjunction");
}

#[test]
fn section_5_1_derived_constraints() {
    // The paper derives a week and an hour constraint on (X0, X3); our
    // sound discrete-time conversion gives [0,2] week (the paper prints
    // [0,1], which contradicts its own Figure 2 chain: Fri rise -> Mon
    // report -> next-week fall spans two week boundaries) and an hour
    // bound of the same order as the paper's [1,175].
    let cal = Calendar::standard();
    let (s, v) = figure_1a(&cal);
    let p = propagate(&s);
    let derived = p.derived_tcgs(v.x0, v.x3);
    let week = derived.iter().find(|t| t.gran().name() == "week").unwrap();
    assert_eq!((week.lo(), week.hi()), (0, 2));
    let hour = derived.iter().find(|t| t.gran().name() == "hour").unwrap();
    assert_eq!(hour.lo(), 0);
    assert!(hour.hi() >= 175 && hour.hi() <= 220, "hour bound {}", hour.hi());
    // Every derived constraint admits the witness (soundness).
    let w = figure_1a_witness();
    for t in &derived {
        assert!(t.satisfied(w[0], w[3]));
    }
}

#[test]
fn one_day_is_not_24_hours() {
    let cal = Calendar::standard();
    let same_day = Tcg::new(0, 0, cal.get("day").unwrap());
    let day_of_seconds = Tcg::new(0, 86_399, cal.get("second").unwrap());
    // The paper's example: 11 pm / 4 am next day.
    let (t1, t2) = (23 * 3_600, DAY + 4 * 3_600);
    assert!(!same_day.satisfied(t1, t2));
    assert!(day_of_seconds.satisfied(t1, t2));
    // And conversion of [0,0] day into seconds yields exactly [0,86399] —
    // the weakest implied constraint, not an equivalent one.
    let conv = convert_constraint(&same_day, &cal.get("second").unwrap()).unwrap();
    assert_eq!((conv.lo(), conv.hi()), (0, 86_399));
}

#[test]
fn theorem_1_gadget_faithful_for_coprime_values() {
    for target in [2u64, 5, 7, 8, 10] {
        let values = vec![2u64, 3, 5];
        assert!(values_pairwise_coprime(&values));
        let s = subset_sum_structure(&values, target);
        let got = matches!(
            check_with(&s, &subset_sum_options(&values, target)).unwrap(),
            ExactOutcome::Consistent(_)
        );
        assert_eq!(got, subset_sum_dp(&values, target), "target {target}");
        // Ground truth and DP coincide for coprime values.
        assert_eq!(gadget_ground_truth(&values, target), subset_sum_dp(&values, target));
    }
}

#[test]
fn strict_and_lazy_matching_agree_on_prefiltered_sequences() {
    // Paper step 2 pre-filters events to granularity coverage; on such
    // sequences the paper's strict clock-update semantics and our lazy
    // default coincide.
    let cal = Calendar::standard();
    let mut reg = TypeRegistry::new();
    let (cet, tys) = example_1(&cal, &mut reg);
    let tag = build_tag(&cet);
    let w = figure_1a_witness();
    let seq = [
        Event::new(tys.ibm_rise, w[0]),
        Event::new(tys.ibm_report, w[1]),
        Event::new(tys.hp_rise, w[2]),
        Event::new(tys.ibm_fall, w[3]),
    ];
    let lazy = Matcher::new(&tag);
    let strict = Matcher::with_options(
        &tag,
        MatchOptions::builder()
            .anchored(false)
            .strict_updates(true)
            .build(),
    );
    assert_eq!(lazy.accepts(&seq), strict.accepts(&seq));
    assert!(lazy.accepts(&seq));
}

//! Cross-crate integration: calendar → structure → propagation →
//! sub-structures → TAG → mining → serialization, through the public facade
//! API only.

use tgm::core::propagate::propagate;
use tgm::core::substructure::induced_substructure;
use tgm::events::gen::{poisson_noise, with_planted};
use tgm::events::io;
use tgm::prelude::*;

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;

/// The full path: define a pattern, generate data with planted
/// occurrences, compile, mine, and verify the planted assignment wins.
#[test]
fn discovery_end_to_end() {
    let cal = Calendar::standard();
    let mut reg = TypeRegistry::new();
    let build = reg.intern("build");
    let deploy = reg.intern("deploy");
    let incident = reg.intern("incident");
    let chatter = reg.intern("chatter");

    // build -> deploy the same business day, deploy -> incident 2-8 hours
    // later.
    let mut b = StructureBuilder::new();
    let x0 = b.var("X0");
    let x1 = b.var("X1");
    let x2 = b.var("X2");
    b.constrain(x0, x1, Tcg::new(0, 0, cal.get("business-day").unwrap()));
    b.constrain(x1, x2, Tcg::new(2, 8, cal.get("hour").unwrap()));
    let s = b.build().unwrap();

    // Plant the pattern on 12 Mondays; add noise.
    let mut groups = Vec::new();
    for k in 0..12i64 {
        let monday = (2 + 7 * k) * DAY;
        groups.push(vec![
            (build, monday + 9 * HOUR),
            (deploy, monday + 11 * HOUR),
            (incident, monday + 14 * HOUR),
        ]);
    }
    // Sparse enough that chatter cannot spuriously satisfy the 2-8h window
    // after deploy on >=90% of the 12 Mondays, whatever the RNG stream.
    let noise = poisson_noise(&[chatter], 24.0 * 3_600.0, 0, 90 * DAY, 5);
    let seq = with_planted(&noise, &groups);

    let problem = DiscoveryProblem::new(s.clone(), 0.9, build);
    let (pipe, stats) = pipeline::mine(&problem, &seq);
    let (naive_sols, _) = naive::mine(&problem, &seq);
    assert_eq!(pipe, naive_sols);
    assert_eq!(pipe.len(), 1, "exactly the planted assignment: {pipe:?}");
    assert_eq!(pipe[0].assignment, vec![build, deploy, incident]);
    assert_eq!(pipe[0].support, 12);
    assert!(stats.candidates_scanned <= stats.candidates_initial);

    // The induced sub-structure over (root, incident) is matched by every
    // planted occurrence restriction.
    let p = propagate(&s);
    let (sub, kept) = induced_substructure(&s, &p, &[x2]);
    assert_eq!(kept, vec![x0, x2]);
    for g in &groups {
        assert!(sub.satisfied_by(&[g[0].1, g[2].1]));
    }
    let _ = x1;
}

/// JSON round-trips compose with matching.
#[test]
fn serialization_round_trip_preserves_matching() {
    let cal = Calendar::standard();
    let mut reg = TypeRegistry::new();
    let a = reg.intern("A");
    let b_ty = reg.intern("B");
    let mut sb = SequenceBuilder::new();
    sb.push(a, 2 * DAY + HOUR).push(b_ty, 3 * DAY + HOUR);
    let seq = sb.build();

    let json = io::to_json(&seq, &reg);
    let (reg2, seq2) = io::from_json(&json).unwrap();
    assert_eq!(seq.len(), seq2.len());

    let mut b = StructureBuilder::new();
    let x0 = b.var("X0");
    let x1 = b.var("X1");
    b.constrain(x0, x1, Tcg::new(1, 1, cal.get("day").unwrap()));
    let s = b.build().unwrap();

    // Match with the re-parsed registry's ids.
    let cet = ComplexEventType::new(
        s,
        vec![reg2.get("A").unwrap(), reg2.get("B").unwrap()],
    );
    let tag = build_tag(&cet);
    assert!(Matcher::new(&tag).accepts(seq2.events()));
}

/// An inconsistent hypothesis is rejected before any data is touched.
#[test]
fn inconsistent_structure_is_screened_out() {
    let cal = Calendar::standard();
    let mut reg = TypeRegistry::new();
    let a = reg.intern("A");
    let mut b = StructureBuilder::new();
    let x0 = b.var("X0");
    let x1 = b.var("X1");
    // Same hour but at least two days later: impossible.
    b.constrain(x0, x1, Tcg::new(0, 0, cal.get("hour").unwrap()));
    b.constrain(x0, x1, Tcg::new(2, 5, cal.get("day").unwrap()));
    let s = b.build().unwrap();
    assert!(!propagate(&s).is_consistent());

    let mut sb = SequenceBuilder::new();
    sb.push(a, 0);
    let (sols, stats) = pipeline::mine(&DiscoveryProblem::new(s, 0.1, a), &sb.build());
    assert!(sols.is_empty());
    assert!(stats.refuted);
    assert_eq!(stats.tag_runs, 0);
}

/// The episode baseline and the TCG miner run on the same data and the
/// episode miner cannot distinguish same-day from cross-midnight.
#[test]
fn episode_baseline_integration() {
    use tgm::mining::episodes::{Episode, EpisodeMiner};
    let mut reg = TypeRegistry::new();
    let a = reg.intern("A");
    let b_ty = reg.intern("B");
    let mut sb = SequenceBuilder::new();
    // Ten same-day pairs and ten cross-midnight pairs.
    for k in 0..10i64 {
        sb.push(a, 14 * k * DAY + 10 * HOUR);
        sb.push(b_ty, 14 * k * DAY + 12 * HOUR);
        sb.push(a, (14 * k + 7) * DAY + 23 * HOUR);
        sb.push(b_ty, (14 * k + 8) * DAY + HOUR);
    }
    let seq = sb.build();
    let miner = EpisodeMiner {
        window: DAY,
        shift: HOUR,
        min_frequency: 0.0,
        max_len: 2,
    };
    let f_ab = miner.frequency(&seq, &Episode::Serial(vec![a, b_ty]));
    assert!(f_ab > 0.0);

    // Episode semantics counts both kinds of pairs identically; the TCG
    // [0,0] day separates them exactly.
    let cal = Calendar::standard();
    let same_day = Tcg::new(0, 0, cal.get("day").unwrap());
    let matched = seq
        .occurrences_of(a)
        .filter(|e| {
            seq.window(e.time..=e.time + DAY)
                .iter()
                .any(|x| x.ty == b_ty && same_day.satisfied(e.time, x.time))
        })
        .count();
    assert_eq!(matched, 10);
}

//! Clock constraints Δ(C) (paper §4): atoms `x ≤ k` / `k ≤ x` and boolean
//! combinations, with three-valued evaluation for undefined clocks.

use std::fmt;

/// Index of a clock within a [`Tag`](crate::Tag).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClockId(pub usize);

impl ClockId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ClockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A clock constraint (guard formula). Atoms compare a clock reading
/// against a non-negative integer constant, as in the paper's Δ(C).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ClockConstraint {
    /// Always true.
    True,
    /// `x ≤ k`.
    Le(ClockId, i64),
    /// `k ≤ x`.
    Ge(ClockId, i64),
    /// Conjunction.
    And(Vec<ClockConstraint>),
    /// Disjunction.
    Or(Vec<ClockConstraint>),
    /// Negation.
    Not(Box<ClockConstraint>),
}

impl ClockConstraint {
    /// `lo ≤ x ≤ hi`.
    pub fn in_range(x: ClockId, lo: i64, hi: i64) -> Self {
        ClockConstraint::And(vec![
            ClockConstraint::Ge(x, lo),
            ClockConstraint::Le(x, hi),
        ])
    }

    /// `x = k`.
    pub fn eq(x: ClockId, k: i64) -> Self {
        Self::in_range(x, k, k)
    }

    /// Conjunction of a list, flattening trivial cases.
    pub fn conj(mut parts: Vec<ClockConstraint>) -> Self {
        parts.retain(|c| !matches!(c, ClockConstraint::True));
        match parts.pop() {
            None => ClockConstraint::True,
            Some(only) if parts.is_empty() => only,
            Some(last) => {
                parts.push(last);
                ClockConstraint::And(parts)
            }
        }
    }

    /// Three-valued evaluation: `Some(b)` when determined, `None` when an
    /// atom consults an undefined clock and the result depends on it.
    /// A transition fires only on `Some(true)`.
    pub fn eval(&self, value: &impl Fn(ClockId) -> Option<i64>) -> Option<bool> {
        match self {
            ClockConstraint::True => Some(true),
            ClockConstraint::Le(x, k) => value(*x).map(|v| v <= *k),
            ClockConstraint::Ge(x, k) => value(*x).map(|v| *k <= v),
            ClockConstraint::And(cs) => {
                let mut unknown = false;
                for c in cs {
                    match c.eval(value) {
                        Some(false) => return Some(false),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            ClockConstraint::Or(cs) => {
                let mut unknown = false;
                for c in cs {
                    match c.eval(value) {
                        Some(true) => return Some(true),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
            ClockConstraint::Not(c) => c.eval(value).map(|b| !b),
        }
    }

    /// The clocks mentioned by the formula.
    pub fn clocks(&self) -> Vec<ClockId> {
        let mut out = Vec::new();
        self.collect_clocks(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_clocks(&self, out: &mut Vec<ClockId>) {
        match self {
            ClockConstraint::True => {}
            ClockConstraint::Le(x, _) | ClockConstraint::Ge(x, _) => out.push(*x),
            ClockConstraint::And(cs) | ClockConstraint::Or(cs) => {
                for c in cs {
                    c.collect_clocks(out);
                }
            }
            ClockConstraint::Not(c) => c.collect_clocks(out),
        }
    }
}

impl fmt::Display for ClockConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockConstraint::True => write!(f, "true"),
            ClockConstraint::Le(x, k) => write!(f, "{x:?}<={k}"),
            ClockConstraint::Ge(x, k) => write!(f, "{k}<={x:?}"),
            ClockConstraint::And(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                write!(f, "({})", parts.join(" & "))
            }
            ClockConstraint::Or(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                write!(f, "({})", parts.join(" | "))
            }
            ClockConstraint::Not(c) => write!(f, "!({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn known(vals: &'static [(usize, i64)]) -> impl Fn(ClockId) -> Option<i64> {
        move |x| vals.iter().find(|&&(i, _)| i == x.index()).map(|&(_, v)| v)
    }

    #[test]
    fn atoms() {
        let v = known(&[(0, 5)]);
        assert_eq!(ClockConstraint::Le(ClockId(0), 5).eval(&v), Some(true));
        assert_eq!(ClockConstraint::Le(ClockId(0), 4).eval(&v), Some(false));
        assert_eq!(ClockConstraint::Ge(ClockId(0), 5).eval(&v), Some(true));
        assert_eq!(ClockConstraint::Ge(ClockId(0), 6).eval(&v), Some(false));
        // Undefined clock.
        assert_eq!(ClockConstraint::Le(ClockId(1), 5).eval(&v), None);
    }

    #[test]
    fn three_valued_logic() {
        let v = known(&[(0, 5)]);
        let undef = ClockConstraint::Le(ClockId(1), 5);
        let t = ClockConstraint::Le(ClockId(0), 10);
        let f = ClockConstraint::Le(ClockId(0), 1);
        // And: false dominates unknown.
        assert_eq!(
            ClockConstraint::And(vec![undef.clone(), f.clone()]).eval(&v),
            Some(false)
        );
        assert_eq!(
            ClockConstraint::And(vec![undef.clone(), t.clone()]).eval(&v),
            None
        );
        // Or: true dominates unknown.
        assert_eq!(
            ClockConstraint::Or(vec![undef.clone(), t.clone()]).eval(&v),
            Some(true)
        );
        assert_eq!(ClockConstraint::Or(vec![undef.clone(), f]).eval(&v), None);
        // Not propagates unknown: Not(undef) must NOT become firable.
        assert_eq!(ClockConstraint::Not(Box::new(undef)).eval(&v), None);
        assert_eq!(ClockConstraint::Not(Box::new(t)).eval(&v), Some(false));
    }

    #[test]
    fn range_and_eq_helpers() {
        let v = known(&[(0, 3)]);
        assert_eq!(ClockConstraint::in_range(ClockId(0), 0, 5).eval(&v), Some(true));
        assert_eq!(ClockConstraint::eq(ClockId(0), 3).eval(&v), Some(true));
        assert_eq!(ClockConstraint::eq(ClockId(0), 4).eval(&v), Some(false));
    }

    #[test]
    fn conj_flattens() {
        assert_eq!(ClockConstraint::conj(vec![]), ClockConstraint::True);
        let one = ClockConstraint::Le(ClockId(0), 1);
        assert_eq!(
            ClockConstraint::conj(vec![ClockConstraint::True, one.clone()]),
            one
        );
    }

    #[test]
    fn clocks_collected() {
        let c = ClockConstraint::And(vec![
            ClockConstraint::Le(ClockId(2), 1),
            ClockConstraint::Or(vec![
                ClockConstraint::Ge(ClockId(0), 1),
                ClockConstraint::Not(Box::new(ClockConstraint::Le(ClockId(2), 9))),
            ]),
        ]);
        assert_eq!(c.clocks(), vec![ClockId(0), ClockId(2)]);
    }
}

//! Timed automata with granularities — TAGs (paper §4).
//!
//! A TAG is a finite automaton whose transitions are guarded by *clocks*,
//! each ticking in its own time granularity (so a guard can say "still in
//! the same business day" or "in the next week"). When a transition fires
//! it may reset clocks; the reading of a clock at an event with timestamp
//! `t` is `⌈t⌉μ − ⌈t_reset⌉μ` — the tick distance in the clock's
//! granularity since the last reset.
//!
//! * [`Tag`] / [`TagBuilder`] — the automaton: states, granularity clocks,
//!   guarded transitions (with explicit *skip* self-loops for event
//!   skipping), accepting states.
//! * [`ClockConstraint`] — the guard algebra of §4: atoms `x ≤ k`, `k ≤ x`
//!   and boolean combinations.
//! * [`Matcher`] — NFA-simulation over `(state, clock-reset)` configuration
//!   frontiers with deduplication (the technique behind Theorem 4).
//! * [`build_tag`] — Theorem 3's construction: decompose the event
//!   structure into a minimal set of root-to-sink chains covering all arcs
//!   (a min-flow computation), build one clocked chain automaton each,
//!   combine by cross product, add skip loops, and relabel variables with
//!   event types.
//!
//! # Clock-undefinedness semantics
//!
//! The paper requires every clock update `⌈t_i⌉μ − ⌈t_{i−1}⌉μ` along a run
//! to be defined, which presupposes the sequence was pre-filtered to events
//! covered by all clock granularities (its mining step 2). This
//! implementation evaluates clocks *lazily*: a guard consulting a clock
//! whose granularity does not cover the current event (or its reset point)
//! fails, but events in gaps can still be *skipped*. On pre-filtered
//! sequences the two semantics coincide; [`MatchOptions::strict_updates`]
//! restores the paper's strict behaviour.
//!
//! # Simultaneous-event semantics
//!
//! The automaton consumes the event *list* in order. When distinct events
//! share a timestamp, an occurrence is recognized iff it is realizable in
//! list order: for every arc `(X, Y)` of the structure, the event bound to
//! `X` must precede the event bound to `Y` in the list (the paper's
//! set-based occurrence definition does not pin down tie behaviour).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod automaton;
mod chains;
mod constraint;
mod construct;
mod matcher;
mod multi;
mod session;

pub mod dot;

pub use automaton::{StateId, Symbol, Tag, TagBuilder, Transition};
pub use chains::{greedy_chain_cover, is_valid_cover, minimal_chain_cover, Chain};
pub use constraint::{ClockConstraint, ClockId};
pub use construct::{build_tag, build_tag_for_structure, build_tag_with_cover, TagTemplate};
pub use matcher::{
    BoundedRun, MatchOptions, MatchOptionsBuilder, Matcher, MatcherScratch, RunStats,
};
pub use multi::{MultiMatcher, MultiRun, MultiScratch};
pub use session::{Completion, MatchSession, Push, SessionState, SessionStats};

#[doc(hidden)]
pub use matcher::count_interrupt;

//! Long-lived incremental matching sessions.
//!
//! A [`MatchSession`] is the one TAG engine: it owns the packed frontier
//! of the NFA simulation (Theorem 4) plus its pooled scratch buffers, and
//! advances them one event at a time via [`push`](MatchSession::push) /
//! [`push_batch`](MatchSession::push_batch). Every batch entry point of
//! [`Matcher`] (`run`, `run_columns`, `matches_within`, …) is a thin
//! wrapper that constructs a session, pushes the whole slice and reads the
//! verdict back — a batch run *is* a replayed stream, bit-identical in
//! stats and occurrences (differentially tested).
//!
//! # Completions
//!
//! An occurrence *completes* at an event when a pattern (non-skip)
//! transition into an accepting state fires. Completions are buffered and
//! drained through [`completed`](MatchSession::completed), so a monitoring
//! loop can push a batch and then react to everything that fired inside
//! it.
//!
//! # Horizon eviction
//!
//! A long-running session with [`with_eviction`](MatchSession::with_eviction)
//! periodically ages out frontier rows that can no longer influence any
//! future completion:
//!
//! * rows at states from which no accepting state is graph-reachable are
//!   dropped outright;
//! * each surviving row is re-canonicalized against the *per-state*
//!   residual guard constants: `fut[s][x]` is the largest constant clock
//!   `x` is compared against on any path from state `s` before `x` is
//!   reset (a location-based bounds fixpoint). A reading past `fut[s][x]`
//!   can never again satisfy a `≤`-window and always satisfies the `≥`
//!   side, so it is saturated to the canonical representative
//!   `fut[s][x] + 1` and merged with its duplicates.
//!
//! The pass runs deterministically in *event time*, never wall-clock: it
//! triggers when the stream has advanced past the session's **horizon** —
//! the largest `maxsize(μ, K+1)` over clocks (the [`SizeTable`] bound of
//! Theorem 4: once `maxsize(μ, K+1)` seconds elapse, the tick distance in
//! `μ` provably exceeds the largest guard constant `K`) — or when the
//! frontier doubles since the last pass. Eviction is sound for completions
//! (proptested under arbitrary push-chunking) but merges rows earlier than
//! plain saturation would, so [`RunStats`] counters like `peak_configs`
//! may differ from a batch run; the batch wrappers therefore never enable
//! it.
//!
//! [`SizeTable`]: tgm_granularity::SizeTable

use tgm_events::{Event, TickColumns};
use tgm_granularity::Second;
use tgm_limits::{Interrupt, Limits, Verdict};
use tgm_obs::metrics::{self, Histogram};
use tgm_obs::{Observable, ObsScope, ObsValue, RecEvent};

use crate::automaton::Tag;
use crate::constraint::ClockId;
use crate::matcher::{
    collect_guard_consts, hash_row, meta_state, pack_tick, saturate_reset, BoundedRun,
    MatchOptions, Matcher, MatcherScratch, RunStats, NONE_TICK,
};

/// The outcome of pushing one event into a [`MatchSession`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub enum Push {
    /// The event was consumed; `completed` reports whether at least one
    /// occurrence completed at it.
    Advanced {
        /// Whether a pattern transition into an accepting state fired.
        completed: bool,
    },
    /// The event was *not* consumed: every configuration died earlier (a
    /// strict-updates gap, or an anchored frontier that ran out), so no
    /// future event can complete an occurrence. [`MatchSession::reset`]
    /// re-arms the session.
    Dead,
    /// The event was *not* consumed: the session was interrupted by its
    /// [`Limits`] (sticky — every later push reports the same interrupt).
    Interrupted(Interrupt),
}

impl Push {
    /// Whether an occurrence completed at this event.
    pub fn completed(&self) -> bool {
        matches!(self, Push::Advanced { completed: true })
    }
}

/// One completed occurrence, as observed by a [`MatchSession`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// 0-based index of the completing event in the session's stream
    /// (counting every pushed event since construction or
    /// [`reset`](MatchSession::reset)).
    pub index: u64,
    /// Timestamp of the completing event.
    pub at: Second,
}

/// Accumulated counters of a [`MatchSession`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Events consumed so far.
    pub events: usize,
    /// Events at which at least one occurrence completed.
    pub completions: u64,
    /// Current live frontier rows.
    pub frontier: usize,
    /// Peak frontier rows (post-advance, pre-eviction).
    pub peak_frontier: usize,
    /// Total configuration expansions.
    pub expansions: u64,
    /// Successors rejected by per-event deduplication.
    pub dedup_hits: u64,
    /// Frontier rows dropped or merged by horizon eviction passes.
    pub evicted_rows: u64,
    /// Eviction passes run.
    pub evictions: u64,
    /// Why the session stopped early, if it did.
    pub interrupted: Option<Interrupt>,
}

impl Observable for SessionStats {
    fn observe(&self, out: &mut Vec<(&'static str, ObsValue)>) {
        out.push(("events", self.events.into()));
        out.push(("completions", self.completions.into()));
        out.push(("frontier", self.frontier.into()));
        out.push(("peak_frontier", self.peak_frontier.into()));
        out.push(("expansions", self.expansions.into()));
        out.push(("dedup_hits", self.dedup_hits.into()));
        out.push(("evicted_rows", self.evicted_rows.into()));
        out.push(("evictions", self.evictions.into()));
    }
}

/// Precomputed eviction tables: accepting-state reachability plus the
/// per-state residual guard constants (see the module docs).
struct EvictionPlan {
    /// Per state: whether an accepting state is graph-reachable.
    can_accept: Vec<bool>,
    /// Per `state * n_clocks + clock`: the largest constant the clock is
    /// compared against on any path from the state before the clock is
    /// reset; `-1` when no such comparison exists (the reading is inert).
    fut_consts: Vec<i64>,
    /// Event-time horizon in seconds: the largest `maxsize(μ, K+1)` over
    /// clocks. `None` when the TAG has no clocks.
    horizon: Option<i64>,
    /// Evict when event time passes this point…
    next_at: Option<Second>,
    /// …or when the frontier reaches this many rows.
    watermark: usize,
}

/// Frontier rows below which growth-triggered eviction is not worth it.
const EVICT_MIN_WATERMARK: usize = 64;

impl EvictionPlan {
    fn new(tag: &Tag) -> Self {
        let n_states = tag.n_states();
        let n = tag.clocks().len();

        // Reverse reachability of accepting states over the transition
        // graph (symbols and guards over-approximated as satisfiable).
        let mut can_accept: Vec<bool> = (0..n_states)
            .map(|s| tag.is_accepting(crate::automaton::StateId(s)))
            .collect();
        loop {
            let mut changed = false;
            for s in 0..n_states {
                if can_accept[s] {
                    continue;
                }
                if tag
                    .transitions_from(crate::automaton::StateId(s))
                    .iter()
                    .any(|tr| can_accept[tr.to.index()])
                {
                    can_accept[s] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Location-based clock bounds fixpoint: fut[s][x] is the largest
        // constant x is compared against, reachable from s without an
        // intervening reset of x. Guards fire with pre-reset readings, so
        // a transition's own guard always counts; its target's residuals
        // count unless the transition resets x.
        let mut fut_consts = vec![-1i64; n_states * n.max(1)];
        if n > 0 {
            let mut local = vec![-1i64; n];
            let mut per_tr: Vec<(usize, usize, Vec<i64>, Vec<bool>)> = Vec::new();
            for s in 0..n_states {
                for tr in tag.transitions_from(crate::automaton::StateId(s)) {
                    local.iter_mut().for_each(|c| *c = -1);
                    // collect_guard_consts takes max against the slice, and
                    // every guard constant is >= 0, so -1 means "none".
                    collect_guard_consts(&tr.guard, &mut local);
                    let mut resets = vec![false; n];
                    for &x in &tr.resets {
                        resets[x.index()] = true;
                    }
                    per_tr.push((s, tr.to.index(), local.clone(), resets));
                }
            }
            loop {
                let mut changed = false;
                for (s, to, consts, resets) in &per_tr {
                    for x in 0..n {
                        let mut c = consts[x];
                        if !resets[x] {
                            c = c.max(fut_consts[to * n + x]);
                        }
                        if c > fut_consts[s * n + x] {
                            fut_consts[s * n + x] = c;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        // The Theorem 4 horizon: once maxsize(μ, K+1) seconds elapse, the
        // tick distance in μ provably exceeds K, the largest constant the
        // clock is ever compared against — every un-reset reading is then
        // saturated, so one pass per horizon keeps the frontier canonical.
        let mut global_consts = vec![0i64; n];
        for tr in tag.transitions() {
            collect_guard_consts(&tr.guard, &mut global_consts);
        }
        let horizon = tag
            .clocks()
            .iter()
            .zip(&global_consts)
            .map(|((_, g), &k)| g.sizes().max_size(k.saturating_add(1).max(1) as u64))
            .max();

        EvictionPlan {
            can_accept,
            fut_consts,
            horizon,
            next_at: None,
            watermark: EVICT_MIN_WATERMARK,
        }
    }
}

/// A suspended [`MatchSession`]: every piece of session state except the
/// borrow of the [`Tag`].
///
/// `MatchSession<'a>` borrows its automaton, which makes it impossible to
/// store sessions next to the `Tag`s they run over (a self-referential
/// struct) — exactly what a server holding thousands of tenant sessions
/// needs to do. [`MatchSession::suspend`] tears a session into this owned,
/// `Send` value; [`MatchSession::resume`] reattaches it to the same
/// automaton and continues bit-identically (differentially tested against
/// an uninterrupted session). Resuming against a *different* automaton is
/// a contract violation; a cheap shape check (state/clock counts) panics
/// on obvious mismatches.
pub struct SessionState {
    opts: MatchOptions,
    scratch: MatcherScratch,
    limits: Option<Limits>,
    stats: RunStats,
    interrupt: Option<Interrupt>,
    seeded: bool,
    dead: bool,
    events_pushed: u64,
    completions: Vec<Completion>,
    total_completions: u64,
    evicted_rows: u64,
    evictions: u64,
    eviction: Option<EvictionPlan>,
    hist: Option<Histogram>,
    scope: Option<ObsScope>,
    stats_every: Option<u64>,
    last_stats_at: u64,
    col_ids: Vec<u64>,
    col_map: Vec<Option<usize>>,
    /// Shape fingerprint of the automaton the session was suspended from.
    n_states: usize,
    n_clocks: usize,
}

impl SessionState {
    /// The options the suspended session was built with.
    pub fn options(&self) -> MatchOptions {
        self.opts
    }

    /// Events consumed before suspension.
    pub fn events_pushed(&self) -> u64 {
        self.events_pushed
    }
}

/// A long-lived incremental matcher for one TAG: the engine behind every
/// batch entry point, usable directly for streams. See the
/// [module docs](self) for the lifecycle and eviction semantics.
///
/// ```
/// use tgm_core::examples::{example_1, figure_1a_witness};
/// use tgm_events::{Event, TypeRegistry};
/// use tgm_granularity::Calendar;
/// use tgm_tag::{build_tag, MatchSession};
///
/// let cal = Calendar::standard();
/// let mut reg = TypeRegistry::new();
/// let (cet, tys) = example_1(&cal, &mut reg);
/// let tag = build_tag(&cet);
/// let mut session = MatchSession::new(&tag);
/// let w = figure_1a_witness();
/// assert!(!session.push(Event::new(tys.ibm_rise, w[0])).completed());
/// assert!(!session.push(Event::new(tys.ibm_report, w[1])).completed());
/// assert!(!session.push(Event::new(tys.hp_rise, w[2])).completed());
/// assert!(session.push(Event::new(tys.ibm_fall, w[3])).completed());
/// let fired: Vec<_> = session.completed().collect();
/// assert_eq!(fired.len(), 1);
/// assert_eq!(fired[0].index, 3);
/// assert_eq!(session.stats().completions, 1);
/// ```
pub struct MatchSession<'a> {
    matcher: Matcher<'a>,
    scratch: MatcherScratch,
    limits: Option<Limits>,
    stats: RunStats,
    /// Sticky interrupt: set once, reported by every later push.
    interrupt: Option<Interrupt>,
    /// Frontier seeded (first event consumed or mid-stream).
    seeded: bool,
    /// Frontier emptied: no future completion is possible.
    dead: bool,
    events_pushed: u64,
    completions: Vec<Completion>,
    total_completions: u64,
    evicted_rows: u64,
    evictions: u64,
    eviction: Option<EvictionPlan>,
    /// Per-event frontier histogram (metrics only). Batch wrappers thread
    /// their own through [`for_batch`](Self::for_batch) and merge it under
    /// the historical `tag.matcher.*` names; sessions finalize it under
    /// `tag.session.frontier`.
    hist: Option<Histogram>,
    /// Scoped metric domain: when set, every emission block (the
    /// `session.push` span, eviction counters and recorder events, the
    /// finalize merge) runs with this scope entered, isolating the
    /// session's telemetry from the default registry and from other
    /// sessions on the same thread.
    scope: Option<ObsScope>,
    /// Emit a live-stats frame every this many events (see
    /// [`stats_due`](Self::stats_due)).
    stats_every: Option<u64>,
    /// Events pushed when [`stats_due`](Self::stats_due) last fired.
    last_stats_at: u64,
    /// Column binding for [`push_row`](Self::push_row): instance ids of
    /// the bound columns' granularities, and the clock → column mapping.
    col_ids: Vec<u64>,
    col_map: Vec<Option<usize>>,
}

impl<'a> MatchSession<'a> {
    /// A session with default options, no limits, eviction off.
    pub fn new(tag: &'a Tag) -> Self {
        Self::with_options(tag, MatchOptions::default())
    }

    /// A session with explicit options. Without
    /// [`with_eviction`](Self::with_eviction) the replayed stream is
    /// bit-identical to a batch [`Matcher::run`] over the same events.
    pub fn with_options(tag: &'a Tag, opts: MatchOptions) -> Self {
        let metrics_on = opts.obs.metrics_on();
        Self::from_parts(
            Matcher::with_options(tag, opts),
            MatcherScratch::new(),
            None,
            metrics_on.then(Histogram::new),
        )
    }

    /// Wrapper constructor for the batch entry points: donated scratch,
    /// borrowed limits, externally owned histogram, eviction off.
    pub(crate) fn for_batch(
        matcher: Matcher<'a>,
        scratch: MatcherScratch,
        limits: Option<Limits>,
        hist: Option<Histogram>,
    ) -> Self {
        Self::from_parts(matcher, scratch, limits, hist)
    }

    fn from_parts(
        matcher: Matcher<'a>,
        scratch: MatcherScratch,
        limits: Option<Limits>,
        hist: Option<Histogram>,
    ) -> Self {
        MatchSession {
            matcher,
            scratch,
            limits,
            stats: RunStats::default(),
            interrupt: None,
            seeded: false,
            dead: false,
            events_pushed: 0,
            completions: Vec::new(),
            total_completions: 0,
            evicted_rows: 0,
            evictions: 0,
            eviction: None,
            hist,
            scope: None,
            stats_every: None,
            last_stats_at: 0,
            col_ids: Vec::new(),
            col_map: Vec::new(),
        }
    }

    /// Bounds the session: [`Limits::check`] is polled before each event
    /// and the frontier-row budget after each (budget unit = frontier
    /// rows, the Theorem 4 space measure). An interrupt is sticky; see
    /// [`Push::Interrupted`].
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Donates pooled scratch buffers (e.g. recovered from a previous
    /// session via [`finish`](Self::finish)), so steady-state pushes
    /// allocate nothing from the first event.
    pub fn with_scratch(mut self, scratch: MatcherScratch) -> Self {
        self.scratch = scratch;
        self
    }

    /// Enables deterministic horizon eviction (see the [module
    /// docs](self)). Sound for completions under any push-chunking
    /// (proptested); [`RunStats`] counters may differ from a batch run.
    pub fn with_eviction(mut self) -> Self {
        self.eviction = Some(EvictionPlan::new(self.matcher.tag));
        self
    }

    /// Attaches a scoped metric domain: the session's spans, counters and
    /// flight-recorder events land in `scope` instead of the calling
    /// thread's current scope, so concurrent sessions (or a session and
    /// its host process) keep separate telemetry. The scope is entered
    /// only around emission blocks — results are unchanged (differential
    /// tests assert bit-identical runs with and without a scope).
    pub fn with_scope(mut self, scope: ObsScope) -> Self {
        self.scope = Some(scope);
        self
    }

    /// The attached scoped metric domain, if any.
    pub fn scope(&self) -> Option<&ObsScope> {
        self.scope.as_ref()
    }

    /// Arms the live-stats cadence: [`stats_due`](Self::stats_due)
    /// reports `true` once every `every` pushed events (`0` disarms).
    /// Pair with [`tgm_obs::Exporter`] to emit periodic delta frames —
    /// the `tgm stream --stats-every N` path.
    pub fn with_stats_every(mut self, every: u64) -> Self {
        self.stats_every = (every > 0).then_some(every);
        self
    }

    /// Whether a live-stats frame is due: `true` at most once per
    /// [`with_stats_every`](Self::with_stats_every) window, measured in
    /// pushed events (deterministic in the stream, never wall-clock).
    pub fn stats_due(&mut self) -> bool {
        match self.stats_every {
            Some(n) if self.events_pushed.saturating_sub(self.last_stats_at) >= n => {
                self.last_stats_at = self.events_pushed;
                true
            }
            _ => false,
        }
    }

    /// The Theorem 4 watermark-lag gauge: over all live frontier rows and
    /// defined clock readings, the largest number of ticks a reading
    /// still has to age before it saturates at its clock's horizon
    /// (`K + 1`, beyond which readings are indistinguishable — the
    /// distance eviction waits out). `0` means the whole frontier is
    /// saturated (the slowest row has reached its horizon); `None` when
    /// the TAG has no clocks, the session is unseeded, or the frontier is
    /// empty. Monitoring loops export this as `watermark_lag`.
    pub fn watermark_lag(&self) -> Option<u64> {
        let n = self.matcher.tag.clocks().len();
        if n == 0 || !self.seeded || self.scratch.meta.is_empty() {
            return None;
        }
        let mut consts = vec![0i64; n];
        for tr in self.matcher.tag.transitions() {
            collect_guard_consts(&tr.guard, &mut consts);
        }
        let mut lag = 0u64;
        for ci in 0..self.scratch.meta.len() {
            let row = &self.scratch.rows[ci * n..ci * n + n];
            for (x, &reset) in row.iter().enumerate() {
                let cur = self.scratch.ticks[x];
                if reset == NONE_TICK || cur == NONE_TICK {
                    continue;
                }
                let elapsed = cur.saturating_sub(reset).max(0);
                let horizon = consts[x].saturating_add(1);
                lag = lag.max(horizon.saturating_sub(elapsed).max(0) as u64);
            }
        }
        Some(lag)
    }

    /// The Theorem 4 frontier bound `2·|V|·∏(Kₓ+3)` (states × started
    /// flag × canonical readings per clock: undefined, `0..=K`, and the
    /// saturated representative). With saturation on (the default) the
    /// live frontier never exceeds it, streamed or batch; the long-stream
    /// CI check asserts exactly this.
    pub fn frontier_bound(&self) -> u64 {
        let tag = self.matcher.tag;
        let mut consts = vec![0i64; tag.clocks().len()];
        for tr in tag.transitions() {
            collect_guard_consts(&tr.guard, &mut consts);
        }
        let mut bound = (tag.n_states() as u64).saturating_mul(2);
        for k in consts {
            bound = bound.saturating_mul((k.max(0) as u64).saturating_add(3));
        }
        bound
    }

    // -- push paths ---------------------------------------------------------

    /// Consumes one event (timestamps must be non-decreasing), resolving
    /// each clock's covering tick directly.
    pub fn push(&mut self, e: Event) -> Push {
        if let Some(p) = self.pre_check() {
            return p;
        }
        let n = self.matcher.tag.clocks().len();
        self.scratch.ticks.clear();
        self.scratch.ticks.resize(n, NONE_TICK);
        let Self {
            matcher, scratch, ..
        } = self;
        matcher.fill_ticks_direct(e.time, &mut scratch.ticks);
        self.advance(&e)
    }

    /// Pushes a slice of events, stopping at the first death or
    /// interrupt; returns how many events were consumed. Completions land
    /// in the [`completed`](Self::completed) drain. Emits one
    /// `session.push` span per call (never per event) when span
    /// observability is on.
    pub fn push_batch(&mut self, events: &[Event]) -> usize {
        let _scope = self.scope.as_ref().map(ObsScope::enter);
        let _span = tgm_obs::span::span_if(self.matcher.opts.obs.spans, "session.push");
        let before = self.stats.events;
        for &e in events {
            match self.push(e) {
                Push::Advanced { .. } => {}
                Push::Dead | Push::Interrupted(_) => break,
            }
        }
        let consumed = self.stats.events - before;
        if self.matcher.opts.obs.metrics_on() {
            metrics::counter_add("tag.session.events", consumed as u64);
        }
        consumed
    }

    /// Like [`push`](Self::push), but the event's covering ticks are read
    /// from pre-resolved [`TickColumns`] at `row` (clocks without a
    /// column fall back to direct resolution). The columns may grow
    /// between pushes — pair this with
    /// [`TickColumns::append`](tgm_events::TickColumns::append) to
    /// resolve a live stream incrementally in chunks.
    pub fn push_row(&mut self, e: Event, cols: &TickColumns, row: usize) -> Push {
        assert!(row < cols.len(), "row {row} out of {} column rows", cols.len());
        if let Some(p) = self.pre_check() {
            return p;
        }
        self.bind_columns(cols);
        let n = self.matcher.tag.clocks().len();
        self.scratch.ticks.clear();
        self.scratch.ticks.resize(n, NONE_TICK);
        let Self {
            matcher,
            scratch,
            col_map,
            ..
        } = self;
        for (x, c) in col_map.iter().enumerate() {
            scratch.ticks[x] = match c {
                Some(c) => pack_tick(cols.tick(*c, row)),
                None => pack_tick(matcher.clock_tick(ClockId(x), e.time)),
            };
        }
        self.advance(&e)
    }

    /// Batch-wrapper push: the caller fills the packed tick row.
    pub(crate) fn push_with(&mut self, e: &Event, fill: impl FnOnce(&mut [i64])) -> Push {
        if let Some(p) = self.pre_check() {
            return p;
        }
        let n = self.matcher.tag.clocks().len();
        self.scratch.ticks.clear();
        self.scratch.ticks.resize(n, NONE_TICK);
        fill(&mut self.scratch.ticks);
        self.advance(e)
    }

    /// Refreshes the clock → column mapping when the bound column set
    /// changed (cheap instance-id comparison per push).
    fn bind_columns(&mut self, cols: &TickColumns) {
        let ids = cols.granularities().iter().map(|g| g.instance_id());
        if self.col_ids.len() == cols.granularities().len() && ids.clone().eq(self.col_ids.iter().copied())
        {
            return;
        }
        self.col_ids.clear();
        self.col_ids.extend(ids);
        self.col_map.clear();
        self.col_map
            .extend(self.matcher.tag.clocks().iter().map(|(_, g)| cols.index_of(g)));
    }

    /// Shared pre-push gate: sticky interrupt, death, and the cooperative
    /// limits poll (cancellation + deadline), in the batch engine's exact
    /// order.
    fn pre_check(&mut self) -> Option<Push> {
        if let Some(i) = self.interrupt {
            return Some(Push::Interrupted(i));
        }
        if self.dead {
            return Some(Push::Dead);
        }
        if let Some(l) = &self.limits {
            if let Err(i) = l.check() {
                self.interrupt = Some(i);
                return Some(Push::Interrupted(i));
            }
        }
        None
    }

    /// The per-event core, mirroring the historical batch loop operation
    /// for operation (seed lazily on the first event with its tick row,
    /// advance, swap, record, then death before budget): this is what
    /// keeps stream replay bit-identical to batch runs.
    fn advance(&mut self, e: &Event) -> Push {
        let s = &mut self.scratch;
        if !self.seeded {
            self.matcher
                .seed_frontier_packed(&mut s.meta, &mut s.rows, &mut s.table, &s.ticks);
            self.seeded = true;
        }
        let completed = self.matcher.advance_packed(
            &s.meta,
            &s.rows,
            &mut s.next_meta,
            &mut s.next_rows,
            &mut s.table,
            &s.ticks,
            e,
            &mut self.stats,
        );
        std::mem::swap(&mut s.meta, &mut s.next_meta);
        std::mem::swap(&mut s.rows, &mut s.next_rows);
        if let Some(h) = self.hist.as_mut() {
            h.record(s.meta.len() as u64);
        }
        let index = self.events_pushed;
        self.events_pushed += 1;
        if completed {
            self.total_completions += 1;
            self.completions.push(Completion { index, at: e.time });
        }
        if self.eviction.is_some() && !self.scratch.meta.is_empty() {
            self.maybe_evict(e.time);
        }
        if self.scratch.meta.is_empty() {
            self.dead = true;
            return Push::Advanced { completed };
        }
        if let Some(l) = &self.limits {
            if l.budget_exceeded(self.stats.peak_configs as u64) {
                self.interrupt = Some(Interrupt::BudgetExhausted);
            }
        }
        Push::Advanced { completed }
    }

    // -- eviction -----------------------------------------------------------

    /// Runs the eviction pass when the event-time horizon has elapsed or
    /// the frontier doubled since the last pass (both deterministic in the
    /// pushed events).
    fn maybe_evict(&mut self, now: Second) {
        let plan = match &mut self.eviction {
            Some(p) => p,
            None => return,
        };
        let time_due = match (plan.horizon, plan.next_at) {
            (Some(h), Some(at)) => {
                if now >= at {
                    plan.next_at = Some(now.saturating_add(h));
                    true
                } else {
                    false
                }
            }
            (Some(h), None) => {
                plan.next_at = Some(now.saturating_add(h));
                false
            }
            (None, _) => false,
        };
        let growth_due = self.scratch.meta.len() >= plan.watermark;
        if !time_due && !growth_due {
            return;
        }
        self.evict(now);
    }

    /// One deterministic eviction pass: drop rows that cannot reach an
    /// accepting state, saturate each survivor against its state's
    /// residual guard constants, and merge the duplicates that creates.
    fn evict(&mut self, now: Second) {
        let _scope = self.scope.as_ref().map(ObsScope::enter);
        let _span = tgm_obs::span::span_if(self.matcher.opts.obs.spans, "session.evict");
        let plan = match &self.eviction {
            Some(p) => p,
            None => return,
        };
        let n = self.matcher.tag.clocks().len();
        let s = &mut self.scratch;
        let before = s.meta.len();
        s.next_meta.clear();
        s.next_rows.clear();
        s.table.reset();
        for (ci, &m) in s.meta.iter().enumerate() {
            let state = meta_state(m).index();
            if !plan.can_accept[state] {
                continue;
            }
            let idx = s.next_meta.len() as u32;
            s.next_rows.extend_from_slice(&s.rows[ci * n..ci * n + n]);
            let (done, staged) = s.next_rows.split_at_mut(idx as usize * n);
            let staged = &mut staged[..n];
            // Saturate against the per-state residual constants. `ticks`
            // still holds the current event's row; clocks in a gap right
            // now keep their reset (their reading is undefined until the
            // next covered event, when a later pass can revisit them).
            for (x, r) in staged.iter_mut().enumerate() {
                let cur = s.ticks[x];
                if cur == NONE_TICK || *r == NONE_TICK {
                    continue;
                }
                let cap = plan.fut_consts[state * n + x];
                if cur.saturating_sub(*r) > cap {
                    *r = saturate_reset(cur, cap);
                }
            }
            let staged: &[i64] = staged;
            let done: &[i64] = done;
            let h = hash_row(m, staged);
            let fm: &[u64] = &s.next_meta;
            let is_new = s.table.insert(
                h,
                idx,
                |j| fm[j as usize] == m && &done[j as usize * n..(j as usize + 1) * n] == staged,
                |j| hash_row(fm[j as usize], &done[j as usize * n..(j as usize + 1) * n]),
            );
            if is_new {
                s.next_meta.push(m);
            } else {
                s.next_rows.truncate(idx as usize * n);
            }
        }
        std::mem::swap(&mut s.meta, &mut s.next_meta);
        std::mem::swap(&mut s.rows, &mut s.next_rows);
        let after = s.meta.len();
        self.evicted_rows += (before - after) as u64;
        self.evictions += 1;
        if let Some(plan) = &mut self.eviction {
            plan.watermark = EVICT_MIN_WATERMARK.max(after * 2);
        }
        if self.matcher.opts.obs.metrics_on() {
            metrics::counter_add("tag.session.evictions", 1);
            metrics::counter_add("tag.session.evicted_rows", (before - after) as u64);
            tgm_obs::recorder::record(RecEvent::Eviction {
                before: before as u64,
                after: after as u64,
            });
        }
        let _ = now;
    }

    // -- inspection ---------------------------------------------------------

    /// Drains the completions buffered since the last call, oldest first.
    pub fn completed(&mut self) -> std::vec::Drain<'_, Completion> {
        self.completions.drain(..)
    }

    /// Accumulated counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            events: self.stats.events,
            completions: self.total_completions,
            frontier: self.scratch.meta.len(),
            peak_frontier: self.stats.peak_configs,
            expansions: self.stats.expansions,
            dedup_hits: self.stats.dedup_hits,
            evicted_rows: self.evicted_rows,
            evictions: self.evictions,
            interrupted: self.interrupt,
        }
    }

    /// Current live frontier rows.
    pub fn frontier_size(&self) -> usize {
        self.scratch.meta.len()
    }

    /// Whether the frontier died (see [`Push::Dead`]).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The sticky interrupt, if the session was stopped by its limits.
    pub fn interrupted(&self) -> Option<Interrupt> {
        self.interrupt
    }

    /// Forgets all progress — frontier, stats, completions, interrupt —
    /// keeping the grown buffer capacity. The next push re-seeds.
    pub fn reset(&mut self) {
        self.scratch.meta.clear();
        self.scratch.rows.clear();
        self.stats = RunStats::default();
        self.interrupt = None;
        self.seeded = false;
        self.dead = false;
        self.events_pushed = 0;
        self.completions.clear();
        self.total_completions = 0;
        self.evicted_rows = 0;
        self.evictions = 0;
        self.last_stats_at = 0;
        if let Some(plan) = &mut self.eviction {
            plan.next_at = None;
            plan.watermark = EVICT_MIN_WATERMARK;
        }
    }

    // -- suspend / resume ---------------------------------------------------

    /// Tears the session into an owned [`SessionState`], releasing the
    /// borrow of the automaton. The state is `Send`: it can be parked in a
    /// session table, moved across worker threads, and picked back up with
    /// [`resume`](Self::resume).
    pub fn suspend(self) -> SessionState {
        SessionState {
            opts: self.matcher.opts,
            n_states: self.matcher.tag.n_states(),
            n_clocks: self.matcher.tag.clocks().len(),
            scratch: self.scratch,
            limits: self.limits,
            stats: self.stats,
            interrupt: self.interrupt,
            seeded: self.seeded,
            dead: self.dead,
            events_pushed: self.events_pushed,
            completions: self.completions,
            total_completions: self.total_completions,
            evicted_rows: self.evicted_rows,
            evictions: self.evictions,
            eviction: self.eviction,
            hist: self.hist,
            scope: self.scope,
            stats_every: self.stats_every,
            last_stats_at: self.last_stats_at,
            col_ids: self.col_ids,
            col_map: self.col_map,
        }
    }

    /// Reattaches a suspended session to its automaton and continues
    /// exactly where [`suspend`](Self::suspend) left off: frontier, stats,
    /// buffered completions, sticky interrupt, eviction schedule and
    /// limits all survive the round trip (the replayed stream stays
    /// bit-identical to an uninterrupted session).
    ///
    /// # Panics
    ///
    /// Panics when `tag`'s state or clock count differs from the automaton
    /// the state was suspended from — a cheap guard against resuming
    /// against the wrong automaton (which would silently corrupt the
    /// packed frontier).
    pub fn resume(tag: &'a Tag, state: SessionState) -> Self {
        assert_eq!(
            (state.n_states, state.n_clocks),
            (tag.n_states(), tag.clocks().len()),
            "SessionState resumed against a different automaton shape"
        );
        MatchSession {
            matcher: Matcher::with_options(tag, state.opts),
            scratch: state.scratch,
            limits: state.limits,
            stats: state.stats,
            interrupt: state.interrupt,
            seeded: state.seeded,
            dead: state.dead,
            events_pushed: state.events_pushed,
            completions: state.completions,
            total_completions: state.total_completions,
            evicted_rows: state.evicted_rows,
            evictions: state.evictions,
            eviction: state.eviction,
            hist: state.hist,
            scope: state.scope,
            stats_every: state.stats_every,
            last_stats_at: state.last_stats_at,
            col_ids: state.col_ids,
            col_map: state.col_map,
        }
    }

    // -- finalize -----------------------------------------------------------

    /// Finishes the session with the batch-compatible verdict: the
    /// familiar [`BoundedRun`] whose `stats.accepted` is the final
    /// frontier acceptance scan (exactly [`Matcher::run`] over the pushed
    /// prefix), or `Interrupted` with prefix stats if the limits tripped.
    /// Merges the session's metrics under `tag.session.*`.
    pub fn finalize(self) -> BoundedRun {
        self.finish().0
    }

    /// [`finalize`](Self::finalize), additionally returning the pooled
    /// scratch so a follow-up session can reuse the grown buffers.
    pub fn finish(mut self) -> (BoundedRun, MatcherScratch) {
        let run = match self.interrupt {
            Some(i) => BoundedRun {
                stats: self.stats,
                verdict: i.into(),
            },
            None => {
                let mut stats = self.stats;
                // An unseeded (never pushed) session accepts iff a start
                // state accepts — the same answer a batch run gives for
                // the empty sequence.
                stats.accepted = if self.seeded {
                    self.frontier_accepting()
                } else {
                    self.matcher.start_accepting()
                };
                BoundedRun {
                    stats,
                    verdict: Verdict::Completed,
                }
            }
        };
        if self.matcher.opts.obs.metrics_on() {
            let _scope = self.scope.as_ref().map(ObsScope::enter);
            metrics::counter_add("tag.session.finalized", 1);
            metrics::counter_add("tag.session.completions", self.total_completions);
            if let Some(hist) = self.hist.take() {
                metrics::histogram_merge("tag.session.frontier", &hist);
            }
        }
        (run, std::mem::take(&mut self.scratch))
    }

    /// Raw batch-engine counters (accepted not yet resolved).
    pub(crate) fn raw_stats(&self) -> RunStats {
        self.stats
    }

    /// Whether the live frontier holds an accepting configuration.
    pub(crate) fn frontier_accepting(&self) -> bool {
        self.scratch
            .meta
            .iter()
            .any(|&m| self.matcher.tag.is_accepting(meta_state(m)))
    }

    /// Tears the wrapper session back into its donated parts.
    pub(crate) fn into_parts(mut self) -> (MatcherScratch, Option<Histogram>) {
        (std::mem::take(&mut self.scratch), self.hist.take())
    }
}

#[cfg(test)]
mod tests {
    use tgm_events::{Event, EventType};
    use tgm_granularity::Calendar;

    use super::*;
    use crate::automaton::{Symbol, TagBuilder};
    use crate::constraint::ClockConstraint;

    const DAY: i64 = 86_400;

    fn ev(ty: u32, t: i64) -> Event {
        Event::new(EventType(ty), t)
    }

    fn next_day_tag() -> crate::Tag {
        let cal = Calendar::standard();
        let mut b = TagBuilder::new();
        let x = b.clock("x_day", cal.get("day").unwrap());
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        b.start(s0).accepting(s2);
        b.transition(s0, s1, Symbol::Exact(EventType(0)), ClockConstraint::True, vec![x]);
        b.transition(s1, s2, Symbol::Exact(EventType(1)), ClockConstraint::eq(x, 1), vec![]);
        b.skip_loop(s0);
        b.skip_loop(s1);
        b.skip_loop(s2);
        b.build()
    }

    #[test]
    fn session_reports_each_completion() {
        let tag = next_day_tag();
        let mut session = MatchSession::new(&tag);
        assert!(!session.push(ev(0, 2 * DAY)).completed());
        assert!(!session.push(ev(7, 2 * DAY + 100)).completed());
        assert!(session.push(ev(1, 3 * DAY)).completed());
        assert!(!session.push(ev(0, 10 * DAY)).completed());
        assert!(session.push(ev(1, 11 * DAY)).completed());
        let fired: Vec<_> = session.completed().collect();
        assert_eq!(
            fired,
            vec![
                Completion { index: 2, at: 3 * DAY },
                Completion { index: 4, at: 11 * DAY }
            ]
        );
        // Drained: a second call yields nothing.
        assert_eq!(session.completed().count(), 0);
        let stats = session.stats();
        assert_eq!(stats.completions, 2);
        assert_eq!(stats.events, 5);
        assert!(stats.frontier >= 1);
    }

    #[test]
    fn session_agrees_with_batch_prefix_acceptance() {
        let tag = next_day_tag();
        let events = [
            ev(0, 2 * DAY),
            ev(1, 4 * DAY), // too late
            ev(0, 6 * DAY),
            ev(1, 7 * DAY), // completes
        ];
        let mut session = MatchSession::new(&tag);
        let mut completed_at = None;
        for (i, &e) in events.iter().enumerate() {
            if session.push(e).completed() && completed_at.is_none() {
                completed_at = Some(i);
            }
        }
        let m = Matcher::new(&tag);
        for i in 0..events.len() {
            let prefix_accepts = m.matches_within(&events[..=i]);
            assert_eq!(
                prefix_accepts,
                completed_at.is_some_and(|c| i >= c),
                "prefix {i}"
            );
        }
    }

    #[test]
    fn finalize_matches_batch_run() {
        let tag = next_day_tag();
        let events = [ev(0, 2 * DAY), ev(7, 2 * DAY + 50), ev(1, 3 * DAY)];
        let m = Matcher::new(&tag);
        let batch = m.run(&events, false);
        let mut session = MatchSession::new(&tag);
        assert_eq!(session.push_batch(&events), 3);
        let run = session.finalize();
        assert_eq!(run.stats, batch);
        assert!(run.verdict.is_complete());
    }

    #[test]
    fn session_reset_rearms() {
        let tag = next_day_tag();
        let mut session = MatchSession::new(&tag);
        let _ = session.push(ev(0, 2 * DAY));
        assert!(session.push(ev(1, 3 * DAY)).completed());
        assert_eq!(session.stats().completions, 1);
        session.reset();
        assert_eq!(session.stats().completions, 0);
        assert_eq!(session.frontier_size(), 0);
        let _ = session.push(ev(0, 20 * DAY));
        assert!(session.push(ev(1, 21 * DAY)).completed());
    }

    #[test]
    fn dead_session_stays_dead_until_reset() {
        // Strict updates + a business-day gap kill every configuration.
        let cal = Calendar::standard();
        let mut b = TagBuilder::new();
        let x = b.clock("x_bday", cal.get("business-day").unwrap());
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.start(s0).accepting(s1);
        b.transition(s0, s1, Symbol::Exact(EventType(0)), ClockConstraint::Le(x, 1), vec![]);
        b.skip_loop(s0);
        let tag = b.build();
        let opts = MatchOptions::builder().strict_updates(true).build();
        let mut session = MatchSession::with_options(&tag, opts);
        // Day 7 = Saturday 2000-01-08: no business-day tick.
        assert_eq!(session.push(ev(9, 7 * DAY)), Push::Advanced { completed: false });
        assert!(session.is_dead());
        assert_eq!(session.push(ev(0, 10 * DAY)), Push::Dead);
        assert_eq!(session.stats().events, 1);
        session.reset();
        assert!(session.push(ev(0, 10 * DAY)).completed());
    }

    #[test]
    fn budget_interrupt_is_sticky() {
        let tag = next_day_tag();
        let mut session =
            MatchSession::new(&tag).with_limits(Limits::none().with_budget(0));
        assert_eq!(session.push(ev(0, 2 * DAY)), Push::Advanced { completed: false });
        let i = Interrupt::BudgetExhausted;
        assert_eq!(session.interrupted(), Some(i));
        assert_eq!(session.push(ev(1, 3 * DAY)), Push::Interrupted(i));
        assert_eq!(session.stats().events, 1);
        let run = session.finalize();
        assert_eq!(run.verdict.interrupt(), Some(i));
        assert!(!run.stats.accepted);
    }

    #[test]
    fn eviction_drops_unreachable_and_merges() {
        // Without saturation the frontier grows per event; eviction must
        // keep it bounded and preserve every completion.
        let tag = next_day_tag();
        let opts = MatchOptions::builder().saturate(false).build();
        let events: Vec<Event> = (0..400)
            .flat_map(|i| {
                [
                    ev(0, (2 + 2 * i) * DAY),
                    ev(1, (3 + 2 * i) * DAY), // completes next day
                ]
            })
            .collect();
        let mut plain = MatchSession::with_options(&tag, opts);
        let mut evicting = MatchSession::with_options(&tag, opts).with_eviction();
        for &e in &events {
            let a = plain.push(e);
            let b = evicting.push(e);
            assert_eq!(a.completed(), b.completed(), "at {:?}", e);
        }
        let p = plain.stats();
        let q = evicting.stats();
        assert_eq!(p.completions, q.completions);
        assert!(q.evictions > 0, "eviction never triggered");
        assert!(q.evicted_rows > 0);
        assert!(
            q.peak_frontier < p.peak_frontier,
            "evicting peak {} vs plain {}",
            q.peak_frontier,
            p.peak_frontier
        );
        // With saturation on, the Theorem 4 bound caps the evicting
        // session's live frontier.
        let sat = MatchSession::new(&tag);
        let bound = sat.frontier_bound();
        let mut sat = sat.with_eviction();
        for &e in &events {
            let _ = sat.push(e);
        }
        assert!(sat.stats().peak_frontier as u64 <= bound);
        assert_eq!(sat.stats().completions, p.completions);
    }

    #[test]
    fn suspend_resume_is_bit_identical() {
        let tag = next_day_tag();
        let events: Vec<Event> = (0..40)
            .flat_map(|i| [ev(0, (2 + 2 * i) * DAY), ev(1, (3 + 2 * i) * DAY)])
            .collect();
        let mut continuous = MatchSession::new(&tag);
        let mut resumed = MatchSession::new(&tag);
        for (i, &e) in events.iter().enumerate() {
            let a = continuous.push(e);
            // Suspend/resume around every third event.
            if i % 3 == 0 {
                let state = resumed.suspend();
                assert_eq!(state.events_pushed(), i as u64);
                resumed = MatchSession::resume(&tag, state);
            }
            let b = resumed.push(e);
            assert_eq!(a, b, "event {i}");
        }
        assert_eq!(continuous.stats(), resumed.stats());
        let fired_a: Vec<_> = continuous.completed().collect();
        let fired_b: Vec<_> = resumed.completed().collect();
        assert_eq!(fired_a, fired_b);
        let (ra, _) = continuous.finish();
        let (rb, _) = resumed.finish();
        assert_eq!(ra, rb);
    }

    #[test]
    fn suspend_preserves_interrupt_and_limits() {
        let tag = next_day_tag();
        let mut session =
            MatchSession::new(&tag).with_limits(Limits::none().with_budget(0));
        let _ = session.push(ev(0, 2 * DAY));
        assert_eq!(session.interrupted(), Some(Interrupt::BudgetExhausted));
        let mut session = MatchSession::resume(&tag, session.suspend());
        assert_eq!(
            session.push(ev(1, 3 * DAY)),
            Push::Interrupted(Interrupt::BudgetExhausted)
        );
        assert_eq!(session.stats().events, 1);
    }

    #[test]
    #[should_panic(expected = "different automaton shape")]
    fn resume_rejects_wrong_shape() {
        let tag = next_day_tag();
        let state = MatchSession::new(&tag).suspend();
        // A shape-incompatible automaton: no clocks, one state.
        let mut b = TagBuilder::new();
        let s0 = b.state("s0");
        b.start(s0).accepting(s0);
        b.skip_loop(s0);
        let other = b.build();
        let _ = MatchSession::resume(&other, state);
    }

    #[test]
    fn push_row_matches_direct_push() {
        use tgm_events::TickColumns;
        let tag = next_day_tag();
        let grans: Vec<_> = tag.clocks().iter().map(|(_, g)| g.clone()).collect();
        let events = [
            ev(0, 2 * DAY + 43_200),
            ev(7, 2 * DAY + 50_000),
            ev(1, 3 * DAY + 3_600),
        ];
        // Incremental append: bind columns chunk by chunk.
        let mut cols = TickColumns::with_granularities(&grans);
        let mut by_row = MatchSession::new(&tag);
        let mut direct = MatchSession::new(&tag);
        for (i, &e) in events.iter().enumerate() {
            cols.append(&events[i..i + 1]);
            let a = by_row.push_row(e, &cols, i);
            let b = direct.push(e);
            assert_eq!(a, b, "event {i}");
        }
        let (ra, _) = by_row.finish();
        let (rb, _) = direct.finish();
        assert_eq!(ra, rb);
    }
}

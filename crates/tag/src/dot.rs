//! Graphviz DOT export for TAGs (used to regenerate the paper's Figure 2).

use std::fmt::Write as _;

use tgm_events::TypeRegistry;

use crate::automaton::{Symbol, Tag};

/// Renders the TAG as a Graphviz `digraph`. Event-type symbols are resolved
/// through `reg`; skip loops are drawn dashed as `ANY`.
pub fn tag_to_dot(tag: &Tag, reg: &TypeRegistry, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for i in 0..tag.n_states() {
        let s = crate::StateId(i);
        let shape = if tag.is_accepting(s) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  {i} [label=\"{}\", shape={shape}];", tag.state_name(s));
    }
    for &s in tag.start_states() {
        let _ = writeln!(out, "  start{} [shape=point];", s.index());
        let _ = writeln!(out, "  start{0} -> {0};", s.index());
    }
    for t in tag.transitions() {
        let sym = match t.symbol {
            Symbol::Any => "ANY".to_owned(),
            Symbol::Exact(e) => reg.name(e).to_owned(),
        };
        let mut label = sym;
        if !matches!(t.guard, crate::ClockConstraint::True) {
            label.push_str(&format!("\\n{}", t.guard));
        }
        if !t.resets.is_empty() {
            let names: Vec<&str> = t
                .resets
                .iter()
                .map(|x| tag.clocks()[x.index()].0.as_str())
                .collect();
            label.push_str(&format!("\\nreset {{{}}}", names.join(", ")));
        }
        let style = if t.is_skip { " style=dashed" } else { "" };
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{label}\"{style}];",
            t.from.index(),
            t.to.index()
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use tgm_core::examples::example_1;
    use tgm_granularity::Calendar;

    use super::*;
    use crate::construct::build_tag;

    #[test]
    fn figure_2_dot_renders() {
        let cal = Calendar::standard();
        let mut reg = TypeRegistry::new();
        let (cet, _) = example_1(&cal, &mut reg);
        let tag = build_tag(&cet);
        let dot = tag_to_dot(&tag, &reg, "figure-2");
        assert!(dot.contains("IBM-rise"));
        assert!(dot.contains("IBM-earnings-report"));
        assert!(dot.contains("ANY"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("reset {"));
    }
}

//! Multi-TAG shared-scan engine: advance many candidate TAGs together in
//! one pass over the event sequence.
//!
//! The §5 miner's step 5 runs one anchored matcher per candidate × per
//! reference occurrence — thousands of full scans whose automata differ
//! *only* in the event types labelling their `Exact` transitions, because
//! every candidate is built from the same event structure with a different
//! `φ`. This module compiles such a candidate set into one shared scan
//! plan:
//!
//! * **Skeleton lanes.** Tags are grouped by *skeleton* — everything except
//!   the `Exact` symbol payloads (clocks, states, guards, resets, skip
//!   structure). Structurally identical automata collapse into one *lane*
//!   of up to 64 members, advanced by a single NFA simulation.
//! * **Shared packed arena.** A lane's frontier is the packed
//!   `(meta, reset-row)` pool of [`Matcher`](crate::Matcher) plus one
//!   *member-set* word per row: the set of candidates whose private
//!   frontier contains that configuration. Candidates sharing a prefix
//!   (e.g. everything before their distinguishing symbol fires) share the
//!   physical row — the trie factoring happens implicitly through
//!   deduplication keyed on `(meta, row)` only, merging member sets by OR.
//! * **Alphabet gating.** Per lane, a type → transition-mask table tells
//!   which members' `Exact` transitions an event can fire. Events outside
//!   the lane's alphabet take a skip-only path, and when the event's tick
//!   row also equals the previous event's (and every state carries exactly
//!   one pure skip loop), the frontier is provably unchanged and the whole
//!   loop is skipped — only per-member expansion counters advance.
//!
//! Per-member [`RunStats`] are recovered exactly: every count the
//! per-candidate engine produces is order-independent within an event
//! (expansions = guard-passing firings, dedup hits = repeat arrivals at a
//! configuration already holding the member's bit, frontier sizes = live
//! per-member row counts), so the shared scan is bit-identical to running
//! [`Matcher::run_scratch`](crate::Matcher::run_scratch) per candidate —
//! property-tested in `tests/multi_tag_differential.rs`, with the
//! per-candidate engine kept as the differential oracle.

use std::collections::HashMap;

use tgm_events::{Event, EventType, TickColumns};
use tgm_granularity::Granularity;
use tgm_limits::{Interrupt, Limits, Verdict};
use tgm_obs::metrics::{self, Histogram};
use tgm_obs::span::span_if;

use crate::automaton::{Symbol, Tag, Transition};
use crate::constraint::{ClockConstraint, ClockId};
use crate::matcher::{
    collect_guard_consts, count_interrupt, hash_row, meta_started, meta_state, pack_meta,
    pack_tick, saturate_reset, DedupTable, MatchOptions, RunStats, NONE_TICK,
};

/// Candidate bits per lane: member sets are one `u64` word per row.
const LANE_WIDTH: usize = 64;

#[inline]
fn full_mask(k: usize) -> u64 {
    debug_assert!((1..=LANE_WIDTH).contains(&k));
    if k == LANE_WIDTH {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Iterates the set bit positions of `mask`, ascending.
#[inline]
fn bits(mut mask: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let c = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(c)
        }
    })
}

/// The skeleton of a TAG: a canonical string of everything *except* the
/// `Exact` symbol payloads. Two tags with equal skeletons differ only in
/// which event types their pattern transitions consume, so they share
/// states, clocks, guards, resets and skip structure and can be advanced
/// by one simulation. Granularities compare by instance identity — the
/// tick streams must be literally the same.
fn skeleton_key(tag: &Tag) -> String {
    use std::fmt::Write as _;
    let mut k = String::new();
    let _ = write!(k, "n{};start{:?};", tag.n_states, tag.start);
    for (_, g) in &tag.clocks {
        let _ = write!(k, "c{};", g.instance_id());
    }
    for (i, a) in tag.accepting.iter().enumerate() {
        if *a {
            let _ = write!(k, "a{i};");
        }
    }
    for (s, trs) in tag.by_state.iter().enumerate() {
        let _ = write!(k, "s{s}:");
        for t in trs {
            let sym = match t.symbol {
                Symbol::Exact(_) => 'E',
                Symbol::Any => '*',
            };
            let _ = write!(
                k,
                "[{}{sym}{}r{:?}g{:?}k{}]",
                t.from.index(),
                t.to.index(),
                t.resets,
                t.guard,
                u8::from(t.is_skip)
            );
        }
    }
    k
}

/// Per-state transition plan of a lane's representative.
struct StatePlan {
    /// Indices of `Any`-symbol transitions (identical across members).
    uniform: Vec<u32>,
    /// `(transition index, flat Exact slot)` pairs; the slot indexes the
    /// per-type member masks.
    exact: Vec<(u32, u32)>,
}

/// One lane: up to [`LANE_WIDTH`] structurally identical tags advanced by
/// a single shared-frontier simulation.
struct Lane<'t> {
    /// Representative automaton (states/guards/resets shared by every
    /// member; only `Exact` payloads differ).
    rep: &'t Tag,
    /// Global candidate indices of the members, bit position = list order.
    members: Vec<usize>,
    plans: Vec<StatePlan>,
    /// Per event type in the lane's alphabet: for each flat Exact slot,
    /// the mask of members whose transition consumes that type.
    type_masks: HashMap<EventType, Box<[u64]>>,
    /// Largest guard constant per clock (identical across members).
    max_consts: Vec<i64>,
    n_clocks: usize,
    n_exact: usize,
    start_accepting: bool,
    /// Every state carries exactly one uniform transition and it is a pure
    /// skip self-loop (`ANY`, guard `True`, no resets) — the constructed
    /// TAG shape. Enables the unchanged-frontier fast path.
    pure_skips: bool,
}

impl<'t> Lane<'t> {
    fn build(rep: &'t Tag) -> Self {
        let mut plans = Vec::with_capacity(rep.n_states);
        let mut n_exact = 0usize;
        let mut pure = true;
        for trs in &rep.by_state {
            let mut plan = StatePlan {
                uniform: Vec::new(),
                exact: Vec::new(),
            };
            for (ti, tr) in trs.iter().enumerate() {
                match tr.symbol {
                    Symbol::Exact(_) => {
                        plan.exact.push((ti as u32, n_exact as u32));
                        n_exact += 1;
                    }
                    Symbol::Any => {
                        plan.uniform.push(ti as u32);
                        pure &= tr.is_skip
                            && tr.to == tr.from
                            && tr.resets.is_empty()
                            && matches!(tr.guard, ClockConstraint::True);
                    }
                }
            }
            pure &= plan.uniform.len() == 1;
            plans.push(plan);
        }
        let mut max_consts = vec![0i64; rep.clocks.len()];
        for trs in &rep.by_state {
            for tr in trs {
                collect_guard_consts(&tr.guard, &mut max_consts);
            }
        }
        Lane {
            rep,
            members: Vec::new(),
            plans,
            type_masks: HashMap::new(),
            max_consts,
            n_clocks: rep.clocks.len(),
            n_exact,
            start_accepting: rep
                .start_states()
                .iter()
                .any(|&s| rep.is_accepting(s)),
            pure_skips: pure,
        }
    }

    /// Registers `tag` (global candidate index `ci`) as the next member:
    /// walks its `Exact` transitions in the representative's flat order and
    /// sets the member's bit in each payload type's slot mask.
    fn add_member(&mut self, ci: usize, tag: &Tag) {
        let bit = self.members.len();
        debug_assert!(bit < LANE_WIDTH);
        self.members.push(ci);
        let mut k = 0usize;
        for trs in &tag.by_state {
            for tr in trs {
                if let Symbol::Exact(ty) = tr.symbol {
                    let masks = self
                        .type_masks
                        .entry(ty)
                        .or_insert_with(|| vec![0u64; self.n_exact].into_boxed_slice());
                    masks[k] |= 1u64 << bit;
                    k += 1;
                }
            }
        }
        debug_assert_eq!(k, self.n_exact, "skeleton-equal tags have equal Exact counts");
    }
}

/// Reusable per-lane buffers.
#[derive(Default)]
struct LaneScratch {
    meta: Vec<u64>,
    /// Member set per row (parallel to `meta`).
    cands: Vec<u64>,
    rows: Vec<i64>,
    next_meta: Vec<u64>,
    next_cands: Vec<u64>,
    next_rows: Vec<i64>,
    table: DedupTable,
    ticks: Vec<i64>,
    prev_ticks: Vec<i64>,
    clock_cols: Vec<Option<usize>>,
    /// Live rows per member in the current frontier.
    live_cnt: Vec<u32>,
}

/// Reusable buffers for [`MultiMatcher`] runs, analogous to
/// [`MatcherScratch`](crate::MatcherScratch): one buffer set per lane,
/// grown on first use and reused across runs (and across matchers — lanes
/// are rebound per run).
#[derive(Default)]
pub struct MultiScratch {
    lanes: Vec<LaneScratch>,
}

impl MultiScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MultiScratch::default()
    }
}

/// Result of a bounded multi run: one [`RunStats`] per candidate (in input
/// order) plus the run-level [`Verdict`]. On an interrupt, stats of
/// candidates whose outcome was not yet established are partial and their
/// `accepted` is `false`.
pub struct MultiRun {
    /// Per-candidate statistics, bit-identical to per-candidate
    /// [`Matcher::run_scratch`](crate::Matcher::run_scratch) runs when the
    /// run completes.
    pub stats: Vec<RunStats>,
    /// Completed, or the first interrupt.
    pub verdict: Verdict,
}

/// Per-lane mutable run state.
struct LaneState {
    active: u64,
    all_started: bool,
    have_prev: bool,
}

/// A compiled set of candidate TAGs sharing one scan (see the module
/// docs). Construction groups the tags into skeleton lanes; runs advance
/// every live candidate per event and return per-candidate [`RunStats`]
/// bit-identical to the per-candidate engine.
pub struct MultiMatcher<'t> {
    tags: Vec<&'t Tag>,
    opts: MatchOptions,
    lanes: Vec<Lane<'t>>,
    /// Per candidate: some start state is accepting (length-0 acceptance).
    start_acc: Vec<bool>,
}

impl<'t> MultiMatcher<'t> {
    /// Compiles `tags` with default (lazy, unanchored) options.
    pub fn new(tags: Vec<&'t Tag>) -> Self {
        Self::with_options(tags, MatchOptions::default())
    }

    /// Compiles `tags` under explicit matching options (shared by every
    /// candidate).
    pub fn with_options(tags: Vec<&'t Tag>, opts: MatchOptions) -> Self {
        crate::matcher::ensure_interrupt_observer();
        let mut lanes: Vec<Lane<'t>> = Vec::new();
        let mut by_key: HashMap<String, Vec<usize>> = HashMap::new();
        let mut start_acc = Vec::with_capacity(tags.len());
        for (ci, &tag) in tags.iter().enumerate() {
            start_acc.push(tag.start_states().iter().any(|&s| tag.is_accepting(s)));
            let lane_ids = by_key.entry(skeleton_key(tag)).or_default();
            match lane_ids
                .iter()
                .copied()
                .find(|&li| lanes[li].members.len() < LANE_WIDTH)
            {
                Some(li) => lanes[li].add_member(ci, tag),
                None => {
                    lane_ids.push(lanes.len());
                    let mut lane = Lane::build(tag);
                    lane.add_member(ci, tag);
                    lanes.push(lane);
                }
            }
        }
        MultiMatcher {
            tags,
            opts,
            lanes,
            start_acc,
        }
    }

    /// Number of candidate TAGs.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the candidate set is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Number of skeleton lanes (shared simulations actually run).
    pub fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// States in the compiled plan: one state set per lane, however many
    /// members share it.
    pub fn shared_states(&self) -> usize {
        self.lanes.iter().map(|l| l.rep.n_states).sum()
    }

    /// States summed over every candidate individually (what per-candidate
    /// scans would simulate); `total_states - shared_states` is the
    /// construction-time deduplication.
    pub fn total_states(&self) -> usize {
        self.tags.iter().map(|t| t.n_states).sum()
    }

    /// Runs every candidate over `events` (direct tick resolution),
    /// returning per-candidate stats in input order. `early_exit` stops a
    /// candidate at its first acceptance (the miner's anchored mode); other
    /// candidates keep scanning.
    pub fn run_scratch(
        &self,
        events: &[Event],
        early_exit: bool,
        scratch: &mut MultiScratch,
    ) -> Vec<RunStats> {
        self.run_core(events, None, early_exit, scratch, None).stats
    }

    /// [`run_scratch`](Self::run_scratch) under [`Limits`]: cancellation
    /// and the deadline are polled per event; the budget caps the *pooled*
    /// frontier rows summed across every lane (the shared arena is the
    /// resource actually consumed).
    pub fn run_bounded(
        &self,
        events: &[Event],
        early_exit: bool,
        scratch: &mut MultiScratch,
        limits: &Limits,
    ) -> MultiRun {
        self.run_core(events, None, early_exit, scratch, Some(limits))
    }

    /// Column-reading variant of [`run_scratch`](Self::run_scratch):
    /// clock ticks come from `cols` rows `offset..offset + events.len()`
    /// where available, with direct resolution as fallback per clock.
    pub fn run_columns_scratch(
        &self,
        events: &[Event],
        cols: &TickColumns,
        offset: usize,
        early_exit: bool,
        scratch: &mut MultiScratch,
    ) -> Vec<RunStats> {
        self.run_core(events, Some((cols, offset)), early_exit, scratch, None)
            .stats
    }

    /// [`run_columns_scratch`](Self::run_columns_scratch) under
    /// [`Limits`] (see [`run_bounded`](Self::run_bounded) for the budget
    /// unit).
    pub fn run_columns_bounded(
        &self,
        events: &[Event],
        cols: &TickColumns,
        offset: usize,
        early_exit: bool,
        scratch: &mut MultiScratch,
        limits: &Limits,
    ) -> MultiRun {
        self.run_core(events, Some((cols, offset)), early_exit, scratch, Some(limits))
    }

    /// Observability wrapper around the scan loop: one `tag.multi.run`
    /// span, `tag.multi.*` counters and the pooled per-event frontier
    /// histogram, all double-gated exactly like the per-candidate engine.
    fn run_core(
        &self,
        events: &[Event],
        cols: Option<(&TickColumns, usize)>,
        early_exit: bool,
        scratch: &mut MultiScratch,
        limits: Option<&Limits>,
    ) -> MultiRun {
        let _span = span_if(self.opts.obs.spans, "tag.multi.run");
        let mut hist = self.opts.obs.metrics_on().then(Histogram::new);
        let mut merged = 0u64;
        let run = self.run_loop(events, cols, early_exit, scratch, limits, &mut hist, &mut merged);
        if let Some(h) = &hist {
            metrics::counter_add("tag.multi.runs", 1);
            metrics::counter_add("tag.multi.candidates", self.tags.len() as u64);
            metrics::counter_add("tag.multi.lanes", self.lanes.len() as u64);
            metrics::counter_add("tag.multi.shared_states", self.shared_states() as u64);
            metrics::counter_add("tag.multi.dedup_rows", merged);
            metrics::counter_add(
                "tag.multi.accepted",
                run.stats.iter().filter(|s| s.accepted).count() as u64,
            );
            metrics::histogram_merge("tag.multi.frontier", h);
            if let Some(i) = run.verdict.interrupt() {
                count_interrupt(i);
            }
        }
        run
    }

    #[allow(clippy::too_many_arguments)]
    fn run_loop(
        &self,
        events: &[Event],
        cols: Option<(&TickColumns, usize)>,
        early_exit: bool,
        scratch: &mut MultiScratch,
        limits: Option<&Limits>,
        hist: &mut Option<Histogram>,
        merged_rows: &mut u64,
    ) -> MultiRun {
        let mut stats = vec![RunStats::default(); self.tags.len()];
        // Empty input: accepted iff a start state is accepting (mirrors the
        // per-candidate engine's pre-loop answer).
        if events.is_empty() {
            for (ci, s) in stats.iter_mut().enumerate() {
                s.accepted = self.start_acc[ci];
            }
            return MultiRun {
                stats,
                verdict: Verdict::Completed,
            };
        }
        tgm_limits::fail::point("tag.multi.run", limits);
        if let Some((cols, offset)) = cols {
            assert!(
                offset + events.len() <= cols.len(),
                "event slice [{offset}, {}) exceeds the {} column rows",
                offset + events.len(),
                cols.len()
            );
        }
        while scratch.lanes.len() < self.lanes.len() {
            scratch.lanes.push(LaneScratch::default());
        }
        let mut lane_states: Vec<LaneState> = Vec::with_capacity(self.lanes.len());
        for (li, lane) in self.lanes.iter().enumerate() {
            let mut active = full_mask(lane.members.len());
            if early_exit && lane.start_accepting {
                // Length-0 prefix acceptance before consuming anything.
                for &g in &lane.members {
                    stats[g].accepted = true;
                }
                active = 0;
            }
            lane_states.push(LaneState {
                active,
                all_started: false,
                have_prev: false,
            });
            let ls = &mut scratch.lanes[li];
            if ls.live_cnt.len() < LANE_WIDTH {
                ls.live_cnt.resize(LANE_WIDTH, 0);
            }
            if let Some((cols, _)) = cols {
                ls.clock_cols.clear();
                ls.clock_cols
                    .extend(lane.rep.clocks.iter().map(|(_, g)| cols.index_of(g)));
            }
        }
        let mut verdict = Verdict::Completed;
        let mut pool_peak: u64 = 0;
        for (i, e) in events.iter().enumerate() {
            if lane_states.iter().all(|s| s.active == 0) {
                break;
            }
            if let Some(l) = limits {
                if let Err(int) = l.check() {
                    verdict = int.into();
                    break;
                }
            }
            let mut total_rows: u64 = 0;
            for (li, lane) in self.lanes.iter().enumerate() {
                let st = &mut lane_states[li];
                if st.active == 0 {
                    continue;
                }
                let ls = &mut scratch.lanes[li];
                let n = lane.n_clocks;
                ls.ticks.clear();
                ls.ticks.resize(n, NONE_TICK);
                match cols {
                    Some((cols, offset)) => {
                        let (ticks, ccols) = (&mut ls.ticks, &ls.clock_cols);
                        for (x, c) in ccols.iter().enumerate() {
                            ticks[x] = match c {
                                Some(c) => pack_tick(cols.tick(*c, offset + i)),
                                None => {
                                    pack_tick(lane.rep.clocks[x].1.covering_tick(e.time))
                                }
                            };
                        }
                    }
                    None => {
                        for x in 0..n {
                            ls.ticks[x] =
                                pack_tick(lane.rep.clocks[x].1.covering_tick(e.time));
                        }
                    }
                }
                if i == 0 {
                    seed_lane(lane, ls, st.active);
                }
                self.advance_lane(lane, ls, st, &mut stats, e, early_exit, merged_rows);
                if st.active != 0 {
                    total_rows += ls.meta.len() as u64;
                }
            }
            if let Some(h) = hist.as_mut() {
                h.record(total_rows);
            }
            pool_peak = pool_peak.max(total_rows);
            if let Some(l) = limits {
                if l.budget_exceeded(pool_peak) {
                    verdict = Interrupt::BudgetExhausted.into();
                    break;
                }
            }
        }
        if verdict.interrupt().is_none() {
            // Survivors: acceptance from the final frontier, like the
            // per-candidate engine's end-of-input answer.
            for (li, lane) in self.lanes.iter().enumerate() {
                let st = &lane_states[li];
                if st.active == 0 {
                    continue;
                }
                let ls = &scratch.lanes[li];
                let mut acc_mask = 0u64;
                for (r, &m) in ls.meta.iter().enumerate() {
                    if lane.rep.is_accepting(meta_state(m)) {
                        acc_mask |= ls.cands[r];
                    }
                }
                for c in bits(st.active & acc_mask) {
                    stats[lane.members[c]].accepted = true;
                }
            }
        }
        MultiRun { stats, verdict }
    }

    /// Advances one lane by one event (the shared-frontier analogue of
    /// `advance_packed`), maintaining per-member stats, completions
    /// (early-exit), deaths, and the member-purge compaction.
    #[allow(clippy::too_many_arguments)]
    fn advance_lane(
        &self,
        lane: &Lane<'_>,
        ls: &mut LaneScratch,
        st: &mut LaneState,
        stats: &mut [RunStats],
        e: &Event,
        early_exit: bool,
        merged_rows: &mut u64,
    ) {
        // Every active member consumes the event (counted even on the
        // strict-updates dead path, like the per-candidate engine).
        for c in bits(st.active) {
            stats[lane.members[c]].events += 1;
        }
        let tmask = lane.type_masks.get(&e.ty);
        let ticks_same = st.have_prev && ls.ticks == ls.prev_ticks;
        if tmask.is_none()
            && lane.pure_skips
            && ticks_same
            && (!self.opts.anchored || st.all_started)
        {
            // Out-of-alphabet event with an unchanged tick row: every row
            // fires exactly its pure skip loop and reproduces itself (rows
            // are already canonical for these ticks), so the frontier is
            // literally unchanged. Only the expansion counters move.
            for c in bits(st.active) {
                stats[lane.members[c]].expansions += u64::from(ls.live_cnt[c]);
            }
            return;
        }
        let LaneScratch {
            meta,
            cands,
            rows,
            next_meta,
            next_cands,
            next_rows,
            table,
            ticks,
            prev_ticks,
            live_cnt,
            ..
        } = ls;
        let n = lane.n_clocks;
        let strict_dead = self.opts.strict_updates && ticks.contains(&NONE_TICK);
        next_meta.clear();
        next_cands.clear();
        next_rows.clear();
        for c in bits(st.active) {
            live_cnt[c] = 0;
        }
        let mut ctx = FireCtx {
            next_meta,
            next_cands,
            next_rows,
            table,
            live_cnt,
            stats,
            members: &lane.members,
            ticks,
            max_consts: &lane.max_consts,
            n,
            saturate: self.opts.saturate,
            anchored: self.opts.anchored,
            reached: 0,
            next_all_started: true,
            merged: 0,
        };
        if !strict_dead {
            ctx.table.reset();
            for ri in 0..meta.len() {
                let (state, started) = (meta_state(meta[ri]), meta_started(meta[ri]));
                let cs = cands[ri];
                let row = &rows[ri * n..ri * n + n];
                let plan = &lane.plans[state.index()];
                let trs = &lane.rep.by_state[state.index()];
                for &ti in &plan.uniform {
                    ctx.fire(lane.rep, &trs[ti as usize], cs, started, row);
                }
                if let Some(tm) = tmask {
                    for &(ti, k) in &plan.exact {
                        let mask = cs & tm[k as usize];
                        if mask != 0 {
                            ctx.fire(lane.rep, &trs[ti as usize], mask, started, row);
                        }
                    }
                }
            }
        }
        let reached = ctx.reached;
        let next_all_started = ctx.next_all_started;
        *merged_rows += ctx.merged;
        std::mem::swap(meta, next_meta);
        std::mem::swap(cands, next_cands);
        std::mem::swap(rows, next_rows);
        // Per-member peak = that member's post-event frontier size, exactly
        // the per-candidate `peak_configs` update (including the event a
        // member completes or dies on).
        for c in bits(st.active) {
            let g = lane.members[c];
            stats[g].peak_configs = stats[g].peak_configs.max(live_cnt[c] as usize);
        }
        let mut deact = 0u64;
        if early_exit {
            for c in bits(reached & st.active) {
                stats[lane.members[c]].accepted = true;
                deact |= 1 << c;
            }
        }
        for c in bits(st.active & !deact) {
            if live_cnt[c] == 0 {
                // Death: the member's frontier emptied; `accepted` stays
                // false (set later from the final frontier if the whole
                // run survives — not applicable to a dead member).
                deact |= 1 << c;
            }
        }
        if deact != 0 {
            st.active &= !deact;
            if st.active == 0 {
                meta.clear();
                cands.clear();
                rows.clear();
            } else {
                // Purge deactivated members' bits; drop rows nobody holds.
                let mut w = 0usize;
                for r in 0..meta.len() {
                    let cs = cands[r] & st.active;
                    if cs == 0 {
                        continue;
                    }
                    meta[w] = meta[r];
                    cands[w] = cs;
                    if w != r {
                        rows.copy_within(r * n..r * n + n, w * n);
                    }
                    w += 1;
                }
                meta.truncate(w);
                cands.truncate(w);
                rows.truncate(w * n);
            }
        }
        prev_ticks.clear();
        prev_ticks.extend_from_slice(ticks);
        st.have_prev = true;
        st.all_started = next_all_started;
    }
}

/// Seeds a lane's frontier at the first event's tick row: one row per
/// distinct start state, held by every member.
fn seed_lane(lane: &Lane<'_>, ls: &mut LaneScratch, mask: u64) {
    let n = lane.n_clocks;
    let LaneScratch {
        meta,
        cands,
        rows,
        table,
        ticks,
        live_cnt,
        ..
    } = ls;
    meta.clear();
    cands.clear();
    rows.clear();
    table.reset();
    for &s in lane.rep.start_states() {
        let m = pack_meta(s, false);
        let idx = meta.len() as u32;
        rows.extend_from_slice(ticks);
        let (done, staged) = rows.split_at_mut(idx as usize * n);
        let staged: &[i64] = &staged[..n];
        let done: &[i64] = done;
        let h = hash_row(m, staged);
        let fm: &[u64] = meta;
        let is_new = table.insert(
            h,
            idx,
            |j| fm[j as usize] == m && &done[j as usize * n..(j as usize + 1) * n] == staged,
            |j| hash_row(fm[j as usize], &done[j as usize * n..(j as usize + 1) * n]),
        );
        if is_new {
            meta.push(m);
            cands.push(mask);
        } else {
            rows.truncate(idx as usize * n);
        }
    }
    let cnt = meta.len() as u32;
    for c in bits(mask) {
        live_cnt[c] = cnt;
    }
}

/// Split borrows of one lane's *next*-frontier buffers plus the stats
/// sinks, so [`fire`](FireCtx::fire) can stage successors while the caller
/// iterates the current frontier.
struct FireCtx<'x> {
    next_meta: &'x mut Vec<u64>,
    next_cands: &'x mut Vec<u64>,
    next_rows: &'x mut Vec<i64>,
    table: &'x mut DedupTable,
    live_cnt: &'x mut [u32],
    stats: &'x mut [RunStats],
    members: &'x [usize],
    ticks: &'x [i64],
    max_consts: &'x [i64],
    n: usize,
    saturate: bool,
    anchored: bool,
    /// Members that reached an accepting state via a pattern transition
    /// this event.
    reached: u64,
    next_all_started: bool,
    /// Physical rows merged (shared) this event.
    merged: u64,
}

impl FireCtx<'_> {
    /// Fires `tr` from a row for the member set `mask`: guard check,
    /// per-member expansion counting, successor staging with reset +
    /// canonicalization, and the member-set merge on deduplication —
    /// semantically `advance_packed`'s inner loop run for every member at
    /// once.
    fn fire(&mut self, rep: &Tag, tr: &Transition, mask: u64, started: bool, row: &[i64]) {
        if self.anchored && !started && tr.is_skip {
            return;
        }
        {
            let value = |x: ClockId| -> Option<i64> {
                let (cur, res) = (self.ticks[x.index()], row[x.index()]);
                if cur != NONE_TICK && res != NONE_TICK {
                    Some(cur.saturating_sub(res))
                } else {
                    None
                }
            };
            if tr.guard.eval(&value) != Some(true) {
                return;
            }
        }
        for c in bits(mask) {
            self.stats[self.members[c]].expansions += 1;
        }
        let n = self.n;
        let idx = self.next_meta.len() as u32;
        self.next_rows.extend_from_slice(row);
        let (done, staged) = self.next_rows.split_at_mut(idx as usize * n);
        let staged = &mut staged[..n];
        for &x in &tr.resets {
            staged[x.index()] = self.ticks[x.index()];
        }
        if self.saturate {
            for (x, r) in staged.iter_mut().enumerate() {
                let cur = self.ticks[x];
                if cur != NONE_TICK && *r != NONE_TICK {
                    let cap = self.max_consts[x];
                    if cur.saturating_sub(*r) > cap {
                        *r = saturate_reset(cur, cap);
                    }
                }
            }
        }
        let nm = pack_meta(tr.to, started || !tr.is_skip);
        if rep.is_accepting(tr.to) && !tr.is_skip {
            self.reached |= mask;
        }
        let staged: &[i64] = staged;
        let done: &[i64] = done;
        let h = hash_row(nm, staged);
        let fm: &[u64] = self.next_meta;
        let mut hit: Option<u32> = None;
        let is_new = self.table.insert(
            h,
            idx,
            |j| {
                let eq = fm[j as usize] == nm
                    && &done[j as usize * n..(j as usize + 1) * n] == staged;
                if eq {
                    hit = Some(j);
                }
                eq
            },
            |j| hash_row(fm[j as usize], &done[j as usize * n..(j as usize + 1) * n]),
        );
        if is_new {
            self.next_meta.push(nm);
            self.next_cands.push(mask);
            self.next_all_started &= meta_started(nm);
            for c in bits(mask) {
                self.live_cnt[c] += 1;
            }
        } else {
            self.next_rows.truncate(idx as usize * n);
            if let Some(j) = hit {
                let ex = self.next_cands[j as usize];
                // Members already holding the configuration score a dedup
                // hit (their engine would have rejected the duplicate);
                // first arrivals gain a live row.
                for c in bits(mask & ex) {
                    self.stats[self.members[c]].dedup_hits += 1;
                }
                for c in bits(mask & !ex) {
                    self.live_cnt[c] += 1;
                }
                self.next_cands[j as usize] = ex | mask;
                self.merged += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use tgm_core::examples::example_1;
    use tgm_events::{Event, EventType, TypeRegistry};
    use tgm_granularity::Calendar;

    use super::*;
    use crate::construct::{build_tag, TagTemplate};
    use crate::matcher::{Matcher, MatcherScratch};
    use tgm_core::ComplexEventType;

    const DAY: i64 = 86_400;

    fn chain_structure(cal: &Calendar) -> tgm_core::EventStructure {
        let mut sb = tgm_core::StructureBuilder::new();
        let x0 = sb.var("X0");
        let x1 = sb.var("X1");
        sb.constrain(x0, x1, tgm_core::Tcg::new(0, 2, cal.get("day").unwrap()));
        sb.build().unwrap()
    }

    /// Shared scan over sibling candidates == per-candidate runs, on a
    /// small hand-made world (the proptest differential lives in
    /// `tests/multi_tag_differential.rs`).
    #[test]
    fn sibling_candidates_bit_identical() {
        let cal = Calendar::standard();
        let s = chain_structure(&cal);
        let template = TagTemplate::new(&s);
        let tys: Vec<EventType> = (0..6).map(EventType).collect();
        let tags: Vec<Tag> = tys
            .iter()
            .map(|&t| template.instantiate(&[tys[0], t]))
            .collect();
        let events: Vec<Event> = (0..40)
            .map(|i| Event::new(tys[(i % 5) as usize], i * DAY / 3 + 2 * DAY))
            .collect();
        for early in [false, true] {
            for opts in [
                MatchOptions::default(),
                MatchOptions::builder().anchored(true).build(),
                MatchOptions::builder().strict_updates(true).build(),
                MatchOptions::builder().saturate(false).build(),
            ] {
                let mm = MultiMatcher::with_options(tags.iter().collect(), opts);
                let got = mm.run_scratch(&events, early, &mut MultiScratch::new());
                let mut scratch = MatcherScratch::new();
                for (k, tag) in tags.iter().enumerate() {
                    let want =
                        Matcher::with_options(tag, opts).run_scratch(&events, early, &mut scratch);
                    assert_eq!(got[k], want, "candidate {k}, early={early}, {opts:?}");
                }
            }
        }
    }

    #[test]
    fn lanes_group_structurally_identical_tags() {
        let cal = Calendar::standard();
        let s = chain_structure(&cal);
        let template = TagTemplate::new(&s);
        let a: Vec<Tag> = (0..5)
            .map(|i| template.instantiate(&[EventType(0), EventType(i)]))
            .collect();
        // A structurally different tag: Example 1's automaton.
        let mut reg = TypeRegistry::new();
        let (cet, _) = example_1(&cal, &mut reg);
        let other = build_tag(&cet);
        let mut tags: Vec<&Tag> = a.iter().collect();
        tags.push(&other);
        let mm = MultiMatcher::new(tags);
        assert_eq!(mm.len(), 6);
        assert_eq!(mm.n_lanes(), 2, "5 siblings share one lane");
        assert!(mm.shared_states() < mm.total_states());
    }

    #[test]
    fn empty_input_and_empty_set() {
        let cal = Calendar::standard();
        let s = chain_structure(&cal);
        let template = TagTemplate::new(&s);
        let t0 = template.instantiate(&[EventType(0), EventType(1)]);
        let mm = MultiMatcher::new(vec![&t0]);
        let stats = mm.run_scratch(&[], false, &mut MultiScratch::new());
        assert_eq!(stats.len(), 1);
        assert!(!stats[0].accepted);
        assert_eq!(stats[0].events, 0);
        let none = MultiMatcher::new(Vec::new());
        assert!(none.is_empty());
        assert!(none
            .run_scratch(&[Event::new(EventType(0), 0)], true, &mut MultiScratch::new())
            .is_empty());
    }

    #[test]
    fn pooled_budget_interrupts_with_typed_verdict() {
        let cal = Calendar::standard();
        let s = chain_structure(&cal);
        let template = TagTemplate::new(&s);
        let tags: Vec<Tag> = (0..8)
            .map(|i| template.instantiate(&[EventType(0), EventType(i)]))
            .collect();
        let events: Vec<Event> = (0..30)
            .map(|i| Event::new(EventType((i % 8) as u32), i * DAY + 2 * DAY))
            .collect();
        let mm = MultiMatcher::new(tags.iter().collect());
        let run = mm.run_bounded(
            &events,
            false,
            &mut MultiScratch::new(),
            &Limits::none().with_budget(0),
        );
        assert_eq!(run.verdict.interrupt(), Some(Interrupt::BudgetExhausted));
        // And an ample budget completes identically to the unbounded run.
        let free = mm.run_bounded(
            &events,
            false,
            &mut MultiScratch::new(),
            &Limits::none().with_budget(1_000_000),
        );
        assert!(free.verdict.interrupt().is_none());
        assert_eq!(free.stats, mm.run_scratch(&events, false, &mut MultiScratch::new()));
    }

    /// `TagTemplate::instantiate` is bit-identical to building the tag for
    /// the same `φ` from scratch (same builder call sequence, relabelled
    /// symbols only).
    #[test]
    fn template_instantiation_matches_direct_build() {
        let cal = Calendar::standard();
        let mut reg = TypeRegistry::new();
        let (cet, tys) = example_1(&cal, &mut reg);
        let template = TagTemplate::new(cet.structure());
        let phi = [tys.ibm_rise, tys.ibm_report, tys.hp_rise, tys.ibm_fall];
        let direct = build_tag(&ComplexEventType::new(cet.structure().clone(), phi.to_vec()));
        let inst = template.instantiate(&phi);
        assert_eq!(format!("{direct:?}"), format!("{inst:?}"));
        let events: Vec<Event> = (0..30)
            .map(|i| Event::new(phi[(i % 4) as usize], i * DAY / 2 + 2 * DAY))
            .collect();
        let mut scratch = MatcherScratch::new();
        assert_eq!(
            Matcher::new(&direct).run_scratch(&events, false, &mut scratch),
            Matcher::new(&inst).run_scratch(&events, false, &mut scratch),
        );
    }
}

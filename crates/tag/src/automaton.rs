//! The TAG automaton structure (paper §4, Definition).

use std::fmt;

use tgm_events::EventType;
use tgm_granularity::Gran;

use crate::constraint::{ClockConstraint, ClockId};

/// Index of a state within a [`Tag`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

impl StateId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An input symbol: a specific event type, or `Any` (matches every event —
/// used by the skip self-loops of the Theorem 3 construction).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Symbol {
    /// Matches only the given event type.
    Exact(EventType),
    /// Matches every event.
    Any,
}

impl Symbol {
    /// Whether the symbol matches an event of type `ty`.
    pub fn matches(self, ty: EventType) -> bool {
        match self {
            Symbol::Exact(e) => e == ty,
            Symbol::Any => true,
        }
    }
}

/// A transition `⟨s, s', e, λ, δ⟩`: from `from` to `to` on `symbol`,
/// resetting the clocks in `resets`, enabled when `guard` holds.
#[derive(Clone, Debug)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Target state.
    pub to: StateId,
    /// Input symbol.
    pub symbol: Symbol,
    /// Clocks reset (to reading 0) by this transition.
    pub resets: Vec<ClockId>,
    /// Enabling clock constraint.
    pub guard: ClockConstraint,
    /// Whether this is a *skip* transition (consumes an event without
    /// advancing the pattern — the `ANY` self-loops of Figure 2). Anchored
    /// matching refuses skips before the first real transition.
    pub is_skip: bool,
}

/// A timed automaton with granularities: `(Σ, S, S₀, C, T, F)`.
#[derive(Clone, Debug)]
pub struct Tag {
    pub(crate) clocks: Vec<(String, Gran)>,
    pub(crate) n_states: usize,
    pub(crate) state_names: Vec<String>,
    pub(crate) start: Vec<StateId>,
    pub(crate) accepting: Vec<bool>,
    /// Transitions grouped by source state.
    pub(crate) by_state: Vec<Vec<Transition>>,
}

impl Tag {
    /// Number of states `|S|`.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// The display name of a state.
    pub fn state_name(&self, s: StateId) -> &str {
        &self.state_names[s.index()]
    }

    /// The clocks `(name, granularity)` in id order.
    pub fn clocks(&self) -> &[(String, Gran)] {
        &self.clocks
    }

    /// The start states `S₀`.
    pub fn start_states(&self) -> &[StateId] {
        &self.start
    }

    /// Whether `s` is accepting.
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accepting[s.index()]
    }

    /// Transitions out of `s`.
    pub fn transitions_from(&self, s: StateId) -> &[Transition] {
        &self.by_state[s.index()]
    }

    /// All transitions.
    pub fn transitions(&self) -> impl Iterator<Item = &Transition> {
        self.by_state.iter().flatten()
    }

    /// Total transition count.
    pub fn n_transitions(&self) -> usize {
        self.by_state.iter().map(Vec::len).sum()
    }
}

/// Builder for [`Tag`].
#[derive(Default)]
pub struct TagBuilder {
    clocks: Vec<(String, Gran)>,
    state_names: Vec<String>,
    start: Vec<StateId>,
    accepting: Vec<StateId>,
    transitions: Vec<Transition>,
}

impl TagBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a clock ticking in `gran`; returns its id.
    pub fn clock(&mut self, name: impl Into<String>, gran: Gran) -> ClockId {
        let id = ClockId(self.clocks.len());
        self.clocks.push((name.into(), gran));
        id
    }

    /// Adds a state; returns its id.
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        let id = StateId(self.state_names.len());
        self.state_names.push(name.into());
        id
    }

    /// Marks a start state.
    pub fn start(&mut self, s: StateId) -> &mut Self {
        if !self.start.contains(&s) {
            self.start.push(s);
        }
        self
    }

    /// Marks an accepting state.
    pub fn accepting(&mut self, s: StateId) -> &mut Self {
        if !self.accepting.contains(&s) {
            self.accepting.push(s);
        }
        self
    }

    /// Adds a pattern transition.
    pub fn transition(
        &mut self,
        from: StateId,
        to: StateId,
        symbol: Symbol,
        guard: ClockConstraint,
        resets: Vec<ClockId>,
    ) -> &mut Self {
        self.transitions.push(Transition {
            from,
            to,
            symbol,
            resets,
            guard,
            is_skip: false,
        });
        self
    }

    /// Adds a skip self-loop on `state` (consume any event, no guard, no
    /// resets).
    pub fn skip_loop(&mut self, state: StateId) -> &mut Self {
        self.transitions.push(Transition {
            from: state,
            to: state,
            symbol: Symbol::Any,
            resets: Vec::new(),
            guard: ClockConstraint::True,
            is_skip: true,
        });
        self
    }

    /// Finalizes the automaton. Panics if it has no states or no start
    /// state, or if a transition references an unknown state/clock.
    pub fn build(self) -> Tag {
        let n = self.state_names.len();
        assert!(n > 0, "TAG must have at least one state");
        assert!(!self.start.is_empty(), "TAG must have a start state");
        let n_clocks = self.clocks.len();
        let mut by_state: Vec<Vec<Transition>> = vec![Vec::new(); n];
        for t in self.transitions {
            assert!(t.from.index() < n && t.to.index() < n, "unknown state");
            for x in t.resets.iter().chain(t.guard.clocks().iter()) {
                assert!(x.index() < n_clocks, "unknown clock {x:?}");
            }
            by_state[t.from.index()].push(t);
        }
        let mut accepting = vec![false; n];
        for s in self.accepting {
            accepting[s.index()] = true;
        }
        Tag {
            clocks: self.clocks,
            n_states: n,
            state_names: self.state_names,
            start: self.start,
            accepting,
            by_state,
        }
    }
}

#[cfg(test)]
mod tests {
    use tgm_granularity::{builtin, Calendar};

    use super::*;

    #[test]
    fn builder_basics() {
        let cal = Calendar::standard();
        let mut b = TagBuilder::new();
        let day = b.clock("x_day", cal.get("day").unwrap());
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.start(s0).accepting(s1);
        b.transition(
            s0,
            s1,
            Symbol::Any,
            ClockConstraint::in_range(day, 0, 1),
            vec![day],
        );
        b.skip_loop(s0);
        let tag = b.build();
        assert_eq!(tag.n_states(), 2);
        assert_eq!(tag.n_transitions(), 2);
        assert_eq!(tag.start_states(), &[s0]);
        assert!(tag.is_accepting(s1));
        assert!(!tag.is_accepting(s0));
        assert_eq!(tag.transitions_from(s0).len(), 2);
        assert!(tag.transitions_from(s0).iter().any(|t| t.is_skip));
        assert_eq!(tag.clocks().len(), 1);
        assert_eq!(tag.state_name(s1), "s1");
    }

    #[test]
    #[should_panic(expected = "unknown clock")]
    fn unknown_clock_rejected() {
        let mut b = TagBuilder::new();
        let s0 = b.state("s0");
        b.start(s0);
        b.transition(
            s0,
            s0,
            Symbol::Any,
            ClockConstraint::Le(ClockId(7), 1),
            vec![],
        );
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "start state")]
    fn missing_start_rejected() {
        let mut b = TagBuilder::new();
        b.state("s0");
        let _ = b.build();
    }

    #[test]
    fn symbol_matching() {
        let a = tgm_events::EventType(0);
        let b = tgm_events::EventType(1);
        assert!(Symbol::Exact(a).matches(a));
        assert!(!Symbol::Exact(a).matches(b));
        assert!(Symbol::Any.matches(a));
        let _ = builtin::second(); // silence unused import in some cfgs
    }
}

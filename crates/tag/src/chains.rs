//! Chain decomposition of event structures (Theorem 3, Step 1): cover every
//! arc of the rooted DAG with a *minimal* number of root-to-sink chains.
//!
//! Minimality is a minimum-flow problem: put a lower bound of 1 on every
//! arc, route flow from the root to a super-sink behind all sinks, and
//! minimize the flow value; each unit of flow decomposes into one chain.
//! We solve it with the standard two-phase max-flow reduction (feasibility
//! via a circulation with excesses, then flow reduction on the residual).
//!
//! [`greedy_chain_cover`] is a simpler heuristic used for differential
//! testing: correct (covers all arcs) but not always minimal.

use tgm_core::{EventStructure, VarId};

/// A root-to-sink chain: a list of variables following arcs, starting at
/// the root and ending at a sink.
pub type Chain = Vec<VarId>;

/// Checks that `chains` is a valid cover of `s`: each chain starts at the
/// root, ends at a sink, steps along arcs, and every arc is covered.
pub fn is_valid_cover(s: &EventStructure, chains: &[Chain]) -> bool {
    let mut covered = std::collections::BTreeSet::new();
    for chain in chains {
        if chain.first() != Some(&s.root()) {
            return false;
        }
        let Some(&last) = chain.last() else {
            return false;
        };
        if !s.children(last).is_empty() {
            return false;
        }
        for w in chain.windows(2) {
            if !s.has_arc(w[0], w[1]) {
                return false;
            }
            covered.insert((w[0], w[1]));
        }
    }
    s.arcs().all(|(a, b, _)| covered.contains(&(a, b)))
}

/// Greedy arc cover: repeatedly walks root → sink, preferring uncovered
/// arcs, until every arc is covered. Valid but not necessarily minimal.
pub fn greedy_chain_cover(s: &EventStructure) -> Vec<Chain> {
    let mut uncovered: std::collections::BTreeSet<(VarId, VarId)> =
        s.arcs().map(|(a, b, _)| (a, b)).collect();
    let mut chains = Vec::new();
    // Single-variable structure: one trivial chain.
    if s.len() == 1 {
        return vec![vec![s.root()]];
    }
    while !uncovered.is_empty() {
        let mut chain = vec![s.root()];
        let mut cur = s.root();
        loop {
            let children = s.children(cur);
            if children.is_empty() {
                break;
            }
            // Prefer a child whose arc is uncovered; among those, prefer one
            // from which an uncovered arc is still reachable.
            let next = children
                .iter()
                .copied()
                .find(|&c| uncovered.contains(&(cur, c)))
                .or_else(|| {
                    children.iter().copied().find(|&c| {
                        uncovered.iter().any(|&(a, _)| a == c || s.has_path(c, a))
                    })
                })
                .unwrap_or(children[0]);
            uncovered.remove(&(cur, next));
            chain.push(next);
            cur = next;
        }
        chains.push(chain);
    }
    chains
}

/// Minimal chain cover via min-flow with lower bounds.
pub fn minimal_chain_cover(s: &EventStructure) -> Vec<Chain> {
    if s.len() == 1 {
        return vec![vec![s.root()]];
    }
    let n = s.len();
    // Node ids: 0..n structure vars, n = super-sink T.
    let t_node = n;
    let mut net = FlowNetwork::new(n + 1);
    // Original arcs: lower bound 1, "infinite" capacity.
    let arcs: Vec<(VarId, VarId)> = s.arcs().map(|(a, b, _)| (a, b)).collect();
    let arc_edges: Vec<usize> = arcs
        .iter()
        .map(|&(a, b)| net.add_edge_with_lower(a.index(), b.index(), 1, CAP_INF))
        .collect();
    for v in s.sinks() {
        net.add_edge_with_lower(v.index(), t_node, 0, CAP_INF);
    }
    let flows = net.min_flow(s.root().index(), t_node);

    // Decompose the arc flows into unit root->sink paths.
    let mut residual_flow: Vec<i64> = arc_edges.iter().map(|&e| flows[e]).collect();
    // Invariant, not input-fallible: the closure is only consulted for
    // (parent, child) pairs read off the structure's own arc list.
    #[allow(clippy::expect_used)]
    let arc_index = |a: VarId, b: VarId| -> usize {
        arcs.iter()
            .position(|&(x, y)| (x, y) == (a, b))
            .expect("arc exists")
    };
    let total: i64 = arcs
        .iter()
        .enumerate()
        .filter(|&(_, &(a, _))| a == s.root())
        .map(|(i, _)| residual_flow[i])
        .sum();
    let mut chains = Vec::new();
    for _ in 0..total {
        let mut chain = vec![s.root()];
        let mut cur = s.root();
        loop {
            let children = s.children(cur);
            if children.is_empty() {
                break;
            }
            // Invariant of min-flow decomposition, not input-fallible.
            #[allow(clippy::expect_used)]
            let next = children
                .iter()
                .copied()
                .find(|&c| residual_flow[arc_index(cur, c)] > 0)
                .expect("flow conservation guarantees an outgoing unit");
            residual_flow[arc_index(cur, next)] -= 1;
            chain.push(next);
            cur = next;
        }
        chains.push(chain);
    }
    debug_assert!(is_valid_cover(s, &chains), "min-flow cover must be valid");
    chains
}

const CAP_INF: i64 = i64::MAX / 8;

/// A small max-flow network (Edmonds–Karp) supporting lower bounds via the
/// standard circulation transformation.
struct FlowNetwork {
    n: usize,
    /// Edge list: (to, capacity); reverse edge at `i ^ 1`.
    to: Vec<usize>,
    cap: Vec<i64>,
    /// Adjacency: node -> edge indices.
    adj: Vec<Vec<usize>>,
    /// Lower bounds per *public* edge id (index into `lowers` parallel to
    /// public edges), plus the mapping to internal edge ids.
    lowers: Vec<(usize, i64)>,
    excess: Vec<i64>,
}

impl FlowNetwork {
    fn new(n: usize) -> Self {
        FlowNetwork {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
            lowers: Vec::new(),
            excess: vec![0; n],
        }
    }

    fn raw_edge(&mut self, u: usize, v: usize, c: i64) -> usize {
        let id = self.to.len();
        self.to.push(v);
        self.cap.push(c);
        self.adj[u].push(id);
        self.to.push(u);
        self.cap.push(0);
        self.adj[v].push(id + 1);
        id
    }

    /// Adds an edge with a lower bound; returns a public edge id usable to
    /// read the final flow from `min_flow`'s result.
    fn add_edge_with_lower(&mut self, u: usize, v: usize, lower: i64, cap: i64) -> usize {
        let internal = self.raw_edge(u, v, cap - lower);
        self.excess[v] += lower;
        self.excess[u] -= lower;
        let public = self.lowers.len();
        self.lowers.push((internal, lower));
        public
    }

    /// BFS max-flow from `s` to `t` on the current residual network.
    fn max_flow(&mut self, s: usize, t: usize, n_total: usize) -> i64 {
        let mut flow = 0;
        loop {
            // BFS for a shortest augmenting path.
            let mut prev_edge = vec![usize::MAX; n_total];
            let mut queue = std::collections::VecDeque::new();
            let mut seen = vec![false; n_total];
            seen[s] = true;
            queue.push_back(s);
            'bfs: while let Some(u) = queue.pop_front() {
                for &e in &self.adj[u] {
                    let v = self.to[e];
                    if !seen[v] && self.cap[e] > 0 {
                        seen[v] = true;
                        prev_edge[v] = e;
                        if v == t {
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !seen[t] {
                return flow;
            }
            // Find bottleneck and push.
            let mut bottleneck = i64::MAX;
            let mut v = t;
            while v != s {
                let e = prev_edge[v];
                bottleneck = bottleneck.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            let mut v = t;
            while v != s {
                let e = prev_edge[v];
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                v = self.to[e ^ 1];
            }
            flow += bottleneck;
        }
    }

    /// Computes a minimum feasible `src → dst` flow respecting all lower
    /// bounds; returns the final flow per public edge id.
    fn min_flow(mut self, src: usize, dst: usize) -> Vec<i64> {
        // Circulation edge dst -> src.
        let circ = self.raw_edge(dst, src, CAP_INF);
        // Super source/sink for excesses. Extend adjacency.
        let s_star = self.n;
        let t_star = self.n + 1;
        self.adj.push(Vec::new());
        self.adj.push(Vec::new());
        let n_total = self.n + 2;
        let mut needed = 0;
        for w in 0..self.n {
            let ex = self.excess[w];
            if ex > 0 {
                self.raw_edge(s_star, w, ex);
                needed += ex;
            } else if ex < 0 {
                self.raw_edge(w, t_star, -ex);
            }
        }
        let sat = self.max_flow(s_star, t_star, n_total);
        assert_eq!(sat, needed, "lower bounds must be feasible (rooted DAG)");
        // Flow currently on the circulation edge = feasible flow value.
        // Minimize by pushing back from dst to src on the residual, after
        // removing the circulation edge.
        self.cap[circ] = 0;
        self.cap[circ ^ 1] = 0;
        self.max_flow(dst, src, n_total);
        // Final per-edge flow = lower + used transformed capacity
        //                     = lower + cap[reverse edge].
        self.lowers
            .iter()
            .map(|&(e, lower)| lower + self.cap[e ^ 1])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use tgm_core::{StructureBuilder, Tcg};
    use tgm_granularity::{Calendar, Gran};

    use super::*;

    fn day() -> Gran {
        Calendar::standard().get("day").unwrap()
    }

    fn diamond() -> EventStructure {
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        let x3 = b.var("X3");
        b.constrain(x0, x1, Tcg::new(0, 1, day()));
        b.constrain(x1, x3, Tcg::new(0, 1, day()));
        b.constrain(x0, x2, Tcg::new(0, 1, day()));
        b.constrain(x2, x3, Tcg::new(0, 1, day()));
        b.build().unwrap()
    }

    #[test]
    fn diamond_needs_two_chains() {
        let s = diamond();
        let chains = minimal_chain_cover(&s);
        assert!(is_valid_cover(&s, &chains));
        assert_eq!(chains.len(), 2, "diamond arc cover needs exactly 2 chains");
        let greedy = greedy_chain_cover(&s);
        assert!(is_valid_cover(&s, &greedy));
    }

    #[test]
    fn single_chain_structure() {
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        b.constrain(x0, x1, Tcg::new(0, 1, day()));
        b.constrain(x1, x2, Tcg::new(0, 1, day()));
        let s = b.build().unwrap();
        let chains = minimal_chain_cover(&s);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0], vec![x0, x1, x2]);
    }

    #[test]
    fn single_variable() {
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let s = b.build().unwrap();
        let chains = minimal_chain_cover(&s);
        assert_eq!(chains, vec![vec![x0]]);
    }

    #[test]
    fn fan_out_needs_one_chain_per_leaf() {
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let leaves: Vec<_> = (0..4).map(|i| b.var(format!("L{i}"))).collect();
        for &l in &leaves {
            b.constrain(x0, l, Tcg::new(0, 1, day()));
        }
        let s = b.build().unwrap();
        let chains = minimal_chain_cover(&s);
        assert!(is_valid_cover(&s, &chains));
        assert_eq!(chains.len(), 4);
    }

    #[test]
    fn wide_middle_layer() {
        // root -> {a, b, c} -> sink: 3 chains needed (3 arcs into the
        // middle layer), and each covers one middle node.
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let mids: Vec<_> = (0..3).map(|i| b.var(format!("M{i}"))).collect();
        let sink = b.var("Z");
        for &m in &mids {
            b.constrain(x0, m, Tcg::new(0, 1, day()));
            b.constrain(m, sink, Tcg::new(0, 1, day()));
        }
        let s = b.build().unwrap();
        let chains = minimal_chain_cover(&s);
        assert!(is_valid_cover(&s, &chains));
        assert_eq!(chains.len(), 3);
    }

    #[test]
    fn minimal_never_exceeds_greedy() {
        // A few structured cases.
        {
            let s = diamond();
            let min = minimal_chain_cover(&s);
            let greedy = greedy_chain_cover(&s);
            assert!(min.len() <= greedy.len());
        }
    }

    #[test]
    fn figure_1a_decomposes_into_two_chains() {
        let cal = Calendar::standard();
        let (s, v) = tgm_core::examples::figure_1a(&cal);
        let chains = minimal_chain_cover(&s);
        assert!(is_valid_cover(&s, &chains));
        assert_eq!(chains.len(), 2);
        // The two chains of the paper: X0 X1 X3 and X0 X2 X3.
        let mut sorted: Vec<Chain> = chains;
        sorted.sort();
        assert_eq!(sorted[0], vec![v.x0, v.x1, v.x3]);
        assert_eq!(sorted[1], vec![v.x0, v.x2, v.x3]);
    }
}

//! Construction of a TAG from a complex event type (Theorem 3 and the
//! appendix procedure):
//!
//! 1. decompose the structure into a minimal set of root-to-sink chains
//!    covering every arc;
//! 2. build a simple clocked automaton per chain (one clock per chain ×
//!    granularity; every chain transition resets all of its chain's
//!    clocks);
//! 3. combine the chain automata with a cross product — a variable shared
//!    by several chains advances all of them simultaneously;
//! 4. add skip self-loops (`ANY`) so irrelevant events can be ignored, and
//!    relabel the variable symbols with their event types `φ(X)`.
//!
//! Unreachable cross-product states are pruned, which reproduces the
//! 6-state automaton of the paper's Figure 2 for Example 1.

use std::collections::HashMap;

use tgm_core::{ComplexEventType, EventStructure, VarId};
use tgm_events::EventType;
use tgm_granularity::Gran;

use crate::automaton::{Symbol, Tag, TagBuilder};
use crate::chains::{minimal_chain_cover, Chain};
use crate::constraint::{ClockConstraint, ClockId};

/// Builds the TAG recognizing occurrences of the complex event type
/// (Theorem 3). The automaton accepts an event sequence iff the complex
/// event type occurs in it.
///
/// ```
/// use tgm_core::examples::example_1;
/// use tgm_events::TypeRegistry;
/// use tgm_granularity::Calendar;
/// use tgm_tag::build_tag;
///
/// let cal = Calendar::standard();
/// let mut reg = TypeRegistry::new();
/// let (cet, _) = example_1(&cal, &mut reg);
/// let tag = build_tag(&cet); // the paper's Figure 2
/// assert_eq!(tag.n_states(), 6);
/// assert_eq!(tag.clocks().len(), 4);
/// ```
pub fn build_tag(cet: &ComplexEventType) -> Tag {
    build_tag_for_structure(cet.structure(), |v| cet.event_type(v))
}

/// Builds the TAG for an event structure with an arbitrary variable-to-type
/// labelling (step 4's `φ`).
pub fn build_tag_for_structure(
    s: &EventStructure,
    phi: impl Fn(VarId) -> EventType,
) -> Tag {
    build_tag_with_cover(s, phi, minimal_chain_cover(s))
}

/// Builds the TAG over an explicit chain cover (must be valid for `s`; see
/// [`is_valid_cover`](crate::is_valid_cover)). Exposed so the
/// ablation benchmarks can compare the minimal (min-flow) cover against the
/// greedy one — more chains mean a larger cross product and more clocks.
pub fn build_tag_with_cover(
    s: &EventStructure,
    phi: impl Fn(VarId) -> EventType,
    chains: Vec<Chain>,
) -> Tag {
    debug_assert!(crate::chains::is_valid_cover(s, &chains));
    let p = chains.len();
    let mut b = TagBuilder::new();

    // Clocks: one per (chain, granularity-on-that-chain). `Gran` hashes by
    // its immutable name; the interior mutability clippy worries about is
    // only the memoized size-table cache.
    #[allow(clippy::mutable_key_type)]
    let mut clock_ids: HashMap<(usize, Gran), ClockId> = HashMap::new();
    for (l, chain) in chains.iter().enumerate() {
        for w in chain.windows(2) {
            for tcg in s.constraints(w[0], w[1]) {
                let key = (l, tcg.gran().clone());
                clock_ids.entry(key).or_insert_with(|| {
                    let id = b.clock(format!("x{l}_{}", tcg.gran().name()), tcg.gran().clone());
                    id
                });
            }
        }
    }
    let chain_clocks: Vec<Vec<ClockId>> = (0..p)
        .map(|l| {
            let mut cs: Vec<ClockId> = clock_ids
                .iter()
                .filter(|((cl, _), _)| *cl == l)
                .map(|(_, &id)| id)
                .collect();
            cs.sort_unstable();
            cs
        })
        .collect();

    // Position of each variable in each chain (None if absent).
    let var_pos: Vec<Vec<Option<usize>>> = chains
        .iter()
        .map(|chain| {
            let mut pos = vec![None; s.len()];
            for (i, &v) in chain.iter().enumerate() {
                pos[v.index()] = Some(i);
            }
            pos
        })
        .collect();

    // Enumerate reachable cross-product states by BFS from the all-zero
    // tuple; transitions advance every chain containing the fired variable.
    let lens: Vec<usize> = chains.iter().map(Vec::len).collect();
    let mut state_of: HashMap<Vec<usize>, crate::automaton::StateId> = HashMap::new();
    let mut queue: Vec<Vec<usize>> = Vec::new();
    let start_tuple = vec![0usize; p];
    let name = |t: &[usize]| -> String {
        let parts: Vec<String> = t.iter().map(|j| format!("S{j}")).collect();
        parts.join("")
    };
    let start_state = b.state(name(&start_tuple));
    state_of.insert(start_tuple.clone(), start_state);
    b.start(start_state);
    queue.push(start_tuple);

    struct PendingTransition {
        from: Vec<usize>,
        to: Vec<usize>,
        symbol: Symbol,
        guard: ClockConstraint,
        resets: Vec<ClockId>,
    }
    let mut pending: Vec<PendingTransition> = Vec::new();

    let mut head = 0;
    while head < queue.len() {
        let tuple = queue[head].clone();
        head += 1;
        for v in s.vars() {
            // Chains containing v must all be exactly at v's position.
            let involved: Vec<usize> = (0..p)
                .filter(|&l| var_pos[l][v.index()].is_some())
                .collect();
            debug_assert!(!involved.is_empty(), "chains cover all variables");
            if !involved
                .iter()
                .all(|&l| var_pos[l][v.index()] == Some(tuple[l]))
            {
                continue;
            }
            let mut to = tuple.clone();
            let mut guard_parts: Vec<ClockConstraint> = Vec::new();
            let mut resets: Vec<ClockId> = Vec::new();
            for &l in &involved {
                // Invariant: `involved` lists exactly the chains where
                // var_pos is Some for this variable.
                #[allow(clippy::expect_used)]
                let i = var_pos[l][v.index()].expect("involved");
                debug_assert!(i < lens[l]);
                to[l] = i + 1;
                if i > 0 {
                    let (prev, cur) = (chains[l][i - 1], chains[l][i]);
                    for tcg in s.constraints(prev, cur) {
                        let x = clock_ids[&(l, tcg.gran().clone())];
                        guard_parts.push(ClockConstraint::in_range(
                            x,
                            tcg.lo() as i64,
                            tcg.hi() as i64,
                        ));
                    }
                }
                resets.extend(chain_clocks[l].iter().copied());
            }
            resets.sort_unstable();
            resets.dedup();
            if !state_of.contains_key(&to) {
                let sid = b.state(name(&to));
                state_of.insert(to.clone(), sid);
                queue.push(to.clone());
            }
            pending.push(PendingTransition {
                from: tuple.clone(),
                to,
                symbol: Symbol::Exact(phi(v)),
                guard: ClockConstraint::conj(guard_parts),
                resets,
            });
        }
    }

    for t in pending {
        b.transition(
            state_of[&t.from],
            state_of[&t.to],
            t.symbol,
            t.guard,
            t.resets,
        );
    }
    // Accepting: every chain complete.
    let full: Vec<usize> = lens.clone();
    if let Some(&acc) = state_of.get(&full) {
        b.accepting(acc);
    }
    // Skip loops on every reachable state.
    let all_states: Vec<_> = state_of.values().copied().collect();
    for sid in all_states {
        b.skip_loop(sid);
    }
    b.build()
}

/// A reusable TAG "shape" for one event structure: the automaton built
/// once with *marker* symbols in place of event types, instantiated per
/// candidate assignment `φ` by relabelling the markers.
///
/// The §5 miner screens and scans many assignments of the *same*
/// structure; the cross-product construction (states, clocks, guards,
/// resets, skip loops) depends only on the structure, while `φ` enters
/// solely as the `Exact` symbol payloads. Instantiation is therefore a
/// clone plus a symbol rewrite, bit-identical to
/// [`build_tag_for_structure`] for the same `φ` (the builder call sequence
/// is unchanged, only the `Exact` payloads differ) — asserted by
/// `template_instantiation_matches_direct_build` in the `multi` tests.
pub struct TagTemplate {
    base: Tag,
    n_vars: usize,
}

impl TagTemplate {
    /// Builds the template automaton for `s`, with variable `Xi`'s
    /// transitions carrying the marker type `EventType(i)`.
    pub fn new(s: &EventStructure) -> Self {
        TagTemplate {
            base: build_tag_for_structure(s, |v| EventType(v.index() as u32)),
            n_vars: s.len(),
        }
    }

    /// Number of variables the assignment slice must cover.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Instantiates the template for the assignment `phi` (`phi[i]` is the
    /// event type of variable `Xi`). Panics if `phi` is shorter than the
    /// structure's variable count.
    pub fn instantiate(&self, phi: &[EventType]) -> Tag {
        assert!(
            phi.len() >= self.n_vars,
            "assignment covers {} of {} variables",
            phi.len(),
            self.n_vars
        );
        let mut tag = self.base.clone();
        for trs in &mut tag.by_state {
            for tr in trs {
                if let Symbol::Exact(marker) = tr.symbol {
                    tr.symbol = Symbol::Exact(phi[marker.0 as usize]);
                }
            }
        }
        tag
    }
}

#[cfg(test)]
mod tests {
    use tgm_core::examples::{example_1, figure_1a_witness};
    use tgm_events::{Event, TypeRegistry};
    use tgm_granularity::Calendar;

    use super::*;
    use crate::matcher::Matcher;

    const DAY: i64 = 86_400;

    #[test]
    fn figure_2_shape() {
        let cal = Calendar::standard();
        let mut reg = TypeRegistry::new();
        let (cet, _) = example_1(&cal, &mut reg);
        let tag = build_tag(&cet);
        // The paper's Figure 2: six reachable states
        // (S0S0, S1S1, S1S2, S2S1, S2S2, S3S3).
        assert_eq!(tag.n_states(), 6, "Figure 2 has 6 states");
        // Clocks: chain {X0,X1,X3} uses b-day + week; chain {X0,X2,X3}
        // uses b-day + hour: 4 clocks.
        assert_eq!(tag.clocks().len(), 4);
        // Exactly one accepting state (S3S3).
        let n_acc = (0..tag.n_states())
            .filter(|&i| tag.is_accepting(crate::StateId(i)))
            .count();
        assert_eq!(n_acc, 1);
        // One skip loop per state plus the pattern transitions
        // (1 ibm-rise, 2 ibm-rep, 2 hp-rise, 1 ibm-fall = 6).
        assert_eq!(tag.n_transitions(), 6 + 6);
    }

    #[test]
    fn example_1_witness_accepted() {
        let cal = Calendar::standard();
        let mut reg = TypeRegistry::new();
        let (cet, tys) = example_1(&cal, &mut reg);
        let tag = build_tag(&cet);
        let w = figure_1a_witness();
        let seq = [
            Event::new(tys.ibm_rise, w[0]),
            Event::new(tys.ibm_report, w[1]),
            Event::new(tys.hp_rise, w[2]),
            Event::new(tys.ibm_fall, w[3]),
        ];
        assert!(Matcher::new(&tag).accepts(&seq));
    }

    #[test]
    fn example_1_rejects_wrong_timing() {
        let cal = Calendar::standard();
        let mut reg = TypeRegistry::new();
        let (cet, tys) = example_1(&cal, &mut reg);
        let tag = build_tag(&cet);
        let w = figure_1a_witness();
        // Report two business days after the rise instead of one.
        let seq = [
            Event::new(tys.ibm_rise, w[0]),
            Event::new(tys.ibm_report, w[1] + DAY),
            Event::new(tys.hp_rise, w[2]),
            Event::new(tys.ibm_fall, w[3]),
        ];
        assert!(!Matcher::new(&tag).accepts(&seq));
    }

    #[test]
    fn example_1_with_noise() {
        let cal = Calendar::standard();
        let mut reg = TypeRegistry::new();
        let (cet, tys) = example_1(&cal, &mut reg);
        let noise = reg.intern("noise");
        let tag = build_tag(&cet);
        let w = figure_1a_witness();
        let mut events = vec![
            Event::new(tys.ibm_rise, w[0]),
            Event::new(tys.ibm_report, w[1]),
            Event::new(tys.hp_rise, w[2]),
            Event::new(tys.ibm_fall, w[3]),
        ];
        for k in 0..40 {
            events.push(Event::new(noise, w[0] + k * 3_600));
        }
        events.sort();
        assert!(Matcher::new(&tag).accepts(&events));
    }

    #[test]
    fn out_of_order_pattern_rejected() {
        let cal = Calendar::standard();
        let mut reg = TypeRegistry::new();
        let (cet, tys) = example_1(&cal, &mut reg);
        let tag = build_tag(&cet);
        let w = figure_1a_witness();
        // Fall before everything: no occurrence.
        let seq = [
            Event::new(tys.ibm_fall, w[0] - 2 * DAY),
            Event::new(tys.ibm_rise, w[0]),
            Event::new(tys.ibm_report, w[1]),
        ];
        assert!(!Matcher::new(&tag).accepts(&seq));
    }

    #[test]
    fn single_variable_type() {
        let _cal = Calendar::standard();
        let mut reg = TypeRegistry::new();
        let e0 = reg.intern("E0");
        let mut sb = tgm_core::StructureBuilder::new();
        sb.var("X0");
        let s = sb.build().unwrap();
        let cet = ComplexEventType::new(s, vec![e0]);
        let tag = build_tag(&cet);
        assert_eq!(tag.n_states(), 2);
        let m = Matcher::new(&tag);
        assert!(m.accepts(&[Event::new(e0, 100)]));
        assert!(!m.accepts(&[Event::new(reg.intern("other"), 100)]));
    }

    #[test]
    fn shared_event_types_on_different_variables() {
        // X0 -> X1 both labelled with the same type A, one day apart.
        let cal = Calendar::standard();
        let mut reg = TypeRegistry::new();
        let a = reg.intern("A");
        let mut sb = tgm_core::StructureBuilder::new();
        let x0 = sb.var("X0");
        let x1 = sb.var("X1");
        sb.constrain(
            x0,
            x1,
            tgm_core::Tcg::new(1, 1, cal.get("day").unwrap()),
        );
        let s = sb.build().unwrap();
        let cet = ComplexEventType::new(s, vec![a, a]);
        let tag = build_tag(&cet);
        let m = Matcher::new(&tag);
        assert!(m.accepts(&[Event::new(a, 0), Event::new(a, DAY)]));
        assert!(!m.accepts(&[Event::new(a, 0), Event::new(a, 2 * DAY)]));
        // A single A cannot be used twice.
        assert!(!m.accepts(&[Event::new(a, 0)]));
    }
}

//! NFA-simulation matching of TAGs over event sequences (Theorem 4).
//!
//! Following the classical NDFA pattern-matching technique (AHU74), the
//! matcher advances a *frontier* of configurations `(state, clock resets)`
//! per input event, deduplicating configurations. Clock state is stored as
//! the covering tick of the clock's granularity at its last reset; the
//! reading at an event with timestamp `t` is `⌈t⌉μ − reset`, undefined when
//! either side is undefined (see the crate docs for the gap semantics).

use std::collections::HashSet;

use tgm_events::{Event, TickColumns};
use tgm_granularity::{Granularity, Second, Tick};

use crate::automaton::{StateId, Tag};
use crate::constraint::ClockId;

/// Matching options.
#[derive(Clone, Copy, Debug)]
pub struct MatchOptions {
    /// Anchored matching: skip transitions are disallowed until the first
    /// pattern transition has fired, so the pattern's root must match the
    /// *first* event of the input. Used by the miner, which starts one
    /// automaton per reference-event occurrence (§5).
    pub anchored: bool,
    /// The paper's strict clock-update semantics: a configuration dies on
    /// any event not covered by *every* clock granularity (instead of the
    /// default lazy semantics where only guards consulting such clocks
    /// fail).
    pub strict_updates: bool,
    /// Saturate clock readings beyond every guard constant (region-style
    /// canonicalization; semantics-preserving). Default: true. Disabling it
    /// exists only for the ablation benchmarks — the frontier then grows
    /// with the sequence length instead of Theorem 4's `(|V|·K)^p`.
    pub saturate: bool,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions {
            anchored: false,
            strict_updates: false,
            saturate: true,
        }
    }
}


/// Instrumentation counters from a matcher run (the quantities of the
/// Theorem 4 complexity bound).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Events consumed.
    pub events: usize,
    /// Peak frontier size (distinct configurations).
    pub peak_configs: usize,
    /// Total configuration expansions.
    pub expansions: u64,
    /// Whether an accepting configuration was reached.
    pub accepted: bool,
}

/// Records the largest constant each clock is compared against.
fn collect_guard_consts(guard: &crate::constraint::ClockConstraint, out: &mut [i64]) {
    use crate::constraint::ClockConstraint as C;
    match guard {
        C::True => {}
        C::Le(x, k) | C::Ge(x, k) => out[x.index()] = out[x.index()].max(*k),
        C::And(cs) | C::Or(cs) => {
            for c in cs {
                collect_guard_consts(c, out);
            }
        }
        C::Not(c) => collect_guard_consts(c, out),
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct Config {
    state: StateId,
    started: bool,
    /// Covering tick of each clock's granularity at its last reset.
    resets: Vec<Option<Tick>>,
}

/// A reusable matcher for one TAG.
pub struct Matcher<'a> {
    tag: &'a Tag,
    opts: MatchOptions,
    /// Per clock, the largest constant it is compared against in any guard.
    /// Clock readings beyond this are indistinguishable from each other now
    /// and forever (readings only grow between resets), so configurations
    /// are canonicalized by saturating such resets — this is what keeps the
    /// frontier bounded by `(|V|·K)^p` instead of `|σ|` (Theorem 4).
    max_consts: Vec<i64>,
}

impl<'a> Matcher<'a> {
    /// A matcher with default (lazy, unanchored) options.
    pub fn new(tag: &'a Tag) -> Self {
        Self::with_options(tag, MatchOptions::default())
    }

    /// A matcher with explicit options.
    pub fn with_options(tag: &'a Tag, opts: MatchOptions) -> Self {
        let mut max_consts = vec![0i64; tag.clocks.len()];
        for tr in tag.transitions() {
            collect_guard_consts(&tr.guard, &mut max_consts);
        }
        Matcher {
            tag,
            opts,
            max_consts,
        }
    }

    /// Saturates clock resets whose readings exceed every guard constant:
    /// the canonical representative keeps the reading exactly one past the
    /// largest comparison constant.
    fn canonicalize(&self, resets: &mut [Option<Tick>], cur_ticks: &[Option<Tick>]) {
        if !self.opts.saturate {
            return;
        }
        for (x, r) in resets.iter_mut().enumerate() {
            if let (Some(cur), Some(res)) = (cur_ticks[x], *r) {
                let cap = self.max_consts[x];
                if cur - res > cap {
                    *r = Some(cur - cap - 1);
                }
            }
        }
    }

    /// Whether the TAG has an accepting run over the *entire* sequence.
    pub fn accepts(&self, events: &[Event]) -> bool {
        self.run_inner(events, false).accepted
    }

    /// Whether some *prefix* of the sequence is accepted — equivalently,
    /// whether an occurrence completes at any point. (For TAGs with skip
    /// loops on accepting states — all constructed TAGs — this coincides
    /// with [`accepts`](Self::accepts) but exits early.)
    pub fn matches_within(&self, events: &[Event]) -> bool {
        self.run_inner(events, true).accepted
    }

    /// Full run with instrumentation. `early_exit` stops at the first
    /// accepting configuration.
    pub fn run(&self, events: &[Event], early_exit: bool) -> RunStats {
        self.run_inner(events, early_exit)
    }

    /// Like [`run`](Self::run), but clock updates read pre-resolved
    /// [`TickColumns`] instead of resolving each event's covering tick per
    /// clock: the reading at event `i` is `⌈tᵢ⌉μ − reset` with `⌈tᵢ⌉μ`
    /// looked up at row `offset + i`.
    ///
    /// `events` must be the row range `offset..offset + events.len()` of
    /// the slice the columns were built over. Clocks whose granularity has
    /// no column fall back to direct resolution, so results are identical
    /// to [`run`](Self::run) for any column set.
    pub fn run_columns(
        &self,
        events: &[Event],
        cols: &TickColumns,
        offset: usize,
        early_exit: bool,
    ) -> RunStats {
        assert!(
            offset + events.len() <= cols.len(),
            "event slice [{offset}, {}) exceeds the {} column rows",
            offset + events.len(),
            cols.len()
        );
        let clock_cols: Vec<Option<usize>> = self
            .tag
            .clocks
            .iter()
            .map(|(_, g)| cols.index_of(g))
            .collect();
        self.run_core(events, early_exit, |i, e| {
            clock_cols
                .iter()
                .enumerate()
                .map(|(x, c)| match c {
                    Some(c) => cols.tick(*c, offset + i),
                    None => self.clock_tick(ClockId(x), e.time),
                })
                .collect()
        })
    }

    /// Column-reading variant of [`matches_within`](Self::matches_within).
    pub fn matches_within_columns(
        &self,
        events: &[Event],
        cols: &TickColumns,
        offset: usize,
    ) -> bool {
        self.run_columns(events, cols, offset, true).accepted
    }

    /// Finds one occurrence and returns the indices (into `events`) of the
    /// events consumed by *pattern* transitions, in consumption order — the
    /// witness events of the complex event. `None` if no occurrence exists.
    ///
    /// Unlike [`accepts`](Self::accepts), this tracks back-pointers through
    /// the configuration graph, so it uses memory proportional to the
    /// number of distinct configurations created.
    pub fn find_occurrence(&self, events: &[Event]) -> Option<Vec<usize>> {
        if events.is_empty() {
            return None;
        }
        // Arena of configurations with provenance: (config, parent index,
        // event index, was-pattern-transition).
        struct Node {
            cfg: Config,
            parent: usize, // usize::MAX for roots
            event: usize,
            pattern: bool,
        }
        let mut arena: Vec<Node> = Vec::new();
        let mut frontier: Vec<usize> = Vec::new();
        for cfg in self.initial_frontier(events[0].time) {
            arena.push(Node {
                cfg,
                parent: usize::MAX,
                event: usize::MAX,
                pattern: false,
            });
            frontier.push(arena.len() - 1);
        }
        let n_clocks = self.tag.clocks.len();
        for (eidx, e) in events.iter().enumerate() {
            let cur_ticks: Vec<Option<Tick>> = (0..n_clocks)
                .map(|i| self.clock_tick(ClockId(i), e.time))
                .collect();
            if self.opts.strict_updates && cur_ticks.iter().any(Option::is_none) {
                return None;
            }
            let mut next: Vec<usize> = Vec::new();
            let mut seen: HashSet<Config> = HashSet::new();
            for &node_idx in &frontier {
                let cfg = arena[node_idx].cfg.clone();
                for tr in self.tag.transitions_from(cfg.state) {
                    if !tr.symbol.matches(e.ty) {
                        continue;
                    }
                    if self.opts.anchored && !cfg.started && tr.is_skip {
                        continue;
                    }
                    let value = |x: ClockId| -> Option<i64> {
                        match (cur_ticks[x.index()], cfg.resets[x.index()]) {
                            (Some(cur), Some(reset)) => Some(cur - reset),
                            _ => None,
                        }
                    };
                    if tr.guard.eval(&value) != Some(true) {
                        continue;
                    }
                    let mut resets = cfg.resets.clone();
                    for &x in &tr.resets {
                        resets[x.index()] = cur_ticks[x.index()];
                    }
                    self.canonicalize(&mut resets, &cur_ticks);
                    let nc = Config {
                        state: tr.to,
                        started: cfg.started || !tr.is_skip,
                        resets,
                    };
                    if self.tag.is_accepting(nc.state) && !tr.is_skip {
                        // Backtrack through pattern transitions.
                        let mut out = vec![eidx];
                        let mut cur = node_idx;
                        while cur != usize::MAX {
                            let node = &arena[cur];
                            if node.pattern {
                                out.push(node.event);
                            }
                            cur = node.parent;
                        }
                        out.reverse();
                        return Some(out);
                    }
                    if seen.insert(nc.clone()) {
                        arena.push(Node {
                            cfg: nc,
                            parent: node_idx,
                            event: eidx,
                            pattern: !tr.is_skip,
                        });
                        next.push(arena.len() - 1);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                return None;
            }
        }
        None
    }

    fn clock_tick(&self, x: ClockId, t: Second) -> Option<Tick> {
        self.tag.clocks[x.index()].1.covering_tick(t)
    }

    /// Initial configurations, with clocks reading 0 at instant `t0`.
    fn initial_frontier(&self, t0: Second) -> Vec<Config> {
        let init_resets: Vec<Option<Tick>> = (0..self.tag.clocks.len())
            .map(|i| self.clock_tick(ClockId(i), t0))
            .collect();
        self.initial_frontier_with(init_resets)
    }

    /// Initial configurations from pre-resolved clock ticks at the first
    /// instant.
    fn initial_frontier_with(&self, init_resets: Vec<Option<Tick>>) -> Vec<Config> {
        let mut seen: HashSet<Config> = HashSet::new();
        let mut frontier = Vec::new();
        for &s in self.tag.start_states() {
            let c = Config {
                state: s,
                started: false,
                resets: init_resets.clone(),
            };
            if seen.insert(c.clone()) {
                frontier.push(c);
            }
        }
        frontier
    }

    /// Advances the frontier by one event, resolving clock ticks directly
    /// (used by the stream matcher, which has no pre-built columns).
    fn advance(&self, frontier: &[Config], e: &Event, stats: &mut RunStats) -> (Vec<Config>, bool) {
        let cur_ticks: Vec<Option<Tick>> = (0..self.tag.clocks.len())
            .map(|i| self.clock_tick(ClockId(i), e.time))
            .collect();
        self.advance_with(frontier, e, &cur_ticks, stats)
    }

    /// Advances the frontier by one event given its pre-resolved clock
    /// ticks. Returns the next frontier and whether any *newly created*
    /// configuration is accepting.
    fn advance_with(
        &self,
        frontier: &[Config],
        e: &Event,
        cur_ticks: &[Option<Tick>],
        stats: &mut RunStats,
    ) -> (Vec<Config>, bool) {
        stats.events += 1;
        let strict_dead = self.opts.strict_updates && cur_ticks.iter().any(Option::is_none);
        let mut next: Vec<Config> = Vec::new();
        let mut next_seen: HashSet<Config> = HashSet::new();
        let mut reached_accepting = false;
        if !strict_dead {
            for cfg in frontier {
                for tr in self.tag.transitions_from(cfg.state) {
                    if !tr.symbol.matches(e.ty) {
                        continue;
                    }
                    if self.opts.anchored && !cfg.started && tr.is_skip {
                        continue;
                    }
                    let value = |x: ClockId| -> Option<i64> {
                        match (cur_ticks[x.index()], cfg.resets[x.index()]) {
                            (Some(cur), Some(reset)) => Some(cur - reset),
                            _ => None,
                        }
                    };
                    if tr.guard.eval(&value) != Some(true) {
                        continue;
                    }
                    stats.expansions += 1;
                    let mut resets = cfg.resets.clone();
                    for &x in &tr.resets {
                        resets[x.index()] = cur_ticks[x.index()];
                    }
                    self.canonicalize(&mut resets, cur_ticks);
                    let nc = Config {
                        state: tr.to,
                        started: cfg.started || !tr.is_skip,
                        resets,
                    };
                    if self.tag.is_accepting(nc.state) && !tr.is_skip {
                        reached_accepting = true;
                    }
                    if next_seen.insert(nc.clone()) {
                        next.push(nc);
                    }
                }
            }
        }
        stats.peak_configs = stats.peak_configs.max(next.len());
        (next, reached_accepting)
    }

    fn run_inner(&self, events: &[Event], early_exit: bool) -> RunStats {
        self.run_core(events, early_exit, |_, e| {
            (0..self.tag.clocks.len())
                .map(|i| self.clock_tick(ClockId(i), e.time))
                .collect()
        })
    }

    /// The NFA simulation, parameterized over how each event's clock ticks
    /// are obtained (`ticks_at(index, event)` — direct resolution or column
    /// lookup).
    fn run_core(
        &self,
        events: &[Event],
        early_exit: bool,
        mut ticks_at: impl FnMut(usize, &Event) -> Vec<Option<Tick>>,
    ) -> RunStats {
        let mut stats = RunStats::default();

        // Empty input: accepted iff a start state is accepting.
        if events.is_empty() {
            stats.accepted = self
                .tag
                .start_states()
                .iter()
                .any(|&s| self.tag.is_accepting(s));
            return stats;
        }

        let mut frontier = self.initial_frontier_with(ticks_at(0, &events[0]));
        if early_exit && frontier.iter().any(|c| self.tag.is_accepting(c.state)) {
            stats.accepted = true;
            return stats;
        }

        for (i, e) in events.iter().enumerate() {
            let cur_ticks = ticks_at(i, e);
            let (next, reached_accepting) =
                self.advance_with(&frontier, e, &cur_ticks, &mut stats);
            frontier = next;
            if early_exit && reached_accepting {
                stats.accepted = true;
                return stats;
            }
            if frontier.is_empty() {
                break;
            }
        }
        stats.accepted = frontier.iter().any(|c| self.tag.is_accepting(c.state));
        stats
    }
}

/// An *online* matcher: push events one at a time, get notified when an
/// occurrence completes. Useful for monitoring live streams where
/// re-running the batch [`Matcher`] per event would be quadratic.
///
/// The stream matcher never dies: like the constructed TAGs' skip loops,
/// it keeps the frontier alive and counts every event at which some
/// pattern transition completes an occurrence.
///
/// ```
/// use tgm_core::examples::{example_1, figure_1a_witness};
/// use tgm_events::{Event, TypeRegistry};
/// use tgm_granularity::Calendar;
/// use tgm_tag::{build_tag, StreamMatcher};
///
/// let cal = Calendar::standard();
/// let mut reg = TypeRegistry::new();
/// let (cet, tys) = example_1(&cal, &mut reg);
/// let tag = build_tag(&cet);
/// let mut stream = StreamMatcher::new(&tag);
/// let w = figure_1a_witness();
/// assert!(!stream.push(Event::new(tys.ibm_rise, w[0])));
/// assert!(!stream.push(Event::new(tys.ibm_report, w[1])));
/// assert!(!stream.push(Event::new(tys.hp_rise, w[2])));
/// assert!(stream.push(Event::new(tys.ibm_fall, w[3]))); // completed!
/// assert_eq!(stream.completions(), 1);
/// ```
pub struct StreamMatcher<'a> {
    matcher: Matcher<'a>,
    frontier: Vec<Config>,
    started: bool,
    completions: u64,
    stats: RunStats,
}

impl<'a> StreamMatcher<'a> {
    /// An online matcher with default options.
    pub fn new(tag: &'a Tag) -> Self {
        Self::with_options(tag, MatchOptions::default())
    }

    /// An online matcher with explicit options.
    pub fn with_options(tag: &'a Tag, opts: MatchOptions) -> Self {
        StreamMatcher {
            matcher: Matcher::with_options(tag, opts),
            frontier: Vec::new(),
            started: false,
            completions: 0,
            stats: RunStats::default(),
        }
    }

    /// Consumes one event (timestamps must be non-decreasing). Returns
    /// whether an occurrence *completed* at this event.
    pub fn push(&mut self, e: Event) -> bool {
        if !self.started {
            self.frontier = self.matcher.initial_frontier(e.time);
            self.started = true;
        }
        let (next, completed) = self.matcher.advance(&self.frontier, &e, &mut self.stats);
        self.frontier = next;
        if completed {
            self.completions += 1;
        }
        completed
    }

    /// Number of events at which an occurrence completed so far.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Current number of live configurations.
    pub fn frontier_size(&self) -> usize {
        self.frontier.len()
    }

    /// Accumulated instrumentation.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Forgets all progress (the next push re-seeds the frontier).
    pub fn reset(&mut self) {
        self.frontier.clear();
        self.started = false;
        self.completions = 0;
        self.stats = RunStats::default();
    }
}

#[cfg(test)]
mod tests {
    use tgm_events::{Event, EventType};
    use tgm_granularity::Calendar;

    use super::*;
    use crate::automaton::{Symbol, TagBuilder};
    use crate::constraint::ClockConstraint;

    const DAY: i64 = 86_400;

    fn ev(ty: u32, t: i64) -> Event {
        Event::new(EventType(ty), t)
    }

    /// A tiny hand-built TAG: accept "A then B on the next day".
    fn next_day_tag() -> crate::Tag {
        let cal = Calendar::standard();
        let mut b = TagBuilder::new();
        let x = b.clock("x_day", cal.get("day").unwrap());
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        b.start(s0).accepting(s2);
        b.transition(s0, s1, Symbol::Exact(EventType(0)), ClockConstraint::True, vec![x]);
        b.transition(s1, s2, Symbol::Exact(EventType(1)), ClockConstraint::eq(x, 1), vec![]);
        b.skip_loop(s0);
        b.skip_loop(s1);
        b.skip_loop(s2);
        b.build()
    }

    #[test]
    fn accepts_next_day_pattern() {
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        // A at day 2 noon, B at day 3 morning.
        let seq = [ev(0, 2 * DAY + 43_200), ev(1, 3 * DAY + 3_600)];
        assert!(m.accepts(&seq));
        assert!(m.matches_within(&seq));
        // Same day: reject.
        let seq2 = [ev(0, 2 * DAY + 3_600), ev(1, 2 * DAY + 43_200)];
        assert!(!m.accepts(&seq2));
        // Two days later: reject.
        let seq3 = [ev(0, 2 * DAY), ev(1, 4 * DAY)];
        assert!(!m.accepts(&seq3));
    }

    #[test]
    fn skips_noise_events() {
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        let seq = [
            ev(7, 2 * DAY),
            ev(0, 2 * DAY + 100),
            ev(9, 2 * DAY + 200),
            ev(1, 3 * DAY + 100),
            ev(7, 3 * DAY + 200),
        ];
        assert!(m.accepts(&seq));
    }

    #[test]
    fn anchored_requires_root_first() {
        let tag = next_day_tag();
        let anchored = Matcher::with_options(
            &tag,
            MatchOptions {
                anchored: true,
                strict_updates: false,
                saturate: true,
            },
        );
        // Noise before A: anchored matching must fail...
        let seq = [ev(7, 2 * DAY), ev(0, 2 * DAY + 100), ev(1, 3 * DAY)];
        assert!(!anchored.accepts(&seq));
        // ...but succeeds when A is first.
        let seq2 = [ev(0, 2 * DAY + 100), ev(7, 2 * DAY + 200), ev(1, 3 * DAY)];
        assert!(anchored.accepts(&seq2));
    }

    #[test]
    fn nondeterministic_choice_of_a() {
        // Two As: the second one pairs with B on the next day.
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        let seq = [ev(0, 0), ev(0, 2 * DAY), ev(1, 3 * DAY)];
        assert!(m.accepts(&seq));
    }

    #[test]
    fn strict_updates_kill_on_gaps() {
        let cal = Calendar::standard();
        let mut b = TagBuilder::new();
        let x = b.clock("x_bday", cal.get("business-day").unwrap());
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        b.start(s0).accepting(s2);
        b.transition(s0, s1, Symbol::Exact(EventType(0)), ClockConstraint::True, vec![x]);
        b.transition(s1, s2, Symbol::Exact(EventType(1)), ClockConstraint::eq(x, 1), vec![]);
        b.skip_loop(s0);
        b.skip_loop(s1);
        b.skip_loop(s2);
        let tag = b.build();

        // A on Monday (day 2), noise on Saturday (day 7), B next Monday:
        // b-day distance Monday->Monday is 5, so no match either way, but
        // A Thursday(5)->B Friday(6) with Saturday noise in between:
        let seq = [ev(0, 5 * DAY), ev(9, 7 * DAY + 100), ev(1, 8 * DAY)];
        // Wait: day 5 is Thursday 2000-01-06, day 6 Friday, day 7 Saturday,
        // day 8 Sunday. Use Friday -> Monday instead:
        let seq2 = [ev(0, 6 * DAY), ev(9, 7 * DAY + 100), ev(1, 9 * DAY)];
        let lazy = Matcher::new(&tag);
        // Lazy semantics: the Saturday noise is skippable.
        assert!(lazy.accepts(&seq2));
        let strict = Matcher::with_options(
            &tag,
            MatchOptions {
                anchored: false,
                strict_updates: true,
                saturate: true,
            },
        );
        // Strict semantics (paper): the Saturday event has no business-day
        // tick, killing every run.
        assert!(!strict.accepts(&seq2));
        // Without weekend noise both agree.
        let clean = [ev(0, 6 * DAY), ev(1, 9 * DAY)];
        assert!(lazy.accepts(&clean));
        assert!(strict.accepts(&clean));
        let _ = seq;
    }

    #[test]
    fn empty_sequence() {
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        assert!(!m.accepts(&[]));
    }

    #[test]
    fn column_runs_agree_with_direct_runs() {
        use tgm_events::TickColumns;
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        let grans: Vec<_> = tag.clocks().iter().map(|(_, g)| g.clone()).collect();
        let seqs: Vec<Vec<Event>> = vec![
            vec![ev(0, 2 * DAY + 43_200), ev(1, 3 * DAY + 3_600)], // accept
            vec![ev(0, 2 * DAY), ev(1, 2 * DAY + 100)],            // same day
            vec![ev(7, 2 * DAY), ev(0, 2 * DAY + 1), ev(1, 3 * DAY)], // noise
            vec![ev(0, 0), ev(0, 2 * DAY), ev(1, 3 * DAY)],        // nondet
        ];
        for events in &seqs {
            let cols = TickColumns::build(events, &grans);
            for start in 0..events.len() {
                let slice = &events[start..];
                let direct = m.run(slice, false);
                let columns = m.run_columns(slice, &cols, start, false);
                assert_eq!(direct.accepted, columns.accepted, "start {start}");
                assert_eq!(direct.expansions, columns.expansions, "start {start}");
                assert_eq!(
                    m.matches_within(slice),
                    m.matches_within_columns(slice, &cols, start)
                );
            }
        }
        // Clocks without a column fall back to direct resolution.
        let empty_cols = TickColumns::build(&seqs[0], &[]);
        assert!(m.run_columns(&seqs[0], &empty_cols, 0, false).accepted);
    }

    #[test]
    fn stats_reported() {
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        let seq = [ev(0, 2 * DAY), ev(1, 3 * DAY)];
        let stats = m.run(&seq, false);
        assert!(stats.accepted);
        assert_eq!(stats.events, 2);
        assert!(stats.peak_configs >= 1);
        assert!(stats.expansions >= 2);
    }
}

#[cfg(test)]
mod stream_tests {
    use tgm_events::{Event, EventType};
    use tgm_granularity::Calendar;

    use super::*;
    use crate::automaton::{Symbol, TagBuilder};
    use crate::constraint::ClockConstraint;

    const DAY: i64 = 86_400;

    fn next_day_tag() -> crate::Tag {
        let cal = Calendar::standard();
        let mut b = TagBuilder::new();
        let x = b.clock("x_day", cal.get("day").unwrap());
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        b.start(s0).accepting(s2);
        b.transition(s0, s1, Symbol::Exact(EventType(0)), ClockConstraint::True, vec![x]);
        b.transition(s1, s2, Symbol::Exact(EventType(1)), ClockConstraint::eq(x, 1), vec![]);
        b.skip_loop(s0);
        b.skip_loop(s1);
        b.skip_loop(s2);
        b.build()
    }

    #[test]
    fn stream_reports_each_completion() {
        let tag = next_day_tag();
        let mut sm = StreamMatcher::new(&tag);
        // Two A->B-next-day occurrences, with noise.
        assert!(!sm.push(Event::new(EventType(0), 2 * DAY)));
        assert!(!sm.push(Event::new(EventType(7), 2 * DAY + 100)));
        assert!(sm.push(Event::new(EventType(1), 3 * DAY)));
        assert!(!sm.push(Event::new(EventType(0), 10 * DAY)));
        assert!(sm.push(Event::new(EventType(1), 11 * DAY)));
        assert_eq!(sm.completions(), 2);
        assert!(sm.frontier_size() >= 1);
    }

    #[test]
    fn stream_agrees_with_batch_prefix_acceptance() {
        let tag = next_day_tag();
        let events = [
            Event::new(EventType(0), 2 * DAY),
            Event::new(EventType(1), 4 * DAY), // too late
            Event::new(EventType(0), 6 * DAY),
            Event::new(EventType(1), 7 * DAY), // completes
        ];
        let mut sm = StreamMatcher::new(&tag);
        let mut completed_at = None;
        for (i, &e) in events.iter().enumerate() {
            if sm.push(e) && completed_at.is_none() {
                completed_at = Some(i);
            }
        }
        // Batch prefix acceptance flips exactly at the completion index.
        let m = Matcher::new(&tag);
        for i in 0..events.len() {
            let prefix_accepts = m.matches_within(&events[..=i]);
            assert_eq!(
                prefix_accepts,
                completed_at.is_some_and(|c| i >= c),
                "prefix {i}"
            );
        }
    }

    #[test]
    fn stream_reset() {
        let tag = next_day_tag();
        let mut sm = StreamMatcher::new(&tag);
        sm.push(Event::new(EventType(0), 2 * DAY));
        sm.push(Event::new(EventType(1), 3 * DAY));
        assert_eq!(sm.completions(), 1);
        sm.reset();
        assert_eq!(sm.completions(), 0);
        assert_eq!(sm.frontier_size(), 0);
        // Works again after reset.
        sm.push(Event::new(EventType(0), 20 * DAY));
        assert!(sm.push(Event::new(EventType(1), 21 * DAY)));
    }
}

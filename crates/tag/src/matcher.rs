//! NFA-simulation matching of TAGs over event sequences (Theorem 4).
//!
//! Following the classical NDFA pattern-matching technique (AHU74), the
//! matcher advances a *frontier* of configurations `(state, clock resets)`
//! per input event, deduplicating configurations. Clock state is stored as
//! the covering tick of the clock's granularity at its last reset; the
//! reading at an event with timestamp `t` is `⌈t⌉μ − reset`, undefined when
//! either side is undefined (see the crate docs for the gap semantics).
//!
//! # Engine representation
//!
//! The production engine is *allocation-free in steady state*: a frontier
//! is one flat `i64` buffer of packed reset rows (stride = number of
//! clocks, `i64::MIN` encoding an undefined reset) plus one packed
//! state/started word per configuration, and deduplication hashes the
//! packed rows in place against an open-addressing index table — no
//! per-configuration heap objects, no clones into a hash set. All per-run
//! buffers live in a [`MatcherScratch`] that callers can reuse across
//! runs, so the anchored per-occurrence sweeps of the §5 miner perform no
//! allocation after the first run warms the capacity. The pre-existing
//! per-`Config` engine is retained as `*_reference` methods for
//! differential testing and the E11 ablation.

use std::collections::HashSet;

use tgm_events::{Event, TickColumns};
use tgm_granularity::{Granularity, Second, Tick};
use tgm_limits::{Interrupt, Limits, Verdict};
use tgm_obs::metrics::{self, Histogram};
use tgm_obs::{Observable, ObsOptions, ObsValue};

use crate::automaton::{StateId, Tag};
use crate::constraint::ClockId;

/// Matching options.
///
/// The struct is `#[non_exhaustive]`: construct it through
/// [`MatchOptions::default`] or [`MatchOptions::builder`] so adding a knob
/// is never a breaking change for downstream call sites.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct MatchOptions {
    /// Anchored matching: skip transitions are disallowed until the first
    /// pattern transition has fired, so the pattern's root must match the
    /// *first* event of the input. Used by the miner, which starts one
    /// automaton per reference-event occurrence (§5).
    pub anchored: bool,
    /// The paper's strict clock-update semantics: a configuration dies on
    /// any event not covered by *every* clock granularity (instead of the
    /// default lazy semantics where only guards consulting such clocks
    /// fail).
    pub strict_updates: bool,
    /// Saturate clock readings beyond every guard constant (region-style
    /// canonicalization; semantics-preserving). Default: true. Disabling it
    /// exists only for the ablation benchmarks — the frontier then grows
    /// with the sequence length instead of Theorem 4's `(|V|·K)^p`.
    pub saturate: bool,
    /// Observability knobs for this matcher's runs (counters, frontier
    /// histograms, timing spans). Nothing is emitted unless the
    /// process-wide [`tgm_obs::set_enabled`] toggle is also on;
    /// instrumentation never changes results (differentially tested).
    pub obs: ObsOptions,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions {
            anchored: false,
            strict_updates: false,
            saturate: true,
            obs: ObsOptions::default(),
        }
    }
}

impl MatchOptions {
    /// A builder starting from the defaults (lazy, unanchored, saturating).
    pub fn builder() -> MatchOptionsBuilder {
        MatchOptionsBuilder::default()
    }

    /// A builder seeded from this value, for tweaking individual knobs.
    pub fn to_builder(self) -> MatchOptionsBuilder {
        MatchOptionsBuilder(self)
    }
}

/// Builder for [`MatchOptions`]; every knob defaults to
/// [`MatchOptions::default`].
///
/// ```
/// use tgm_tag::MatchOptions;
/// let opts = MatchOptions::builder().anchored(true).saturate(false).build();
/// assert!(opts.anchored && !opts.saturate && !opts.strict_updates);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct MatchOptionsBuilder(MatchOptions);

impl MatchOptionsBuilder {
    /// Sets [`MatchOptions::anchored`].
    pub fn anchored(mut self, on: bool) -> Self {
        self.0.anchored = on;
        self
    }

    /// Sets [`MatchOptions::strict_updates`].
    pub fn strict_updates(mut self, on: bool) -> Self {
        self.0.strict_updates = on;
        self
    }

    /// Sets [`MatchOptions::saturate`].
    pub fn saturate(mut self, on: bool) -> Self {
        self.0.saturate = on;
        self
    }

    /// Sets [`MatchOptions::obs`].
    pub fn obs(mut self, obs: ObsOptions) -> Self {
        self.0.obs = obs;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> MatchOptions {
        self.0
    }
}

/// Instrumentation counters from a matcher run (the quantities of the
/// Theorem 4 complexity bound).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Events consumed.
    pub events: usize,
    /// Peak frontier size (distinct configurations).
    pub peak_configs: usize,
    /// Total configuration expansions.
    pub expansions: u64,
    /// Successor configurations rejected by the per-event frontier
    /// deduplication (expansions that produced an already-present
    /// configuration). Counted identically by both engines.
    pub dedup_hits: u64,
    /// Whether an accepting configuration was reached.
    pub accepted: bool,
}

impl Observable for RunStats {
    fn observe(&self, out: &mut Vec<(&'static str, ObsValue)>) {
        out.push(("events", self.events.into()));
        out.push(("peak_configs", self.peak_configs.into()));
        out.push(("expansions", self.expansions.into()));
        out.push(("dedup_hits", self.dedup_hits.into()));
        out.push(("accepted", self.accepted.into()));
    }
}

/// The outcome of a bounded matcher run: the stats accumulated up to the
/// point the run finished or was interrupted, plus the verdict.
///
/// On [`Verdict::Interrupted`] the stats cover the prefix of events the
/// run actually consumed; `stats.accepted` is whatever had been
/// established by then (an interrupted run never *retracts* an
/// early-exit acceptance — acceptance wins over interruption at the same
/// event).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundedRun {
    /// Counters for the consumed prefix (everything, when completed).
    pub stats: RunStats,
    /// Whether the run finished, and if not, why it stopped.
    pub verdict: Verdict,
}

/// Short class name of an interrupt, used to tag flight-recorder events.
#[doc(hidden)]
pub fn interrupt_class(i: Interrupt) -> &'static str {
    match i {
        Interrupt::DeadlineExceeded => "deadline",
        Interrupt::BudgetExhausted => "budget",
        Interrupt::Cancelled => "cancelled",
    }
}

/// Emits the `limits.*` interruption counters for an engine that stopped
/// early (shared by the matcher and the miner), and dumps the current
/// scope's flight-recorder ring (if it has one) so the interrupt ships
/// with its last-N-events context. Call only when metrics are enabled
/// for the surrounding call-site.
#[doc(hidden)]
pub fn count_interrupt(i: Interrupt) {
    match i {
        Interrupt::DeadlineExceeded => metrics::counter_add("limits.deadline_hit", 1),
        Interrupt::BudgetExhausted => metrics::counter_add("limits.budget_hit", 1),
        Interrupt::Cancelled => metrics::counter_add("limits.cancelled", 1),
    }
    tgm_obs::recorder::interrupt("bounded_run", interrupt_class(i));
}

/// The interrupt observer wired into [`tgm_limits::hook`]: every non-`Ok`
/// limits verdict, detected by whichever engine polled it, lands in the
/// current scope's flight ring and triggers a dump.
fn obs_interrupt_observer(i: Interrupt) {
    tgm_obs::recorder::interrupt("limits.check", interrupt_class(i));
}

/// Installs [`obs_interrupt_observer`] once per process; called from the
/// engine constructors so any code path that builds a matcher or session
/// gets verdict→recorder coverage without an explicit init step.
pub(crate) fn ensure_interrupt_observer() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| tgm_limits::hook::set_interrupt_observer(obs_interrupt_observer));
}

/// Records the largest constant each clock is compared against.
pub(crate) fn collect_guard_consts(guard: &crate::constraint::ClockConstraint, out: &mut [i64]) {
    use crate::constraint::ClockConstraint as C;
    match guard {
        C::True => {}
        C::Le(x, k) | C::Ge(x, k) => out[x.index()] = out[x.index()].max(*k),
        C::And(cs) | C::Or(cs) => {
            for c in cs {
                collect_guard_consts(c, out);
            }
        }
        C::Not(c) => collect_guard_consts(c, out),
    }
}

// ---------------------------------------------------------------------------
// Packed configuration encoding
// ---------------------------------------------------------------------------

/// Packed encoding of an undefined reset (`None::<Tick>`). Valid ticks are
/// small epoch-anchored indices, far from `i64::MIN`.
pub(crate) const NONE_TICK: i64 = i64::MIN;

#[inline]
pub(crate) fn pack_tick(t: Option<Tick>) -> i64 {
    t.unwrap_or(NONE_TICK)
}

/// The canonical saturated reset `cur - cap - 1`, computed without
/// overflow and clamped one above [`NONE_TICK`] so a defined reset can
/// never collide with the undefined encoding. Used identically by both
/// engines so saturated rows stay bit-comparable.
#[inline]
pub(crate) fn saturate_reset(cur: i64, cap: i64) -> i64 {
    cur.saturating_sub(cap)
        .saturating_sub(1)
        .max(NONE_TICK + 1)
}

#[inline]
pub(crate) fn pack_meta(state: StateId, started: bool) -> u64 {
    ((state.index() as u64) << 1) | u64::from(started)
}

#[inline]
pub(crate) fn meta_state(m: u64) -> StateId {
    StateId((m >> 1) as usize)
}

#[inline]
pub(crate) fn meta_started(m: u64) -> bool {
    m & 1 == 1
}

/// FxHash-style mix over a packed configuration (meta word + reset row).
#[inline]
pub(crate) fn hash_row(meta: u64, row: &[i64]) -> u64 {
    const K: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut h = (meta ^ 0xA076_1D64_78BD_642F).wrapping_mul(K);
    for &w in row {
        h ^= w as u64;
        h = h.wrapping_mul(K);
        h ^= h >> 32;
    }
    h
}

const EMPTY_SLOT: u64 = u64::MAX;

/// Open-addressing index table used to deduplicate packed configurations
/// in place. Slots store `(generation << 32) | config_index`; clearing is
/// O(1) by bumping the generation, so one table serves every event of
/// every run without re-zeroing (the standard timestamped-hash-table
/// trick). Keys live in the caller's row pool — the table only compares
/// via callbacks, so nothing is ever cloned.
pub(crate) struct DedupTable {
    slots: Vec<u64>,
    gen: u32,
    len: usize,
}

impl DedupTable {
    fn new() -> Self {
        DedupTable {
            slots: vec![EMPTY_SLOT; 16],
            gen: 0,
            len: 0,
        }
    }

    /// Invalidates every entry in O(1) (generation bump).
    pub(crate) fn reset(&mut self) {
        self.len = 0;
        // `EMPTY_SLOT` carries generation u32::MAX: never reach it.
        if self.gen >= u32::MAX - 1 {
            self.gen = 0;
            self.slots.fill(EMPTY_SLOT);
        } else {
            self.gen += 1;
        }
    }

    #[inline]
    fn live(&self, slot: u64) -> Option<u32> {
        if slot != EMPTY_SLOT && (slot >> 32) as u32 == self.gen {
            Some(slot as u32)
        } else {
            None
        }
    }

    /// Inserts `idx` under `hash` unless an equal entry exists; `eq(j)`
    /// compares against previously inserted index `j`, `hash_of(j)`
    /// re-hashes it (used only when the table grows). Returns whether the
    /// entry is new.
    pub(crate) fn insert(
        &mut self,
        hash: u64,
        idx: u32,
        mut eq: impl FnMut(u32) -> bool,
        mut hash_of: impl FnMut(u32) -> u64,
    ) -> bool {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow(&mut hash_of);
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            match self.live(self.slots[i]) {
                None => {
                    self.slots[i] = ((self.gen as u64) << 32) | u64::from(idx);
                    self.len += 1;
                    return true;
                }
                Some(j) => {
                    if eq(j) {
                        return false;
                    }
                    i = (i + 1) & mask;
                }
            }
        }
    }

    /// Doubles capacity, re-inserting the current generation's entries.
    /// Allocates only while growing past the historical maximum.
    fn grow(&mut self, hash_of: &mut impl FnMut(u32) -> u64) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        let mask = new_cap - 1;
        for s in old {
            if s != EMPTY_SLOT && (s >> 32) as u32 == self.gen {
                let mut i = (hash_of(s as u32) as usize) & mask;
                while self.slots[i] != EMPTY_SLOT {
                    i = (i + 1) & mask;
                }
                self.slots[i] = s;
            }
        }
    }
}

/// Provenance of one arena configuration in
/// [`find_occurrence`](Matcher::find_occurrence): parent index, consuming
/// event, and whether the consuming transition was a pattern transition.
struct Prov {
    parent: u32,
    event: u32,
    pattern: bool,
}

/// Reusable buffers for matcher runs.
///
/// One scratch holds every per-run buffer of the packed engine: the
/// current and next frontier (packed meta words + flat reset rows), the
/// deduplication table, the current event's resolved tick row, and the
/// back-pointer arena of [`Matcher::find_occurrence`]. Repeated runs —
/// in particular the miner's one-anchored-run-per-reference-occurrence
/// sweeps — reuse the grown capacity and allocate nothing.
///
/// A scratch is not tied to a particular TAG: buffers are (re)sized at the
/// start of each run, so one scratch may serve matchers of different TAGs
/// in sequence.
#[derive(Default)]
pub struct MatcherScratch {
    /// Current frontier: packed state/started per configuration.
    pub(crate) meta: Vec<u64>,
    /// Current frontier reset rows, stride = number of clocks.
    pub(crate) rows: Vec<i64>,
    pub(crate) next_meta: Vec<u64>,
    pub(crate) next_rows: Vec<i64>,
    pub(crate) table: DedupTable,
    /// Packed covering ticks of the current event, one per clock.
    pub(crate) ticks: Vec<i64>,
    /// Per-clock column index for column-reading runs.
    pub(crate) clock_cols: Vec<Option<usize>>,
    // `find_occurrence` arena (configurations with provenance).
    arena_meta: Vec<u64>,
    arena_rows: Vec<i64>,
    arena_prov: Vec<Prov>,
    fr_idx: Vec<u32>,
    nx_idx: Vec<u32>,
}

impl Default for DedupTable {
    fn default() -> Self {
        DedupTable::new()
    }
}

impl MatcherScratch {
    /// An empty scratch; buffers grow on first use and are kept across
    /// runs.
    pub fn new() -> Self {
        MatcherScratch::default()
    }
}

/// A reusable matcher for one TAG.
///
/// Cloning is cheap (the guard-constant table is shared), which is how the
/// batch entry points hand the engine to a per-run [`MatchSession`]
/// without allocating.
#[derive(Clone)]
pub struct Matcher<'a> {
    pub(crate) tag: &'a Tag,
    pub(crate) opts: MatchOptions,
    /// Per clock, the largest constant it is compared against in any guard.
    /// Clock readings beyond this are indistinguishable from each other now
    /// and forever (readings only grow between resets), so configurations
    /// are canonicalized by saturating such resets — this is what keeps the
    /// frontier bounded by `(|V|·K)^p` instead of `|σ|` (Theorem 4).
    max_consts: std::sync::Arc<[i64]>,
}

impl<'a> Matcher<'a> {
    /// A matcher with default (lazy, unanchored) options.
    pub fn new(tag: &'a Tag) -> Self {
        Self::with_options(tag, MatchOptions::default())
    }

    /// A matcher with explicit options.
    pub fn with_options(tag: &'a Tag, opts: MatchOptions) -> Self {
        ensure_interrupt_observer();
        let mut max_consts = vec![0i64; tag.clocks.len()];
        for tr in tag.transitions() {
            collect_guard_consts(&tr.guard, &mut max_consts);
        }
        Matcher {
            tag,
            opts,
            max_consts: max_consts.into(),
        }
    }

    /// Whether the TAG has an accepting run over the *entire* sequence.
    pub fn accepts(&self, events: &[Event]) -> bool {
        self.run(events, false).accepted
    }

    /// Whether some *prefix* of the sequence is accepted — equivalently,
    /// whether an occurrence completes at any point. (For TAGs with skip
    /// loops on accepting states — all constructed TAGs — this coincides
    /// with [`accepts`](Self::accepts) but exits early.)
    pub fn matches_within(&self, events: &[Event]) -> bool {
        self.run(events, true).accepted
    }

    /// Full run with instrumentation. `early_exit` stops at the first
    /// accepting configuration. Allocates a fresh scratch; hot callers
    /// should use [`run_scratch`](Self::run_scratch).
    pub fn run(&self, events: &[Event], early_exit: bool) -> RunStats {
        self.run_scratch(events, early_exit, &mut MatcherScratch::new())
    }

    /// [`run`](Self::run) with caller-provided scratch buffers: repeated
    /// runs reuse capacity and perform no steady-state allocation.
    pub fn run_scratch(
        &self,
        events: &[Event],
        early_exit: bool,
        scratch: &mut MatcherScratch,
    ) -> RunStats {
        self.run_direct_core(events, early_exit, scratch, None).stats
    }

    /// [`run_scratch`](Self::run_scratch) under [`Limits`]: the run polls
    /// cancellation and the deadline between events and caps the frontier
    /// pool at the row budget, returning partial [`RunStats`] plus a
    /// [`Verdict`] instead of running away. With [`Limits::none`] the
    /// result is bit-identical to [`run_scratch`](Self::run_scratch).
    pub fn run_bounded(
        &self,
        events: &[Event],
        early_exit: bool,
        scratch: &mut MatcherScratch,
        limits: &Limits,
    ) -> BoundedRun {
        self.run_direct_core(events, early_exit, scratch, Some(limits))
    }

    fn run_direct_core(
        &self,
        events: &[Event],
        early_exit: bool,
        scratch: &mut MatcherScratch,
        limits: Option<&Limits>,
    ) -> BoundedRun {
        self.run_scratch_core(
            events,
            early_exit,
            scratch,
            |_, e, out| {
                for (x, slot) in out.iter_mut().enumerate() {
                    *slot = pack_tick(self.clock_tick(ClockId(x), e.time));
                }
            },
            limits,
        )
    }

    /// [`matches_within`](Self::matches_within) with caller-provided
    /// scratch.
    pub fn matches_within_scratch(&self, events: &[Event], scratch: &mut MatcherScratch) -> bool {
        self.run_scratch(events, true, scratch).accepted
    }

    /// [`matches_within_scratch`](Self::matches_within_scratch) under
    /// [`Limits`]: `Err` when the run was interrupted before an answer
    /// was established.
    pub fn matches_within_bounded(
        &self,
        events: &[Event],
        scratch: &mut MatcherScratch,
        limits: &Limits,
    ) -> Result<bool, Interrupt> {
        let run = self.run_bounded(events, true, scratch, limits);
        match run.verdict.interrupt() {
            // An early-exit acceptance established before the interrupt
            // still counts.
            Some(i) if !run.stats.accepted => Err(i),
            _ => Ok(run.stats.accepted),
        }
    }

    /// Like [`run`](Self::run), but clock updates read pre-resolved
    /// [`TickColumns`] instead of resolving each event's covering tick per
    /// clock: the reading at event `i` is `⌈tᵢ⌉μ − reset` with `⌈tᵢ⌉μ`
    /// looked up at row `offset + i`.
    ///
    /// `events` must be the row range `offset..offset + events.len()` of
    /// the slice the columns were built over. Clocks whose granularity has
    /// no column fall back to direct resolution, so results are identical
    /// to [`run`](Self::run) for any column set.
    pub fn run_columns(
        &self,
        events: &[Event],
        cols: &TickColumns,
        offset: usize,
        early_exit: bool,
    ) -> RunStats {
        self.run_columns_scratch(events, cols, offset, early_exit, &mut MatcherScratch::new())
    }

    /// [`run_columns`](Self::run_columns) with caller-provided scratch.
    /// The per-event tick row is filled in place — no per-event allocation.
    pub fn run_columns_scratch(
        &self,
        events: &[Event],
        cols: &TickColumns,
        offset: usize,
        early_exit: bool,
        scratch: &mut MatcherScratch,
    ) -> RunStats {
        self.run_columns_core(events, cols, offset, early_exit, scratch, None)
            .stats
    }

    /// [`run_columns_scratch`](Self::run_columns_scratch) under
    /// [`Limits`]; see [`run_bounded`](Self::run_bounded) for the
    /// semantics.
    pub fn run_columns_bounded(
        &self,
        events: &[Event],
        cols: &TickColumns,
        offset: usize,
        early_exit: bool,
        scratch: &mut MatcherScratch,
        limits: &Limits,
    ) -> BoundedRun {
        self.run_columns_core(events, cols, offset, early_exit, scratch, Some(limits))
    }

    fn run_columns_core(
        &self,
        events: &[Event],
        cols: &TickColumns,
        offset: usize,
        early_exit: bool,
        scratch: &mut MatcherScratch,
        limits: Option<&Limits>,
    ) -> BoundedRun {
        assert!(
            offset + events.len() <= cols.len(),
            "event slice [{offset}, {}) exceeds the {} column rows",
            offset + events.len(),
            cols.len()
        );
        let mut ccols = std::mem::take(&mut scratch.clock_cols);
        ccols.clear();
        ccols.extend(self.tag.clocks.iter().map(|(_, g)| cols.index_of(g)));
        let run = self.run_scratch_core(
            events,
            early_exit,
            scratch,
            |i, e, out| {
                for (x, c) in ccols.iter().enumerate() {
                    out[x] = match c {
                        Some(c) => pack_tick(cols.tick(*c, offset + i)),
                        None => pack_tick(self.clock_tick(ClockId(x), e.time)),
                    };
                }
            },
            limits,
        );
        scratch.clock_cols = ccols;
        run
    }

    /// Column-reading variant of [`matches_within`](Self::matches_within).
    pub fn matches_within_columns(
        &self,
        events: &[Event],
        cols: &TickColumns,
        offset: usize,
    ) -> bool {
        self.run_columns(events, cols, offset, true).accepted
    }

    /// [`matches_within_columns`](Self::matches_within_columns) with
    /// caller-provided scratch.
    pub fn matches_within_columns_scratch(
        &self,
        events: &[Event],
        cols: &TickColumns,
        offset: usize,
        scratch: &mut MatcherScratch,
    ) -> bool {
        self.run_columns_scratch(events, cols, offset, true, scratch)
            .accepted
    }

    /// [`matches_within_columns_scratch`](Self::matches_within_columns_scratch)
    /// under [`Limits`]: `Err` when the run was interrupted before an
    /// answer was established.
    pub fn matches_within_columns_bounded(
        &self,
        events: &[Event],
        cols: &TickColumns,
        offset: usize,
        scratch: &mut MatcherScratch,
        limits: &Limits,
    ) -> Result<bool, Interrupt> {
        let run = self.run_columns_bounded(events, cols, offset, true, scratch, limits);
        match run.verdict.interrupt() {
            Some(i) if !run.stats.accepted => Err(i),
            _ => Ok(run.stats.accepted),
        }
    }

    /// Finds one occurrence and returns the indices (into `events`) of the
    /// events consumed by *pattern* transitions, in consumption order — the
    /// witness events of the complex event. `None` if no occurrence exists.
    ///
    /// Unlike [`accepts`](Self::accepts), this tracks back-pointers through
    /// the configuration graph, so it uses memory proportional to the
    /// number of distinct configurations created.
    pub fn find_occurrence(&self, events: &[Event]) -> Option<Vec<usize>> {
        self.find_occurrence_scratch(events, &mut MatcherScratch::new())
    }

    /// [`find_occurrence`](Self::find_occurrence) with caller-provided
    /// scratch: the configuration arena, frontier index lists and tick row
    /// all reuse capacity across calls, and rejected (duplicate)
    /// configurations are deduplicated in place without cloning.
    pub fn find_occurrence_scratch(
        &self,
        events: &[Event],
        scratch: &mut MatcherScratch,
    ) -> Option<Vec<usize>> {
        // The Err arm is unreachable without limits.
        self.find_occurrence_core(events, scratch, None)
            .unwrap_or_default()
    }

    /// [`find_occurrence_scratch`](Self::find_occurrence_scratch) under
    /// [`Limits`]: the search polls cancellation and the deadline between
    /// events and caps the back-pointer arena at the row budget. `Err`
    /// when interrupted before the search concluded.
    pub fn find_occurrence_bounded(
        &self,
        events: &[Event],
        scratch: &mut MatcherScratch,
        limits: &Limits,
    ) -> Result<Option<Vec<usize>>, Interrupt> {
        self.find_occurrence_core(events, scratch, Some(limits))
    }

    fn find_occurrence_core(
        &self,
        events: &[Event],
        scratch: &mut MatcherScratch,
        limits: Option<&Limits>,
    ) -> Result<Option<Vec<usize>>, Interrupt> {
        let _span = tgm_obs::span::span_if(self.opts.obs.spans, "tag.matcher.find_occurrence");
        let out = self.find_occurrence_loop(events, scratch, limits);
        if self.opts.obs.metrics_on() {
            metrics::counter_add("tag.matcher.find_occurrence_runs", 1);
            metrics::counter_add(
                "tag.matcher.find_occurrence_hits",
                u64::from(matches!(&out, Ok(Some(_)))),
            );
            // Back-pointer arena growth — the memory cost find_occurrence
            // pays over plain acceptance runs.
            metrics::histogram_record(
                "tag.matcher.find_arena_configs",
                scratch.arena_meta.len() as u64,
            );
            if let Err(i) = &out {
                count_interrupt(*i);
            }
        }
        out
    }

    /// The uninstrumented search behind
    /// [`find_occurrence_scratch`](Self::find_occurrence_scratch).
    fn find_occurrence_loop(
        &self,
        events: &[Event],
        scratch: &mut MatcherScratch,
        limits: Option<&Limits>,
    ) -> Result<Option<Vec<usize>>, Interrupt> {
        if events.is_empty() {
            return Ok(None);
        }
        let n = self.tag.clocks.len();
        let MatcherScratch {
            table,
            ticks,
            arena_meta,
            arena_rows,
            arena_prov,
            fr_idx,
            nx_idx,
            ..
        } = scratch;
        ticks.clear();
        ticks.resize(n, NONE_TICK);
        arena_meta.clear();
        arena_rows.clear();
        arena_prov.clear();
        fr_idx.clear();
        nx_idx.clear();

        // Initial configurations: clocks read 0 at the first instant.
        self.fill_ticks_direct(events[0].time, ticks);
        table.reset();
        for &s in self.tag.start_states() {
            let m = pack_meta(s, false);
            let idx = arena_meta.len() as u32;
            arena_rows.extend_from_slice(ticks);
            let (done, staged) = arena_rows.split_at_mut(idx as usize * n);
            let staged: &[i64] = &staged[..n];
            let done: &[i64] = done;
            let h = hash_row(m, staged);
            let am: &[u64] = arena_meta;
            let is_new = table.insert(
                h,
                idx,
                |j| am[j as usize] == m && &done[j as usize * n..(j as usize + 1) * n] == staged,
                |j| hash_row(am[j as usize], &done[j as usize * n..(j as usize + 1) * n]),
            );
            if is_new {
                arena_meta.push(m);
                arena_prov.push(Prov {
                    parent: u32::MAX,
                    event: u32::MAX,
                    pattern: false,
                });
                fr_idx.push(idx);
            } else {
                arena_rows.truncate(idx as usize * n);
            }
        }

        for (eidx, e) in events.iter().enumerate() {
            if let Some(l) = limits {
                l.check()?;
            }
            self.fill_ticks_direct(e.time, ticks);
            if self.opts.strict_updates && ticks.contains(&NONE_TICK) {
                return Ok(None);
            }
            nx_idx.clear();
            table.reset();
            for &node in fr_idx.iter() {
                let m = arena_meta[node as usize];
                let (state, started) = (meta_state(m), meta_started(m));
                let row_start = node as usize * n;
                for tr in self.tag.transitions_from(state) {
                    if !tr.symbol.matches(e.ty) {
                        continue;
                    }
                    if self.opts.anchored && !started && tr.is_skip {
                        continue;
                    }
                    {
                        let row = &arena_rows[row_start..row_start + n];
                        let value = |x: ClockId| -> Option<i64> {
                            let (cur, res) = (ticks[x.index()], row[x.index()]);
                            if cur != NONE_TICK && res != NONE_TICK {
                                Some(cur.saturating_sub(res))
                            } else {
                                None
                            }
                        };
                        if tr.guard.eval(&value) != Some(true) {
                            continue;
                        }
                    }
                    if self.tag.is_accepting(tr.to) && !tr.is_skip {
                        // Backtrack through pattern transitions.
                        let mut out = vec![eidx];
                        let mut cur = node;
                        while cur != u32::MAX {
                            let p = &arena_prov[cur as usize];
                            if p.pattern {
                                out.push(p.event as usize);
                            }
                            cur = p.parent;
                        }
                        out.reverse();
                        return Ok(Some(out));
                    }
                    // Stage the successor at the arena tail; keep it only
                    // if it is new among this event's configurations (the
                    // reference engine's per-event dedup scope).
                    let idx = arena_meta.len() as u32;
                    arena_rows.extend_from_within(row_start..row_start + n);
                    let (done, staged) = arena_rows.split_at_mut(idx as usize * n);
                    let staged = &mut staged[..n];
                    for &x in &tr.resets {
                        staged[x.index()] = ticks[x.index()];
                    }
                    self.canonicalize_packed(staged, ticks);
                    let nm = pack_meta(tr.to, started || !tr.is_skip);
                    let staged: &[i64] = staged;
                    let done: &[i64] = done;
                    let h = hash_row(nm, staged);
                    let am: &[u64] = arena_meta;
                    let is_new = table.insert(
                        h,
                        idx,
                        |j| {
                            am[j as usize] == nm
                                && &done[j as usize * n..(j as usize + 1) * n] == staged
                        },
                        |j| hash_row(am[j as usize], &done[j as usize * n..(j as usize + 1) * n]),
                    );
                    if is_new {
                        arena_meta.push(nm);
                        arena_prov.push(Prov {
                            parent: node,
                            event: eidx as u32,
                            pattern: !tr.is_skip,
                        });
                        nx_idx.push(idx);
                    } else {
                        arena_rows.truncate(idx as usize * n);
                    }
                }
            }
            std::mem::swap(fr_idx, nx_idx);
            if fr_idx.is_empty() {
                return Ok(None);
            }
            // Row budget: the back-pointer arena holds every configuration
            // ever created this search.
            if let Some(l) = limits {
                if l.budget_exceeded(arena_meta.len() as u64) {
                    return Err(Interrupt::BudgetExhausted);
                }
            }
        }
        Ok(None)
    }

    pub(crate) fn clock_tick(&self, x: ClockId, t: Second) -> Option<Tick> {
        self.tag.clocks[x.index()].1.covering_tick(t)
    }

    /// Resolves every clock's covering tick at instant `t` into the packed
    /// row `out`.
    pub(crate) fn fill_ticks_direct(&self, t: Second, out: &mut [i64]) {
        for (x, slot) in out.iter_mut().enumerate() {
            *slot = pack_tick(self.clock_tick(ClockId(x), t));
        }
    }

    /// Saturates packed clock resets whose readings exceed every guard
    /// constant: the canonical representative keeps the reading exactly one
    /// past the largest comparison constant.
    ///
    /// All arithmetic is saturating: near-`i64` extremes a reading past
    /// every guard constant stays past every guard constant, and the
    /// representative is clamped away from the [`NONE_TICK`] encoding
    /// (mirrored exactly in the reference engine's
    /// [`canonicalize`](Self::canonicalize)).
    pub(crate) fn canonicalize_packed(&self, row: &mut [i64], ticks: &[i64]) {
        if !self.opts.saturate {
            return;
        }
        for (x, r) in row.iter_mut().enumerate() {
            let cur = ticks[x];
            if cur != NONE_TICK && *r != NONE_TICK {
                let cap = self.max_consts[x];
                if cur.saturating_sub(*r) > cap {
                    *r = saturate_reset(cur, cap);
                }
            }
        }
    }

    /// Seeds the packed frontier with the start states, all clocks reset to
    /// the given tick row.
    pub(crate) fn seed_frontier_packed(
        &self,
        meta: &mut Vec<u64>,
        rows: &mut Vec<i64>,
        table: &mut DedupTable,
        ticks: &[i64],
    ) {
        let n = self.tag.clocks.len();
        meta.clear();
        rows.clear();
        table.reset();
        for &s in self.tag.start_states() {
            let m = pack_meta(s, false);
            let idx = meta.len() as u32;
            rows.extend_from_slice(ticks);
            let (done, staged) = rows.split_at_mut(idx as usize * n);
            let staged: &[i64] = &staged[..n];
            let done: &[i64] = done;
            let h = hash_row(m, staged);
            let fm: &[u64] = meta;
            let is_new = table.insert(
                h,
                idx,
                |j| fm[j as usize] == m && &done[j as usize * n..(j as usize + 1) * n] == staged,
                |j| hash_row(fm[j as usize], &done[j as usize * n..(j as usize + 1) * n]),
            );
            if is_new {
                meta.push(m);
            } else {
                rows.truncate(idx as usize * n);
            }
        }
    }

    /// Advances the packed frontier by one event given its packed tick row.
    /// Writes the next frontier into `next_meta`/`next_rows` and returns
    /// whether any *newly created* configuration is accepting.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn advance_packed(
        &self,
        meta: &[u64],
        rows: &[i64],
        next_meta: &mut Vec<u64>,
        next_rows: &mut Vec<i64>,
        table: &mut DedupTable,
        ticks: &[i64],
        e: &Event,
        stats: &mut RunStats,
    ) -> bool {
        stats.events += 1;
        next_meta.clear();
        next_rows.clear();
        let n = self.tag.clocks.len();
        let strict_dead = self.opts.strict_updates && ticks.contains(&NONE_TICK);
        let mut reached_accepting = false;
        if !strict_dead {
            table.reset();
            for (ci, &m) in meta.iter().enumerate() {
                let (state, started) = (meta_state(m), meta_started(m));
                let row = &rows[ci * n..ci * n + n];
                for tr in self.tag.transitions_from(state) {
                    if !tr.symbol.matches(e.ty) {
                        continue;
                    }
                    if self.opts.anchored && !started && tr.is_skip {
                        continue;
                    }
                    let value = |x: ClockId| -> Option<i64> {
                        let (cur, res) = (ticks[x.index()], row[x.index()]);
                        if cur != NONE_TICK && res != NONE_TICK {
                            Some(cur.saturating_sub(res))
                        } else {
                            None
                        }
                    };
                    if tr.guard.eval(&value) != Some(true) {
                        continue;
                    }
                    stats.expansions += 1;
                    // Stage the successor row at the pool tail, dedup in
                    // place, and un-stage (truncate) duplicates.
                    let idx = next_meta.len() as u32;
                    next_rows.extend_from_slice(row);
                    let (done, staged) = next_rows.split_at_mut(idx as usize * n);
                    let staged = &mut staged[..n];
                    for &x in &tr.resets {
                        staged[x.index()] = ticks[x.index()];
                    }
                    self.canonicalize_packed(staged, ticks);
                    let nm = pack_meta(tr.to, started || !tr.is_skip);
                    if self.tag.is_accepting(tr.to) && !tr.is_skip {
                        reached_accepting = true;
                    }
                    let staged: &[i64] = staged;
                    let done: &[i64] = done;
                    let h = hash_row(nm, staged);
                    let fm: &[u64] = next_meta;
                    let is_new = table.insert(
                        h,
                        idx,
                        |j| {
                            fm[j as usize] == nm
                                && &done[j as usize * n..(j as usize + 1) * n] == staged
                        },
                        |j| hash_row(fm[j as usize], &done[j as usize * n..(j as usize + 1) * n]),
                    );
                    if is_new {
                        next_meta.push(nm);
                    } else {
                        stats.dedup_hits += 1;
                        next_rows.truncate(idx as usize * n);
                    }
                }
            }
        }
        stats.peak_configs = stats.peak_configs.max(next_meta.len());
        reached_accepting
    }

    /// The packed NFA simulation, parameterized over how each event's tick
    /// row is filled (`fill_ticks(index, event, row)` — direct resolution
    /// or column lookup). Wraps the loop with observability: one span, a
    /// per-event frontier-size histogram accumulated locally and merged
    /// into the global registry once per run, and run-level counters.
    /// Nothing is emitted (and no clock is read) while observability is
    /// disabled, and emission never feeds back into results.
    fn run_scratch_core(
        &self,
        events: &[Event],
        early_exit: bool,
        scratch: &mut MatcherScratch,
        fill_ticks: impl FnMut(usize, &Event, &mut [i64]),
        limits: Option<&Limits>,
    ) -> BoundedRun {
        let _span = tgm_obs::span::span_if(self.opts.obs.spans, "tag.matcher.run");
        let mut frontier_hist = self.opts.obs.metrics_on().then(Histogram::new);
        let run = self.run_scratch_loop(
            events,
            early_exit,
            scratch,
            fill_ticks,
            &mut frontier_hist,
            limits,
        );
        let stats = run.stats;
        if let Some(hist) = &frontier_hist {
            metrics::counter_add("tag.matcher.runs", 1);
            metrics::counter_add("tag.matcher.events", stats.events as u64);
            metrics::counter_add("tag.matcher.expansions", stats.expansions);
            metrics::counter_add("tag.matcher.dedup_hits", stats.dedup_hits);
            metrics::counter_add("tag.matcher.accepted", u64::from(stats.accepted));
            metrics::histogram_merge("tag.matcher.frontier", hist);
            metrics::histogram_record("tag.matcher.peak_frontier", stats.peak_configs as u64);
            // Pool high-water mark: grown capacity of the packed row
            // buffers this run left behind in the scratch.
            metrics::histogram_record(
                "tag.matcher.pool_rows_high_water",
                (scratch.rows.capacity() + scratch.next_rows.capacity()) as u64,
            );
            if let Some(i) = run.verdict.interrupt() {
                count_interrupt(i);
            }
        }
        run
    }

    /// The simulation loop behind
    /// [`run_scratch_core`](Self::run_scratch_core) — since the
    /// [`MatchSession`](crate::MatchSession) redesign, a thin wrapper over
    /// a session: construct (donating the caller's scratch), push every
    /// event, read the verdict back out. There is exactly one engine;
    /// batch runs are replayed streams. `frontier_hist`, when present,
    /// collects the post-advance frontier size at every event.
    fn run_scratch_loop(
        &self,
        events: &[Event],
        early_exit: bool,
        scratch: &mut MatcherScratch,
        mut fill_ticks: impl FnMut(usize, &Event, &mut [i64]),
        frontier_hist: &mut Option<Histogram>,
        limits: Option<&Limits>,
    ) -> BoundedRun {
        // Empty input: accepted iff a start state is accepting.
        if events.is_empty() {
            let stats = RunStats {
                accepted: self.start_accepting(),
                ..RunStats::default()
            };
            return BoundedRun {
                stats,
                verdict: Verdict::Completed,
            };
        }
        tgm_limits::fail::point("tag.matcher.run", limits);

        // Early exit before any event is consumed: the seeded frontier is
        // exactly the start states, so length-0 prefix acceptance is a
        // start-state scan.
        if early_exit && self.start_accepting() {
            let stats = RunStats {
                accepted: true,
                ..RunStats::default()
            };
            return BoundedRun {
                stats,
                verdict: Verdict::Completed,
            };
        }

        let mut session = crate::session::MatchSession::for_batch(
            self.clone(),
            std::mem::take(scratch),
            limits.cloned(),
            frontier_hist.take(),
        );
        let mut outcome = None;
        for (i, e) in events.iter().enumerate() {
            match session.push_with(e, |ticks| fill_ticks(i, e, ticks)) {
                crate::session::Push::Interrupted(int) => {
                    outcome = Some(BoundedRun {
                        stats: session.raw_stats(),
                        verdict: int.into(),
                    });
                    break;
                }
                // Unreachable: the loop breaks as soon as the session dies.
                crate::session::Push::Dead => break,
                crate::session::Push::Advanced { completed } => {
                    // Acceptance wins over a same-event budget trip.
                    if early_exit && completed {
                        let mut stats = session.raw_stats();
                        stats.accepted = true;
                        outcome = Some(BoundedRun {
                            stats,
                            verdict: Verdict::Completed,
                        });
                        break;
                    }
                    if let Some(int) = session.interrupted() {
                        outcome = Some(BoundedRun {
                            stats: session.raw_stats(),
                            verdict: int.into(),
                        });
                        break;
                    }
                    if session.is_dead() {
                        break;
                    }
                }
            }
        }
        let run = outcome.unwrap_or_else(|| {
            let mut stats = session.raw_stats();
            stats.accepted = session.frontier_accepting();
            BoundedRun {
                stats,
                verdict: Verdict::Completed,
            }
        });
        let (recovered, hist) = session.into_parts();
        *scratch = recovered;
        *frontier_hist = hist;
        run
    }

    /// Whether some start state is accepting (length-0 prefix acceptance).
    pub(crate) fn start_accepting(&self) -> bool {
        self.tag
            .start_states()
            .iter()
            .any(|&s| self.tag.is_accepting(s))
    }
}

// ---------------------------------------------------------------------------
// Reference engine (pre-packed-representation), kept for differential
// testing and the E11 engine ablation
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Hash)]
struct Config {
    state: StateId,
    started: bool,
    /// Covering tick of each clock's granularity at its last reset.
    resets: Vec<Option<Tick>>,
}

impl<'a> Matcher<'a> {
    /// Option-based variant of
    /// [`canonicalize_packed`](Self::canonicalize_packed) for the reference
    /// engine.
    fn canonicalize(&self, resets: &mut [Option<Tick>], cur_ticks: &[Option<Tick>]) {
        if !self.opts.saturate {
            return;
        }
        for (x, r) in resets.iter_mut().enumerate() {
            if let (Some(cur), Some(res)) = (cur_ticks[x], *r) {
                let cap = self.max_consts[x];
                if cur.saturating_sub(res) > cap {
                    *r = Some(saturate_reset(cur, cap));
                }
            }
        }
    }

    /// The pre-packed-engine [`run`](Self::run): one `Vec<Option<Tick>>`
    /// per configuration, frontier deduplicated by cloning into a
    /// `HashSet`. Produces bit-identical [`RunStats`] to the packed engine
    /// (asserted by differential tests); exists for those tests and for the
    /// E11 engine ablation.
    pub fn run_reference(&self, events: &[Event], early_exit: bool) -> RunStats {
        self.run_reference_core(events, early_exit, None).stats
    }

    /// [`run_reference`](Self::run_reference) under [`Limits`]: polls and
    /// budget-caps at exactly the same points as
    /// [`run_bounded`](Self::run_bounded), so bounded runs of the two
    /// engines interrupt identically (differentially tested).
    pub fn run_reference_bounded(
        &self,
        events: &[Event],
        early_exit: bool,
        limits: &Limits,
    ) -> BoundedRun {
        self.run_reference_core(events, early_exit, Some(limits))
    }

    fn run_reference_core(
        &self,
        events: &[Event],
        early_exit: bool,
        limits: Option<&Limits>,
    ) -> BoundedRun {
        self.run_core_reference(
            events,
            early_exit,
            |_, e| {
                (0..self.tag.clocks.len())
                    .map(|i| self.clock_tick(ClockId(i), e.time))
                    .collect()
            },
            limits,
        )
    }

    /// Column-reading variant of [`run_reference`](Self::run_reference).
    pub fn run_columns_reference(
        &self,
        events: &[Event],
        cols: &TickColumns,
        offset: usize,
        early_exit: bool,
    ) -> RunStats {
        assert!(
            offset + events.len() <= cols.len(),
            "event slice [{offset}, {}) exceeds the {} column rows",
            offset + events.len(),
            cols.len()
        );
        let clock_cols: Vec<Option<usize>> = self
            .tag
            .clocks
            .iter()
            .map(|(_, g)| cols.index_of(g))
            .collect();
        self.run_core_reference(
            events,
            early_exit,
            |i, e| {
                clock_cols
                    .iter()
                    .enumerate()
                    .map(|(x, c)| match c {
                        Some(c) => cols.tick(*c, offset + i),
                        None => self.clock_tick(ClockId(x), e.time),
                    })
                    .collect()
            },
            None,
        )
        .stats
    }

    /// Per-event completion oracle on the reference engine: the indices
    /// of events at which some occurrence *completes* (a pattern
    /// transition into an accepting state fires). These are exactly the
    /// completion events a [`MatchSession`](crate::MatchSession) reports
    /// while replaying the sequence, computed by an independent engine —
    /// the session differential and eviction-soundness tests compare
    /// against this.
    pub fn completions_reference(&self, events: &[Event]) -> Vec<usize> {
        let mut out = Vec::new();
        if events.is_empty() {
            return out;
        }
        let mut stats = RunStats::default();
        let mut frontier = self.initial_frontier_reference(events[0].time);
        for (i, e) in events.iter().enumerate() {
            let cur_ticks: Vec<Option<Tick>> = (0..self.tag.clocks.len())
                .map(|x| self.clock_tick(ClockId(x), e.time))
                .collect();
            let (next, reached) =
                self.advance_with_reference(&frontier, e, &cur_ticks, &mut stats);
            frontier = next;
            if reached {
                out.push(i);
            }
            if frontier.is_empty() {
                break;
            }
        }
        out
    }

    /// The pre-packed-engine
    /// [`find_occurrence`](Self::find_occurrence), kept to pin witness
    /// indices: the packed arena must return exactly the same occurrence.
    pub fn find_occurrence_reference(&self, events: &[Event]) -> Option<Vec<usize>> {
        if events.is_empty() {
            return None;
        }
        // Arena of configurations with provenance: (config, parent index,
        // event index, was-pattern-transition).
        struct Node {
            cfg: Config,
            parent: usize, // usize::MAX for roots
            event: usize,
            pattern: bool,
        }
        let mut arena: Vec<Node> = Vec::new();
        let mut frontier: Vec<usize> = Vec::new();
        for cfg in self.initial_frontier_reference(events[0].time) {
            arena.push(Node {
                cfg,
                parent: usize::MAX,
                event: usize::MAX,
                pattern: false,
            });
            frontier.push(arena.len() - 1);
        }
        let n_clocks = self.tag.clocks.len();
        for (eidx, e) in events.iter().enumerate() {
            let cur_ticks: Vec<Option<Tick>> = (0..n_clocks)
                .map(|i| self.clock_tick(ClockId(i), e.time))
                .collect();
            if self.opts.strict_updates && cur_ticks.iter().any(Option::is_none) {
                return None;
            }
            let mut next: Vec<usize> = Vec::new();
            let mut seen: HashSet<Config> = HashSet::new();
            for &node_idx in &frontier {
                let cfg = arena[node_idx].cfg.clone();
                for tr in self.tag.transitions_from(cfg.state) {
                    if !tr.symbol.matches(e.ty) {
                        continue;
                    }
                    if self.opts.anchored && !cfg.started && tr.is_skip {
                        continue;
                    }
                    let value = |x: ClockId| -> Option<i64> {
                        match (cur_ticks[x.index()], cfg.resets[x.index()]) {
                            (Some(cur), Some(reset)) => Some(cur.saturating_sub(reset)),
                            _ => None,
                        }
                    };
                    if tr.guard.eval(&value) != Some(true) {
                        continue;
                    }
                    let mut resets = cfg.resets.clone();
                    for &x in &tr.resets {
                        resets[x.index()] = cur_ticks[x.index()];
                    }
                    self.canonicalize(&mut resets, &cur_ticks);
                    let nc = Config {
                        state: tr.to,
                        started: cfg.started || !tr.is_skip,
                        resets,
                    };
                    if self.tag.is_accepting(nc.state) && !tr.is_skip {
                        // Backtrack through pattern transitions.
                        let mut out = vec![eidx];
                        let mut cur = node_idx;
                        while cur != usize::MAX {
                            let node = &arena[cur];
                            if node.pattern {
                                out.push(node.event);
                            }
                            cur = node.parent;
                        }
                        out.reverse();
                        return Some(out);
                    }
                    if seen.insert(nc.clone()) {
                        arena.push(Node {
                            cfg: nc,
                            parent: node_idx,
                            event: eidx,
                            pattern: !tr.is_skip,
                        });
                        next.push(arena.len() - 1);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                return None;
            }
        }
        None
    }

    /// Initial configurations, with clocks reading 0 at instant `t0`.
    fn initial_frontier_reference(&self, t0: Second) -> Vec<Config> {
        let init_resets: Vec<Option<Tick>> = (0..self.tag.clocks.len())
            .map(|i| self.clock_tick(ClockId(i), t0))
            .collect();
        self.initial_frontier_with_reference(init_resets)
    }

    /// Initial configurations from pre-resolved clock ticks at the first
    /// instant.
    fn initial_frontier_with_reference(&self, init_resets: Vec<Option<Tick>>) -> Vec<Config> {
        let mut seen: HashSet<Config> = HashSet::new();
        let mut frontier = Vec::new();
        for &s in self.tag.start_states() {
            let c = Config {
                state: s,
                started: false,
                resets: init_resets.clone(),
            };
            if seen.insert(c.clone()) {
                frontier.push(c);
            }
        }
        frontier
    }

    /// Advances the reference frontier by one event given its pre-resolved
    /// clock ticks. Returns the next frontier and whether any *newly
    /// created* configuration is accepting.
    fn advance_with_reference(
        &self,
        frontier: &[Config],
        e: &Event,
        cur_ticks: &[Option<Tick>],
        stats: &mut RunStats,
    ) -> (Vec<Config>, bool) {
        stats.events += 1;
        let strict_dead = self.opts.strict_updates && cur_ticks.iter().any(Option::is_none);
        let mut next: Vec<Config> = Vec::new();
        let mut next_seen: HashSet<Config> = HashSet::new();
        let mut reached_accepting = false;
        if !strict_dead {
            for cfg in frontier {
                for tr in self.tag.transitions_from(cfg.state) {
                    if !tr.symbol.matches(e.ty) {
                        continue;
                    }
                    if self.opts.anchored && !cfg.started && tr.is_skip {
                        continue;
                    }
                    let value = |x: ClockId| -> Option<i64> {
                        match (cur_ticks[x.index()], cfg.resets[x.index()]) {
                            (Some(cur), Some(reset)) => Some(cur.saturating_sub(reset)),
                            _ => None,
                        }
                    };
                    if tr.guard.eval(&value) != Some(true) {
                        continue;
                    }
                    stats.expansions += 1;
                    let mut resets = cfg.resets.clone();
                    for &x in &tr.resets {
                        resets[x.index()] = cur_ticks[x.index()];
                    }
                    self.canonicalize(&mut resets, cur_ticks);
                    let nc = Config {
                        state: tr.to,
                        started: cfg.started || !tr.is_skip,
                        resets,
                    };
                    if self.tag.is_accepting(nc.state) && !tr.is_skip {
                        reached_accepting = true;
                    }
                    if next_seen.insert(nc.clone()) {
                        next.push(nc);
                    } else {
                        stats.dedup_hits += 1;
                    }
                }
            }
        }
        stats.peak_configs = stats.peak_configs.max(next.len());
        (next, reached_accepting)
    }

    /// The reference NFA simulation, parameterized over how each event's
    /// clock ticks are obtained.
    fn run_core_reference(
        &self,
        events: &[Event],
        early_exit: bool,
        mut ticks_at: impl FnMut(usize, &Event) -> Vec<Option<Tick>>,
        limits: Option<&Limits>,
    ) -> BoundedRun {
        let mut stats = RunStats::default();

        // Empty input: accepted iff a start state is accepting.
        if events.is_empty() {
            stats.accepted = self
                .tag
                .start_states()
                .iter()
                .any(|&s| self.tag.is_accepting(s));
            return BoundedRun {
                stats,
                verdict: Verdict::Completed,
            };
        }

        let mut frontier = self.initial_frontier_with_reference(ticks_at(0, &events[0]));
        if early_exit && frontier.iter().any(|c| self.tag.is_accepting(c.state)) {
            stats.accepted = true;
            return BoundedRun {
                stats,
                verdict: Verdict::Completed,
            };
        }

        for (i, e) in events.iter().enumerate() {
            // Same poll points as the packed engine's run_scratch_loop.
            if let Some(l) = limits {
                if let Err(int) = l.check() {
                    return BoundedRun {
                        stats,
                        verdict: int.into(),
                    };
                }
            }
            let cur_ticks = ticks_at(i, e);
            let (next, reached_accepting) =
                self.advance_with_reference(&frontier, e, &cur_ticks, &mut stats);
            frontier = next;
            if early_exit && reached_accepting {
                stats.accepted = true;
                return BoundedRun {
                    stats,
                    verdict: Verdict::Completed,
                };
            }
            if frontier.is_empty() {
                break;
            }
            if let Some(l) = limits {
                if l.budget_exceeded(stats.peak_configs as u64) {
                    return BoundedRun {
                        stats,
                        verdict: Interrupt::BudgetExhausted.into(),
                    };
                }
            }
        }
        stats.accepted = frontier.iter().any(|c| self.tag.is_accepting(c.state));
        BoundedRun {
            stats,
            verdict: Verdict::Completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use tgm_events::{Event, EventType};
    use tgm_granularity::Calendar;

    use super::*;
    use crate::automaton::{Symbol, TagBuilder};
    use crate::constraint::ClockConstraint;

    const DAY: i64 = 86_400;

    fn ev(ty: u32, t: i64) -> Event {
        Event::new(EventType(ty), t)
    }

    /// A tiny hand-built TAG: accept "A then B on the next day".
    fn next_day_tag() -> crate::Tag {
        let cal = Calendar::standard();
        let mut b = TagBuilder::new();
        let x = b.clock("x_day", cal.get("day").unwrap());
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        b.start(s0).accepting(s2);
        b.transition(s0, s1, Symbol::Exact(EventType(0)), ClockConstraint::True, vec![x]);
        b.transition(s1, s2, Symbol::Exact(EventType(1)), ClockConstraint::eq(x, 1), vec![]);
        b.skip_loop(s0);
        b.skip_loop(s1);
        b.skip_loop(s2);
        b.build()
    }

    #[test]
    fn accepts_next_day_pattern() {
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        // A at day 2 noon, B at day 3 morning.
        let seq = [ev(0, 2 * DAY + 43_200), ev(1, 3 * DAY + 3_600)];
        assert!(m.accepts(&seq));
        assert!(m.matches_within(&seq));
        // Same day: reject.
        let seq2 = [ev(0, 2 * DAY + 3_600), ev(1, 2 * DAY + 43_200)];
        assert!(!m.accepts(&seq2));
        // Two days later: reject.
        let seq3 = [ev(0, 2 * DAY), ev(1, 4 * DAY)];
        assert!(!m.accepts(&seq3));
    }

    #[test]
    fn skips_noise_events() {
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        let seq = [
            ev(7, 2 * DAY),
            ev(0, 2 * DAY + 100),
            ev(9, 2 * DAY + 200),
            ev(1, 3 * DAY + 100),
            ev(7, 3 * DAY + 200),
        ];
        assert!(m.accepts(&seq));
    }

    #[test]
    fn anchored_requires_root_first() {
        let tag = next_day_tag();
        let anchored = Matcher::with_options(
            &tag,
            MatchOptions {
                anchored: true,
                ..Default::default()
            },
        );
        // Noise before A: anchored matching must fail...
        let seq = [ev(7, 2 * DAY), ev(0, 2 * DAY + 100), ev(1, 3 * DAY)];
        assert!(!anchored.accepts(&seq));
        // ...but succeeds when A is first.
        let seq2 = [ev(0, 2 * DAY + 100), ev(7, 2 * DAY + 200), ev(1, 3 * DAY)];
        assert!(anchored.accepts(&seq2));
    }

    #[test]
    fn nondeterministic_choice_of_a() {
        // Two As: the second one pairs with B on the next day.
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        let seq = [ev(0, 0), ev(0, 2 * DAY), ev(1, 3 * DAY)];
        assert!(m.accepts(&seq));
    }

    #[test]
    fn strict_updates_kill_on_gaps() {
        let cal = Calendar::standard();
        let mut b = TagBuilder::new();
        let x = b.clock("x_bday", cal.get("business-day").unwrap());
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        b.start(s0).accepting(s2);
        b.transition(s0, s1, Symbol::Exact(EventType(0)), ClockConstraint::True, vec![x]);
        b.transition(s1, s2, Symbol::Exact(EventType(1)), ClockConstraint::eq(x, 1), vec![]);
        b.skip_loop(s0);
        b.skip_loop(s1);
        b.skip_loop(s2);
        let tag = b.build();

        // A on Monday (day 2), noise on Saturday (day 7), B next Monday:
        // b-day distance Monday->Monday is 5, so no match either way, but
        // A Thursday(5)->B Friday(6) with Saturday noise in between:
        let seq = [ev(0, 5 * DAY), ev(9, 7 * DAY + 100), ev(1, 8 * DAY)];
        // Wait: day 5 is Thursday 2000-01-06, day 6 Friday, day 7 Saturday,
        // day 8 Sunday. Use Friday -> Monday instead:
        let seq2 = [ev(0, 6 * DAY), ev(9, 7 * DAY + 100), ev(1, 9 * DAY)];
        let lazy = Matcher::new(&tag);
        // Lazy semantics: the Saturday noise is skippable.
        assert!(lazy.accepts(&seq2));
        let strict = Matcher::with_options(
            &tag,
            MatchOptions {
                strict_updates: true,
                ..Default::default()
            },
        );
        // Strict semantics (paper): the Saturday event has no business-day
        // tick, killing every run.
        assert!(!strict.accepts(&seq2));
        // Without weekend noise both agree.
        let clean = [ev(0, 6 * DAY), ev(1, 9 * DAY)];
        assert!(lazy.accepts(&clean));
        assert!(strict.accepts(&clean));
        let _ = seq;
    }

    #[test]
    fn empty_sequence() {
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        assert!(!m.accepts(&[]));
    }

    #[test]
    fn column_runs_agree_with_direct_runs() {
        use tgm_events::TickColumns;
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        let grans: Vec<_> = tag.clocks().iter().map(|(_, g)| g.clone()).collect();
        let seqs: Vec<Vec<Event>> = vec![
            vec![ev(0, 2 * DAY + 43_200), ev(1, 3 * DAY + 3_600)], // accept
            vec![ev(0, 2 * DAY), ev(1, 2 * DAY + 100)],            // same day
            vec![ev(7, 2 * DAY), ev(0, 2 * DAY + 1), ev(1, 3 * DAY)], // noise
            vec![ev(0, 0), ev(0, 2 * DAY), ev(1, 3 * DAY)],        // nondet
        ];
        for events in &seqs {
            let cols = TickColumns::build(events, &grans);
            for start in 0..events.len() {
                let slice = &events[start..];
                let direct = m.run(slice, false);
                let columns = m.run_columns(slice, &cols, start, false);
                assert_eq!(direct.accepted, columns.accepted, "start {start}");
                assert_eq!(direct.expansions, columns.expansions, "start {start}");
                assert_eq!(
                    m.matches_within(slice),
                    m.matches_within_columns(slice, &cols, start)
                );
            }
        }
        // Clocks without a column fall back to direct resolution.
        let empty_cols = TickColumns::build(&seqs[0], &[]);
        assert!(m.run_columns(&seqs[0], &empty_cols, 0, false).accepted);
    }

    #[test]
    fn stats_reported() {
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        let seq = [ev(0, 2 * DAY), ev(1, 3 * DAY)];
        let stats = m.run(&seq, false);
        assert!(stats.accepted);
        assert_eq!(stats.events, 2);
        assert!(stats.peak_configs >= 1);
        assert!(stats.expansions >= 2);
    }

    #[test]
    fn scratch_reuse_across_runs_and_tags() {
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        let mut scratch = MatcherScratch::new();
        let seqs = [
            vec![ev(0, 2 * DAY), ev(1, 3 * DAY)],
            vec![ev(0, 2 * DAY), ev(1, 4 * DAY)],
            vec![ev(7, 2 * DAY), ev(0, 2 * DAY + 1), ev(1, 3 * DAY)],
        ];
        for seq in &seqs {
            let fresh = m.run(seq, false);
            let reused = m.run_scratch(seq, false, &mut scratch);
            assert_eq!(fresh, reused);
        }
        // The same scratch serves a different TAG (different clock count).
        let cal = Calendar::standard();
        let mut b = TagBuilder::new();
        let x = b.clock("x_day", cal.get("day").unwrap());
        let y = b.clock("x_week", cal.get("week").unwrap());
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.start(s0).accepting(s1);
        b.transition(
            s0,
            s1,
            Symbol::Exact(EventType(1)),
            ClockConstraint::And(vec![ClockConstraint::eq(x, 1), ClockConstraint::Le(y, 1)]),
            vec![],
        );
        b.skip_loop(s0);
        let tag2 = b.build();
        let m2 = Matcher::new(&tag2);
        let seq = [ev(0, 2 * DAY), ev(1, 3 * DAY)];
        assert_eq!(
            m2.run(&seq, false),
            m2.run_scratch(&seq, false, &mut scratch)
        );
    }

    #[test]
    fn find_occurrence_witness_pinned() {
        // Regression: packed arena must report exactly the same witness
        // indices as the reference engine, with noise interleaved and a
        // nondeterministic earlier A that cannot complete.
        let tag = next_day_tag();
        let m = Matcher::new(&tag);
        let seq = [
            ev(7, 0),             // noise
            ev(0, 2 * DAY),       // A (this one completes)
            ev(9, 2 * DAY + 50),  // noise
            ev(1, 3 * DAY),       // B, next day
            ev(1, 5 * DAY),       // late B
        ];
        let got = m.find_occurrence(&seq);
        assert_eq!(got, Some(vec![1, 3]));
        assert_eq!(got, m.find_occurrence_reference(&seq));
        // No occurrence.
        let seq2 = [ev(0, 2 * DAY), ev(1, 4 * DAY)];
        assert_eq!(m.find_occurrence(&seq2), None);
        assert_eq!(m.find_occurrence_reference(&seq2), None);
        // Scratch reuse returns the same witness.
        let mut scratch = MatcherScratch::new();
        assert_eq!(
            m.find_occurrence_scratch(&seq, &mut scratch),
            Some(vec![1, 3])
        );
        assert_eq!(m.find_occurrence_scratch(&seq2, &mut scratch), None);
    }

    /// All eight `MatchOptions` combinations.
    fn all_option_combos() -> Vec<MatchOptions> {
        let mut out = Vec::new();
        for bits in 0..8u32 {
            out.push(MatchOptions {
                anchored: bits & 1 != 0,
                strict_updates: bits & 2 != 0,
                saturate: bits & 4 != 0,
                ..Default::default()
            });
        }
        out
    }

    /// A business-day TAG (gapped granularity) for strict-semantics tests.
    fn bday_tag() -> crate::Tag {
        let cal = Calendar::standard();
        let mut b = TagBuilder::new();
        let x = b.clock("x_bday", cal.get("business-day").unwrap());
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        b.start(s0).accepting(s2);
        b.transition(s0, s1, Symbol::Exact(EventType(0)), ClockConstraint::True, vec![x]);
        b.transition(s1, s2, Symbol::Exact(EventType(1)), ClockConstraint::eq(x, 1), vec![]);
        b.skip_loop(s0);
        b.skip_loop(s1);
        b.skip_loop(s2);
        b.build()
    }

    #[test]
    fn strict_updates_parity_between_run_and_find_occurrence() {
        // Pinned semantics: for TAGs whose start states are NOT accepting
        // (every constructed TAG — an occurrence needs at least one pattern
        // transition), `find_occurrence` succeeds iff `matches_within`
        // accepts, under every option combination — including strict
        // updates over sequences with gap (weekend) events, where both
        // treat the first uncovered event as killing every run.
        //
        // Day 6 = Friday, day 7 = Saturday (gap), day 9 = Monday.
        let sequences: Vec<Vec<Event>> = vec![
            vec![ev(0, 6 * DAY), ev(9, 7 * DAY + 100), ev(1, 9 * DAY)], // gap noise
            vec![ev(0, 6 * DAY), ev(1, 9 * DAY)],                       // clean
            vec![ev(9, 7 * DAY), ev(0, 9 * DAY), ev(1, 10 * DAY)],     // gap first
            vec![ev(0, 7 * DAY), ev(1, 9 * DAY)],                       // A in gap
            vec![ev(0, 6 * DAY)],                                       // incomplete
        ];
        let tag = bday_tag();
        for opts in all_option_combos() {
            let m = Matcher::with_options(&tag, opts);
            for (i, seq) in sequences.iter().enumerate() {
                let within = m.matches_within(seq);
                let occ = m.find_occurrence(seq);
                assert_eq!(
                    occ.is_some(),
                    within,
                    "opts {opts:?}, sequence {i}: find_occurrence/matches_within parity"
                );
                // And the reference engine pins the same semantics.
                assert_eq!(occ, m.find_occurrence_reference(seq), "opts {opts:?}, seq {i}");
            }
        }
    }

    #[test]
    fn strict_updates_accepting_start_divergence_pinned() {
        // The one intended divergence: a TAG whose start state is already
        // accepting (empty pattern). `matches_within` accepts before
        // consuming any event, while `find_occurrence` requires a
        // completing pattern transition and returns None — even under
        // strict updates where the gap event would kill the run.
        let cal = Calendar::standard();
        let mut b = TagBuilder::new();
        let _x = b.clock("x_bday", cal.get("business-day").unwrap());
        let s0 = b.state("s0");
        b.start(s0).accepting(s0);
        b.skip_loop(s0);
        let tag = b.build();
        let gap_only = [ev(0, 7 * DAY)]; // Saturday: no business-day tick
        for opts in all_option_combos() {
            let m = Matcher::with_options(&tag, opts);
            assert!(m.matches_within(&gap_only), "opts {opts:?}");
            assert_eq!(m.find_occurrence(&gap_only), None, "opts {opts:?}");
            // Full-sequence acceptance differs from prefix acceptance when
            // the run cannot consume the gap event: strict updates kill it,
            // and anchored matching forbids the pre-start skip loop.
            let full = m.run(&gap_only, false).accepted;
            assert_eq!(
                full,
                !opts.strict_updates && !opts.anchored,
                "opts {opts:?}"
            );
            // Reference engine: identical on all of the above.
            assert_eq!(m.run_reference(&gap_only, false), m.run(&gap_only, false));
            assert_eq!(m.run_reference(&gap_only, true), m.run(&gap_only, true));
        }
    }
}

//! Differential property tests for the multi-TAG shared-scan engine: on
//! randomized candidate sets (sibling assignments of a random chain
//! structure, optionally mixed with a structurally different tag so runs
//! span several lanes), [`MultiMatcher`] must produce *bit-identical*
//! per-candidate [`RunStats`](tgm_tag::RunStats) to running the packed
//! per-candidate engine — the retained oracle — one tag at a time, under
//! every `MatchOptions` combination, for direct, column-reading,
//! early-exit, and suffix-offset runs alike, and under bounded execution
//! with typed verdicts.

use proptest::prelude::*;
use tgm_core::{StructureBuilder, Tcg};
use tgm_events::{Event, EventType, TickColumns};
use tgm_granularity::{Calendar, Gran};
use tgm_limits::{Interrupt, Limits};
use tgm_tag::{
    MatchOptions, Matcher, MatcherScratch, MultiMatcher, MultiScratch, Tag, TagTemplate,
};

const DAY: i64 = 86_400;

fn grans() -> Vec<Gran> {
    let cal = Calendar::standard();
    ["hour", "day", "week", "business-day"]
        .iter()
        .map(|n| cal.get(n).unwrap())
        .collect()
}

fn all_option_combos() -> Vec<MatchOptions> {
    (0..8u32)
        .map(|bits| {
            MatchOptions::builder()
                .anchored(bits & 1 != 0)
                .strict_updates(bits & 2 != 0)
                .saturate(bits & 4 != 0)
                .build()
        })
        .collect()
}

/// A random chain-structure template: `chain_len` variables, random
/// granularities and bounds on the arcs.
fn build_template(chain_len: usize, gran_picks: &[usize], bounds: &[(u64, u64)]) -> TagTemplate {
    let gs = grans();
    let mut b = StructureBuilder::new();
    let vars: Vec<_> = (0..chain_len).map(|i| b.var(format!("X{i}"))).collect();
    for i in 1..chain_len {
        let (lo, w) = bounds[i - 1];
        let g = gs[gran_picks[i - 1] % gs.len()].clone();
        b.constrain(vars[i - 1], vars[i], Tcg::new(lo, lo + w, g));
    }
    TagTemplate::new(&b.build().unwrap())
}

/// Per-candidate oracle: the packed engine run one tag at a time, sharing
/// one scratch (reuse must not leak state between candidates).
fn oracle_runs(
    tags: &[Tag],
    opts: MatchOptions,
    events: &[Event],
    early_exit: bool,
) -> Vec<tgm_tag::RunStats> {
    let mut scratch = MatcherScratch::new();
    tags.iter()
        .map(|t| Matcher::with_options(t, opts).run_scratch(events, early_exit, &mut scratch))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shared_scan_bit_identical_to_per_candidate(
        chain_len in 2usize..4,
        gran_picks in proptest::collection::vec(0usize..4, 3),
        bounds in proptest::collection::vec((0u64..3, 0u64..3), 3),
        // Candidate assignments: each a φ over a 4-type pool.
        phis in proptest::collection::vec(
            proptest::collection::vec(0u32..4, 4), 1..7),
        mix_other in any::<bool>(),
        raw_events in proptest::collection::vec((0u32..4, 0i64..60), 1..40),
        start in 0usize..8,
    ) {
        let template = build_template(chain_len, &gran_picks, &bounds);
        let mut tags: Vec<Tag> = phis
            .iter()
            .map(|p| {
                let phi: Vec<EventType> = p.iter().map(|&t| EventType(t)).collect();
                template.instantiate(&phi)
            })
            .collect();
        if mix_other {
            // A different skeleton (other chain length / granularity), so
            // the run exercises the multi-lane path.
            let other = build_template(chain_len + 1, &[2, 1, 3], &[(1, 1), (0, 2), (1, 0)]);
            tags.push(other.instantiate(&[
                EventType(0),
                EventType(1),
                EventType(2),
                EventType(3),
            ]));
        }
        let mut events: Vec<Event> = raw_events
            .iter()
            .map(|&(ty, step)| Event::new(EventType(ty), 2 * DAY + step * 6 * 3_600))
            .collect();
        events.sort_by_key(|e| e.time);
        // Columns over the union of every candidate's clock granularities.
        let mut all_grans: Vec<Gran> = Vec::new();
        for t in &tags {
            for (_, g) in t.clocks() {
                if !all_grans.contains(g) {
                    all_grans.push(g.clone());
                }
            }
        }
        let cols = TickColumns::build(&events, &all_grans);
        let start = start.min(events.len().saturating_sub(1));
        let slice = &events[start..];

        let mut mscratch = MultiScratch::new();
        for opts in all_option_combos() {
            let mm = MultiMatcher::with_options(tags.iter().collect(), opts);
            for early_exit in [false, true] {
                let want = oracle_runs(&tags, opts, &events, early_exit);
                let got = mm.run_scratch(&events, early_exit, &mut mscratch);
                prop_assert_eq!(&want, &got, "run, opts {:?}", opts);

                // Column-reading suffix run vs the oracle's column run.
                let mut oscratch = MatcherScratch::new();
                let want_cols: Vec<_> = tags
                    .iter()
                    .map(|t| {
                        Matcher::with_options(t, opts)
                            .run_columns_scratch(slice, &cols, start, early_exit, &mut oscratch)
                    })
                    .collect();
                let got_cols =
                    mm.run_columns_scratch(slice, &cols, start, early_exit, &mut mscratch);
                prop_assert_eq!(&want_cols, &got_cols, "run_columns, opts {:?}", opts);

                // Limits::none() must not perturb anything and completes.
                let bounded =
                    mm.run_bounded(&events, early_exit, &mut mscratch, &Limits::none());
                prop_assert!(bounded.verdict.is_complete());
                prop_assert_eq!(&want, &bounded.stats, "bounded none, opts {:?}", opts);

                // A zero budget either completes (frontier emptied before
                // any pooled row survived an event) with identical stats,
                // or trips the typed budget verdict.
                let tight = mm.run_bounded(
                    &events,
                    early_exit,
                    &mut mscratch,
                    &Limits::none().with_budget(0),
                );
                match tight.verdict.interrupt() {
                    None => prop_assert_eq!(&want, &tight.stats, "tight-completed {:?}", opts),
                    Some(i) => prop_assert_eq!(i, Interrupt::BudgetExhausted),
                }
            }
        }
    }

    /// Candidate-set composition is irrelevant: any subset scanned
    /// together gives each member the stats it gets scanned alone (with
    /// obs on, to cover the instrumented path).
    #[test]
    fn arbitrary_subsets_obs_on(
        subset_mask in 1u32..63,
        raw_events in proptest::collection::vec((0u32..4, 0i64..40), 1..30),
    ) {
        tgm_obs::set_enabled(true);
        let template = build_template(3, &[1, 2], &[(0, 2), (1, 1)]);
        let pool: Vec<Tag> = (0..6)
            .map(|i| {
                template.instantiate(&[
                    EventType(i % 4),
                    EventType((i + 1) % 4),
                    EventType((i + 2) % 4),
                ])
            })
            .collect();
        let tags: Vec<&Tag> = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| subset_mask & (1 << i) != 0)
            .map(|(_, t)| t)
            .collect();
        let mut events: Vec<Event> = raw_events
            .iter()
            .map(|&(ty, step)| Event::new(EventType(ty), 2 * DAY + step * 6 * 3_600))
            .collect();
        events.sort_by_key(|e| e.time);
        let opts = MatchOptions::default();
        let mm = MultiMatcher::with_options(tags.clone(), opts);
        let got = mm.run_scratch(&events, true, &mut MultiScratch::new());
        let mut scratch = MatcherScratch::new();
        for (k, t) in tags.iter().enumerate() {
            let want = Matcher::with_options(t, opts).run_scratch(&events, true, &mut scratch);
            prop_assert_eq!(got[k], want, "member {}", k);
        }
        tgm_obs::set_enabled(false);
    }
}

/// A deadline already in the past interrupts with the typed verdict before
/// any event is consumed.
#[test]
fn past_deadline_typed_verdict() {
    let template = build_template(2, &[1], &[(0, 2)]);
    let tags: Vec<Tag> = (0..4)
        .map(|i| template.instantiate(&[EventType(0), EventType(i)]))
        .collect();
    let events: Vec<Event> = (0..10)
        .map(|i| Event::new(EventType(i % 4), 2 * DAY + i as i64 * 3_600))
        .collect();
    let mm = MultiMatcher::new(tags.iter().collect());
    let run = mm.run_bounded(
        &events,
        false,
        &mut MultiScratch::new(),
        &Limits::none().with_deadline(std::time::Instant::now() - std::time::Duration::from_secs(1)),
    );
    assert_eq!(run.verdict.interrupt(), Some(Interrupt::DeadlineExceeded));
    for s in &run.stats {
        assert!(!s.accepted);
        assert_eq!(s.events, 0);
    }
}

/// Cancellation via a shared token interrupts with the typed verdict.
#[test]
fn cancelled_token_typed_verdict() {
    let template = build_template(2, &[1], &[(0, 2)]);
    let t0 = template.instantiate(&[EventType(0), EventType(1)]);
    let events: Vec<Event> = (0..10)
        .map(|i| Event::new(EventType(i % 2), 2 * DAY + i as i64 * 3_600))
        .collect();
    let mm = MultiMatcher::new(vec![&t0]);
    let token = tgm_limits::CancelToken::new();
    token.cancel();
    let run = mm.run_bounded(
        &events,
        false,
        &mut MultiScratch::new(),
        &Limits::none().with_cancel(token),
    );
    assert_eq!(run.verdict.interrupt(), Some(Interrupt::Cancelled));
}

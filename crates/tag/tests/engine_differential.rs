//! Differential property tests for the packed matcher engine: on
//! randomized TAGs (built from random chain structures) and randomized
//! event sequences, the scratch-based packed engine must produce
//! *bit-identical* [`RunStats`] — and identical occurrence witnesses — to
//! the retained reference engine, under every `MatchOptions` combination,
//! for direct, column-reading, early-exit, and suffix-offset runs alike.

use proptest::prelude::*;
use tgm_core::{ComplexEventType, StructureBuilder, Tcg};
use tgm_events::{Event, EventType, TickColumns};
use tgm_granularity::{Calendar, Gran};
use tgm_tag::{build_tag, MatchOptions, Matcher, MatcherScratch, Tag};

const DAY: i64 = 86_400;

fn grans() -> Vec<Gran> {
    let cal = Calendar::standard();
    ["hour", "day", "week", "business-day"]
        .iter()
        .map(|n| cal.get(n).unwrap())
        .collect()
}

fn all_option_combos() -> Vec<MatchOptions> {
    (0..8u32)
        .map(|bits| {
            MatchOptions::builder()
                .anchored(bits & 1 != 0)
                .strict_updates(bits & 2 != 0)
                .saturate(bits & 4 != 0)
                .build()
        })
        .collect()
}

/// Builds a chain-structured complex event type and its TAG from the
/// proptest-drawn parameters.
fn build_random_tag(
    chain_len: usize,
    gran_picks: &[usize],
    bounds: &[(u64, u64)],
    phi_picks: &[u32],
) -> Tag {
    let gs = grans();
    let mut b = StructureBuilder::new();
    let vars: Vec<_> = (0..chain_len).map(|i| b.var(format!("X{i}"))).collect();
    for i in 1..chain_len {
        let (lo, w) = bounds[i - 1];
        let g = gs[gran_picks[i - 1] % gs.len()].clone();
        b.constrain(vars[i - 1], vars[i], Tcg::new(lo, lo + w, g));
    }
    let s = b.build().unwrap();
    let phi: Vec<EventType> = (0..chain_len)
        .map(|i| {
            if i == 0 {
                EventType(0)
            } else {
                EventType(phi_picks[i - 1])
            }
        })
        .collect();
    build_tag(&ComplexEventType::new(s, phi))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packed_engine_bit_identical_to_reference(
        chain_len in 2usize..4,
        gran_picks in proptest::collection::vec(0usize..4, 3),
        bounds in proptest::collection::vec((0u64..3, 0u64..3), 3),
        phi_picks in proptest::collection::vec(0u32..3, 3),
        raw_events in proptest::collection::vec((0u32..4, 0i64..60), 1..40),
        start in 0usize..8,
    ) {
        let tag = build_random_tag(chain_len, &gran_picks, &bounds, &phi_picks);
        // Events over ~15 days starting Monday 2000-01-03 (quarter-day
        // steps, so business-day gaps occur), in time order.
        let mut events: Vec<Event> = raw_events
            .iter()
            .map(|&(ty, step)| Event::new(EventType(ty), 2 * DAY + step * 6 * 3_600))
            .collect();
        events.sort_by_key(|e| e.time);
        let tag_grans: Vec<Gran> = tag.clocks().iter().map(|(_, g)| g.clone()).collect();
        let cols = TickColumns::build(&events, &tag_grans);
        let start = start.min(events.len().saturating_sub(1));
        let slice = &events[start..];

        // One scratch reused across every combination: reuse must not
        // leak state between runs of different options or engines.
        let mut scratch = MatcherScratch::new();
        for opts in all_option_combos() {
            let m = Matcher::with_options(&tag, opts);
            for early_exit in [false, true] {
                let reference = m.run_reference(&events, early_exit);
                let packed = m.run_scratch(&events, early_exit, &mut scratch);
                prop_assert_eq!(reference, packed, "run, opts {:?}", opts);

                let reference =
                    m.run_columns_reference(slice, &cols, start, early_exit);
                let packed =
                    m.run_columns_scratch(slice, &cols, start, early_exit, &mut scratch);
                prop_assert_eq!(reference, packed, "run_columns, opts {:?}", opts);
            }
            prop_assert_eq!(
                m.find_occurrence_reference(&events),
                m.find_occurrence_scratch(&events, &mut scratch),
                "find_occurrence, opts {:?}",
                opts
            );
        }
    }
}

#[test]
fn engines_agree_on_empty_input() {
    let tag = build_random_tag(2, &[1], &[(1, 0)], &[1]);
    let mut scratch = MatcherScratch::new();
    for opts in all_option_combos() {
        let m = Matcher::with_options(&tag, opts);
        for early_exit in [false, true] {
            assert_eq!(
                m.run_reference(&[], early_exit),
                m.run_scratch(&[], early_exit, &mut scratch),
                "opts {opts:?}"
            );
        }
        assert_eq!(m.find_occurrence_reference(&[]), None);
        assert_eq!(m.find_occurrence_scratch(&[], &mut scratch), None);
    }
}

//! Differential tests for [`MatchSession`]: replaying a stream through a
//! session must be *bit-identical* — stats and completion occurrences —
//! to the batch entry points (`run`, `run_columns`) under every
//! `MatchOptions` combination and any push-chunking; and horizon eviction
//! must never lose a completion while keeping the frontier within the
//! Theorem 4 bound.

use proptest::prelude::*;
use tgm_core::{ComplexEventType, StructureBuilder, Tcg};
use tgm_events::{Event, EventType, TickColumns};
use tgm_granularity::{Calendar, Gran};
use tgm_limits::Verdict;
use tgm_tag::{build_tag, MatchOptions, MatchSession, Matcher, Tag};

const DAY: i64 = 86_400;

fn grans() -> Vec<Gran> {
    let cal = Calendar::standard();
    ["hour", "day", "week", "business-day"]
        .iter()
        .map(|n| cal.get(n).unwrap())
        .collect()
}

fn all_option_combos() -> Vec<MatchOptions> {
    (0..8u32)
        .map(|bits| {
            MatchOptions::builder()
                .anchored(bits & 1 != 0)
                .strict_updates(bits & 2 != 0)
                .saturate(bits & 4 != 0)
                .build()
        })
        .collect()
}

fn build_random_tag(
    chain_len: usize,
    gran_picks: &[usize],
    bounds: &[(u64, u64)],
    phi_picks: &[u32],
) -> Tag {
    let gs = grans();
    let mut b = StructureBuilder::new();
    let vars: Vec<_> = (0..chain_len).map(|i| b.var(format!("X{i}"))).collect();
    for i in 1..chain_len {
        let (lo, w) = bounds[i - 1];
        let g = gs[gran_picks[i - 1] % gs.len()].clone();
        b.constrain(vars[i - 1], vars[i], Tcg::new(lo, lo + w, g));
    }
    let s = b.build().unwrap();
    let phi: Vec<EventType> = (0..chain_len)
        .map(|i| {
            if i == 0 {
                EventType(0)
            } else {
                EventType(phi_picks[i - 1])
            }
        })
        .collect();
    build_tag(&ComplexEventType::new(s, phi))
}

fn events_from(raw: &[(u32, i64)]) -> Vec<Event> {
    let mut events: Vec<Event> = raw
        .iter()
        .map(|&(ty, step)| Event::new(EventType(ty), 2 * DAY + step * 6 * 3_600))
        .collect();
    events.sort_by_key(|e| e.time);
    events
}

/// Splits `events` into chunks whose sizes cycle through `chunking`
/// (zero sizes are bumped to one), covering the whole slice.
fn push_chunked(session: &mut MatchSession<'_>, events: &[Event], chunking: &[usize]) {
    let mut rest = events;
    let mut k = 0;
    while !rest.is_empty() {
        let take = chunking[k % chunking.len()].min(rest.len());
        let (chunk, tail) = rest.split_at(take.max(1).min(rest.len()));
        session.push_batch(chunk);
        rest = tail;
        k += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The acceptance-criteria differential: for every MatchOptions combo,
    /// a session replay of the stream — under an arbitrary push-chunking —
    /// finalizes to the exact batch `run` result, its completion indices
    /// equal the independent reference engine's, and the column-reading
    /// `push_row` path reproduces batch `run_columns` the same way.
    #[test]
    fn session_replay_bit_identical_to_batch(
        chain_len in 2usize..4,
        gran_picks in proptest::collection::vec(0usize..4, 3),
        bounds in proptest::collection::vec((0u64..3, 0u64..3), 3),
        phi_picks in proptest::collection::vec(0u32..3, 3),
        raw_events in proptest::collection::vec((0u32..4, 0i64..60), 1..40),
        chunking in proptest::collection::vec(0usize..7, 1..5),
        start in 0usize..8,
    ) {
        let tag = build_random_tag(chain_len, &gran_picks, &bounds, &phi_picks);
        let events = events_from(&raw_events);
        let tag_grans: Vec<Gran> = tag.clocks().iter().map(|(_, g)| g.clone()).collect();
        let cols = TickColumns::build(&events, &tag_grans);
        let start = start.min(events.len().saturating_sub(1));
        let slice = &events[start..];

        for opts in all_option_combos() {
            let m = Matcher::with_options(&tag, opts);

            // Direct-resolution push vs batch run.
            let batch = m.run(&events, false);
            let mut session = MatchSession::with_options(&tag, opts);
            push_chunked(&mut session, &events, &chunking);
            let completions: Vec<usize> =
                session.completed().map(|c| c.index as usize).collect();
            prop_assert_eq!(
                &completions,
                &m.completions_reference(&events),
                "completions, opts {:?}", opts
            );
            let run = session.finalize();
            prop_assert_eq!(run.stats, batch, "run stats, opts {:?}", opts);
            prop_assert!(matches!(run.verdict, Verdict::Completed));

            // Column-reading push_row vs batch run_columns (suffix offset).
            let batch_cols = m.run_columns(slice, &cols, start, false);
            let mut session = MatchSession::with_options(&tag, opts);
            for (i, &e) in slice.iter().enumerate() {
                if !matches!(
                    session.push_row(e, &cols, start + i),
                    tgm_tag::Push::Advanced { .. }
                ) {
                    break;
                }
            }
            let run = session.finalize();
            prop_assert_eq!(run.stats, batch_cols, "run_columns stats, opts {:?}", opts);
        }
    }

    /// Eviction soundness: with horizon eviction on, under any
    /// push-chunking, the session reports exactly the same completion
    /// events as the reference engine — no occurrence is lost or invented
    /// when frontier rows are aged out.
    #[test]
    fn eviction_never_loses_a_completion(
        chain_len in 2usize..4,
        gran_picks in proptest::collection::vec(0usize..4, 3),
        bounds in proptest::collection::vec((0u64..3, 0u64..3), 3),
        phi_picks in proptest::collection::vec(0u32..3, 3),
        raw_events in proptest::collection::vec((0u32..4, 0i64..200), 1..60),
        chunking in proptest::collection::vec(0usize..7, 1..5),
    ) {
        let tag = build_random_tag(chain_len, &gran_picks, &bounds, &phi_picks);
        let events = events_from(&raw_events);

        for opts in all_option_combos() {
            let m = Matcher::with_options(&tag, opts);
            let expected = m.completions_reference(&events);
            let mut session = MatchSession::with_options(&tag, opts).with_eviction();
            push_chunked(&mut session, &events, &chunking);
            let got: Vec<usize> = session.completed().map(|c| c.index as usize).collect();
            prop_assert_eq!(&got, &expected, "opts {:?}", opts);
        }
    }
}

#[test]
fn empty_and_unpushed_sessions_match_batch() {
    let tag = build_random_tag(2, &[1], &[(1, 1)], &[1]);
    for opts in all_option_combos() {
        let m = Matcher::with_options(&tag, opts);
        let batch = m.run(&[], false);
        let run = MatchSession::with_options(&tag, opts).finalize();
        assert_eq!(run.stats, batch, "opts {opts:?}");
        // Pushing an empty batch changes nothing either.
        let mut session = MatchSession::with_options(&tag, opts);
        assert_eq!(session.push_batch(&[]), 0);
        assert_eq!(session.finalize().stats, batch, "opts {opts:?}");
    }
}

/// The long-stream memory ceiling of the acceptance criteria: a
/// 10⁶-event synthetic stream (driven through chunked incremental
/// `TickColumns::append` + `push_row`, the `tgm stream` pipeline) keeps
/// peak frontier rows within the Theorem 4 `frontier_bound()` and the
/// evicting live frontier far below the event count. Run by the CI
/// `stream-smoke` job with `--ignored --release`.
#[test]
#[ignore = "long stream; run in release via the stream-smoke CI job"]
fn million_event_stream_is_frontier_bounded() {
    let tag = build_random_tag(3, &[1, 3], &[(0, 2), (1, 1)], &[1, 2]);
    let tag_grans: Vec<Gran> = tag.clocks().iter().map(|(_, g)| g.clone()).collect();

    let session = MatchSession::new(&tag);
    let bound = session.frontier_bound();
    let mut session = session.with_eviction();

    // A synthetic year-scale stream: type cycles with a pseudo-random
    // phase, ~87 events/day, timestamps strictly increasing.
    const N: usize = 1_000_000;
    const CHUNK: usize = 4096;
    let mut cols = TickColumns::with_granularities(&tag_grans);
    let mut pushed = 0usize;
    let mut completions = 0u64;
    let mut peak = 0usize;
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut t = 2 * DAY;
    while pushed < N {
        let chunk: Vec<Event> = (0..CHUNK.min(N - pushed))
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                t += 1 + (state >> 33) as i64 % 1700;
                Event::new(EventType((state >> 7) as u32 % 4), t)
            })
            .collect();
        let base = cols.len();
        cols.append(&chunk);
        for (i, &e) in chunk.iter().enumerate() {
            match session.push_row(e, &cols, base + i) {
                tgm_tag::Push::Advanced { .. } => {}
                p => panic!("stream stopped early: {p:?}"),
            }
            peak = peak.max(session.frontier_size());
        }
        completions += session.completed().count() as u64;
        pushed += chunk.len();
    }
    let stats = session.stats();
    assert_eq!(stats.events, N);
    assert_eq!(stats.completions, completions);
    assert!(
        (peak as u64) <= bound,
        "live frontier peak {peak} exceeded the Theorem 4 bound {bound}"
    );
    assert!(
        stats.evictions > 0,
        "a year-scale stream must cross the eviction horizon"
    );
}

//! Theorem 3 equivalence, tested by brute force: for small inputs, the
//! constructed TAG accepts a sequence iff the complex event type occurs in
//! it (an injective, type- and constraint-respecting assignment of events
//! to variables exists).

use proptest::prelude::*;
use tgm_core::{ComplexEventType, EventStructure, StructureBuilder, Tcg, VarId};
use tgm_events::{Event, EventType};
use tgm_granularity::{Calendar, Gran};
use tgm_tag::{build_tag, Matcher};

const DAY: i64 = 86_400;

/// Brute-force occurrence check: try every injective assignment of events
/// to variables with matching types.
///
/// Sequential-consumption tie rule: the TAG reads the event *list* in
/// order, so for every arc `(a, b)` the event assigned to `a` must precede
/// the event assigned to `b` in the list (this only differs from the pure
/// timestamp semantics when distinct events share a timestamp).
fn occurs_brute_force(cet: &ComplexEventType, events: &[Event]) -> bool {
    let s = cet.structure();
    let n = s.len();
    let mut chosen: Vec<usize> = Vec::with_capacity(n);
    fn rec(
        cet: &ComplexEventType,
        s: &EventStructure,
        events: &[Event],
        chosen: &mut Vec<usize>,
    ) -> bool {
        let v = VarId(chosen.len());
        if chosen.len() == s.len() {
            let times: Vec<i64> = chosen.iter().map(|&i| events[i].time).collect();
            let list_order_ok = s
                .arcs()
                .all(|(a, b, _)| chosen[a.index()] < chosen[b.index()]);
            return list_order_ok && s.satisfied_by(&times);
        }
        for (i, e) in events.iter().enumerate() {
            if e.ty != cet.event_type(v) || chosen.contains(&i) {
                continue;
            }
            chosen.push(i);
            if rec(cet, s, events, chosen) {
                return true;
            }
            chosen.pop();
        }
        false
    }
    rec(cet, s, events, &mut chosen)
}

fn grans() -> Vec<Gran> {
    let cal = Calendar::standard();
    ["hour", "day", "week", "business-day"]
        .iter()
        .map(|n| cal.get(n).unwrap())
        .collect()
}

/// A small random structure: either a 3-chain or a diamond, with random
/// TCGs, and a random type assignment over a 3-letter alphabet.
fn random_cet(
    shape: bool,
    gran_picks: [usize; 4],
    bounds: [(u64, u64); 4],
    type_picks: [u32; 4],
) -> ComplexEventType {
    let gs = grans();
    let tcg = |i: usize| {
        let (lo, w) = bounds[i];
        Tcg::new(lo, lo + w, gs[gran_picks[i] % gs.len()].clone())
    };
    let mut b = StructureBuilder::new();
    if shape {
        // Chain X0 -> X1 -> X2.
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        b.constrain(x0, x1, tcg(0));
        b.constrain(x1, x2, tcg(1));
        let s = b.build().unwrap();
        ComplexEventType::new(
            s,
            type_picks[..3].iter().map(|&t| EventType(t % 3)).collect(),
        )
    } else {
        // Diamond.
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        let x3 = b.var("X3");
        b.constrain(x0, x1, tcg(0));
        b.constrain(x0, x2, tcg(1));
        b.constrain(x1, x3, tcg(2));
        b.constrain(x2, x3, tcg(3));
        let s = b.build().unwrap();
        ComplexEventType::new(
            s,
            type_picks.iter().map(|&t| EventType(t % 3)).collect(),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tag_acceptance_equals_brute_force(
        shape in any::<bool>(),
        gran_picks in [0usize..4, 0usize..4, 0usize..4, 0usize..4],
        bounds in [(0u64..3, 0u64..3), (0u64..3, 0u64..3), (0u64..3, 0u64..3), (0u64..3, 0u64..3)],
        type_picks in [0u32..3, 0u32..3, 0u32..3, 0u32..3],
        raw_events in proptest::collection::vec((0u32..3, 0i64..12), 0..8),
    ) {
        let cet = random_cet(shape, gran_picks, bounds, type_picks);
        let tag = build_tag(&cet);
        // Events over ~12 days in 6-hour steps, starting Monday 2000-01-03.
        let events: Vec<Event> = {
            let mut v: Vec<Event> = raw_events
                .iter()
                .map(|&(ty, step)| Event::new(EventType(ty), 2 * DAY + step * 6 * 3_600))
                .collect();
            v.sort();
            v.dedup();
            v
        };
        let expected = occurs_brute_force(&cet, &events);
        let got = Matcher::new(&tag).accepts(&events);
        prop_assert_eq!(
            got, expected,
            "TAG acceptance mismatch for {:?} over {:?}",
            cet, events
        );
    }
}

#[test]
fn anchored_acceptance_pins_root_occurrence() {
    // Root type A at two positions; constraints satisfiable only from the
    // second one. Anchored matching from the first occurrence must fail,
    // from the second must succeed.
    let cal = Calendar::standard();
    let day = cal.get("day").unwrap();
    let mut b = StructureBuilder::new();
    let x0 = b.var("X0");
    let x1 = b.var("X1");
    b.constrain(x0, x1, Tcg::new(1, 1, day));
    let s = b.build().unwrap();
    let a = EventType(0);
    let bt = EventType(1);
    let cet = ComplexEventType::new(s, vec![a, bt]);
    let tag = build_tag(&cet);
    let m = Matcher::with_options(
        &tag,
        tgm_tag::MatchOptions::builder().anchored(true).build(),
    );
    let events = vec![
        Event::new(a, 0),
        Event::new(a, 5 * DAY),
        Event::new(bt, 6 * DAY),
    ];
    // From the first A: the B is 6 days later, no match anchored at it.
    assert!(!m.accepts(&events));
    // From the second A (suffix): match.
    assert!(m.accepts(&events[1..]));
}

/// `find_occurrence` returns genuine witness events: right count, right
/// type multiset, and assignable to variables satisfying the structure.
#[test]
fn find_occurrence_returns_real_witnesses() {
    use tgm_core::examples::{example_1, figure_1a_witness};
    use tgm_events::TypeRegistry;

    let cal = Calendar::standard();
    let mut reg = TypeRegistry::new();
    let (cet, tys) = example_1(&cal, &mut reg);
    let tag = build_tag(&cet);
    let w = figure_1a_witness();
    let noise = EventType(99);
    let mut events = vec![
        Event::new(noise, w[0] - 3_600),
        Event::new(tys.ibm_rise, w[0]),
        Event::new(noise, w[0] + 60),
        Event::new(tys.ibm_report, w[1]),
        Event::new(tys.hp_rise, w[2]),
        Event::new(noise, w[2] + 60),
        Event::new(tys.ibm_fall, w[3]),
        Event::new(noise, w[3] + 60),
    ];
    events.sort();
    let occ = Matcher::new(&tag)
        .find_occurrence(&events)
        .expect("occurrence exists");
    assert_eq!(occ.len(), 4);
    // Consumption order for the Figure 1(a) cross product is X0, then
    // X1/X2 in stream order, then X3.
    assert_eq!(events[occ[0]].ty, tys.ibm_rise);
    assert_eq!(events[occ[3]].ty, tys.ibm_fall);
    let consumed: Vec<(tgm_events::EventType, i64)> = vec![
        (events[occ[0]].ty, events[occ[0]].time),
        (events[occ[1]].ty, events[occ[1]].time),
        (events[occ[2]].ty, events[occ[2]].time),
        (events[occ[3]].ty, events[occ[3]].time),
    ];
    // Map consumed events to variables by type (all distinct here).
    let mut inst = [(tys.ibm_rise, 0i64); 4];
    for &(ty, t) in &consumed {
        let v = if ty == tys.ibm_rise {
            0
        } else if ty == tys.ibm_report {
            1
        } else if ty == tys.hp_rise {
            2
        } else {
            3
        };
        inst[v] = (ty, t);
    }
    assert!(cet.occurred_by(&inst));
    // No occurrence -> None.
    let short = &events[..3];
    assert!(Matcher::new(&tag).find_occurrence(short).is_none());
    assert!(Matcher::new(&tag).find_occurrence(&[]).is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// find_occurrence is consistent with accepts, and its witnesses are
    /// valid: the consumed types match the assignment multiset and the
    /// timestamps satisfy the structure under some variable mapping.
    #[test]
    fn find_occurrence_matches_accepts(
        shape in any::<bool>(),
        gran_picks in [0usize..4, 0usize..4, 0usize..4, 0usize..4],
        bounds in [(0u64..3, 0u64..3), (0u64..3, 0u64..3), (0u64..3, 0u64..3), (0u64..3, 0u64..3)],
        type_picks in [0u32..3, 0u32..3, 0u32..3, 0u32..3],
        raw_events in proptest::collection::vec((0u32..3, 0i64..12), 0..8),
    ) {
        let cet = random_cet(shape, gran_picks, bounds, type_picks);
        let tag = build_tag(&cet);
        let events: Vec<Event> = {
            let mut v: Vec<Event> = raw_events
                .iter()
                .map(|&(ty, step)| Event::new(EventType(ty), 2 * DAY + step * 6 * 3_600))
                .collect();
            v.sort();
            v.dedup();
            v
        };
        let m = Matcher::new(&tag);
        let accepted = m.accepts(&events);
        match m.find_occurrence(&events) {
            Some(occ) => {
                prop_assert!(accepted, "found an occurrence but accepts() is false");
                prop_assert_eq!(occ.len(), cet.structure().len());
                // Indices strictly increasing (consumption order).
                prop_assert!(occ.windows(2).all(|w| w[0] < w[1]));
                // Type multiset matches the assignment.
                let mut got: Vec<u32> = occ.iter().map(|&i| events[i].ty.0).collect();
                let mut want: Vec<u32> = cet.assignment().iter().map(|t| t.0).collect();
                got.sort_unstable();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
            None => prop_assert!(!accepted, "accepts() but no occurrence found"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The streaming matcher reports a completion iff some prefix is
    /// accepted by the batch matcher, at exactly the first accepting
    /// prefix.
    #[test]
    fn stream_equals_batch_prefixes(
        gran_picks in [0usize..4, 0usize..4, 0usize..4, 0usize..4],
        bounds in [(0u64..3, 0u64..3), (0u64..3, 0u64..3), (0u64..3, 0u64..3), (0u64..3, 0u64..3)],
        type_picks in [0u32..3, 0u32..3, 0u32..3, 0u32..3],
        raw_events in proptest::collection::vec((0u32..3, 0i64..12), 0..8),
    ) {
        let cet = random_cet(true, gran_picks, bounds, type_picks);
        let tag = build_tag(&cet);
        let events: Vec<Event> = {
            let mut v: Vec<Event> = raw_events
                .iter()
                .map(|&(ty, step)| Event::new(EventType(ty), 2 * DAY + step * 6 * 3_600))
                .collect();
            v.sort();
            v.dedup();
            v
        };
        let m = Matcher::new(&tag);
        let mut sm = tgm_tag::MatchSession::new(&tag);
        let mut first_completion = None;
        for (i, &e) in events.iter().enumerate() {
            if sm.push(e).completed() && first_completion.is_none() {
                first_completion = Some(i);
            }
        }
        for i in 0..events.len() {
            let batch = m.matches_within(&events[..=i]);
            let stream = first_completion.is_some_and(|c| i >= c);
            prop_assert_eq!(batch, stream, "prefix {} of {:?}", i, events);
        }
    }
}

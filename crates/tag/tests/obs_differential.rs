//! Differential tests for observability: enabling the process-wide obs
//! toggle (and flipping the per-call-site `ObsOptions` knobs) must not
//! change any matching result — `RunStats` stays bit-identical and
//! occurrence witnesses stay equal across all 8 `MatchOptions` combos,
//! for direct, column-reading, early-exit, and scratch-reusing runs.

use parking_lot::Mutex;
use tgm_core::{ComplexEventType, StructureBuilder, Tcg};
use tgm_events::{Event, EventType, TickColumns};
use tgm_granularity::{Calendar, Gran};
use tgm_obs::ObsOptions;
use tgm_tag::{build_tag, MatchOptions, Matcher, MatcherScratch, RunStats, Tag};

/// Serializes tests that toggle the process-wide obs flag (the harness
/// runs tests concurrently in one process).
static TEST_LOCK: Mutex<()> = Mutex::new(());

const DAY: i64 = 86_400;

fn all_option_combos() -> Vec<MatchOptions> {
    (0..8u32)
        .map(|bits| {
            MatchOptions::builder()
                .anchored(bits & 1 != 0)
                .strict_updates(bits & 2 != 0)
                .saturate(bits & 4 != 0)
                .build()
        })
        .collect()
}

/// A two-granularity chain TAG (business-day + week) so strict-update
/// gap handling and multi-clock canonicalization are both exercised.
fn chain_tag() -> Tag {
    let cal = Calendar::standard();
    let mut b = StructureBuilder::new();
    let x0 = b.var("X0");
    let x1 = b.var("X1");
    let x2 = b.var("X2");
    b.constrain(x0, x1, Tcg::new(1, 2, cal.get("business-day").unwrap()));
    b.constrain(x1, x2, Tcg::new(0, 1, cal.get("week").unwrap()));
    let s = b.build().unwrap();
    build_tag(&ComplexEventType::new(
        s,
        vec![EventType(0), EventType(1), EventType(2)],
    ))
}

/// Deterministic mixed sequences: matches, near-misses, weekend gaps,
/// nondeterministic repeats, and an empty one.
fn sequences() -> Vec<Vec<Event>> {
    let ev = |ty: u32, t: i64| Event::new(EventType(ty), t);
    vec![
        vec![ev(0, 2 * DAY), ev(1, 3 * DAY), ev(2, 4 * DAY)],
        vec![ev(0, 5 * DAY), ev(9, 7 * DAY + 100), ev(1, 9 * DAY), ev(2, 10 * DAY)],
        vec![ev(0, 2 * DAY), ev(0, 3 * DAY), ev(1, 4 * DAY), ev(2, 9 * DAY), ev(2, 30 * DAY)],
        vec![ev(7, 7 * DAY), ev(0, 7 * DAY + 50), ev(1, 9 * DAY)],
        vec![ev(0, 2 * DAY)],
        vec![],
    ]
}

/// One full matrix of runs for a fixed obs configuration.
fn run_matrix(opts_list: &[MatchOptions]) -> Vec<(RunStats, RunStats, Option<Vec<usize>>)> {
    let tag = chain_tag();
    let tag_grans: Vec<Gran> = tag.clocks().iter().map(|(_, g)| g.clone()).collect();
    let mut scratch = MatcherScratch::new();
    let mut out = Vec::new();
    for events in &sequences() {
        let cols = TickColumns::build(events, &tag_grans);
        for opts in opts_list {
            let m = Matcher::with_options(&tag, *opts);
            for early_exit in [false, true] {
                out.push((
                    m.run_scratch(events, early_exit, &mut scratch),
                    m.run_columns_scratch(events, &cols, 0, early_exit, &mut scratch),
                    m.find_occurrence_scratch(events, &mut scratch),
                ));
            }
        }
    }
    out
}

#[test]
fn results_identical_with_obs_on_and_off() {
    let _guard = TEST_LOCK.lock();
    let combos = all_option_combos();

    tgm_obs::set_enabled(false);
    let baseline = run_matrix(&combos);

    tgm_obs::set_enabled(true);
    let observed = run_matrix(&combos);
    let snap = tgm_obs::metrics::snapshot();
    tgm_obs::set_enabled(false);

    assert_eq!(baseline, observed, "observability changed a result");
    // The instrumentation did actually fire while enabled.
    assert!(snap.counter("tag.matcher.runs") > 0);
    assert!(snap.histogram("tag.matcher.frontier").is_some());
    tgm_obs::reset();
}

#[test]
fn scoped_exporting_and_recording_do_not_change_results() {
    let _guard = TEST_LOCK.lock();
    tgm_obs::reset();
    let combos = all_option_combos();

    tgm_obs::set_enabled(false);
    let baseline = run_matrix(&combos);

    // Same matrix inside a recorder-equipped scope, with an exporter
    // pulling delta frames mid-run: results must stay bit-identical and
    // every emission must land in the scope, not the default registry.
    tgm_obs::set_enabled(true);
    let scope = tgm_obs::ObsScope::with_recorder(64);
    let mut exporter = tgm_obs::Exporter::new(scope.clone());
    let observed = {
        let _in = scope.enter();
        let out = run_matrix(&combos);
        let frame = exporter.frame();
        assert!(frame.delta.metrics.counter("tag.matcher.runs") > 0);
        assert!(!frame.to_ndjson().is_empty());
        out
    };
    let default_snap = tgm_obs::metrics::snapshot();
    tgm_obs::set_enabled(false);

    assert_eq!(baseline, observed, "scoped observability changed a result");
    assert_eq!(
        default_snap.counter("tag.matcher.runs"),
        0,
        "scoped run leaked into the default registry"
    );
    tgm_obs::reset();
}

#[test]
fn session_scope_and_stats_cadence_do_not_change_results() {
    let _guard = TEST_LOCK.lock();
    tgm_obs::reset();
    let tag = chain_tag();
    tgm_obs::set_enabled(true);
    for events in &sequences() {
        let mut plain = tgm_tag::MatchSession::new(&tag);
        let scope = tgm_obs::ObsScope::with_recorder(32);
        let mut exporter = tgm_obs::Exporter::new(scope.clone());
        let mut scoped = tgm_tag::MatchSession::new(&tag)
            .with_scope(scope.clone())
            .with_stats_every(2);
        let mut frames = 0usize;
        for &e in events {
            let a = plain.push(e);
            let b = scoped.push(e);
            assert_eq!(a, b, "scoped session diverged at {e:?}");
            if scoped.stats_due() {
                // The live-gauge reads a monitoring loop performs.
                let _ = scoped.watermark_lag();
                let _ = exporter.frame();
                frames += 1;
            }
        }
        let (ra, _) = plain.finish();
        let (rb, _) = scoped.finish();
        assert_eq!(ra, rb, "scoped finalize diverged");
        if events.len() >= 2 {
            assert!(frames > 0, "stats cadence never fired");
        }
    }
    tgm_obs::set_enabled(false);
    tgm_obs::reset();
}

#[test]
fn per_call_site_knobs_do_not_change_results() {
    let _guard = TEST_LOCK.lock();
    let combos = all_option_combos();
    let silent: Vec<MatchOptions> = combos
        .iter()
        .map(|o| o.to_builder().obs(ObsOptions::silent()).build())
        .collect();
    let metrics_only: Vec<MatchOptions> = combos
        .iter()
        .map(|o| {
            o.to_builder()
                .obs(ObsOptions {
                    metrics: true,
                    spans: false,
                })
                .build()
        })
        .collect();

    tgm_obs::set_enabled(true);
    let loud = run_matrix(&combos);
    tgm_obs::reset();
    let quiet = run_matrix(&silent);
    let counters_after_quiet = tgm_obs::metrics::snapshot();
    let partial = run_matrix(&metrics_only);
    tgm_obs::set_enabled(false);

    assert_eq!(loud, quiet);
    assert_eq!(loud, partial);
    // The silent knob really silenced emission even with the toggle on.
    assert_eq!(counters_after_quiet.counter("tag.matcher.runs"), 0);
    tgm_obs::reset();
}

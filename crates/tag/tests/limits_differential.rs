//! Differential tests for bounded matcher runs: with [`Limits::none`] the
//! bounded entry points are bit-identical to the unbounded ones under
//! every `MatchOptions` combination; with a tight budget or deadline they
//! stop deterministically with a typed [`Verdict`] instead of running
//! away; and the packed and reference engines interrupt identically.

use std::time::{Duration, Instant};

use tgm_core::{ComplexEventType, StructureBuilder, Tcg};
use tgm_events::{Event, EventType, TickColumns};
use tgm_granularity::{Calendar, Gran};
use tgm_limits::{CancelToken, Interrupt, Limits, Verdict};
use tgm_tag::{build_tag, MatchOptions, Matcher, MatcherScratch, Tag};

const DAY: i64 = 86_400;

fn grans() -> Vec<Gran> {
    let cal = Calendar::standard();
    ["hour", "day", "week", "business-day"]
        .iter()
        .map(|n| cal.get(n).unwrap())
        .collect()
}

fn all_option_combos() -> Vec<MatchOptions> {
    (0..8u32)
        .map(|bits| {
            MatchOptions::builder()
                .anchored(bits & 1 != 0)
                .strict_updates(bits & 2 != 0)
                .saturate(bits & 4 != 0)
                .build()
        })
        .collect()
}

/// A three-variable chain over mixed granularities with enough events to
/// make the matcher do real frontier work.
fn fixture() -> (Tag, Vec<Event>) {
    let gs = grans();
    let mut b = StructureBuilder::new();
    let x0 = b.var("X0");
    let x1 = b.var("X1");
    let x2 = b.var("X2");
    b.constrain(x0, x1, Tcg::new(0, 2, gs[1].clone())); // 0..2 days
    b.constrain(x1, x2, Tcg::new(0, 1, gs[2].clone())); // same/next week
    let s = b.build().unwrap();
    let cet = ComplexEventType::new(s, vec![EventType(0), EventType(1), EventType(2)]);
    let tag = build_tag(&cet);
    // Monday 2000-01-03 onward, interleaved types every 6 hours.
    let events: Vec<Event> = (0..48)
        .map(|i| Event::new(EventType(i % 3), 2 * DAY + i as i64 * 6 * 3_600))
        .collect();
    (tag, events)
}

#[test]
fn none_limits_bit_identical_all_combos() {
    let (tag, events) = fixture();
    let grans: Vec<Gran> = tag.clocks().iter().map(|(_, g)| g.clone()).collect();
    let cols = TickColumns::build(&events, &grans);
    let none = Limits::none();
    for opts in all_option_combos() {
        let m = Matcher::with_options(&tag, opts);
        for early_exit in [false, true] {
            let free = m.run_scratch(&events, early_exit, &mut MatcherScratch::new());
            let bounded =
                m.run_bounded(&events, early_exit, &mut MatcherScratch::new(), &none);
            assert_eq!(bounded.verdict, Verdict::Completed, "{opts:?}");
            assert_eq!(bounded.stats, free, "direct {opts:?} early_exit={early_exit}");

            let free_cols =
                m.run_columns_scratch(&events, &cols, 0, early_exit, &mut MatcherScratch::new());
            let bounded_cols = m.run_columns_bounded(
                &events,
                &cols,
                0,
                early_exit,
                &mut MatcherScratch::new(),
                &none,
            );
            assert_eq!(bounded_cols.verdict, Verdict::Completed);
            assert_eq!(
                bounded_cols.stats, free_cols,
                "columns {opts:?} early_exit={early_exit}"
            );

            let free_ref = m.run_reference(&events, early_exit);
            let bounded_ref = m.run_reference_bounded(&events, early_exit, &none);
            assert_eq!(bounded_ref.verdict, Verdict::Completed);
            assert_eq!(bounded_ref.stats, free_ref, "reference {opts:?}");
        }
        let free = m.find_occurrence_scratch(&events, &mut MatcherScratch::new());
        let bounded = m
            .find_occurrence_bounded(&events, &mut MatcherScratch::new(), &none)
            .expect("no limits, no interrupt");
        assert_eq!(bounded, free, "find_occurrence {opts:?}");
    }
}

#[test]
fn tiny_budget_exhausts_deterministically() {
    let (tag, events) = fixture();
    let m = Matcher::new(&tag);
    let limits = Limits::none().with_budget(2);
    let a = m.run_bounded(&events, false, &mut MatcherScratch::new(), &limits);
    let b = m.run_bounded(&events, false, &mut MatcherScratch::new(), &limits);
    assert_eq!(
        a.verdict,
        Verdict::Interrupted(Interrupt::BudgetExhausted),
        "a 2-row budget cannot fit this frontier"
    );
    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.stats, b.stats, "exhaustion must be deterministic");
    // The consumed prefix is a real prefix: fewer events than the input.
    assert!(a.stats.events < events.len());
}

#[test]
fn packed_and_reference_interrupt_identically() {
    let (tag, events) = fixture();
    for budget in [1u64, 2, 4, 8, 1 << 40] {
        let limits = Limits::none().with_budget(budget);
        let m = Matcher::new(&tag);
        let packed = m.run_bounded(&events, false, &mut MatcherScratch::new(), &limits);
        let reference = m.run_reference_bounded(&events, false, &limits);
        assert_eq!(packed.verdict, reference.verdict, "budget={budget}");
        assert_eq!(packed.stats, reference.stats, "budget={budget}");
    }
}

#[test]
fn expired_deadline_interrupts_immediately() {
    let (tag, events) = fixture();
    let m = Matcher::new(&tag);
    let limits = Limits::none().with_deadline(Instant::now() - Duration::from_secs(1));
    let run = m.run_bounded(&events, false, &mut MatcherScratch::new(), &limits);
    assert_eq!(run.verdict, Verdict::Interrupted(Interrupt::DeadlineExceeded));
    assert_eq!(run.stats.events, 0, "no event may be consumed past the deadline");
    let err = m
        .find_occurrence_bounded(&events, &mut MatcherScratch::new(), &limits)
        .unwrap_err();
    assert_eq!(err, Interrupt::DeadlineExceeded);
}

#[test]
fn cancelled_token_interrupts() {
    let (tag, events) = fixture();
    let m = Matcher::new(&tag);
    let token = CancelToken::new();
    token.cancel();
    let limits = Limits::none().with_cancel(token);
    let run = m.run_bounded(&events, false, &mut MatcherScratch::new(), &limits);
    assert_eq!(run.verdict, Verdict::Interrupted(Interrupt::Cancelled));
    let err = m
        .matches_within_bounded(&events, &mut MatcherScratch::new(), &limits)
        .unwrap_err();
    assert_eq!(err, Interrupt::Cancelled);
}

#[test]
fn generous_limits_complete_identically() {
    let (tag, events) = fixture();
    let m = Matcher::new(&tag);
    let limits = Limits::none()
        .with_timeout(Duration::from_secs(600))
        .with_budget(1 << 40);
    let free = m.run_scratch(&events, false, &mut MatcherScratch::new());
    let bounded = m.run_bounded(&events, false, &mut MatcherScratch::new(), &limits);
    assert_eq!(bounded.verdict, Verdict::Completed);
    assert_eq!(bounded.stats, free);
}

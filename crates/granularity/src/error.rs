//! Error type for granularity operations.

use std::fmt;

/// Errors arising from granularity registry operations and conversions.
#[derive(Clone, PartialEq, Eq)]
pub enum GranularityError {
    /// A granularity with this name is already registered.
    DuplicateName(String),
    /// No granularity with this name is registered.
    UnknownName(String),
    /// A tick index lies outside a granularity's supported horizon.
    OutOfHorizon {
        /// Name of the granularity.
        granularity: String,
        /// The offending tick index.
        tick: i64,
    },
}

impl fmt::Display for GranularityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GranularityError::DuplicateName(n) => {
                write!(f, "granularity `{n}` is already registered")
            }
            GranularityError::UnknownName(n) => write!(f, "unknown granularity `{n}`"),
            GranularityError::OutOfHorizon { granularity, tick } => {
                write!(f, "tick {tick} of `{granularity}` is outside the supported horizon")
            }
        }
    }
}

impl fmt::Debug for GranularityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for GranularityError {}

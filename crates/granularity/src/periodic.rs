//! Compiled minimal periodic sets: lock-free closed-form tick conversion.
//!
//! Following Bettini & Mascetti (*Supporting Temporal Reasoning by Mapping
//! Calendar Expressions to Minimal Periodic Sets*), every granularity whose
//! structure repeats with a finite period compiles to a [`PeriodicTable`]:
//! the period length in seconds, the sorted in-period tick segments, the
//! per-period tick count, plus an explicit exception window for aperiodic
//! stretches (holiday lists). The table answers `covering_tick`,
//! `tick_intervals` and `convert_tick` by integer division and binary
//! search over the in-period offsets — no locks, no memo maps — and is
//! shared lock-free via `Arc`/`OnceLock` by every clone of a
//! [`Gran`](crate::Gran) handle.
//!
//! Compilation is *verified*: the compiler samples the raw interval-based
//! implementation over several well-separated periods, rebuilds the closed
//! form, and then probes random and boundary instants/ticks for
//! bit-identical answers. Any disagreement — or a granularity without a
//! [`PeriodicHint`] — falls back to the mutex-guarded
//! [`cache`](crate::cache) path; outcomes are recorded in the
//! `granularity.compile.{compiled,fallback}` counters ([`stats`]).
//!
//! # Domain delegation
//!
//! A table only answers inside a conservative domain of whole periods
//! strictly inside the granularity's horizon, and (for some operations)
//! away from the exception window. Out-of-domain queries return the *outer*
//! `None` ("not my competence") and the caller falls back to the raw or
//! cached path, which keeps horizon-edge semantics bit-identical by
//! construction instead of by re-implementation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::granularity::{Granularity, Second, Tick};
use crate::interval::{Interval, IntervalSet};

// ---------------------------------------------------------------------------
// Global switch + compile-outcome counters
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);
static COMPILED: AtomicU64 = AtomicU64::new(0);
static FALLBACK: AtomicU64 = AtomicU64::new(0);

/// Globally enables or disables the compiled periodic-table fast path
/// (default: enabled). Disabling falls every query back to the raw
/// implementation behind the mutex cache — the ablation switch used by the
/// differential tests and `bench_json`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the compiled fast path is enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Process-wide compile outcome counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileStats {
    /// Granularities successfully compiled to a [`PeriodicTable`].
    pub compiled: u64,
    /// Granularities that fell back to the mutex-cache path (no periodic
    /// hint, or the verification probes found a mismatch).
    pub fallback: u64,
}

/// Snapshot of the process-wide compile counters.
pub fn stats() -> CompileStats {
    CompileStats {
        compiled: COMPILED.load(Ordering::Relaxed),
        fallback: FALLBACK.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide compile counters (tests/benches only).
pub fn reset_stats() {
    COMPILED.store(0, Ordering::Relaxed);
    FALLBACK.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// PeriodicHint — the per-granularity compilation seed
// ---------------------------------------------------------------------------

/// A granularity's declaration that its structure is periodic: everything
/// the generic compiler needs to sample and verify a [`PeriodicTable`].
///
/// The hint is a *claim*, not a proof — the compiler verifies it against
/// the raw implementation and falls back on any disagreement. The claim is:
/// within `[sec_lo, sec_hi]` and outside `exceptions`, the tick structure
/// seen from `anchor + q·period` is identical for every period `q`, and
/// ticks are numbered consecutively across periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicHint {
    /// Start instant of period 0; every `anchor + q·period` is a period
    /// boundary no tick straddles.
    pub anchor: Second,
    /// Period length in seconds (> 0).
    pub period: i64,
    /// Inclusive start of the horizon within which the raw implementation
    /// is total and periodic.
    pub sec_lo: Second,
    /// Inclusive end of that horizon.
    pub sec_hi: Second,
    /// Hull `[lo, hi]` of instants where the structure deviates from the
    /// periodic pattern (holiday stretches); `None` if fully periodic.
    pub exceptions: Option<(Second, Second)>,
}

// ---------------------------------------------------------------------------
// PeriodicTable
// ---------------------------------------------------------------------------

/// Explicitly materialized ticks for the aperiodic stretch (holidays).
#[derive(Debug)]
struct Exceptions {
    /// Whole-period window `[p_lo, p_hi]` (period indices).
    p_hi: i64,
    /// Absolute second hull of the window (`anchor + p_lo·period` ..
    /// `anchor + (p_hi+1)·period - 1`).
    sec_lo: Second,
    sec_hi: Second,
    /// Explicit tick index range inside the window (empty iff
    /// `first_tick > last_tick`).
    first_tick: Tick,
    last_tick: Tick,
    /// Tick-numbering shift for periods after the window (negative when
    /// the exceptions removed ticks).
    shift: i64,
    /// Absolute intervals of the explicit ticks; tick `first_tick + i`
    /// owns `ivals[off[i]..off[i+1]]`.
    ivals: Vec<(Second, Second)>,
    off: Vec<u32>,
    /// Absolute covering segments `(start, end, tick)` sorted by start.
    seg: Vec<(Second, Second, Tick)>,
}

/// A compiled granularity: closed-form, lock-free tick arithmetic.
///
/// Queries return a *nested* option: the outer `None` means "outside this
/// table's competence domain — delegate to the raw implementation", while
/// the inner value is the verbatim answer the raw implementation would give.
#[derive(Debug)]
pub struct PeriodicTable {
    anchor: Second,
    period: i64,
    /// Ticks per clean period.
    n: i64,
    /// Tick index of slot 0 of period 0 (pre-exception numbering).
    first_tick: Tick,
    /// Supported period range (inclusive).
    q_lo: i64,
    q_hi: i64,
    /// Absolute second domain: `anchor + q_lo·period` ..
    /// `anchor + (q_hi+1)·period - 1`.
    dom_lo: Second,
    dom_hi: Second,
    /// Supported tick range (inclusive, post-shift numbering at the top).
    tick_lo: Tick,
    tick_hi: Tick,
    /// Clean-period covering segments `(start_off, end_off, slot)` sorted
    /// by start offset; slots appear in non-decreasing order.
    seg: Vec<(i64, i64, u32)>,
    /// In-period interval offsets of slot `s`:
    /// `slot_ivals[slot_off[s]..slot_off[s+1]]`.
    slot_ivals: Vec<(i64, i64)>,
    slot_off: Vec<u32>,
    exc: Option<Exceptions>,
}

impl PeriodicTable {
    /// The compiled period length in seconds.
    pub fn period_seconds(&self) -> i64 {
        self.period
    }

    /// Number of ticks per clean period.
    pub fn ticks_per_period(&self) -> i64 {
        self.n
    }

    /// Whether the table carries an explicit exception window.
    pub fn has_exceptions(&self) -> bool {
        self.exc.is_some()
    }

    /// Number of explicitly materialized exception ticks.
    pub fn exception_ticks(&self) -> i64 {
        self.exc
            .as_ref()
            .map_or(0, |e| (e.last_tick - e.first_tick + 1).max(0))
    }

    #[inline]
    fn shift_for_period(&self, q: i64) -> i64 {
        match &self.exc {
            Some(e) if q > e.p_hi => e.shift,
            _ => 0,
        }
    }

    /// The tick covering instant `t`: outer `None` delegates, inner `None`
    /// is a gap.
    #[inline]
    pub fn covering_tick(&self, t: Second) -> Option<Option<Tick>> {
        if t < self.dom_lo || t > self.dom_hi {
            return None;
        }
        if let Some(e) = &self.exc {
            if t >= e.sec_lo && t <= e.sec_hi {
                let i = e.seg.partition_point(|s| s.1 < t);
                return match e.seg.get(i) {
                    Some(&(start, _, z)) if start <= t => Some(Some(z)),
                    _ => Some(None),
                };
            }
        }
        let q = (t - self.anchor).div_euclid(self.period);
        let off = t - self.anchor - q * self.period;
        let i = self.seg.partition_point(|s| s.1 < off);
        match self.seg.get(i) {
            Some(&(start, _, slot)) if start <= off => Some(Some(
                self.first_tick + q * self.n + slot as i64 + self.shift_for_period(q),
            )),
            _ => Some(None),
        }
    }

    /// The intervals of tick `z` as `(offset_pairs, base)` — the absolute
    /// intervals are `[base + a, base + b]` for each `(a, b)`. `None`
    /// delegates (the tick is outside the table's domain). Allocation-free.
    #[inline]
    pub fn tick_interval_slices(&self, z: Tick) -> Option<(&[(i64, i64)], Second)> {
        if z < self.tick_lo || z > self.tick_hi {
            return None;
        }
        let mut rel = z - self.first_tick;
        if let Some(e) = &self.exc {
            if z >= e.first_tick && z <= e.last_tick {
                let i = (z - e.first_tick) as usize;
                return Some((&e.ivals[e.off[i] as usize..e.off[i + 1] as usize], 0));
            }
            if z > e.last_tick {
                rel -= e.shift;
            }
        }
        let q = rel.div_euclid(self.n);
        let s = rel.rem_euclid(self.n) as usize;
        debug_assert!((self.q_lo..=self.q_hi).contains(&q));
        let base = self.anchor + q * self.period;
        Some((
            &self.slot_ivals[self.slot_off[s] as usize..self.slot_off[s + 1] as usize],
            base,
        ))
    }

    /// The instant set of tick `z` as an [`IntervalSet`]; `None` delegates.
    pub fn tick_intervals(&self, z: Tick) -> Option<IntervalSet> {
        let (slices, base) = self.tick_interval_slices(z)?;
        Some(IntervalSet::from_intervals(
            slices
                .iter()
                .map(|&(a, b)| Interval::new(base + a, base + b))
                .collect(),
        ))
    }

    /// The tick covering `t` or the first tick after `t`: outer `None`
    /// delegates (out of domain, or too close to the exception window for
    /// a closed-form answer).
    pub fn next_tick_at_or_after(&self, t: Second) -> Option<Option<Tick>> {
        if t < self.dom_lo || t > self.dom_hi {
            return None;
        }
        if let Some(e) = &self.exc {
            // Within the window — or in the period just before it, whose
            // "next tick" may be an exception tick — delegate to raw.
            if t >= e.sec_lo - self.period && t <= e.sec_hi {
                return None;
            }
        }
        let q = (t - self.anchor).div_euclid(self.period);
        let off = t - self.anchor - q * self.period;
        // First segment with some instant at or after `off`. Monotonicity
        // makes slots non-decreasing along segments, so this is the
        // earliest such tick.
        let i = self.seg.partition_point(|s| s.1 < off);
        if let Some(&(_, _, slot)) = self.seg.get(i) {
            return Some(Some(
                self.first_tick + q * self.n + slot as i64 + self.shift_for_period(q),
            ));
        }
        // Past the last segment of this period: slot 0 of the next.
        if q + 1 > self.q_hi {
            return None;
        }
        Some(Some(
            self.first_tick + (q + 1) * self.n + self.shift_for_period(q + 1),
        ))
    }

    /// The paper's `⌈z⌉` conversion between two compiled tables, entirely
    /// allocation-free: outer `None` delegates to the raw path, the inner
    /// value matches [`convert_tick`](crate::convert_tick) verbatim.
    pub fn convert_tick_to(&self, z: Tick, target: &PeriodicTable) -> Option<Option<Tick>> {
        let (src, sbase) = self.tick_interval_slices(z)?;
        let candidate = match target.covering_tick(sbase + src[0].0) {
            None => return None,
            Some(None) => return Some(None),
            Some(Some(c)) => c,
        };
        match Self::slices_subset(src, sbase, target, candidate) {
            None => None,
            Some(true) => Some(Some(candidate)),
            Some(false) => Some(None),
        }
    }

    /// Whether tick `z_target` of `target` covers tick `z_source` of
    /// `source` — the compiled counterpart of
    /// [`tick_covers`](crate::tick_covers). Outer `None` delegates.
    pub fn tick_covers(
        target: &PeriodicTable,
        z_target: Tick,
        source: &PeriodicTable,
        z_source: Tick,
    ) -> Option<bool> {
        let (src, sbase) = source.tick_interval_slices(z_source)?;
        Self::slices_subset(src, sbase, target, z_target)
    }

    /// Whether every `[sbase+a, sbase+b]` of `src` is contained in some
    /// interval of `target`'s tick `z_target`. `None` delegates when the
    /// target tick is outside `target`'s domain.
    fn slices_subset(
        src: &[(i64, i64)],
        sbase: Second,
        target: &PeriodicTable,
        z_target: Tick,
    ) -> Option<bool> {
        let (tgt, tbase) = target.tick_interval_slices(z_target)?;
        let mut j = 0;
        for &(a, b) in src {
            let (lo, hi) = (sbase + a, sbase + b);
            while j < tgt.len() && tbase + tgt[j].1 < lo {
                j += 1;
            }
            match tgt.get(j) {
                Some(&(c, d)) if tbase + c <= lo && hi <= tbase + d => {}
                _ => return Some(false),
            }
        }
        Some(true)
    }
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

/// Most ticks a clean period may contain (the 400-year Gregorian cycle has
/// 4 800 months).
const MAX_SLOTS: usize = 20_000;
/// Most interval pairs the exception window may materialize.
const MAX_EXC_IVALS: usize = 1 << 20;
/// Verification probe counts.
const SECOND_PROBES: usize = 512;
const TICK_PROBES: usize = 256;
const NEXT_PROBES: usize = 128;

fn div_floor_i128(a: i128, b: i128) -> i128 {
    a.div_euclid(b)
}

fn div_ceil_i128(a: i128, b: i128) -> i128 {
    -((-a).div_euclid(b))
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.abs()
}

/// Least common multiple with overflow checking.
pub(crate) fn checked_lcm(a: i64, b: i64) -> Option<i64> {
    if a == 0 || b == 0 {
        return None;
    }
    (a / gcd(a, b)).checked_mul(b)
}

/// One clean period's raw sample: the first tick index found at the period
/// start and each tick's intervals as offsets from the period start.
type PeriodSample = (Tick, Vec<Vec<(i64, i64)>>);

fn sample_period(g: &dyn Granularity, t0: Second, period: i64) -> Option<PeriodSample> {
    let end = t0.checked_add(period)?;
    let first_z = g.next_tick_at_or_after(t0)?;
    let mut slots: Vec<Vec<(i64, i64)>> = Vec::new();
    let mut z = first_z;
    loop {
        let set = g.tick_intervals(z)?;
        if set.min() >= end {
            break;
        }
        // A tick straddling the period boundary falsifies the hint.
        if set.min() < t0 || set.max() >= end {
            return None;
        }
        slots.push(
            set.intervals()
                .iter()
                .map(|iv| (iv.start - t0, iv.end - t0))
                .collect(),
        );
        if slots.len() > MAX_SLOTS {
            return None;
        }
        z += 1;
    }
    (!slots.is_empty()).then_some((first_z, slots))
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi]` (inclusive), span-safe via u128.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128 + 1) as u128;
        lo + (self.next() as u128 % span) as i64
    }
}

/// Compiles a granularity into a verified [`PeriodicTable`], recording the
/// outcome in the `granularity.compile` counters. `None` means the
/// granularity stays on the mutex-cache fallback path.
pub fn compile(g: &dyn Granularity) -> Option<PeriodicTable> {
    match try_compile(g) {
        Some(t) => {
            COMPILED.fetch_add(1, Ordering::Relaxed);
            Some(t)
        }
        None => {
            FALLBACK.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

fn try_compile(g: &dyn Granularity) -> Option<PeriodicTable> {
    let h = g.periodic_hint()?;
    if h.period <= 0 || h.sec_lo >= h.sec_hi {
        return None;
    }
    // Full-period walks may run against an accelerated stand-in (grouped
    // granularities re-based on their children's compiled tables); the
    // random verification probes at the end always run against `g` itself.
    let accel = g.periodic_accel();
    let walker: &dyn Granularity = accel.as_deref().unwrap_or(g);
    let anchor = h.anchor;
    let period = h.period;
    let p128 = period as i128;

    // Whole periods fully inside the hinted horizon, shrunk by one period
    // of safety margin on each side so delegated edges stay raw.
    let q_lo = (div_ceil_i128(h.sec_lo as i128 - anchor as i128, p128) + 1).max(i64::MIN as i128);
    let q_hi = (div_floor_i128(h.sec_hi as i128 + 1 - anchor as i128, p128) - 2).min(i64::MAX as i128);
    if q_hi - q_lo < 4 {
        return None;
    }
    let (q_lo, q_hi) = (q_lo as i64, q_hi as i64);

    // Exception window in whole periods, with at least two clean periods on
    // each side inside the domain (one to calibrate, one as margin).
    let exc_window = match h.exceptions {
        Some((e_lo, e_hi)) => {
            if e_lo > e_hi {
                None
            } else {
                let p_lo = div_floor_i128(e_lo as i128 - anchor as i128, p128);
                let p_hi = div_floor_i128(e_hi as i128 - anchor as i128, p128);
                if p_lo < q_lo as i128 + 2 || p_hi > q_hi as i128 - 2 {
                    return None;
                }
                Some((p_lo as i64, p_hi as i64))
            }
        }
        None => None,
    };

    // Sample a clean reference period.
    let q_ref = match exc_window {
        Some((p_lo, _)) => p_lo - 2,
        None => 0i64.clamp(q_lo, q_hi - 1),
    };
    let t_ref = checked_period_start(anchor, q_ref, period)?;
    let (z_ref, slots) = sample_period(walker, t_ref, period)?;
    let n = slots.len() as i64;
    let first_tick = i64::try_from(z_ref as i128 - q_ref as i128 * n as i128).ok()?;

    // Tick-index arithmetic must stay in range over the whole domain.
    let tick_lo = i64::try_from(first_tick as i128 + q_lo as i128 * n as i128).ok()?;
    let mut tick_hi =
        i64::try_from(first_tick as i128 + (q_hi as i128 + 1) * n as i128 - 1).ok()?;
    let dom_lo = checked_period_start(anchor, q_lo, period)?;
    let dom_hi = checked_period_start(anchor, q_hi, period)?.checked_add(period - 1)?;

    // Flatten slots into the segment/interval stores.
    let mut seg: Vec<(i64, i64, u32)> = Vec::new();
    let mut slot_ivals: Vec<(i64, i64)> = Vec::new();
    let mut slot_off: Vec<u32> = vec![0];
    for (s, ivs) in slots.iter().enumerate() {
        for &(a, b) in ivs {
            seg.push((a, b, s as u32));
            slot_ivals.push((a, b));
        }
        slot_off.push(u32::try_from(slot_ivals.len()).ok()?);
    }
    seg.sort_unstable();
    // Monotonicity: segment order must agree with slot order.
    if seg.windows(2).any(|w| w[0].2 > w[1].2 || w[0].1 >= w[1].0) {
        return None;
    }

    // Materialize the exception window explicitly and calibrate the shift.
    let exc = if let Some((p_lo, p_hi)) = exc_window {
        let w_lo = checked_period_start(anchor, p_lo, period)?;
        let w_hi = checked_period_start(anchor, p_hi, period)?.checked_add(period - 1)?;
        let e_first = first_tick + p_lo * n;
        let mut z = walker.next_tick_at_or_after(w_lo)?;
        if z != e_first {
            return None;
        }
        let mut ivals: Vec<(Second, Second)> = Vec::new();
        let mut off: Vec<u32> = vec![0];
        let mut eseg: Vec<(Second, Second, Tick)> = Vec::new();
        let mut last_tick = e_first - 1;
        loop {
            let set = walker.tick_intervals(z)?;
            if set.min() > w_hi {
                break;
            }
            if set.min() < w_lo || set.max() > w_hi {
                return None;
            }
            for iv in set.intervals() {
                ivals.push((iv.start, iv.end));
                eseg.push((iv.start, iv.end, z));
            }
            off.push(u32::try_from(ivals.len()).ok()?);
            if ivals.len() > MAX_EXC_IVALS {
                return None;
            }
            last_tick = z;
            z += 1;
        }
        let shift = (z - first_tick) - (p_hi + 1) * n;
        tick_hi = tick_hi.checked_add(shift)?;
        Some(Exceptions {
            p_hi,
            sec_lo: w_lo,
            sec_hi: w_hi,
            first_tick: e_first,
            last_tick,
            shift,
            ivals,
            off,
            seg: eseg,
        })
    } else {
        None
    };

    let table = PeriodicTable {
        anchor,
        period,
        n,
        first_tick,
        q_lo,
        q_hi,
        dom_lo,
        dom_hi,
        tick_lo,
        tick_hi,
        seg,
        slot_ivals,
        slot_off,
        exc,
    };
    verify(g, walker, &table).then_some(table)
}

fn checked_period_start(anchor: Second, q: i64, period: i64) -> Option<Second> {
    anchor.checked_add(q.checked_mul(period)?)
}

/// Differential verification: the table must agree with the raw
/// implementation on cross-period samples, random probes, and every
/// exception-window boundary. Full-period re-samples go through `walker`
/// (the accelerated stand-in, when there is one); all point probes hit the
/// raw `g` directly.
fn verify(g: &dyn Granularity, walker: &dyn Granularity, t: &PeriodicTable) -> bool {
    // Re-sample one well-separated period in full (post-exception when
    // there is one, to validate the numbering shift and slot contents) …
    let q_deep = match &t.exc {
        Some(e) => e.p_hi + 1,
        None => (t.q_lo + t.q_hi) / 2,
    };
    {
        let q = q_deep;
        if !(t.q_lo..=t.q_hi).contains(&q) {
            return false;
        }
        let Some(t0) = checked_period_start(t.anchor, q, t.period) else {
            return false;
        };
        let Some((z0, slots)) = sample_period(walker, t0, t.period) else {
            return false;
        };
        if slots.len() as i64 != t.n {
            return false;
        }
        if z0 != t.first_tick + q * t.n + t.shift_for_period(q) {
            return false;
        }
        for (s, ivs) in slots.iter().enumerate() {
            let lo = t.slot_off[s] as usize;
            let hi = t.slot_off[s + 1] as usize;
            if ivs.as_slice() != &t.slot_ivals[lo..hi] {
                return false;
            }
        }
    }
    // … and check tick numbering at the domain edges without full walks:
    // any drift in the per-period tick count between here and the sampled
    // period would show up as a first-tick mismatch.
    for q in [t.q_lo, t.q_hi - 1] {
        let Some(t0) = checked_period_start(t.anchor, q, t.period) else {
            return false;
        };
        let expected = t.first_tick + q * t.n + t.shift_for_period(q);
        if walker.next_tick_at_or_after(t0) != Some(expected) {
            return false;
        }
    }

    let mut rng = SplitMix64(0x5EED_0F0C_ACC0_1ADE);
    // Random + boundary instants: covering must match bit for bit.
    let mut instants: Vec<Second> = Vec::with_capacity(SECOND_PROBES + 32);
    for _ in 0..SECOND_PROBES {
        instants.push(rng.range(t.dom_lo, t.dom_hi));
    }
    for edge in [t.dom_lo, t.dom_hi, t.anchor] {
        for d in -2i64..=2 {
            if let Some(v) = edge.checked_add(d) {
                instants.push(v.clamp(t.dom_lo, t.dom_hi));
            }
        }
    }
    if let Some(e) = &t.exc {
        for edge in [e.sec_lo, e.sec_hi] {
            for d in -2i64..=2 {
                instants.push((edge + d).clamp(t.dom_lo, t.dom_hi));
            }
        }
    }
    for &ti in &instants {
        match t.covering_tick(ti) {
            Some(ans) if ans == g.covering_tick(ti) => {}
            _ => return false,
        }
    }

    // Random + exception ticks: intervals must match bit for bit.
    let mut ticks: Vec<Tick> = Vec::with_capacity(TICK_PROBES + 64);
    for _ in 0..TICK_PROBES {
        ticks.push(rng.range(t.tick_lo, t.tick_hi));
    }
    ticks.extend([t.tick_lo, t.tick_hi]);
    if let Some(e) = &t.exc {
        let count = (e.last_tick - e.first_tick + 1).max(0);
        if count > 0 {
            for _ in 0..64.min(count) {
                ticks.push(rng.range(e.first_tick, e.last_tick));
            }
            ticks.extend([e.first_tick, e.last_tick, e.first_tick - 1, e.last_tick + 1]);
        }
    }
    for &z in &ticks {
        if !(t.tick_lo..=t.tick_hi).contains(&z) {
            continue;
        }
        let Some(set) = t.tick_intervals(z) else {
            return false;
        };
        match g.tick_intervals(z) {
            Some(raw) if raw == set => {}
            _ => return false,
        }
    }

    // next_tick_at_or_after: wherever the table answers, it must agree.
    for _ in 0..NEXT_PROBES {
        let ti = rng.range(t.dom_lo, t.dom_hi);
        if let Some(ans) = t.next_tick_at_or_after(ti) {
            if ans != g.next_tick_at_or_after(ti) {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// CompiledView — Granularity adapter sharing a Gran handle's compiled cell
// ---------------------------------------------------------------------------

/// Queries a handle must see before compilation is worth triggering:
/// short-lived handles (tests constructing throwaway calendars) never pay
/// the compile cost, while any hot-path consumer crosses the threshold in
/// microseconds. [`Gran::compiled`](crate::Gran::compiled) forces
/// compilation regardless.
const COMPILE_AFTER_USES: u64 = 64;

/// Shared compile state of one granularity handle: the once-compiled table
/// plus the warm-up use counter.
#[derive(Debug, Default)]
pub(crate) struct CompiledState {
    cell: OnceLock<Option<Arc<PeriodicTable>>>,
    warmup: AtomicU64,
}

impl CompiledState {
    /// Compiles now (if not yet attempted) and returns the table.
    pub(crate) fn force(&self, raw: &dyn Granularity) -> Option<&Arc<PeriodicTable>> {
        self.cell.get_or_init(|| compile(raw).map(Arc::new)).as_ref()
    }

    /// Counts one use; compiles once the handle has seen
    /// [`COMPILE_AFTER_USES`] queries.
    #[inline]
    pub(crate) fn note_use(&self, raw: &dyn Granularity) -> Option<&Arc<PeriodicTable>> {
        if let Some(outcome) = self.cell.get() {
            return outcome.as_ref();
        }
        if self.warmup.fetch_add(1, Ordering::Relaxed) < COMPILE_AFTER_USES {
            return None;
        }
        self.force(raw)
    }
}

/// Shared cell holding a handle's compile state.
pub(crate) type CompiledCell = Arc<CompiledState>;

/// A [`Granularity`] adapter that consults a shared compiled table before
/// the raw implementation — used so a `Gran` handle's [`SizeTable`]
/// (constructed before compilation happens) still scans through the
/// compiled fast path.
#[derive(Debug, Clone)]
pub(crate) struct CompiledView {
    raw: Arc<dyn Granularity>,
    cell: CompiledCell,
}

/// Wraps a raw granularity in a fresh [`CompiledView`] with its own cell —
/// the building block grouped granularities use for their sampling
/// stand-ins ([`Granularity::periodic_accel`]).
pub(crate) fn accel_view(raw: Arc<dyn Granularity>) -> Arc<dyn Granularity> {
    let view = CompiledView::new(raw, Arc::new(CompiledState::default()));
    // Sampling stand-ins exist only to make full-period walks closed-form:
    // compile the child eagerly instead of counting warm-up uses.
    view.cell.force(view.raw.as_ref());
    Arc::new(view)
}

impl CompiledView {
    pub(crate) fn new(raw: Arc<dyn Granularity>, cell: CompiledCell) -> Self {
        CompiledView { raw, cell }
    }

    #[inline]
    fn table(&self) -> Option<&Arc<PeriodicTable>> {
        if !enabled() {
            return None;
        }
        self.cell.note_use(self.raw.as_ref())
    }
}

impl Granularity for CompiledView {
    fn name(&self) -> &str {
        self.raw.name()
    }
    fn covering_tick(&self, t: Second) -> Option<Tick> {
        if let Some(tb) = self.table() {
            if let Some(ans) = tb.covering_tick(t) {
                return ans;
            }
        }
        self.raw.covering_tick(t)
    }
    fn tick_intervals(&self, z: Tick) -> Option<IntervalSet> {
        if let Some(tb) = self.table() {
            if let Some(set) = tb.tick_intervals(z) {
                return Some(set);
            }
        }
        self.raw.tick_intervals(z)
    }
    fn has_gaps(&self) -> bool {
        self.raw.has_gaps()
    }
    fn exact_sizes(&self, k: u64) -> Option<crate::size_table::SizeBounds> {
        self.raw.exact_sizes(k)
    }
    fn scan_window(&self, k: u64) -> (Tick, Tick) {
        self.raw.scan_window(k)
    }
    fn next_tick_at_or_after(&self, t: Second) -> Option<Tick> {
        if let Some(tb) = self.table() {
            if let Some(ans) = tb.next_tick_at_or_after(t) {
                return ans;
            }
        }
        self.raw.next_tick_at_or_after(t)
    }
    fn periodic_hint(&self) -> Option<PeriodicHint> {
        self.raw.periodic_hint()
    }
}

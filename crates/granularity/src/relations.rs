//! Relationships between temporal types, after the granularity-systems
//! literature the paper builds on (Wang–Bettini–Brodsky–Jajodia):
//!
//! * `ν` **groups into** `μ` — every tick of `μ` is a union of ticks of
//!   `ν` (e.g. `day` groups into `month`, `business-day` groups into
//!   `business-week`);
//! * `ν` is **finer than** `μ` — every tick of `ν` is contained in some
//!   tick of `μ` (e.g. `day` is finer than `month`; `week` is *not* finer
//!   than `month`).
//!
//! General granularities are black-box tick functions, so these checks are
//! *sampled* over a tick window: exact whenever the window covers the
//! types' joint period (the builtin calendar types repeat with the
//! 400-year Gregorian cycle), and a falsifying tick is returned when the
//! relation fails on the sample.

use crate::convert::convert_tick;
use crate::granularity::{Granularity, Tick};

/// Outcome of a sampled relation check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RelationCheck {
    /// The relation held on every sampled tick.
    HoldsOnSample,
    /// A counterexample tick (of the finer/partitioning type).
    FailsAt(Tick),
}

impl RelationCheck {
    /// Whether the relation held on the sample.
    pub fn holds(self) -> bool {
        matches!(self, RelationCheck::HoldsOnSample)
    }
}

/// Checks that every tick of `fine` within the window is covered by a tick
/// of `coarse` ("finer than", sampled).
pub fn finer_than<F, C>(fine: &F, coarse: &C, window: (Tick, Tick)) -> RelationCheck
where
    F: Granularity + ?Sized,
    C: Granularity + ?Sized,
{
    for z in window.0..=window.1 {
        if fine.tick_intervals(z).is_some() && convert_tick(fine, z, coarse).is_none() {
            return RelationCheck::FailsAt(z);
        }
    }
    RelationCheck::HoldsOnSample
}

/// Checks that every tick of `coarse` within the window is exactly a union
/// of ticks of `fine` ("groups into", sampled).
pub fn groups_into<F, C>(fine: &F, coarse: &C, window: (Tick, Tick)) -> RelationCheck
where
    F: Granularity + ?Sized,
    C: Granularity + ?Sized,
{
    for z in window.0..=window.1 {
        let Some(big) = coarse.tick_intervals(z) else {
            continue;
        };
        // Walk the fine ticks overlapping the coarse tick and check they
        // tile it exactly.
        let mut covered: i64 = 0;
        let Some(mut zf) = fine.next_tick_at_or_after(big.min()) else {
            return RelationCheck::FailsAt(z);
        };
        while let Some(small) = fine.tick_intervals(zf) {
            if small.min() > big.max() {
                break;
            }
            if !small.is_subset_of(&big) {
                return RelationCheck::FailsAt(z);
            }
            covered += small.count();
            zf += 1;
        }
        if covered != big.count() {
            return RelationCheck::FailsAt(z);
        }
    }
    RelationCheck::HoldsOnSample
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::registry::Calendar;

    const W: (Tick, Tick) = (-600, 600);

    #[test]
    fn day_finer_than_month_and_week() {
        let day = builtin::day();
        assert!(finer_than(&day, &builtin::month(), W).holds());
        assert!(finer_than(&day, &builtin::week(), W).holds());
        assert!(finer_than(&day, &builtin::year(), W).holds());
    }

    #[test]
    fn week_not_finer_than_month() {
        // Some week straddles a month boundary.
        let check = finer_than(&builtin::week(), &builtin::month(), W);
        assert!(matches!(check, RelationCheck::FailsAt(_)));
        // ... but week IS finer than a large uniform block.
        let big = builtin::Uniform::new("huge", 400 * 7 * 86_400, -5 * 86_400);
        assert!(finer_than(&builtin::week(), &big, (-5, 5)).holds());
    }

    #[test]
    fn day_not_finer_than_business_day() {
        // Saturdays are uncovered.
        assert!(!finer_than(&builtin::day(), &builtin::business_day(Vec::new()), W).holds());
        // Business days ARE finer than days (each b-day is a day).
        assert!(finer_than(&builtin::business_day(Vec::new()), &builtin::day(), W).holds());
    }

    #[test]
    fn groups_into_relations() {
        let day = builtin::day();
        // Days tile months, weeks, years exactly.
        assert!(groups_into(&day, &builtin::month(), (-60, 60)).holds());
        assert!(groups_into(&day, &builtin::week(), (-60, 60)).holds());
        // Hours tile days.
        assert!(groups_into(&builtin::hour(), &day, (-60, 60)).holds());
        // Days do NOT tile business weeks (weekends are not days of the
        // business week)... actually business-week ticks ARE unions of
        // (business) days, and also unions of day-granularity days.
        let cal = Calendar::standard();
        let bw = cal.get("business-week").unwrap();
        assert!(groups_into(&day, &bw, (-60, 60)).holds());
        // But weeks do not tile months.
        assert!(!groups_into(&builtin::week(), &builtin::month(), (-60, 60)).holds());
    }

    #[test]
    fn business_day_groups_into_business_month() {
        let cal = Calendar::standard();
        let bday = cal.get("business-day").unwrap();
        let bmonth = cal.get("business-month").unwrap();
        assert!(groups_into(&bday, &bmonth, (-40, 40)).holds());
        // Plain days do not tile business months (weekend days poke out of
        // the non-convex tick).
        assert!(!groups_into(&builtin::day(), &bmonth, (-40, 40)).holds());
    }

    #[test]
    fn fiscal_year_anchor() {
        // Fiscal year starting April 2000 (month index 3).
        let fiscal = builtin::Months::with_anchor("fiscal-year", 12, 3);
        use crate::granularity::Granularity as _;
        let t1 = fiscal.tick_intervals(1).unwrap();
        // Tick 1 = Apr 2000 .. Mar 2001.
        assert_eq!(
            crate::datetime::format_instant(t1.min()),
            "2000-04-01 00:00:00 Sat"
        );
        assert_eq!(
            crate::datetime::format_instant(t1.max()),
            "2001-03-31 23:59:59 Sat"
        );
        // Months are finer than fiscal years; quarters anchored off-cycle
        // are not finer than calendar years.
        assert!(finer_than(&builtin::month(), &fiscal, (-300, 300)).holds());
        let odd_quarter = builtin::Months::with_anchor("odd-quarter", 3, 2);
        assert!(!finer_than(&odd_quarter, &builtin::year(), (-100, 100)).holds());
    }
}

//! The [`Granularity`] trait and the primitive time units.

use std::fmt;

use crate::interval::IntervalSet;

/// An absolute time instant, in integer seconds since the epoch
/// (2000-01-01T00:00:00, a Saturday).
///
/// The paper's "primitive temporal type" is `second`; every tick of every
/// other granularity is a union of seconds.
pub type Second = i64;

/// A tick index of a granularity.
///
/// The paper uses positive integers; we anchor tick `1` of every builtin
/// granularity at (or just before) the epoch and extend indices to all of
/// `i64`. Only differences of tick indices are semantically meaningful to the
/// constraint layer.
pub type Tick = i64;

/// A temporal type in the sense of the paper (§2): a monotone mapping from
/// tick indices to sets of absolute time instants.
///
/// Implementations must uphold the two axioms:
///
/// 1. **Monotonicity** — if `i < j` and both ticks are non-empty, every
///    instant of tick `i` precedes every instant of tick `j`.
/// 2. **Consistency of the two views** — `covering_tick(t) == Some(z)` iff
///    `tick_intervals(z)` contains `t`.
///
/// Ticks may be non-convex (sets of disjoint intervals) and the granularity
/// may have gaps (instants covered by no tick). A return of `None` from
/// [`tick_intervals`](Self::tick_intervals) means the tick index lies outside
/// the granularity's supported horizon (used for calendar types with a finite
/// precomputed validity range).
pub trait Granularity: Send + Sync + fmt::Debug {
    /// A short human-readable name, unique within a [`Calendar`](crate::Calendar).
    fn name(&self) -> &str;

    /// The tick whose instant set contains `t`, or `None` if `t` falls in a
    /// gap of this granularity (or outside the supported horizon).
    fn covering_tick(&self, t: Second) -> Option<Tick>;

    /// The set of instants of tick `z`, or `None` if `z` is outside the
    /// supported horizon. A `Some` return is always a non-empty set.
    fn tick_intervals(&self, z: Tick) -> Option<IntervalSet>;

    /// The earliest instant of tick `z`.
    fn tick_min(&self, z: Tick) -> Option<Second> {
        self.tick_intervals(z).map(|s| s.min())
    }

    /// The latest instant of tick `z`.
    fn tick_max(&self, z: Tick) -> Option<Second> {
        self.tick_intervals(z).map(|s| s.max())
    }

    /// Whether instant `t` belongs to tick `z`.
    fn tick_contains(&self, z: Tick, t: Second) -> bool {
        self.covering_tick(t) == Some(z)
    }

    /// Whether the granularity has *gaps*: instants covered by no tick
    /// (e.g. a Saturday for `business-day`).
    ///
    /// Defaults to `true` (the safe answer): gap-free granularities opt in,
    /// which permits constraint conversions *into* them (see the constraint
    /// layer).
    fn has_gaps(&self) -> bool {
        true
    }

    /// Exact span/gap bounds for `k` consecutive ticks when computable in
    /// O(1); used as a fast path by [`SizeTable`](crate::SizeTable).
    fn exact_sizes(&self, _k: u64) -> Option<crate::size_table::SizeBounds> {
        None
    }

    /// A tick-index window `(lo, hi)` such that scanning all runs of `k`
    /// consecutive ticks starting inside it observes the extreme (minimal and
    /// maximal) span and gap patterns of this granularity.
    ///
    /// Builtin granularities return windows covering their full periodic
    /// cycle (e.g. the 400-year Gregorian cycle for months) plus any
    /// aperiodic perturbation (holidays). Custom granularities should
    /// override this; the default is a generous heuristic window.
    fn scan_window(&self, k: u64) -> (Tick, Tick) {
        let k = k as Tick;
        (-5_000 - k, 5_000 + k)
    }

    /// The granularity's claim that its structure repeats periodically —
    /// the seed for [`periodic::compile`](crate::periodic::compile). The
    /// claim is verified against this implementation before use, so a wrong
    /// hint costs a fallback, never a wrong answer. Default: `None`
    /// (aperiodic / unknown — stay on the mutex-cache path).
    fn periodic_hint(&self) -> Option<crate::periodic::PeriodicHint> {
        None
    }

    /// An optional semantically identical stand-in the periodic compiler
    /// uses for its full-period sampling walks — e.g. a grouped granularity
    /// re-based on its children's own compiled tables, so compiling
    /// `business-month` does not walk a 400-year cycle through the raw
    /// interval code. Verification probes always run against `self`, so a
    /// stand-in that diverges costs a fallback, never a wrong answer.
    fn periodic_accel(&self) -> Option<std::sync::Arc<dyn Granularity>> {
        None
    }

    /// The tick covering `t`, or the first tick after `t` if `t` falls in a
    /// gap. `None` only outside the horizon.
    ///
    /// The default implementation scans forward one second at a time from `t`
    /// and is overridden by builtin granularities with an efficient
    /// computation where the structure allows.
    fn next_tick_at_or_after(&self, t: Second) -> Option<Tick> {
        if let Some(z) = self.covering_tick(t) {
            return Some(z);
        }
        // Fallback linear probe, bounded to keep pathological granularities
        // from looping forever. Builtins override this.
        const PROBE_LIMIT: i64 = 4 * 366 * 86_400;
        let mut u = t;
        let stop = t.saturating_add(PROBE_LIMIT);
        while u < stop {
            u += 1;
            if let Some(z) = self.covering_tick(u) {
                return Some(z);
            }
        }
        None
    }
}

impl<G: Granularity + ?Sized> Granularity for &G {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn covering_tick(&self, t: Second) -> Option<Tick> {
        (**self).covering_tick(t)
    }
    fn tick_intervals(&self, z: Tick) -> Option<IntervalSet> {
        (**self).tick_intervals(z)
    }
    fn tick_min(&self, z: Tick) -> Option<Second> {
        (**self).tick_min(z)
    }
    fn tick_max(&self, z: Tick) -> Option<Second> {
        (**self).tick_max(z)
    }
    fn tick_contains(&self, z: Tick, t: Second) -> bool {
        (**self).tick_contains(z, t)
    }
    fn has_gaps(&self) -> bool {
        (**self).has_gaps()
    }
    fn exact_sizes(&self, k: u64) -> Option<crate::size_table::SizeBounds> {
        (**self).exact_sizes(k)
    }
    fn scan_window(&self, k: u64) -> (Tick, Tick) {
        (**self).scan_window(k)
    }
    fn next_tick_at_or_after(&self, t: Second) -> Option<Tick> {
        (**self).next_tick_at_or_after(t)
    }
    fn periodic_hint(&self) -> Option<crate::periodic::PeriodicHint> {
        (**self).periodic_hint()
    }
    fn periodic_accel(&self) -> Option<std::sync::Arc<dyn Granularity>> {
        (**self).periodic_accel()
    }
}

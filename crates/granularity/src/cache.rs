//! Shared, thread-safe granularity-resolution cache.
//!
//! Resolving an instant to its tick ([`covering_tick`]), materializing a
//! tick's instant set ([`tick_intervals`]) and converting ticks across
//! granularities ([`convert_tick`]) all bottom out in calendar arithmetic
//! that the matcher, the mining pipeline and constraint propagation repeat
//! for the *same* arguments thousands of times per run. Every [`Gran`]
//! handle owns one `ResolutionCache`, shared by all clones of the handle
//! (clones share the inner `Arc`), so a calendar lookup warmed by one layer
//! accelerates every other layer.
//!
//! The cache is keyed per operation on the raw argument (tick or second)
//! plus, for conversions, the target granularity's unique
//! [instance id](crate::Gran::instance_id) — ids are process-unique and
//! never reused, so two distinct granularities that merely share a name
//! (e.g. `business-day` with different holiday sets) can never collide.
//!
//! Hit/miss counters aggregate both per-granularity (see
//! [`Gran::cache_stats`](crate::Gran::cache_stats)) and process-wide
//! ([`global_stats`]). The whole layer can be switched off with
//! [`set_enabled`] for ablation experiments; resolution results are
//! identical either way (the differential property tests assert this).
//!
//! [`covering_tick`]: crate::Granularity::covering_tick
//! [`tick_intervals`]: crate::Granularity::tick_intervals
//! [`convert_tick`]: crate::convert_tick
//! [`Gran`]: crate::Gran

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::granularity::{Second, Tick};
use crate::interval::IntervalSet;

/// Multiply-rotate hasher for the memo keys (ticks, seconds, instance
/// ids). The default SipHash costs about as much as the periodic-calendar
/// arithmetic the memo replaces; integer keys need no DoS resistance here.
#[derive(Default)]
pub(crate) struct FastIntHasher(u64);

impl Hasher for FastIntHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(26);
    }

    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }
}

pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastIntHasher>>;

/// Process-wide switch for the resolution cache (default: on).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Process-wide hit/miss aggregates across every granularity's cache.
static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Monotonic source of process-unique granularity instance ids.
static NEXT_INSTANCE_ID: AtomicU64 = AtomicU64::new(1);

/// Each per-operation map is cleared when it reaches this many entries; a
/// backstop against unbounded growth on adversarial tick streams, far above
/// what the bench workloads touch.
const MAX_ENTRIES: usize = 1 << 16;

/// Enables or disables the resolution cache process-wide.
///
/// Disabling does not clear existing entries; it bypasses lookups and
/// insertions (counters stop moving too). Intended for cache-on/off
/// ablations and differential tests.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the resolution cache is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Hit/miss counters for a resolution cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to calendar arithmetic.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when none).
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;
    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
        }
    }
}

/// Process-wide counters aggregated across every granularity's cache.
pub fn global_stats() -> CacheStats {
    CacheStats {
        hits: GLOBAL_HITS.load(Ordering::Relaxed),
        misses: GLOBAL_MISSES.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide counters (per-granularity counters are
/// unaffected). Useful around a measured region in benchmarks.
pub fn reset_global_stats() {
    GLOBAL_HITS.store(0, Ordering::Relaxed);
    GLOBAL_MISSES.store(0, Ordering::Relaxed);
}

pub(crate) fn next_instance_id() -> u64 {
    NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Per-granularity memo for `covering_tick`, `tick_intervals` and
/// `convert_tick`, shared by all clones of a [`Gran`](crate::Gran) handle.
pub(crate) struct ResolutionCache {
    covering: Mutex<FastMap<Second, Option<Tick>>>,
    intervals: Mutex<FastMap<Tick, Option<IntervalSet>>>,
    /// Keyed by (target instance id, source tick).
    convert: Mutex<FastMap<(u64, Tick), Option<Tick>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResolutionCache {
    pub(crate) fn new() -> Self {
        ResolutionCache {
            covering: Mutex::new(FastMap::default()),
            intervals: Mutex::new(FastMap::default()),
            convert: Mutex::new(FastMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
    }

    fn memo<K, V>(
        &self,
        map: &Mutex<FastMap<K, V>>,
        key: K,
        compute: impl FnOnce() -> V,
    ) -> V
    where
        K: std::hash::Hash + Eq,
        V: Clone,
    {
        if !enabled() {
            return compute();
        }
        if let Some(v) = map.lock().get(&key) {
            self.hit();
            return v.clone();
        }
        self.miss();
        let v = compute();
        let mut guard = map.lock();
        if guard.len() >= MAX_ENTRIES {
            guard.clear();
        }
        guard.insert(key, v.clone());
        v
    }

    pub(crate) fn covering_tick(
        &self,
        t: Second,
        compute: impl FnOnce() -> Option<Tick>,
    ) -> Option<Tick> {
        self.memo(&self.covering, t, compute)
    }

    pub(crate) fn tick_intervals(
        &self,
        z: Tick,
        compute: impl FnOnce() -> Option<IntervalSet>,
    ) -> Option<IntervalSet> {
        self.memo(&self.intervals, z, compute)
    }

    pub(crate) fn convert_tick(
        &self,
        target_id: u64,
        z: Tick,
        compute: impl FnOnce() -> Option<Tick>,
    ) -> Option<Tick> {
        self.memo(&self.convert, (target_id, z), compute)
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn clear(&self) {
        self.covering.lock().clear();
        self.intervals.lock().clear();
        self.convert.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that read or toggle the process-wide enable flag
    /// (the default harness runs tests concurrently in one process).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn memo_counts_hits_and_misses() {
        let _guard = TEST_LOCK.lock();
        let c = ResolutionCache::new();
        let mut computed = 0;
        for _ in 0..3 {
            let v = c.covering_tick(42, || {
                computed += 1;
                Some(7)
            });
            assert_eq!(v, Some(7));
        }
        assert_eq!(computed, 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert_eq!(s.lookups(), 3);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_bypasses_and_stops_counting() {
        let _guard = TEST_LOCK.lock();
        let c = ResolutionCache::new();
        c.covering_tick(1, || Some(1));
        set_enabled(false);
        let mut computed = 0;
        for _ in 0..2 {
            c.covering_tick(1, || {
                computed += 1;
                Some(1)
            });
        }
        set_enabled(true);
        assert_eq!(computed, 2, "disabled cache must recompute every call");
        assert_eq!(c.stats().lookups(), 1, "disabled lookups are not counted");
    }

    #[test]
    fn convert_keys_are_per_target() {
        let _guard = TEST_LOCK.lock();
        let c = ResolutionCache::new();
        assert_eq!(c.convert_tick(1, 5, || Some(10)), Some(10));
        assert_eq!(c.convert_tick(2, 5, || Some(20)), Some(20));
        assert_eq!(c.convert_tick(1, 5, || unreachable!("cached")), Some(10));
    }

    #[test]
    fn capped_maps_reset_instead_of_growing() {
        let _guard = TEST_LOCK.lock();
        let c = ResolutionCache::new();
        for t in 0..(MAX_ENTRIES as i64 + 10) {
            c.covering_tick(t, || Some(t));
        }
        assert!(c.covering.lock().len() <= MAX_ENTRIES);
    }

    #[test]
    fn instance_ids_are_unique() {
        let a = next_instance_id();
        let b = next_instance_id();
        assert_ne!(a, b);
    }
}

//! A registry of named granularities and the shared [`Gran`] handle used
//! throughout the constraint and automaton layers.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::builtin;
use crate::cache::{CacheStats, ResolutionCache};
use crate::error::GranularityError;
use crate::granularity::{Granularity, Second, Tick};
use crate::interval::IntervalSet;
use crate::periodic::{self, CompiledView, PeriodicTable};
use crate::size_table::SizeTable;

/// A cheap-to-clone handle to a registered granularity, carrying its
/// memoized [`SizeTable`] and [resolution cache](crate::cache). Equality
/// and hashing are by name (names are unique within a [`Calendar`]).
///
/// All clones of a handle share the same inner state, so ticks resolved by
/// one layer (say, the matcher) are cache hits for every other layer using
/// the same calendar.
#[derive(Clone)]
pub struct Gran {
    inner: Arc<GranInner>,
}

struct GranInner {
    gran: Arc<dyn Granularity>,
    sizes: SizeTable,
    cache: ResolutionCache,
    /// Lazily compiled periodic table (`None` once compilation failed);
    /// shared with the size table's [`CompiledView`] so its scans use the
    /// same compiled fast path.
    compiled: periodic::CompiledCell,
    /// Process-unique, never reused; keys cross-granularity memo entries.
    id: u64,
}

impl Gran {
    /// Wraps a granularity into a standalone handle (outside any calendar).
    pub fn from_arc(gran: Arc<dyn Granularity>) -> Self {
        let compiled: periodic::CompiledCell = Arc::new(periodic::CompiledState::default());
        let view = CompiledView::new(Arc::clone(&gran), Arc::clone(&compiled));
        Gran {
            inner: Arc::new(GranInner {
                sizes: SizeTable::new(Arc::new(view)),
                cache: ResolutionCache::new(),
                compiled,
                id: crate::cache::next_instance_id(),
                gran,
            }),
        }
    }

    /// Wraps a concrete granularity value.
    pub fn new(gran: impl Granularity + 'static) -> Self {
        Self::from_arc(Arc::new(gran))
    }

    /// The granularity's name.
    pub fn name(&self) -> &str {
        self.inner.gran.name()
    }

    /// The underlying granularity.
    pub fn granularity(&self) -> &dyn Granularity {
        self.inner.gran.as_ref()
    }

    /// The memoized size table for this granularity.
    pub fn sizes(&self) -> &SizeTable {
        &self.inner.sizes
    }

    /// A process-unique id for this handle's shared inner state. Ids are
    /// never reused, which makes them safe keys for cross-granularity
    /// memoization (names are not: two `business-day` granularities with
    /// different holiday sets share a name).
    pub fn instance_id(&self) -> u64 {
        self.inner.id
    }

    /// Hit/miss counters of this granularity's resolution cache
    /// (aggregated over all clones of the handle).
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Drops all memoized resolutions for this granularity (counters are
    /// kept).
    pub fn clear_cache(&self) {
        self.inner.cache.clear();
    }

    /// Builds a granularity from a prose-like calendar expression — see
    /// [`parse::from_expr`](crate::parse::from_expr) for the grammar.
    ///
    /// ```
    /// use tgm_granularity::Gran;
    /// let fy = Gran::from_expr("fiscal-years starting apr").unwrap();
    /// ```
    pub fn from_expr(expr: &str) -> Result<Gran, crate::parse::ParseError> {
        crate::parse::from_expr(expr)
    }

    /// The compiled periodic table for this granularity, compiling it on
    /// first use. `None` if the periodic fast path is disabled or the
    /// granularity fell back to the mutex-cache path.
    pub fn compiled(&self) -> Option<Arc<PeriodicTable>> {
        if !periodic::enabled() {
            return None;
        }
        self.inner.compiled.force(self.inner.gran.as_ref()).cloned()
    }

    #[inline]
    fn table(&self) -> Option<&Arc<PeriodicTable>> {
        if !periodic::enabled() {
            return None;
        }
        self.inner.compiled.note_use(self.inner.gran.as_ref())
    }

    /// Cached `⌈z⌉ᵘᵥ`: the tick of `target` covering tick `z` of `self`.
    /// Same semantics as [`convert_tick`](crate::convert_tick). When both
    /// granularities compiled, the conversion is closed-form and lock-free;
    /// otherwise the result is memoized under (target, z) in the mutex
    /// cache.
    pub fn convert_tick_to(&self, z: Tick, target: &Gran) -> Option<Tick> {
        if let (Some(ts), Some(tt)) = (self.table(), target.table()) {
            if let Some(ans) = ts.convert_tick_to(z, tt) {
                return ans;
            }
        }
        self.inner
            .cache
            .convert_tick(target.instance_id(), z, || {
                crate::convert::convert_tick(self, z, target)
            })
    }
}

impl Granularity for Gran {
    fn name(&self) -> &str {
        self.inner.gran.name()
    }
    fn covering_tick(&self, t: Second) -> Option<Tick> {
        if let Some(tb) = self.table() {
            if let Some(ans) = tb.covering_tick(t) {
                return ans;
            }
        }
        self.inner
            .cache
            .covering_tick(t, || self.inner.gran.covering_tick(t))
    }
    fn tick_intervals(&self, z: Tick) -> Option<IntervalSet> {
        if let Some(tb) = self.table() {
            if let Some(set) = tb.tick_intervals(z) {
                return Some(set);
            }
        }
        self.inner
            .cache
            .tick_intervals(z, || self.inner.gran.tick_intervals(z))
    }
    fn has_gaps(&self) -> bool {
        self.inner.gran.has_gaps()
    }
    fn exact_sizes(&self, k: u64) -> Option<crate::size_table::SizeBounds> {
        self.inner.gran.exact_sizes(k)
    }
    fn scan_window(&self, k: u64) -> (Tick, Tick) {
        self.inner.gran.scan_window(k)
    }
    fn next_tick_at_or_after(&self, t: Second) -> Option<Tick> {
        if let Some(tb) = self.table() {
            if let Some(ans) = tb.next_tick_at_or_after(t) {
                return ans;
            }
        }
        self.inner.gran.next_tick_at_or_after(t)
    }
    fn periodic_hint(&self) -> Option<crate::periodic::PeriodicHint> {
        self.inner.gran.periodic_hint()
    }
    fn periodic_accel(&self) -> Option<Arc<dyn Granularity>> {
        self.inner.gran.periodic_accel()
    }
}

impl PartialEq for Gran {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.name() == other.name()
    }
}
impl Eq for Gran {}

impl std::hash::Hash for Gran {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name().hash(state);
    }
}

impl PartialOrd for Gran {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Gran {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.name().cmp(other.name())
    }
}

impl fmt::Debug for Gran {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gran({})", self.name())
    }
}

impl fmt::Display for Gran {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of named granularities sharing one clock domain.
///
/// [`Calendar::standard`] preloads the types used throughout the paper:
/// `second`, `minute`, `hour`, `day`, `week`, `month`, `year`,
/// `business-day`, `business-week`, `business-month`, `weekend-day` and
/// `weekend`.
pub struct Calendar {
    grans: BTreeMap<String, Gran>,
}

impl Calendar {
    /// An empty calendar.
    pub fn empty() -> Self {
        Calendar {
            grans: BTreeMap::new(),
        }
    }

    /// The standard calendar with no holidays.
    pub fn standard() -> Self {
        Self::with_holidays(Vec::new())
    }

    /// A process-wide shared instance of [`Calendar::standard`].
    ///
    /// All callers get the *same* [`Gran`] handles, so size tables and
    /// resolution caches warmed anywhere accelerate everyone. Prefer this
    /// over `Calendar::standard()` in hot paths that need a throwaway
    /// builtin granularity.
    pub fn shared_standard() -> &'static Calendar {
        static SHARED: OnceLock<Calendar> = OnceLock::new();
        SHARED.get_or_init(Calendar::standard)
    }

    /// The standard calendar whose business types exclude the given holiday
    /// day indices (0 = 2000-01-01).
    pub fn with_holidays(holidays: Vec<i64>) -> Self {
        let mut cal = Calendar::empty();
        let reg = |cal: &mut Calendar, g: Gran| {
            cal.register(g).expect("standard names are unique");
        };
        reg(&mut cal, Gran::new(builtin::second()));
        reg(&mut cal, Gran::new(builtin::minute()));
        reg(&mut cal, Gran::new(builtin::hour()));
        reg(&mut cal, Gran::new(builtin::day()));
        reg(&mut cal, Gran::new(builtin::week()));
        reg(&mut cal, Gran::new(builtin::month()));
        reg(&mut cal, Gran::new(builtin::year()));

        let bday: Arc<dyn Granularity> = Arc::new(builtin::business_day(holidays));
        let wday: Arc<dyn Granularity> = Arc::new(builtin::weekend_day());
        let week: Arc<dyn Granularity> = Arc::new(builtin::week());
        let month: Arc<dyn Granularity> = Arc::new(builtin::month());

        reg(&mut cal, Gran::from_arc(Arc::clone(&bday)));
        reg(&mut cal, Gran::from_arc(Arc::clone(&wday)));
        reg(
            &mut cal,
            Gran::new(builtin::GroupInto::new(
                "business-week",
                Arc::clone(&bday),
                Arc::clone(&week),
            )),
        );
        reg(
            &mut cal,
            Gran::new(builtin::GroupInto::new("business-month", bday, month)),
        );
        reg(
            &mut cal,
            Gran::new(builtin::GroupInto::new("weekend", wday, week)),
        );
        cal
    }

    /// Registers a granularity; fails on duplicate names.
    pub fn register(&mut self, gran: Gran) -> Result<(), GranularityError> {
        let name = gran.name().to_owned();
        if self.grans.contains_key(&name) {
            return Err(GranularityError::DuplicateName(name));
        }
        self.grans.insert(name, gran);
        Ok(())
    }

    /// Looks up a granularity by name.
    pub fn get(&self, name: &str) -> Result<Gran, GranularityError> {
        self.grans
            .get(name)
            .cloned()
            .ok_or_else(|| GranularityError::UnknownName(name.to_owned()))
    }

    /// Iterates all registered granularities in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Gran> {
        self.grans.values()
    }

    /// Number of registered granularities.
    pub fn len(&self) -> usize {
        self.grans.len()
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.grans.is_empty()
    }
}

impl fmt::Debug for Calendar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.grans.keys()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_calendar_contents() {
        let cal = Calendar::standard();
        for name in [
            "second",
            "minute",
            "hour",
            "day",
            "week",
            "month",
            "year",
            "business-day",
            "business-week",
            "business-month",
            "weekend-day",
            "weekend",
        ] {
            assert!(cal.get(name).is_ok(), "missing standard granularity {name}");
        }
        assert_eq!(cal.len(), 12);
    }

    #[test]
    fn duplicate_registration_fails() {
        let mut cal = Calendar::standard();
        let err = cal.register(Gran::new(builtin::second())).unwrap_err();
        assert_eq!(err, GranularityError::DuplicateName("second".into()));
    }

    #[test]
    fn unknown_lookup_fails() {
        let cal = Calendar::standard();
        assert!(matches!(
            cal.get("fortnight"),
            Err(GranularityError::UnknownName(_))
        ));
    }

    #[test]
    fn gran_equality_by_name() {
        let cal = Calendar::standard();
        let a = cal.get("day").unwrap();
        let b = cal.get("day").unwrap();
        let c = cal.get("hour").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let standalone = Gran::new(builtin::day());
        assert_eq!(a, standalone);
    }

    #[test]
    fn business_week_in_calendar() {
        let cal = Calendar::standard();
        let bw = cal.get("business-week").unwrap();
        // Business week tick 2 (week of Mon 2000-01-03) covers Mon-Fri.
        let set = bw.tick_intervals(2).unwrap();
        assert_eq!(set.count(), 5 * builtin::SECONDS_PER_DAY);
    }
}

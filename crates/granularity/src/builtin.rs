//! Builtin granularities: uniform units, calendar months/years, filtered day
//! granularities (business days, weekend days), and grouped granularities
//! (business weeks, business months, weekends).
//!
//! All builtins anchor tick `1` at or immediately after the crate epoch
//! (2000-01-01T00:00:00).

use std::sync::Arc;

use crate::calendar_math::{civil_from_days, month_start_day, months_from_civil, weekday_from_days};
use crate::granularity::{Granularity, Second, Tick};
use crate::interval::{Interval, IntervalSet};
use crate::periodic::PeriodicHint;
use crate::size_table::SizeBounds;

/// Seconds per day.
pub const SECONDS_PER_DAY: i64 = 86_400;

/// Months horizon: month indices (0 = January 2000) supported by
/// month-based granularities, roughly ±10 000 years.
const MONTH_HORIZON: i64 = 120_000;

/// Day horizon for filtered/grouped day granularities, roughly ±4 000 years.
const DAY_HORIZON: i64 = 1_500_000;

// ---------------------------------------------------------------------------
// Uniform granularities
// ---------------------------------------------------------------------------

/// A granularity whose ticks are contiguous, equal-length blocks of seconds:
/// seconds, minutes, hours, days, weeks, or any fixed period.
///
/// Tick `z` covers `[anchor + (z-1)·period, anchor + z·period - 1]`.
#[derive(Debug, Clone)]
pub struct Uniform {
    name: String,
    period: i64,
    anchor: Second,
}

impl Uniform {
    /// Creates a uniform granularity. `period` must be positive; `anchor` is
    /// the first instant of tick 1.
    pub fn new(name: impl Into<String>, period: i64, anchor: Second) -> Self {
        assert!(period > 0, "period must be positive");
        Uniform {
            name: name.into(),
            period,
            anchor,
        }
    }

    /// The tick length in seconds.
    pub fn period(&self) -> i64 {
        self.period
    }
}

impl Granularity for Uniform {
    fn name(&self) -> &str {
        &self.name
    }

    fn covering_tick(&self, t: Second) -> Option<Tick> {
        Some((t - self.anchor).div_euclid(self.period) + 1)
    }

    fn tick_intervals(&self, z: Tick) -> Option<IntervalSet> {
        let start = self.anchor + (z - 1) * self.period;
        Some(IntervalSet::single(Interval::new(
            start,
            start + self.period - 1,
        )))
    }

    fn has_gaps(&self) -> bool {
        false
    }

    fn exact_sizes(&self, k: u64) -> Option<SizeBounds> {
        let k = k as i64;
        let span = k * self.period;
        Some(SizeBounds {
            // Span of k consecutive ticks is exactly k periods.
            min_span: span,
            max_span: span,
            // min(tick i+k) - max(tick i) = (k-1)·period + 1.
            min_gap: (k - 1) * self.period + 1,
        })
    }

    fn next_tick_at_or_after(&self, t: Second) -> Option<Tick> {
        self.covering_tick(t)
    }

    fn periodic_hint(&self) -> Option<PeriodicHint> {
        // Trivially periodic everywhere; keep well clear of i64 extremes so
        // all compiled arithmetic stays in range.
        const LIM: i64 = i64::MAX / 4;
        Some(PeriodicHint {
            anchor: self.anchor,
            period: self.period,
            sec_lo: -LIM,
            sec_hi: LIM,
            exceptions: None,
        })
    }
}

/// The primitive type: one tick per second, tick 1 at the epoch.
pub fn second() -> Uniform {
    Uniform::new("second", 1, 0)
}

/// Minutes (60 s), tick 1 at the epoch.
pub fn minute() -> Uniform {
    Uniform::new("minute", 60, 0)
}

/// Hours (3600 s), tick 1 at the epoch.
pub fn hour() -> Uniform {
    Uniform::new("hour", 3_600, 0)
}

/// Civil days, tick 1 = 2000-01-01.
pub fn day() -> Uniform {
    Uniform::new("day", SECONDS_PER_DAY, 0)
}

/// ISO weeks (Monday–Sunday). Tick 1 is the week containing the epoch,
/// starting Monday 1999-12-27.
pub fn week() -> Uniform {
    Uniform::new("week", 7 * SECONDS_PER_DAY, -5 * SECONDS_PER_DAY)
}

// ---------------------------------------------------------------------------
// Month-based granularities
// ---------------------------------------------------------------------------

/// Calendar months grouped `per_tick` at a time: `per_tick = 1` is `month`,
/// `12` is `year`, and arbitrary `n` gives the `n-month` types used in the
/// paper's NP-hardness reduction (Appendix A.2).
///
/// Tick 1 starts at the epoch month (January 2000).
#[derive(Debug, Clone)]
pub struct Months {
    name: String,
    per_tick: i64,
    /// Month index (0 = January 2000) where tick 1 starts — e.g. 3 for a
    /// fiscal year running April..March.
    anchor: i64,
}

impl Months {
    /// Creates a month-grouping granularity; `per_tick ≥ 1`.
    pub fn new(name: impl Into<String>, per_tick: i64) -> Self {
        Self::with_anchor(name, per_tick, 0)
    }

    /// Creates a month-grouping granularity whose tick 1 starts at the
    /// given month index (0 = January 2000) — fiscal years, off-cycle
    /// quarters, etc.
    pub fn with_anchor(name: impl Into<String>, per_tick: i64, anchor: i64) -> Self {
        assert!(per_tick >= 1, "per_tick must be >= 1");
        Months {
            name: name.into(),
            per_tick,
            anchor,
        }
    }

    /// First month index (0 = January 2000) of tick `z`.
    fn first_month(&self, z: Tick) -> i64 {
        (z - 1) * self.per_tick + self.anchor
    }

    fn in_horizon(&self, m_lo: i64, m_hi: i64) -> bool {
        m_lo >= -MONTH_HORIZON && m_hi <= MONTH_HORIZON
    }
}

impl Granularity for Months {
    fn name(&self) -> &str {
        &self.name
    }

    fn covering_tick(&self, t: Second) -> Option<Tick> {
        let day = t.div_euclid(SECONDS_PER_DAY);
        if day.abs() > DAY_HORIZON * 3 {
            return None;
        }
        let date = civil_from_days(day);
        let m = months_from_civil(date.year, date.month);
        if !self.in_horizon(m, m) {
            return None;
        }
        Some((m - self.anchor).div_euclid(self.per_tick) + 1)
    }

    fn tick_intervals(&self, z: Tick) -> Option<IntervalSet> {
        let m0 = self.first_month(z);
        let m1 = m0 + self.per_tick;
        if !self.in_horizon(m0, m1) {
            return None;
        }
        let start = month_start_day(m0) * SECONDS_PER_DAY;
        let end = month_start_day(m1) * SECONDS_PER_DAY - 1;
        Some(IntervalSet::single(Interval::new(start, end)))
    }

    fn has_gaps(&self) -> bool {
        false
    }

    fn scan_window(&self, k: u64) -> (Tick, Tick) {
        // Month lengths repeat exactly with the 400-year (4800-month)
        // Gregorian cycle; scanning one full cycle of ticks observes every
        // span pattern.
        let cycle_ticks = 4_800 / self.per_tick + 2;
        let k = k as Tick;
        (-cycle_ticks - k, cycle_ticks + k)
    }

    fn next_tick_at_or_after(&self, t: Second) -> Option<Tick> {
        self.covering_tick(t)
    }

    fn periodic_hint(&self) -> Option<PeriodicHint> {
        // Month lengths repeat with the 400-year (4 800-month, 146 097-day)
        // Gregorian cycle; the tick grouping needs lcm(4 800, per_tick)
        // months for its boundaries to realign.
        let cycle_months = crate::periodic::checked_lcm(4_800, self.per_tick)?;
        let period = (cycle_months / 4_800).checked_mul(146_097 * SECONDS_PER_DAY)?;
        Some(PeriodicHint {
            anchor: month_start_day(self.anchor) * SECONDS_PER_DAY,
            period,
            sec_lo: month_start_day(-MONTH_HORIZON) * SECONDS_PER_DAY,
            sec_hi: month_start_day(MONTH_HORIZON + 1) * SECONDS_PER_DAY - 1,
            exceptions: None,
        })
    }
}

/// Calendar months, tick 1 = January 2000.
pub fn month() -> Months {
    Months::new("month", 1)
}

/// Calendar years, tick 1 = year 2000.
pub fn year() -> Months {
    Months::new("year", 12)
}

/// Groups of `n` consecutive months (the `n-month` types of the paper's
/// NP-hardness reduction).
pub fn n_month(n: i64) -> Months {
    Months::new(format!("{n}-month"), n)
}

// ---------------------------------------------------------------------------
// Filtered day granularities (business day, weekend day, …)
// ---------------------------------------------------------------------------

/// Days filtered by a weekday mask minus an explicit holiday list: the
/// `business-day` (`b-day`) type of the paper, and its weekend complement.
///
/// Ticks are renumbered consecutively over the kept days; tick 1 is the first
/// kept day on or after the epoch. The granularity has *gaps*: filtered-out
/// days are covered by no tick (so `⌈z⌉ᵇ⁻ᵈᵃʸ_day` is undefined for a
/// Saturday, as in the paper).
#[derive(Debug, Clone)]
pub struct FilteredDays {
    name: String,
    /// keep[w] == true ⇒ weekday w (Monday = 0) is kept.
    keep: [bool; 7],
    kept_per_week: i64,
    /// Sorted, deduplicated day indices removed in addition to the mask.
    /// Invariant: every listed day matches the weekday mask.
    holidays: Arc<Vec<i64>>,
    /// Cumulative kept-day count offset so that tick 1 is the first kept day
    /// >= day 0: `index(d) = kept_in(0, d)` for kept d >= 0.
    base: i64,
}

impl FilteredDays {
    /// Creates a filtered-day granularity. `keep` is indexed Monday = 0;
    /// `holidays` are day indices (0 = 2000-01-01) removed in addition to
    /// the mask. At least one weekday must be kept.
    pub fn new(name: impl Into<String>, keep: [bool; 7], holidays: Vec<i64>) -> Self {
        let kept_per_week = keep.iter().filter(|&&b| b).count() as i64;
        assert!(kept_per_week > 0, "at least one weekday must be kept");
        let mut hs: Vec<i64> = holidays
            .into_iter()
            .filter(|&d| keep[weekday_from_days(d).index()])
            .collect();
        hs.sort_unstable();
        hs.dedup();
        let mut g = FilteredDays {
            name: name.into(),
            keep,
            kept_per_week,
            holidays: Arc::new(hs),
            base: 0,
        };
        // index(d) should be kept_in(0, d) for d >= 0; cum-based index is
        // cum(d) - cum(-1), so base = cum(-1).
        g.base = g.cum(-1);
        g
    }

    /// Number of kept days in `(-inf, d]`, counted from an arbitrary fixed
    /// origin (only differences are meaningful). Monotone in `d`.
    fn cum(&self, d: i64) -> i64 {
        // Count mask-kept days in [0, d] analytically (negative for d < 0),
        // then subtract holidays <= d.
        let mask_kept = if d >= 0 {
            self.mask_kept_in(0, d)
        } else {
            -self.mask_kept_in(d + 1, -1)
        };
        let hols = self.holidays.partition_point(|&h| h <= d) as i64;
        mask_kept - hols
    }

    /// Number of mask-kept (ignoring holidays) days in `[lo, hi]`, `lo <= hi`.
    fn mask_kept_in(&self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi + 1);
        if lo > hi {
            return 0;
        }
        let n = hi - lo + 1;
        let full_weeks = n / 7;
        let mut count = full_weeks * self.kept_per_week;
        for d in (lo + full_weeks * 7)..=hi {
            if self.keep[weekday_from_days(d).index()] {
                count += 1;
            }
        }
        count
    }

    fn is_kept(&self, d: i64) -> bool {
        self.keep[weekday_from_days(d).index()] && self.holidays.binary_search(&d).is_err()
    }

    /// Tick index of kept day `d`.
    fn index_of(&self, d: i64) -> Tick {
        debug_assert!(self.is_kept(d));
        self.cum(d) - self.base
    }

    /// Day index of tick `z` (inverse of `index_of`), or `None` outside the
    /// horizon.
    fn day_of(&self, z: Tick) -> Option<i64> {
        let target = z + self.base;
        // Binary search the smallest d with cum(d) >= target; cum jumps by 1
        // exactly at kept days, so that d is kept and has index z.
        let (mut lo, mut hi) = (-DAY_HORIZON, DAY_HORIZON);
        if self.cum(hi) < target || self.cum(lo) >= target {
            return None;
        }
        // Invariant: cum(lo) < target <= cum(hi).
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cum(mid) >= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        debug_assert!(self.is_kept(hi));
        Some(hi)
    }

    /// The sorted holiday list.
    pub fn holidays(&self) -> &[i64] {
        &self.holidays
    }
}

impl Granularity for FilteredDays {
    fn name(&self) -> &str {
        &self.name
    }

    fn covering_tick(&self, t: Second) -> Option<Tick> {
        let d = t.div_euclid(SECONDS_PER_DAY);
        if d.abs() > DAY_HORIZON {
            return None;
        }
        self.is_kept(d).then(|| self.index_of(d))
    }

    fn tick_intervals(&self, z: Tick) -> Option<IntervalSet> {
        let d = self.day_of(z)?;
        let start = d * SECONDS_PER_DAY;
        Some(IntervalSet::single(Interval::new(
            start,
            start + SECONDS_PER_DAY - 1,
        )))
    }

    fn scan_window(&self, k: u64) -> (Tick, Tick) {
        // Away from holidays the pattern is exactly 7-day periodic. Scan the
        // holiday-affected tick range plus clean weeks on both sides.
        let k = k as i64;
        let margin = 2 * k + 64;
        let lo_tick = self
            .holidays
            .first()
            .map_or(0, |&d| self.cum(d) - self.base);
        let hi_tick = self
            .holidays
            .last()
            .map_or(0, |&d| self.cum(d) - self.base);
        (lo_tick - margin, hi_tick + margin)
    }

    fn next_tick_at_or_after(&self, t: Second) -> Option<Tick> {
        let d = t.div_euclid(SECONDS_PER_DAY);
        if d.abs() > DAY_HORIZON {
            return None;
        }
        if self.is_kept(d) {
            return Some(self.index_of(d));
        }
        // First kept day after d: its index is cum(d) - base + 1.
        let z = self.cum(d) - self.base + 1;
        self.day_of(z).map(|_| z)
    }

    fn periodic_hint(&self) -> Option<PeriodicHint> {
        // The weekday mask repeats weekly (Monday-anchored like `week`);
        // the holiday list is the aperiodic exception stretch.
        let exceptions = self
            .holidays
            .first()
            .zip(self.holidays.last())
            .map(|(&a, &b)| (a * SECONDS_PER_DAY, (b + 1) * SECONDS_PER_DAY - 1));
        Some(PeriodicHint {
            anchor: -5 * SECONDS_PER_DAY,
            period: 7 * SECONDS_PER_DAY,
            sec_lo: -DAY_HORIZON * SECONDS_PER_DAY,
            sec_hi: (DAY_HORIZON + 1) * SECONDS_PER_DAY - 1,
            exceptions,
        })
    }
}

/// Business days (Monday–Friday minus `holidays`): the paper's `b-day`.
pub fn business_day(holidays: Vec<i64>) -> FilteredDays {
    FilteredDays::new(
        "business-day",
        [true, true, true, true, true, false, false],
        holidays,
    )
}

/// Weekend days (Saturday and Sunday).
pub fn weekend_day() -> FilteredDays {
    FilteredDays::new(
        "weekend-day",
        [false, false, false, false, false, true, true],
        Vec::new(),
    )
}

// ---------------------------------------------------------------------------
// Grouped granularities (business week / business month / weekend)
// ---------------------------------------------------------------------------

/// Groups the ticks of `inner` that fall inside each tick of `frame` into a
/// single (generally non-convex) tick: `business-month` is the business days
/// grouped by `month`, `business-week` by `week`, `weekend` is weekend days
/// grouped by `week`.
///
/// Tick indices follow the frame's numbering. Every frame tick in the
/// supported horizon must contain at least one inner tick (months always
/// contain business days for sane holiday sets); a frame tick with no inner
/// ticks is reported as out-of-horizon.
#[derive(Debug, Clone)]
pub struct GroupInto {
    name: String,
    inner: Arc<dyn Granularity>,
    frame: Arc<dyn Granularity>,
}

impl GroupInto {
    /// Creates a grouped granularity from `inner` ticks framed by `frame`.
    pub fn new(
        name: impl Into<String>,
        inner: Arc<dyn Granularity>,
        frame: Arc<dyn Granularity>,
    ) -> Self {
        GroupInto {
            name: name.into(),
            inner,
            frame,
        }
    }
}

impl Granularity for GroupInto {
    fn name(&self) -> &str {
        &self.name
    }

    fn covering_tick(&self, t: Second) -> Option<Tick> {
        let zi = self.inner.covering_tick(t)?;
        let zf = self.frame.covering_tick(t)?;
        // The inner tick must lie entirely within the frame tick, otherwise
        // the instant belongs to no grouped tick.
        let inner_set = self.inner.tick_intervals(zi)?;
        let frame_set = self.frame.tick_intervals(zf)?;
        inner_set.is_subset_of(&frame_set).then_some(zf)
    }

    fn tick_intervals(&self, z: Tick) -> Option<IntervalSet> {
        let frame_set = self.frame.tick_intervals(z)?;
        let mut parts: Vec<Interval> = Vec::new();
        let mut zi = self.inner.next_tick_at_or_after(frame_set.min())?;
        while let Some(set) = self.inner.tick_intervals(zi) {
            if set.min() > frame_set.max() {
                break;
            }
            if set.is_subset_of(&frame_set) {
                parts.extend_from_slice(set.intervals());
            }
            zi += 1;
        }
        (!parts.is_empty()).then(|| IntervalSet::from_intervals(parts))
    }

    fn scan_window(&self, k: u64) -> (Tick, Tick) {
        // The extreme patterns of the grouped type are driven by both the
        // frame's cycle and the inner type's perturbations; take the union
        // of both windows expressed in frame ticks (inner windows are at
        // least as fine as frame ticks, so they translate conservatively).
        let (flo, fhi) = self.frame.scan_window(k);
        let (ilo, ihi) = self.inner.scan_window(k * 31);
        // Translate inner ticks to frame ticks by locating their instants.
        let to_frame = |zi: Tick| -> Option<Tick> {
            let set = self.inner.tick_intervals(zi)?;
            self.frame.covering_tick(set.min())
        };
        let lo = to_frame(ilo).unwrap_or(flo).min(flo);
        let hi = to_frame(ihi).unwrap_or(fhi).max(fhi);
        (lo, hi)
    }

    fn next_tick_at_or_after(&self, t: Second) -> Option<Tick> {
        if let Some(z) = self.covering_tick(t) {
            return Some(z);
        }
        let zf = self.frame.covering_tick(t)?;
        // Scan forward over frame ticks; bail out after a generous bound so
        // a frame with pathologically many empty ticks cannot hang us.
        (zf..zf + 1_000).find(|&z| self.tick_intervals(z).is_some_and(|s| s.max() >= t))
    }

    fn periodic_hint(&self) -> Option<PeriodicHint> {
        // Both constituent structures are periodic, so the grouping repeats
        // with the lcm of their periods, anchored on the frame (tick
        // numbering follows the frame). Exceptions of either side perturb
        // the grouped pattern, so take the hull of both.
        let hi = self.inner.periodic_hint()?;
        let hf = self.frame.periodic_hint()?;
        let period = crate::periodic::checked_lcm(hi.period, hf.period)?;
        let exceptions = match (hi.exceptions, hf.exceptions) {
            (None, x) | (x, None) => x,
            (Some((a0, a1)), Some((b0, b1))) => Some((a0.min(b0), a1.max(b1))),
        };
        Some(PeriodicHint {
            anchor: hf.anchor,
            period,
            sec_lo: hi.sec_lo.max(hf.sec_lo),
            sec_hi: hi.sec_hi.min(hf.sec_hi),
            exceptions,
        })
    }

    fn periodic_accel(&self) -> Option<Arc<dyn Granularity>> {
        // Re-base the walk on the children's own compiled tables so
        // sampling a 400-year business-month cycle is closed-form instead
        // of a raw interval walk.
        Some(Arc::new(GroupInto::new(
            self.name.clone(),
            crate::periodic::accel_view(Arc::clone(&self.inner)),
            crate::periodic::accel_view(Arc::clone(&self.frame)),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert_tick;

    #[test]
    fn uniform_day_ticks() {
        let d = day();
        // Tick 1 = 2000-01-01 = seconds [0, 86399].
        assert_eq!(d.covering_tick(0), Some(1));
        assert_eq!(d.covering_tick(86_399), Some(1));
        assert_eq!(d.covering_tick(86_400), Some(2));
        assert_eq!(d.covering_tick(-1), Some(0));
        let set = d.tick_intervals(1).unwrap();
        assert_eq!((set.min(), set.max()), (0, 86_399));
    }

    #[test]
    fn week_starts_monday() {
        let w = week();
        // Week tick 1 starts Monday 1999-12-27 (day -5).
        let set = w.tick_intervals(1).unwrap();
        assert_eq!(set.min(), -5 * SECONDS_PER_DAY);
        assert_eq!(set.max(), 2 * SECONDS_PER_DAY - 1); // through Sunday 2000-01-02
        assert_eq!(w.covering_tick(0), Some(1)); // epoch Saturday in week 1
        assert_eq!(w.covering_tick(2 * SECONDS_PER_DAY), Some(2)); // Monday 2000-01-03
    }

    #[test]
    fn month_ticks() {
        let m = month();
        // Tick 1 = January 2000 (31 days), tick 2 = February 2000 (29 days).
        let jan = m.tick_intervals(1).unwrap();
        assert_eq!(jan.min(), 0);
        assert_eq!(jan.max(), 31 * SECONDS_PER_DAY - 1);
        let feb = m.tick_intervals(2).unwrap();
        assert_eq!(feb.count(), 29 * SECONDS_PER_DAY);
        assert_eq!(m.covering_tick(jan.max()), Some(1));
        assert_eq!(m.covering_tick(feb.min()), Some(2));
        // December 1999 is tick 0.
        assert_eq!(m.covering_tick(-1), Some(0));
    }

    #[test]
    fn year_ticks() {
        let y = year();
        let t2000 = y.tick_intervals(1).unwrap();
        assert_eq!(t2000.count(), 366 * SECONDS_PER_DAY); // 2000 is leap
        let t2001 = y.tick_intervals(2).unwrap();
        assert_eq!(t2001.count(), 365 * SECONDS_PER_DAY);
    }

    #[test]
    fn n_month_groups() {
        let g = n_month(3);
        let q1 = g.tick_intervals(1).unwrap();
        // Q1 2000: Jan(31) + Feb(29) + Mar(31) = 91 days.
        assert_eq!(q1.count(), 91 * SECONDS_PER_DAY);
    }

    #[test]
    fn business_day_skips_weekends_and_holidays() {
        // Day 0 = Sat, 1 = Sun, 2 = Mon (2000-01-03).
        let b = business_day(vec![2]); // declare Monday 2000-01-03 a holiday
        assert_eq!(b.covering_tick(0), None); // Saturday
        assert_eq!(b.covering_tick(SECONDS_PER_DAY), None); // Sunday
        assert_eq!(b.covering_tick(2 * SECONDS_PER_DAY), None); // holiday
        assert_eq!(b.covering_tick(3 * SECONDS_PER_DAY), Some(1)); // Tue 2000-01-04
        assert_eq!(b.covering_tick(4 * SECONDS_PER_DAY), Some(2));
    }

    #[test]
    fn business_day_tick_one_without_holidays() {
        let b = business_day(Vec::new());
        // First business day >= epoch is Monday 2000-01-03 (day 2).
        let set = b.tick_intervals(1).unwrap();
        assert_eq!(set.min(), 2 * SECONDS_PER_DAY);
        // Tick 5 = Friday 2000-01-07; tick 6 = Monday 2000-01-10.
        assert_eq!(b.tick_intervals(5).unwrap().min(), 6 * SECONDS_PER_DAY);
        assert_eq!(b.tick_intervals(6).unwrap().min(), 9 * SECONDS_PER_DAY);
        // Negative side: tick 0 = Friday 1999-12-31 (day -1).
        assert_eq!(b.tick_intervals(0).unwrap().min(), -SECONDS_PER_DAY);
    }

    #[test]
    fn business_day_index_day_round_trip() {
        let b = business_day(vec![2, 10, 259]);
        for z in -600..600 {
            let d = b.day_of(z).unwrap();
            assert!(b.is_kept(d));
            assert_eq!(b.index_of(d), z, "round trip failed at tick {z}");
        }
    }

    #[test]
    fn convert_day_to_business_day_undefined_on_weekend() {
        let d = day();
        let b = business_day(Vec::new());
        // Day tick 1 (Saturday 2000-01-01) has no covering business day.
        assert_eq!(convert_tick(&d, 1, &b), None);
        // Day tick 3 (Monday 2000-01-03) is business day 1.
        assert_eq!(convert_tick(&d, 3, &b), Some(1));
    }

    #[test]
    fn convert_week_to_month_undefined_when_straddling() {
        let w = week();
        let m = month();
        // Week 1 (1999-12-27..2000-01-02) straddles Dec 1999 / Jan 2000.
        assert_eq!(convert_tick(&w, 1, &m), None);
        // Week 2 (2000-01-03..09) is inside January 2000 = month tick 1.
        assert_eq!(convert_tick(&w, 2, &m), Some(1));
    }

    #[test]
    fn business_month_is_non_convex() {
        let b: Arc<dyn Granularity> = Arc::new(business_day(Vec::new()));
        let m: Arc<dyn Granularity> = Arc::new(month());
        let bm = GroupInto::new("business-month", b, m);
        let jan = bm.tick_intervals(1).unwrap();
        // January 2000: 21 business days (Sat 1st/Sun 2nd excluded, etc.)
        assert_eq!(jan.count(), 21 * SECONDS_PER_DAY);
        assert!(jan.intervals().len() > 1, "business month must be non-convex");
        // A Saturday in January is not covered.
        assert_eq!(bm.covering_tick(0), None);
        // Monday 2000-01-03 is in business-month tick 1.
        assert_eq!(bm.covering_tick(2 * SECONDS_PER_DAY), Some(1));
    }

    #[test]
    fn weekend_groups_sat_sun() {
        let wd: Arc<dyn Granularity> = Arc::new(weekend_day());
        let w: Arc<dyn Granularity> = Arc::new(week());
        let we = GroupInto::new("weekend", wd, w);
        // Weekend of week 1 = Sat 2000-01-01 + Sun 2000-01-02 = days 0..1.
        let set = we.tick_intervals(1).unwrap();
        assert_eq!((set.min(), set.max()), (0, 2 * SECONDS_PER_DAY - 1));
        assert_eq!(we.covering_tick(0), Some(1));
        assert_eq!(we.covering_tick(2 * SECONDS_PER_DAY), None); // Monday
    }

    #[test]
    fn convert_business_day_to_business_month() {
        let b: Arc<dyn Granularity> = Arc::new(business_day(Vec::new()));
        let m: Arc<dyn Granularity> = Arc::new(month());
        let bm = GroupInto::new("business-month", Arc::clone(&b), m);
        // Business day 1 (Mon 2000-01-03) is in business-month 1.
        assert_eq!(convert_tick(b.as_ref(), 1, &bm), Some(1));
        // Business day 22 (Feb 1, 2000, Tuesday) is in business-month 2.
        assert_eq!(convert_tick(b.as_ref(), 22, &bm), Some(2));
    }

    #[test]
    fn next_tick_at_or_after_business_day() {
        let b = business_day(Vec::new());
        // From Saturday epoch, next business day is tick 1 (Monday).
        assert_eq!(b.next_tick_at_or_after(0), Some(1));
        // From within Monday, it is tick 1 itself.
        assert_eq!(b.next_tick_at_or_after(2 * SECONDS_PER_DAY + 5), Some(1));
    }
}

// ---------------------------------------------------------------------------
// Intra-day window granularities (trading hours, office hours, ...)
// ---------------------------------------------------------------------------

/// The part of each kept day between two times of day — e.g. trading hours
/// 09:30–16:00 on business days. Tick `z` is the window inside the `z`-th
/// kept day (sharing [`FilteredDays`]' tick numbering), so "2 trading-hour
/// ticks apart" means "two trading days apart".
#[derive(Debug, Clone)]
pub struct DayWindow {
    name: String,
    days: FilteredDays,
    /// Window start, seconds from midnight (inclusive).
    start_tod: i64,
    /// Window end, seconds from midnight (inclusive).
    end_tod: i64,
}

impl DayWindow {
    /// Creates a day-window granularity; `0 <= start <= end < 86400`.
    pub fn new(name: impl Into<String>, days: FilteredDays, start_tod: i64, end_tod: i64) -> Self {
        assert!(
            (0..SECONDS_PER_DAY).contains(&start_tod)
                && (0..SECONDS_PER_DAY).contains(&end_tod)
                && start_tod <= end_tod,
            "invalid time-of-day window [{start_tod}, {end_tod}]"
        );
        DayWindow {
            name: name.into(),
            days,
            start_tod,
            end_tod,
        }
    }
}

impl Granularity for DayWindow {
    fn name(&self) -> &str {
        &self.name
    }

    fn covering_tick(&self, t: Second) -> Option<Tick> {
        let tod = t.rem_euclid(SECONDS_PER_DAY);
        if tod < self.start_tod || tod > self.end_tod {
            return None;
        }
        self.days.covering_tick(t)
    }

    fn tick_intervals(&self, z: Tick) -> Option<IntervalSet> {
        let day = self.days.tick_intervals(z)?;
        let day_start = day.min();
        Some(IntervalSet::single(Interval::new(
            day_start + self.start_tod,
            day_start + self.end_tod,
        )))
    }

    fn scan_window(&self, k: u64) -> (Tick, Tick) {
        self.days.scan_window(k)
    }

    fn next_tick_at_or_after(&self, t: Second) -> Option<Tick> {
        let z = self.days.next_tick_at_or_after(t)?;
        // If t is past this day's window, the next tick's window applies.
        if self.tick_intervals(z).is_some_and(|s| s.max() >= t) {
            Some(z)
        } else {
            Some(z + 1)
        }
    }

    fn periodic_hint(&self) -> Option<PeriodicHint> {
        // Same weekly skeleton as the underlying filtered days; the
        // time-of-day clipping is captured by the compiler's sampling.
        self.days.periodic_hint()
    }
}

/// NYSE-style trading hours: 09:30–16:00 on business days minus `holidays`.
pub fn trading_hours(holidays: Vec<i64>) -> DayWindow {
    DayWindow::new(
        "trading-hours",
        business_day(holidays),
        9 * 3_600 + 30 * 60,
        16 * 3_600,
    )
}

#[cfg(test)]
mod day_window_tests {
    use super::*;

    #[test]
    fn trading_hours_ticks() {
        let th = trading_hours(Vec::new());
        // Monday 2000-01-03 (day 2) is trading day 1.
        let open = 2 * SECONDS_PER_DAY + 9 * 3_600 + 30 * 60;
        let close = 2 * SECONDS_PER_DAY + 16 * 3_600;
        assert_eq!(th.covering_tick(open), Some(1));
        assert_eq!(th.covering_tick(close), Some(1));
        assert_eq!(th.covering_tick(open - 1), None); // pre-market
        assert_eq!(th.covering_tick(close + 1), None); // after-hours
        assert_eq!(th.covering_tick(9 * 3_600 + 30 * 60), None); // Saturday
        let set = th.tick_intervals(1).unwrap();
        assert_eq!((set.min(), set.max()), (open, close));
    }

    #[test]
    fn trading_hours_tick_distance_counts_trading_days() {
        let th = trading_hours(Vec::new());
        // Friday 2000-01-07 (day 6) is trading day 5; next Monday is 6.
        let fri = 6 * SECONDS_PER_DAY + 10 * 3_600;
        let mon = 9 * SECONDS_PER_DAY + 10 * 3_600;
        assert_eq!(th.covering_tick(fri), Some(5));
        assert_eq!(th.covering_tick(mon), Some(6));
    }

    #[test]
    fn next_tick_skips_closed_periods() {
        let th = trading_hours(Vec::new());
        // From Saturday, the next trading window is Monday's (tick 1).
        assert_eq!(th.next_tick_at_or_after(0), Some(1));
        // From Monday 18:00 (after close), the next is Tuesday (tick 2).
        let mon_evening = 2 * SECONDS_PER_DAY + 18 * 3_600;
        assert_eq!(th.next_tick_at_or_after(mon_evening), Some(2));
        // From Monday 12:00 (inside), it is Monday itself.
        let mon_noon = 2 * SECONDS_PER_DAY + 12 * 3_600;
        assert_eq!(th.next_tick_at_or_after(mon_noon), Some(1));
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_window() {
        let _ = DayWindow::new("bad", business_day(Vec::new()), 3_600, 60);
    }
}

//! Temporal types ("time granularities") as defined in Bettini, Wang &
//! Jajodia, *Testing Complex Temporal Relationships Involving Multiple
//! Granularities and Its Application to Data Mining* (PODS 1996), §2.
//!
//! A *temporal type* (granularity) is a mapping `μ` from tick indices to sets
//! of absolute time instants such that
//!
//! 1. (monotonicity) for `i < j`, every instant of `μ(i)` precedes every
//!    instant of `μ(j)`, and
//! 2. (no revival) once a tick is empty, all later ticks are empty.
//!
//! This crate models absolute time as discrete integer seconds (the paper
//! notes all its results carry over from continuous to discrete time). Ticks
//! may be *non-convex* sets of intervals — e.g. a *business month* is the
//! union of the business days of a month — and granularities may have *gaps*:
//! a Saturday is covered by no business-day tick.
//!
//! The paper indexes ticks by positive integers. We extend indices to all of
//! `i64` (anchored at an epoch) so that granularities are total over the
//! supported horizon; the constraint semantics built on top only ever uses
//! *differences* of tick indices, which are unaffected by the extension.
//!
//! # Overview
//!
//! * [`Granularity`] — the core trait ([`covering_tick`](Granularity::covering_tick),
//!   [`tick_intervals`](Granularity::tick_intervals)).
//! * [`builtin`] — seconds, minutes, hours, days, weeks, months, years,
//!   business days/weeks/months, weekends, and `n`-month groupings.
//! * [`convert_tick`] — the paper's `⌈z⌉ᵘᵥ` covering-tick conversion.
//! * [`SizeTable`] — `minsize`/`maxsize`/`mingap` used by the constraint
//!   conversion algorithm of the paper's Appendix A.1.
//! * [`Calendar`] — a registry of named granularities.
//! * [`cache`] — the shared, thread-safe resolution cache every [`Gran`]
//!   handle carries ([`CacheStats`], ablation switch).
//!
//! # Example
//!
//! ```
//! use tgm_granularity::{Calendar, convert_tick};
//!
//! let cal = Calendar::standard();
//! let day = cal.get("day").unwrap();
//! let month = cal.get("month").unwrap();
//!
//! // The month that covers day tick 40 (2000-02-09) is February 2000.
//! let m = convert_tick(&day, 40, &month).unwrap();
//! assert_eq!(m, 2); // month tick 1 = January 2000
//!
//! // A Saturday is covered by no business day.
//! let bday = cal.get("business-day").unwrap();
//! assert!(convert_tick(&day, 1, &bday).is_none()); // 2000-01-01 is a Saturday
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod calendar_math;
mod convert;
mod error;
mod granularity;
mod interval;
mod registry;
mod size_table;

pub mod builtin;
pub mod cache;
pub mod datetime;
pub mod parse;
pub mod periodic;
pub mod relations;

pub use calendar_math::{
    civil_from_days, days_from_civil, days_in_month, is_leap_year, weekday_from_days, CivilDate,
    Weekday, EPOCH_YEAR,
};
pub use cache::CacheStats;
pub use convert::{convert_tick, tick_covers};
pub use datetime::{datetime_of, format_instant, instant, DateTime};
pub use error::GranularityError;
pub use granularity::{Granularity, Second, Tick};
pub use interval::{Interval, IntervalSet};
pub use periodic::{PeriodicHint, PeriodicTable};
pub use registry::{Calendar, Gran};
pub use size_table::SizeTable;

//! Human-readable conversions between epoch seconds and civil date-times,
//! for building test fixtures and rendering results.

use crate::calendar_math::{
    civil_from_days, days_from_civil, weekday_from_days, CivilDate, Weekday,
};
use crate::granularity::Second;

const SECONDS_PER_DAY: i64 = 86_400;

/// A civil date-time (proleptic Gregorian, no time zone — the crate's
/// absolute timeline is naive local time).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DateTime {
    /// The calendar date.
    pub date: CivilDate,
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59.
    pub second: u8,
}

impl DateTime {
    /// Creates a date-time, validating all components.
    pub fn new(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Self {
        assert!(hour < 24 && minute < 60 && second < 60, "invalid time of day");
        DateTime {
            date: CivilDate::new(year, month, day),
            hour,
            minute,
            second,
        }
    }

    /// The weekday of the date.
    pub fn weekday(&self) -> Weekday {
        weekday_from_days(days_from_civil(self.date))
    }
}

/// Epoch seconds of a civil date-time.
pub fn instant(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Second {
    let dt = DateTime::new(year, month, day, hour, minute, second);
    days_from_civil(dt.date) * SECONDS_PER_DAY
        + i64::from(dt.hour) * 3_600
        + i64::from(dt.minute) * 60
        + i64::from(dt.second)
}

/// Civil date-time of an epoch second.
pub fn datetime_of(t: Second) -> DateTime {
    let days = t.div_euclid(SECONDS_PER_DAY);
    let tod = t.rem_euclid(SECONDS_PER_DAY);
    DateTime {
        date: civil_from_days(days),
        hour: (tod / 3_600) as u8,
        minute: (tod % 3_600 / 60) as u8,
        second: (tod % 60) as u8,
    }
}

/// Renders an epoch second as `YYYY-MM-DD HH:MM:SS Www`.
pub fn format_instant(t: Second) -> String {
    let dt = datetime_of(t);
    format!(
        "{:04}-{:02}-{:02} {:02}:{:02}:{:02} {:?}",
        dt.date.year, dt.date.month, dt.date.day, dt.hour, dt.minute, dt.second,
        dt.weekday()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_formatting() {
        assert_eq!(format_instant(0), "2000-01-01 00:00:00 Sat");
        assert_eq!(format_instant(86_399), "2000-01-01 23:59:59 Sat");
        assert_eq!(format_instant(2 * 86_400 + 9 * 3_600), "2000-01-03 09:00:00 Mon");
    }

    #[test]
    fn instant_round_trip() {
        for t in [
            0i64,
            -1,
            86_400,
            instant(1996, 6, 3, 12, 30, 15), // PODS'96 week
            instant(2100, 2, 28, 23, 59, 59),
            instant(1969, 12, 31, 0, 0, 1),
        ] {
            let dt = datetime_of(t);
            let back = instant(
                dt.date.year,
                dt.date.month,
                dt.date.day,
                dt.hour,
                dt.minute,
                dt.second,
            );
            assert_eq!(back, t, "round trip failed for {t}");
        }
    }

    #[test]
    fn negative_instants() {
        assert_eq!(format_instant(-1), "1999-12-31 23:59:59 Fri");
    }

    #[test]
    #[should_panic]
    fn invalid_time_rejected() {
        let _ = DateTime::new(2000, 1, 1, 24, 0, 0);
    }

    #[test]
    fn pods_96_dates() {
        // PODS'96 was held in Montreal, June 1996.
        let t = instant(1996, 6, 4, 9, 0, 0);
        assert_eq!(datetime_of(t).weekday(), Weekday::Tue);
        assert!(t < 0, "1996 precedes the epoch");
    }
}

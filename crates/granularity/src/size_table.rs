//! `minsize` / `maxsize` / `mingap` tables (paper, Appendix A.1).
//!
//! For a granularity `μ` and `k ≥ 1`:
//!
//! * `minsize(μ, k)` / `maxsize(μ, k)` — the minimum / maximum *span* of `k`
//!   consecutive ticks in primitive seconds, i.e.
//!   `max(μ(i+k-1)) − min(μ(i)) + 1` extremized over `i`
//!   (e.g. `maxsize(b-day, 2) = 4` days: Friday through Monday).
//! * `mingap(μ, k)` — the minimum of `min(μ(i+k)) − max(μ(i))` over `i`
//!   (for `k = 0` this is `1 − maxsize(μ, 1) ≤ 0`).
//!
//! The constraint-conversion algorithm needs these as *sound global bounds*:
//! `minsize`/`mingap` must never over-estimate and `maxsize` must never
//! under-estimate. Values are computed by scanning the granularity's
//! [`scan_window`](crate::Granularity::scan_window) — exact for the builtin
//! periodic types — with an O(1) fast path when the granularity provides
//! [`exact_sizes`](crate::Granularity::exact_sizes). Results are memoized.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::granularity::{Granularity, Tick};

/// Span and gap bounds for `k` consecutive ticks of a granularity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SizeBounds {
    /// Minimum span (in seconds) of `k` consecutive ticks.
    pub min_span: i64,
    /// Maximum span (in seconds) of `k` consecutive ticks.
    pub max_span: i64,
    /// Minimum of `min(μ(i+k)) − max(μ(i))`.
    pub min_gap: i64,
}

/// Memoized `minsize`/`maxsize`/`mingap` bounds for one granularity.
///
/// ```
/// use tgm_granularity::{builtin, SizeTable};
///
/// let months = SizeTable::new(std::sync::Arc::new(builtin::month()));
/// let b = months.bounds(1);
/// assert_eq!(b.min_span, 28 * 86_400); // shortest month
/// assert_eq!(b.max_span, 31 * 86_400); // longest month
/// ```
pub struct SizeTable {
    gran: std::sync::Arc<dyn Granularity>,
    cache: Mutex<HashMap<u64, SizeBounds>>,
}

impl std::fmt::Debug for SizeTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SizeTable")
            .field("granularity", &self.gran.name())
            .finish_non_exhaustive()
    }
}

impl SizeTable {
    /// Creates a table for the given granularity.
    pub fn new(gran: std::sync::Arc<dyn Granularity>) -> Self {
        SizeTable {
            gran,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The granularity this table describes.
    pub fn granularity(&self) -> &dyn Granularity {
        self.gran.as_ref()
    }

    /// Bounds for `k` consecutive ticks. For `k = 0`, `min_span`/`max_span`
    /// are 0 and `min_gap = 1 − maxsize(1)`.
    pub fn bounds(&self, k: u64) -> SizeBounds {
        if let Some(b) = self.cache.lock().get(&k) {
            return *b;
        }
        let b = self.compute(k);
        self.cache.lock().insert(k, b);
        b
    }

    /// `minsize(μ, k)`.
    pub fn min_size(&self, k: u64) -> i64 {
        self.bounds(k).min_span
    }

    /// `maxsize(μ, k)`.
    pub fn max_size(&self, k: u64) -> i64 {
        self.bounds(k).max_span
    }

    /// `mingap(μ, k)`.
    pub fn min_gap(&self, k: u64) -> i64 {
        self.bounds(k).min_gap
    }

    fn compute(&self, k: u64) -> SizeBounds {
        if k == 0 {
            let one = self.bounds(1);
            return SizeBounds {
                min_span: 0,
                max_span: 0,
                min_gap: 1 - one.max_span,
            };
        }
        if let Some(b) = self.gran.exact_sizes(k) {
            return b;
        }
        self.scan(k)
    }

    /// Scans every run of `k` consecutive ticks whose start lies in the
    /// granularity's scan window.
    fn scan(&self, k: u64) -> SizeBounds {
        let (lo, hi) = self.gran.scan_window(k);
        let k = k as Tick;
        let mut min_span = i64::MAX;
        let mut max_span = i64::MIN;
        let mut min_gap = i64::MAX;
        // Maintain a small ring of tick extents to avoid recomputing
        // tick_intervals for every offset.
        let mut extents: Vec<Option<(i64, i64)>> = Vec::new();
        let ext = |z: Tick| -> Option<(i64, i64)> {
            let s = self.gran.tick_intervals(z)?;
            Some((s.min(), s.max()))
        };
        for z in lo..=(hi + k) {
            extents.push(ext(z));
        }
        let at = |z: Tick| -> Option<(i64, i64)> { extents[(z - lo) as usize] };
        for i in lo..=hi {
            if let (Some((start_min, _)), Some((_, end_max))) = (at(i), at(i + k - 1)) {
                let span = end_max - start_min + 1;
                min_span = min_span.min(span);
                max_span = max_span.max(span);
            }
            if let (Some((_, i_max)), Some((next_min, _))) = (at(i), at(i + k)) {
                min_gap = min_gap.min(next_min - i_max);
            }
        }
        assert!(
            min_span != i64::MAX && min_gap != i64::MAX,
            "scan window of `{}` contained no valid run of {k} ticks",
            self.gran.name()
        );
        SizeBounds {
            min_span,
            max_span,
            min_gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::builtin::{self, SECONDS_PER_DAY};

    fn table(g: impl Granularity + 'static) -> SizeTable {
        SizeTable::new(Arc::new(g))
    }

    #[test]
    fn uniform_exact_path() {
        let t = table(builtin::hour());
        assert_eq!(t.min_size(1), 3_600);
        assert_eq!(t.max_size(1), 3_600);
        assert_eq!(t.min_gap(1), 1);
        assert_eq!(t.min_size(24), 24 * 3_600);
        assert_eq!(t.min_gap(2), 3_601);
    }

    #[test]
    fn month_spans_match_paper_examples() {
        let t = table(builtin::month());
        // Paper: minsize(month, 1) = 28 days, maxsize(month, 1) = 31 days.
        assert_eq!(t.min_size(1), 28 * SECONDS_PER_DAY);
        assert_eq!(t.max_size(1), 31 * SECONDS_PER_DAY);
        // Two consecutive months: min Feb+Mar non-leap = 59, max Jul+Aug = 62.
        assert_eq!(t.min_size(2), 59 * SECONDS_PER_DAY);
        assert_eq!(t.max_size(2), 62 * SECONDS_PER_DAY);
        // Gap of one month ahead: shortest intervening is nothing (adjacent).
        assert_eq!(t.min_gap(1), 1);
        // Gap of two: shortest intervening month is 28 days.
        assert_eq!(t.min_gap(2), 28 * SECONDS_PER_DAY + 1);
    }

    #[test]
    fn year_spans() {
        let t = table(builtin::year());
        assert_eq!(t.min_size(1), 365 * SECONDS_PER_DAY);
        assert_eq!(t.max_size(1), 366 * SECONDS_PER_DAY);
        // Four consecutive years always contain exactly one leap year,
        // except runs crossing skipped century leap years (e.g. 2100).
        assert_eq!(t.max_size(4), (4 * 365 + 1) * SECONDS_PER_DAY);
        assert_eq!(t.min_size(4), 4 * 365 * SECONDS_PER_DAY);
    }

    #[test]
    fn business_day_spans_match_paper_example() {
        let t = table(builtin::business_day(Vec::new()));
        // Paper: maxsize(b-day, 2) = 4 (Friday..Monday), in day units.
        assert_eq!(t.max_size(2), 4 * SECONDS_PER_DAY);
        assert_eq!(t.min_size(2), 2 * SECONDS_PER_DAY);
        // A run of 6 business days must cross a weekend: span 8 days.
        assert_eq!(t.min_size(6), 8 * SECONDS_PER_DAY);
        assert_eq!(t.max_size(6), 8 * SECONDS_PER_DAY);
        // mingap(b-day, 1): adjacent business days touch (gap 1 second).
        assert_eq!(t.min_gap(1), 1);
    }

    #[test]
    fn business_day_holidays_extend_max_span() {
        // Make Friday 2000-01-07 (day 6) a holiday: Thu 6th .. Mon 10th
        // becomes a 5-day span of 2 consecutive business days.
        let t = table(builtin::business_day(vec![6]));
        assert_eq!(t.max_size(2), 5 * SECONDS_PER_DAY);
        // min side unaffected.
        assert_eq!(t.min_size(2), 2 * SECONDS_PER_DAY);
    }

    #[test]
    fn k_zero_bounds() {
        let t = table(builtin::month());
        let b = t.bounds(0);
        assert_eq!(b.min_span, 0);
        assert_eq!(b.max_span, 0);
        assert_eq!(b.min_gap, 1 - 31 * SECONDS_PER_DAY);
    }

    #[test]
    fn business_month_scan() {
        let b: Arc<dyn Granularity> = Arc::new(builtin::business_day(Vec::new()));
        let m: Arc<dyn Granularity> = Arc::new(builtin::month());
        let t = table(builtin::GroupInto::new("business-month", b, m));
        // A business month spans at least 26 days (Feb starting Monday)
        // and at most 31; expressed as span of first..last business day.
        assert!(t.min_size(1) >= 25 * SECONDS_PER_DAY);
        assert!(t.max_size(1) <= 31 * SECONDS_PER_DAY);
        assert!(t.min_size(1) < t.max_size(1));
    }
}

//! Tick conversion between granularities: the paper's `⌈z⌉ᵘᵥ` operator (§2).
//!
//! For a tick `z` of granularity `ν` and a target granularity `μ`, the
//! conversion is defined iff there is a (necessarily unique, by monotonicity)
//! tick `z'` of `μ` whose instant set *contains* the whole instant set of
//! `ν(z)`. Containment is checked on the full interval sets, so e.g. a `day`
//! tick that is a Saturday converts to no `business-day` tick, and a `week`
//! straddling two months converts to no `month` tick.

use crate::granularity::{Granularity, Tick};

/// Computes `⌈z⌉ᵘᵥ`: the tick of `target` covering tick `z` of `source`.
///
/// Returns `None` when undefined — either because no target tick contains
/// the source tick, or because `z` is outside `source`'s horizon.
pub fn convert_tick<S, T>(source: &S, z: Tick, target: &T) -> Option<Tick>
where
    S: Granularity + ?Sized,
    T: Granularity + ?Sized,
{
    let set = source.tick_intervals(z)?;
    // Candidate: the target tick covering the first instant. By monotonicity
    // of temporal types it is the only possible container.
    let candidate = target.covering_tick(set.min())?;
    let target_set = target.tick_intervals(candidate)?;
    set.is_subset_of(&target_set).then_some(candidate)
}

/// Whether tick `z_target` of `target` fully covers tick `z_source` of
/// `source`.
pub fn tick_covers<S, T>(target: &T, z_target: Tick, source: &S, z_source: Tick) -> bool
where
    S: Granularity + ?Sized,
    T: Granularity + ?Sized,
{
    match (source.tick_intervals(z_source), target.tick_intervals(z_target)) {
        (Some(s), Some(t)) => s.is_subset_of(&t),
        _ => false,
    }
}

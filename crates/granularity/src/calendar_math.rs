//! Proleptic Gregorian calendar arithmetic, written from scratch.
//!
//! The epoch of the whole crate is **2000-01-01T00:00:00** (day 0, a
//! Saturday). Conversions use Howard Hinnant's `days_from_civil` algorithm
//! shifted to this epoch.

/// The calendar year containing the epoch (day 0 = 2000-01-01).
pub const EPOCH_YEAR: i32 = 2000;

/// Days between 1970-01-01 and 2000-01-01.
const EPOCH_OFFSET_1970: i64 = 10_957;

/// A calendar date in the proleptic Gregorian calendar.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CivilDate {
    /// Gregorian year (astronomical numbering: 0 = 1 BC).
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
}

impl CivilDate {
    /// Creates a date, validating month and day-of-month ranges.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "invalid month {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "invalid day {day} for {year}-{month:02}"
        );
        CivilDate { year, month, day }
    }
}

/// Whether `year` is a leap year in the Gregorian calendar.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in the given month of the given year.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

/// Days since the epoch (2000-01-01 = 0) of the given civil date.
pub fn days_from_civil(date: CivilDate) -> i64 {
    let y = i64::from(date.year) - i64::from(date.month <= 2);
    let era = y.div_euclid(400);
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(date.month);
    let d = i64::from(date.day);
    let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468 - EPOCH_OFFSET_1970
}

/// Civil date of the given day index (0 = 2000-01-01).
pub fn civil_from_days(days: i64) -> CivilDate {
    let z = days + 719_468 + EPOCH_OFFSET_1970;
    let era = z.div_euclid(146_097);
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    CivilDate {
        year: (y + i64::from(m <= 2)) as i32,
        month: m as u8,
        day: d as u8,
    }
}

/// Day of week.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Weekday {
    /// Monday.
    Mon,
    /// Tuesday.
    Tue,
    /// Wednesday.
    Wed,
    /// Thursday.
    Thu,
    /// Friday.
    Fri,
    /// Saturday.
    Sat,
    /// Sunday.
    Sun,
}

impl Weekday {
    /// Index with Monday = 0 … Sunday = 6.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Weekday from a Monday-based index 0–6.
    pub fn from_index(i: usize) -> Self {
        use Weekday::*;
        [Mon, Tue, Wed, Thu, Fri, Sat, Sun][i % 7]
    }
}

/// Weekday of a day index (0 = 2000-01-01, a Saturday).
pub fn weekday_from_days(days: i64) -> Weekday {
    // Day 0 is Saturday = Monday-based index 5.
    Weekday::from_index((days + 5).rem_euclid(7) as usize)
}

/// Months since the epoch month (January 2000 = 0) of the given date.
pub fn months_from_civil(year: i32, month: u8) -> i64 {
    (i64::from(year) - i64::from(EPOCH_YEAR)) * 12 + i64::from(month) - 1
}

/// (year, month) of a month index (0 = January 2000).
pub fn civil_from_months(m: i64) -> (i32, u8) {
    let year = i64::from(EPOCH_YEAR) + m.div_euclid(12);
    let month = m.rem_euclid(12) + 1;
    (year as i32, month as u8)
}

/// First day index of a month index (0 = January 2000).
pub fn month_start_day(m: i64) -> i64 {
    let (y, mo) = civil_from_months(m);
    days_from_civil(CivilDate::new(y, mo, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(CivilDate::new(2000, 1, 1)), 0);
        assert_eq!(civil_from_days(0), CivilDate::new(2000, 1, 1));
    }

    #[test]
    fn known_dates() {
        // 1970-01-01 is 10957 days before the epoch.
        assert_eq!(days_from_civil(CivilDate::new(1970, 1, 1)), -10_957);
        // 2000-03-01: Jan (31) + Feb 2000 is leap (29) = 60.
        assert_eq!(days_from_civil(CivilDate::new(2000, 3, 1)), 60);
        // 2001-01-01: 2000 is a leap year, 366 days.
        assert_eq!(days_from_civil(CivilDate::new(2001, 1, 1)), 366);
        assert_eq!(days_from_civil(CivilDate::new(2100, 3, 1)), 36_584);
    }

    #[test]
    fn round_trip_wide_range() {
        for days in (-200_000..200_000).step_by(373) {
            let c = civil_from_days(days);
            assert_eq!(days_from_civil(c), days, "round trip failed at {days}: {c:?}");
        }
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1999));
        assert!(!is_leap_year(2100));
        assert!(is_leap_year(2400));
    }

    #[test]
    fn month_lengths() {
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
        assert_eq!(days_in_month(2001, 2), 28);
        assert_eq!(days_in_month(2001, 12), 31);
        assert_eq!(days_in_month(2001, 11), 30);
    }

    #[test]
    fn weekdays() {
        assert_eq!(weekday_from_days(0), Weekday::Sat); // 2000-01-01
        assert_eq!(weekday_from_days(2), Weekday::Mon); // 2000-01-03
        assert_eq!(weekday_from_days(-1), Weekday::Fri); // 1999-12-31
        // 1996-06-03 (PODS'96 week) was a Monday.
        assert_eq!(
            weekday_from_days(days_from_civil(CivilDate::new(1996, 6, 3))),
            Weekday::Mon
        );
    }

    #[test]
    fn month_indexing_round_trip() {
        for m in -5000..5000 {
            let (y, mo) = civil_from_months(m);
            assert_eq!(months_from_civil(y, mo), m);
        }
        assert_eq!(month_start_day(0), 0);
        assert_eq!(month_start_day(1), 31);
        assert_eq!(month_start_day(2), 60); // leap February 2000
        assert_eq!(month_start_day(-1), -31); // December 1999
    }

    #[test]
    #[should_panic]
    fn rejects_feb_30() {
        let _ = CivilDate::new(2001, 2, 29);
    }
}

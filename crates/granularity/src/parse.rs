//! A small text DSL for defining granularities, so calendars can be
//! configured from strings (CLI flags, config files) instead of code.
//!
//! Grammar (whitespace-insensitive between tokens):
//!
//! ```text
//! spec     := atom [ "into" atom ]
//! atom     := base | counted | filtered
//! base     := second | minute | hour | day | week | month | year
//!           | business-day | weekend-day
//! counted  := <n> <unit> [ "@" <anchor> ]
//!             unit   := second|minute|hour|day|week|month|year
//!             anchor := YYYY-MM-DD (uniform units) | YYYY-MM (month units)
//! filtered := days( wd [, wd]* ) [ "except" date [, date]* ]
//!             wd := mon|tue|wed|thu|fri|sat|sun
//! ```
//!
//! Examples: `"day"`, `"3 month"` (quarters), `"12 month @ 2000-04"`
//! (fiscal years from April), `"90 minute"`, `"days(mon,wed,fri)"`,
//! `"days(mon,tue,wed,thu,fri) except 2000-01-03"` (business days with a
//! holiday), `"days(sat,sun) into week"` (weekends).

use std::fmt;
use std::sync::Arc;

use crate::builtin::{self, FilteredDays, GroupInto, Months, Uniform, SECONDS_PER_DAY};
use crate::calendar_math::{days_from_civil, months_from_civil, CivilDate};
use crate::granularity::Granularity;
use crate::registry::Gran;

/// Errors from [`parse_granularity`].
#[derive(Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    fn new(msg: impl Into<String>) -> Self {
        ParseError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "granularity spec error: {}", self.message)
    }
}

impl fmt::Debug for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for ParseError {}

/// Parses a granularity spec. The resulting granularity is named by the
/// normalized spec text.
///
/// ```
/// use tgm_granularity::parse::parse_granularity;
/// use tgm_granularity::Granularity as _;
///
/// let fiscal_year = parse_granularity("12 month @ 2000-04").unwrap();
/// assert!(!fiscal_year.has_gaps());
/// let weekend = parse_granularity("days(sat,sun) into week").unwrap();
/// assert!(weekend.has_gaps());
/// ```
pub fn parse_granularity(spec: &str) -> Result<Gran, ParseError> {
    let spec = spec.trim();
    if let Some((inner, frame)) = split_keyword(spec, " into ") {
        let inner_g = parse_atom(inner.trim())?;
        let frame_g = parse_atom(frame.trim())?;
        let name = format!("{} into {}", inner_g.name(), frame_g.name());
        let inner_arc: Arc<dyn Granularity> = Arc::new(GranErased(inner_g));
        let frame_arc: Arc<dyn Granularity> = Arc::new(GranErased(frame_g));
        return Ok(Gran::new(GroupInto::new(name, inner_arc, frame_arc)));
    }
    parse_atom(spec)
}

/// Adapter so a `Gran` handle can be boxed as a plain granularity.
#[derive(Debug)]
struct GranErased(Gran);

impl Granularity for GranErased {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn covering_tick(&self, t: crate::Second) -> Option<crate::Tick> {
        self.0.covering_tick(t)
    }
    fn tick_intervals(&self, z: crate::Tick) -> Option<crate::IntervalSet> {
        self.0.tick_intervals(z)
    }
    fn has_gaps(&self) -> bool {
        self.0.has_gaps()
    }
    fn exact_sizes(&self, k: u64) -> Option<crate::size_table::SizeBounds> {
        self.0.exact_sizes(k)
    }
    fn scan_window(&self, k: u64) -> (crate::Tick, crate::Tick) {
        self.0.scan_window(k)
    }
    fn next_tick_at_or_after(&self, t: crate::Second) -> Option<crate::Tick> {
        self.0.next_tick_at_or_after(t)
    }
    fn periodic_hint(&self) -> Option<crate::periodic::PeriodicHint> {
        self.0.periodic_hint()
    }
    fn periodic_accel(&self) -> Option<Arc<dyn Granularity>> {
        self.0.periodic_accel()
    }
}

fn split_keyword<'a>(s: &'a str, kw: &str) -> Option<(&'a str, &'a str)> {
    s.find(kw).map(|i| (&s[..i], &s[i + kw.len()..]))
}

fn parse_atom(spec: &str) -> Result<Gran, ParseError> {
    let spec = spec.trim();
    // Intra-day window: "HH:MM-HH:MM of <day-spec>".
    if let Some((window, days_spec)) = split_keyword(spec, " of ") {
        if window.contains(':') {
            return parse_day_window(window.trim(), days_spec.trim());
        }
    }
    // Filtered days.
    if spec.starts_with("days(") || spec.starts_with("business-day except") {
        return parse_filtered(spec);
    }
    // Base names.
    match spec {
        "second" => return Ok(Gran::new(builtin::second())),
        "minute" => return Ok(Gran::new(builtin::minute())),
        "hour" => return Ok(Gran::new(builtin::hour())),
        "day" => return Ok(Gran::new(builtin::day())),
        "week" => return Ok(Gran::new(builtin::week())),
        "month" => return Ok(Gran::new(builtin::month())),
        "year" => return Ok(Gran::new(builtin::year())),
        "business-day" => return Ok(Gran::new(builtin::business_day(Vec::new()))),
        "weekend-day" => return Ok(Gran::new(builtin::weekend_day())),
        _ => {}
    }
    // Counted: "<n> <unit> [@ anchor]".
    let (count_part, rest) = spec
        .split_once(char::is_whitespace)
        .ok_or_else(|| ParseError::new(format!("unknown granularity `{spec}`")))?;
    let n: i64 = count_part
        .parse()
        .map_err(|_| ParseError::new(format!("unknown granularity `{spec}`")))?;
    if n < 1 {
        return Err(ParseError::new("count must be >= 1"));
    }
    let (unit, anchor) = match split_keyword(rest, "@") {
        Some((u, a)) => (u.trim(), Some(a.trim())),
        None => (rest.trim(), None),
    };
    let name = match anchor {
        Some(a) => format!("{n} {unit} @ {a}"),
        None => format!("{n} {unit}"),
    };
    let seconds_per = |unit: &str| -> Option<i64> {
        Some(match unit {
            "second" => 1,
            "minute" => 60,
            "hour" => 3_600,
            "day" => SECONDS_PER_DAY,
            "week" => 7 * SECONDS_PER_DAY,
            _ => return None,
        })
    };
    if let Some(per) = seconds_per(unit) {
        let anchor_secs = match anchor {
            Some(a) => parse_date(a)? * SECONDS_PER_DAY,
            // Weeks anchor on Monday like the builtin; others at the epoch.
            None if unit == "week" => -5 * SECONDS_PER_DAY,
            None => 0,
        };
        return Ok(Gran::new(Uniform::new(name, n * per, anchor_secs)));
    }
    match unit {
        "month" => {
            let anchor_month = match anchor {
                Some(a) => parse_month(a)?,
                None => 0,
            };
            Ok(Gran::new(Months::with_anchor(name, n, anchor_month)))
        }
        "year" => {
            let anchor_month = match anchor {
                Some(a) => parse_month(a)?,
                None => 0,
            };
            Ok(Gran::new(Months::with_anchor(name, 12 * n, anchor_month)))
        }
        other => Err(ParseError::new(format!("unknown unit `{other}`"))),
    }
}

fn parse_filtered(spec: &str) -> Result<Gran, ParseError> {
    let (head, except) = match split_keyword(spec, "except") {
        Some((h, e)) => (h.trim(), Some(e.trim())),
        None => (spec.trim(), None),
    };
    let keep: [bool; 7] = if head == "business-day" {
        [true, true, true, true, true, false, false]
    } else {
        let inner = head
            .strip_prefix("days(")
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| ParseError::new(format!("bad day filter `{head}`")))?;
        let mut keep = [false; 7];
        for wd in inner.split(',') {
            let idx = match wd.trim() {
                "mon" => 0,
                "tue" => 1,
                "wed" => 2,
                "thu" => 3,
                "fri" => 4,
                "sat" => 5,
                "sun" => 6,
                other => return Err(ParseError::new(format!("unknown weekday `{other}`"))),
            };
            keep[idx] = true;
        }
        if !keep.iter().any(|&b| b) {
            return Err(ParseError::new("day filter keeps no weekdays"));
        }
        keep
    };
    let holidays: Vec<i64> = match except {
        Some(list) => list
            .split(',')
            .map(|d| parse_date(d.trim()))
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    let name = match except {
        Some(list) => format!("{head} except {list}"),
        None => head.to_owned(),
    };
    Ok(Gran::new(FilteredDays::new(name, keep, holidays)))
}

/// Parses an intra-day window spec: `HH:MM-HH:MM of <day spec>` where the
/// day spec is `day`, `business-day [except ...]`, `weekend-day`, or
/// `days(...) [except ...]`.
fn parse_day_window(window: &str, days_spec: &str) -> Result<Gran, ParseError> {
    let (start_s, end_s) = window
        .split_once('-')
        .ok_or_else(|| ParseError::new(format!("bad window `{window}` (want HH:MM-HH:MM)")))?;
    let tod = |s: &str| -> Result<i64, ParseError> {
        let (h, m) = s
            .split_once(':')
            .ok_or_else(|| ParseError::new(format!("bad time `{s}` (want HH:MM)")))?;
        let h: i64 = h.parse().map_err(|_| ParseError::new(format!("bad hour in `{s}`")))?;
        let m: i64 = m.parse().map_err(|_| ParseError::new(format!("bad minute in `{s}`")))?;
        if !(0..24).contains(&h) || !(0..60).contains(&m) {
            return Err(ParseError::new(format!("time `{s}` out of range")));
        }
        Ok(h * 3_600 + m * 60)
    };
    let start = tod(start_s.trim())?;
    // The end is exclusive-of-minute in common usage ("09:30-16:00"), so
    // include through the last second before the end minute.
    let end = tod(end_s.trim())? - 1;
    if start > end {
        return Err(ParseError::new(format!("empty window `{window}`")));
    }
    let days: FilteredDays = match days_spec {
        "day" => FilteredDays::new("day", [true; 7], Vec::new()),
        "business-day" => builtin::business_day(Vec::new()),
        "weekend-day" => builtin::weekend_day(),
        other => {
            // Reuse the filtered-day parser but unwrap to FilteredDays by
            // reparsing the components.
            return parse_filtered_window(window, other, start, end);
        }
    };
    let name = format!("{window} of {days_spec}");
    Ok(Gran::new(builtin::DayWindow::new(name, days, start, end)))
}

fn parse_filtered_window(
    window: &str,
    days_spec: &str,
    start: i64,
    end: i64,
) -> Result<Gran, ParseError> {
    // Parse the filtered-day spec into mask + holidays by delegating to
    // parse_filtered's grammar, then rebuild a FilteredDays directly.
    let (head, except) = match split_keyword(days_spec, "except") {
        Some((h, e)) => (h.trim(), Some(e.trim())),
        None => (days_spec.trim(), None),
    };
    let keep: [bool; 7] = if head == "business-day" {
        [true, true, true, true, true, false, false]
    } else {
        let inner = head
            .strip_prefix("days(")
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| ParseError::new(format!("bad day filter `{head}`")))?;
        let mut keep = [false; 7];
        for wd in inner.split(',') {
            let idx = match wd.trim() {
                "mon" => 0,
                "tue" => 1,
                "wed" => 2,
                "thu" => 3,
                "fri" => 4,
                "sat" => 5,
                "sun" => 6,
                other => return Err(ParseError::new(format!("unknown weekday `{other}`"))),
            };
            keep[idx] = true;
        }
        if !keep.iter().any(|&b| b) {
            return Err(ParseError::new("day filter keeps no weekdays"));
        }
        keep
    };
    let holidays: Vec<i64> = match except {
        Some(list) => list
            .split(',')
            .map(|d| parse_date(d.trim()))
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    let name = format!("{window} of {days_spec}");
    let days = FilteredDays::new(name.clone(), keep, holidays);
    Ok(Gran::new(builtin::DayWindow::new(name, days, start, end)))
}

/// Parses `YYYY-MM-DD` into a day index (0 = 2000-01-01).
fn parse_date(s: &str) -> Result<i64, ParseError> {
    let parts: Vec<&str> = s.split('-').collect();
    let [y, m, d] = parts.as_slice() else {
        return Err(ParseError::new(format!("bad date `{s}` (want YYYY-MM-DD)")));
    };
    let year: i32 = y.parse().map_err(|_| ParseError::new(format!("bad year in `{s}`")))?;
    let month: u8 = m.parse().map_err(|_| ParseError::new(format!("bad month in `{s}`")))?;
    let day: u8 = d.parse().map_err(|_| ParseError::new(format!("bad day in `{s}`")))?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return Err(ParseError::new(format!("date `{s}` out of range")));
    }
    Ok(days_from_civil(CivilDate::new(year, month, day)))
}

/// Parses `YYYY-MM` into a month index (0 = January 2000).
fn parse_month(s: &str) -> Result<i64, ParseError> {
    let parts: Vec<&str> = s.split('-').collect();
    let [y, m] = parts.as_slice() else {
        return Err(ParseError::new(format!("bad month `{s}` (want YYYY-MM)")));
    };
    let year: i32 = y.parse().map_err(|_| ParseError::new(format!("bad year in `{s}`")))?;
    let month: u8 = m.parse().map_err(|_| ParseError::new(format!("bad month in `{s}`")))?;
    if !(1..=12).contains(&month) {
        return Err(ParseError::new(format!("month `{s}` out of range")));
    }
    Ok(months_from_civil(year, month))
}

// ---------------------------------------------------------------------------
// Prose-like expression DSL (`Gran::from_expr`)
// ---------------------------------------------------------------------------

/// Parses a prose-like calendar expression into a [`Gran`].
///
/// This is a friendlier layer over [`parse_granularity`]: anything the core
/// grammar accepts is accepted here unchanged, plus the forms below. The
/// resulting granularity is named by the normalized expression text.
///
/// ```text
/// expr        := simple [ "into" simple ]
/// simple      := plural | counted | starting | day-list | windowed | <core grammar>
/// plural      := seconds|minutes|hours|days|weeks|months|years|quarters
///              | business-days|weekend-days|weekends|business-weeks
///              | business-months|trading-hours        [except-list]
/// counted     := <n> <plural unit>                     e.g. "6 months"
/// starting    := "weeks starting" wd                   e.g. "weeks starting wed"
///              | ("fiscal-years"|"years") "starting" mo  e.g. "fiscal-years starting apr"
///              | "quarters starting" mo
/// day-list    := "days" wd ("," wd)*                   [except-list]
/// windowed    := "hours" a ".." b "of" day-expr        e.g. "hours 9..17 of business-days"
/// except-list := "except" date ("," date)*             date := YYYY-MM-DD
/// wd          := mon|tue|wed|thu|fri|sat|sun
/// mo          := jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec
/// ```
///
/// ```
/// use tgm_granularity::Gran;
/// use tgm_granularity::Granularity as _;
///
/// let fy = Gran::from_expr("fiscal-years starting apr").unwrap();
/// assert!(!fy.has_gaps());
/// let th = Gran::from_expr("hours 9..17 of business-days").unwrap();
/// assert_eq!(th.covering_tick(2 * 86_400 + 10 * 3_600), Some(1)); // Mon 10:00
/// ```
pub fn from_expr(expr: &str) -> Result<Gran, ParseError> {
    let norm = expr.split_whitespace().collect::<Vec<_>>().join(" ");
    let expr = norm.as_str();
    if expr.is_empty() {
        return Err(ParseError::new("empty expression"));
    }
    if let Some((inner, frame)) = split_keyword(expr, " into ") {
        let (inner, frame) = (inner.trim(), frame.trim());
        let inner_g = from_expr(inner)?;
        let frame_g = from_expr(frame)?;
        let name = format!("{inner} into {frame}");
        let inner_arc: Arc<dyn Granularity> = Arc::new(GranErased(inner_g));
        let frame_arc: Arc<dyn Granularity> = Arc::new(GranErased(frame_g));
        return Ok(Gran::new(GroupInto::new(name, inner_arc, frame_arc)));
    }
    expr_simple(expr)
}

fn expr_simple(expr: &str) -> Result<Gran, ParseError> {
    // Windowed hours: "hours A..B of <day-expr>".
    if let Some(rest) = expr.strip_prefix("hours ") {
        if let Some((range, days_expr)) = split_keyword(rest, " of ") {
            if let Some((a, b)) = range.trim().split_once("..") {
                return expr_hour_window(a.trim(), b.trim(), days_expr.trim());
            }
        }
    }

    let (head, except) = match split_keyword(expr, " except ") {
        Some((h, e)) => (h.trim(), Some(e.trim())),
        None => (expr, None),
    };
    let holidays: Vec<i64> = match except {
        Some(list) => list
            .split(',')
            .map(|d| parse_date(d.trim()))
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    let name = match except {
        Some(list) => format!("{head} except {list}"),
        None => head.to_owned(),
    };

    const BUSINESS: [bool; 7] = [true, true, true, true, true, false, false];
    const WEEKEND: [bool; 7] = [false, false, false, false, false, true, true];
    let no_except = || -> Result<(), ParseError> {
        match except {
            Some(_) => Err(ParseError::new(format!("`{head}` takes no except-list"))),
            None => Ok(()),
        }
    };
    let group = |inner: FilteredDays, frame: Uniform| -> Gran {
        Gran::new(GroupInto::new(name.clone(), Arc::new(inner), Arc::new(frame)))
    };

    // Plural base forms (with except-lists where days are filtered out).
    match head {
        "seconds" | "minutes" | "hours" | "days" | "weeks" | "months" | "years"
        | "quarters" => {
            no_except()?;
            return expr_counted(1, head, name);
        }
        "business-days" => {
            return Ok(Gran::new(FilteredDays::new(name, BUSINESS, holidays)));
        }
        "weekend-days" => {
            return Ok(Gran::new(FilteredDays::new(name, WEEKEND, holidays)));
        }
        "weekends" => {
            let inner = FilteredDays::new("weekend-day", WEEKEND, holidays);
            return Ok(group(inner, builtin::week()));
        }
        "business-weeks" => {
            return Ok(group(builtin::business_day(holidays), builtin::week()));
        }
        "business-months" => {
            let inner = builtin::business_day(holidays);
            let name = name.clone();
            return Ok(Gran::new(GroupInto::new(
                name,
                Arc::new(inner),
                Arc::new(builtin::month()),
            )));
        }
        "trading-hours" => {
            // Same 09:30–16:00 window as `builtin::trading_hours`.
            return Ok(Gran::new(builtin::DayWindow::new(
                name,
                builtin::business_day(holidays),
                9 * 3_600 + 30 * 60,
                16 * 3_600,
            )));
        }
        _ => {}
    }

    // Anchored forms: "<unit> starting <weekday|month>".
    if let Some((unit, at)) = split_keyword(head, " starting ") {
        no_except()?;
        let (unit, at) = (unit.trim(), at.trim());
        return match unit {
            "weeks" => {
                let w = weekday_index(at)?;
                // Pick the anchor day just before the epoch with weekday `w`:
                // day d has weekday (d + 5) mod 7, so d ≡ w + 2 (mod 7).
                let anchor_day = ((w + 2) % 7) - 7;
                Ok(Gran::new(Uniform::new(
                    name,
                    7 * SECONDS_PER_DAY,
                    anchor_day * SECONDS_PER_DAY,
                )))
            }
            "fiscal-years" | "years" => {
                Ok(Gran::new(Months::with_anchor(name, 12, month_index(at)?)))
            }
            "quarters" => Ok(Gran::new(Months::with_anchor(name, 3, month_index(at)?))),
            other => Err(ParseError::new(format!(
                "`{other}` does not take `starting` (want weeks, fiscal-years, or quarters)"
            ))),
        };
    }

    // Day lists: "days mon,wed,fri".
    if let Some(list) = head.strip_prefix("days ") {
        let mut keep = [false; 7];
        for wd in list.split(',') {
            keep[weekday_index(wd.trim())? as usize] = true;
        }
        return Ok(Gran::new(FilteredDays::new(name, keep, holidays)));
    }

    // Counted plural: "N units". Counted singular ("3 month [@ …]") falls
    // through to the core grammar below.
    if let Some((count, unit)) = head.split_once(' ') {
        if let (Ok(n), true) = (count.parse::<i64>(), is_plural_unit(unit.trim())) {
            no_except()?;
            if n < 1 {
                return Err(ParseError::new("count must be >= 1"));
            }
            return expr_counted(n, unit.trim(), name);
        }
    }

    // Anything else: fall through to the core grammar.
    parse_granularity(expr)
}

fn is_plural_unit(unit: &str) -> bool {
    matches!(
        unit,
        "seconds" | "minutes" | "hours" | "days" | "weeks" | "months" | "quarters" | "years"
    )
}

/// Builds `n` copies of a plural unit, named `name`.
fn expr_counted(n: i64, unit: &str, name: String) -> Result<Gran, ParseError> {
    let uniform = |per: i64, anchor: i64| Gran::new(Uniform::new(name.clone(), n * per, anchor));
    Ok(match unit {
        "seconds" => uniform(1, 0),
        "minutes" => uniform(60, 0),
        "hours" => uniform(3_600, 0),
        "days" => uniform(SECONDS_PER_DAY, 0),
        // Weeks stay Monday-anchored like the builtin.
        "weeks" => uniform(7 * SECONDS_PER_DAY, -5 * SECONDS_PER_DAY),
        "months" => Gran::new(Months::new(name, n)),
        "quarters" => Gran::new(Months::new(name, 3 * n)),
        "years" => Gran::new(Months::new(name, 12 * n)),
        other => {
            return Err(ParseError::new(format!(
                "unknown unit `{other}` (want plural units like `months`)"
            )))
        }
    })
}

/// Builds "hours A..B of <day-expr>": the window [A:00, B:00) on each kept
/// day. The day expression accepts the plural day forms of [`from_expr`].
fn expr_hour_window(a: &str, b: &str, days_expr: &str) -> Result<Gran, ParseError> {
    let start_h: i64 = a
        .parse()
        .map_err(|_| ParseError::new(format!("bad hour `{a}`")))?;
    let end_h: i64 = b
        .parse()
        .map_err(|_| ParseError::new(format!("bad hour `{b}`")))?;
    if !(0..24).contains(&start_h) || !(1..=24).contains(&end_h) || start_h >= end_h {
        return Err(ParseError::new(format!(
            "bad hour window `{start_h}..{end_h}` (want 0 <= a < b <= 24)"
        )));
    }
    let days = expr_day_filter(days_expr)?;
    let name = format!("hours {start_h}..{end_h} of {days_expr}");
    Ok(Gran::new(builtin::DayWindow::new(
        name,
        days,
        start_h * 3_600,
        end_h * 3_600 - 1,
    )))
}

/// Resolves a day expression (`days`, `business-days [except …]`,
/// `weekend-days`, `days wd,…`) to a [`FilteredDays`].
fn expr_day_filter(days_expr: &str) -> Result<FilteredDays, ParseError> {
    let (head, except) = match split_keyword(days_expr, " except ") {
        Some((h, e)) => (h.trim(), Some(e.trim())),
        None => (days_expr.trim(), None),
    };
    let holidays: Vec<i64> = match except {
        Some(list) => list
            .split(',')
            .map(|d| parse_date(d.trim()))
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    let keep: [bool; 7] = match head {
        "days" => [true; 7],
        "business-days" => [true, true, true, true, true, false, false],
        "weekend-days" => [false, false, false, false, false, true, true],
        _ => {
            let list = head.strip_prefix("days ").ok_or_else(|| {
                ParseError::new(format!("bad day expression `{days_expr}`"))
            })?;
            let mut keep = [false; 7];
            for wd in list.split(',') {
                keep[weekday_index(wd.trim())? as usize] = true;
            }
            keep
        }
    };
    Ok(FilteredDays::new(days_expr.to_owned(), keep, holidays))
}

/// Weekday name → index (0 = Monday, matching [`FilteredDays`] masks).
fn weekday_index(s: &str) -> Result<i64, ParseError> {
    Ok(match s {
        "mon" => 0,
        "tue" => 1,
        "wed" => 2,
        "thu" => 3,
        "fri" => 4,
        "sat" => 5,
        "sun" => 6,
        other => return Err(ParseError::new(format!("unknown weekday `{other}`"))),
    })
}

/// Month name → month index of its year-2000 occurrence (0 = January 2000),
/// the anchor convention of [`Months::with_anchor`].
fn month_index(s: &str) -> Result<i64, ParseError> {
    Ok(match s {
        "jan" => 0,
        "feb" => 1,
        "mar" => 2,
        "apr" => 3,
        "may" => 4,
        "jun" => 5,
        "jul" => 6,
        "aug" => 7,
        "sep" => 8,
        "oct" => 9,
        "nov" => 10,
        "dec" => 11,
        other => return Err(ParseError::new(format!("unknown month `{other}`"))),
    })
}

#[cfg(test)]
mod expr_tests {
    use super::*;
    use crate::datetime::format_instant;

    const DAY: i64 = 86_400;

    #[test]
    fn plural_bases_match_builtins() {
        for (expr, builtin_name) in [
            ("seconds", "second"),
            ("minutes", "minute"),
            ("hours", "hour"),
            ("days", "day"),
            ("weeks", "week"),
            ("months", "month"),
            ("years", "year"),
            ("business-days", "business-day"),
            ("weekend-days", "weekend-day"),
        ] {
            let g = from_expr(expr).unwrap();
            let b = crate::Calendar::standard().get(builtin_name).unwrap();
            assert_eq!(g.name(), expr);
            for z in [-500, -1, 1, 2, 500] {
                assert_eq!(
                    g.tick_intervals(z),
                    b.tick_intervals(z),
                    "{expr} tick {z}"
                );
            }
        }
    }

    #[test]
    fn weeks_starting_anchors() {
        // "weeks starting mon" is exactly the builtin week.
        let mon = from_expr("weeks starting mon").unwrap();
        let week = Gran::new(builtin::week());
        for z in [-10, 1, 10] {
            assert_eq!(mon.tick_intervals(z), week.tick_intervals(z));
        }
        // "weeks starting wed" starts on a Wednesday.
        let wed = from_expr("weeks starting wed").unwrap();
        assert_eq!(
            format_instant(wed.tick_intervals(1).unwrap().min()),
            "1999-12-29 00:00:00 Wed"
        );
        assert_eq!(wed.tick_intervals(1).unwrap().count(), 7 * DAY);
    }

    #[test]
    fn fiscal_years_and_quarters() {
        let fy = from_expr("fiscal-years starting apr").unwrap();
        assert_eq!(
            format_instant(fy.tick_intervals(1).unwrap().min()),
            "2000-04-01 00:00:00 Sat"
        );
        // Same ticks as the core-grammar spelling.
        let core = parse_granularity("12 month @ 2000-04").unwrap();
        for z in [-5, 1, 7] {
            assert_eq!(fy.tick_intervals(z), core.tick_intervals(z));
        }
        let q = from_expr("quarters").unwrap();
        assert_eq!(q.tick_intervals(1).unwrap().count(), 91 * DAY); // Q1 2000
        let qf = from_expr("quarters starting feb").unwrap();
        assert_eq!(
            format_instant(qf.tick_intervals(1).unwrap().min()),
            "2000-02-01 00:00:00 Tue"
        );
    }

    #[test]
    fn counted_plural() {
        let g = from_expr("90 minutes").unwrap();
        assert_eq!(g.name(), "90 minutes");
        assert_eq!(g.tick_intervals(1).unwrap().count(), 90 * 60);
        let h = from_expr("2 quarters").unwrap();
        let s = parse_granularity("6 month").unwrap();
        assert_eq!(h.tick_intervals(3), s.tick_intervals(3));
        assert!(from_expr("0 days").is_err());
    }

    #[test]
    fn day_lists_and_excepts() {
        let mwf = from_expr("days mon,wed,fri").unwrap();
        let core = parse_granularity("days(mon,wed,fri)").unwrap();
        for z in [-9, 1, 9] {
            assert_eq!(mwf.tick_intervals(z), core.tick_intervals(z));
        }
        let bd = from_expr("business-days except 2000-01-03").unwrap();
        assert_eq!(bd.tick_intervals(1).unwrap().min(), 3 * DAY); // Tue the 4th
        assert!(from_expr("months except 2000-01-03").is_err());
    }

    #[test]
    fn grouped_and_windowed() {
        let bm = from_expr("business-months").unwrap();
        assert_eq!(bm.tick_intervals(1).unwrap().count(), 21 * DAY);
        let bw = from_expr("business-days into weeks").unwrap();
        assert_eq!(bw.tick_intervals(2).unwrap().count(), 5 * DAY);
        let we = from_expr("weekends").unwrap();
        assert_eq!(we.covering_tick(0), Some(1)); // Sat 2000-01-01

        let th = from_expr("hours 9..17 of business-days").unwrap();
        assert_eq!(th.covering_tick(2 * DAY + 10 * 3_600), Some(1)); // Mon 10:00
        assert_eq!(th.covering_tick(2 * DAY + 17 * 3_600), None); // after close
        assert_eq!(th.covering_tick(10 * 3_600), None); // Saturday
        assert!(from_expr("hours 17..9 of days").is_err());

        // "trading-hours" matches the builtin factory exactly.
        let t1 = from_expr("trading-hours").unwrap();
        let t2 = Gran::new(builtin::trading_hours(Vec::new()));
        for z in [-50, 1, 50] {
            assert_eq!(t1.tick_intervals(z), t2.tick_intervals(z));
        }
    }

    #[test]
    fn core_grammar_passthrough_and_normalization() {
        let g = from_expr("  12   month   @  2000-04 ").unwrap();
        assert_eq!(g.name(), "12 month @ 2000-04");
        let w = from_expr("days(sat,sun) into week").unwrap();
        assert_eq!(w.covering_tick(0), Some(1));
        assert!(from_expr("").is_err());
        assert!(from_expr("weeks starting noday").is_err());
        assert!(from_expr("fiscal-years starting smarch").is_err());
        assert!(from_expr("seconds starting apr").is_err());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datetime::format_instant;

    const DAY: i64 = 86_400;

    #[test]
    fn base_names() {
        for name in [
            "second",
            "minute",
            "hour",
            "day",
            "week",
            "month",
            "year",
            "business-day",
            "weekend-day",
        ] {
            let g = parse_granularity(name).unwrap();
            assert_eq!(g.name(), name);
            assert!(g.tick_intervals(1).is_some());
        }
    }

    #[test]
    fn counted_uniform() {
        let g = parse_granularity("90 minute").unwrap();
        let t1 = g.tick_intervals(1).unwrap();
        assert_eq!(t1.count(), 90 * 60);
        let g2 = parse_granularity("2 week").unwrap();
        assert_eq!(g2.tick_intervals(1).unwrap().count(), 14 * DAY);
        // Weeks stay Monday-anchored.
        assert_eq!(
            format_instant(g2.tick_intervals(1).unwrap().min()),
            "1999-12-27 00:00:00 Mon"
        );
    }

    #[test]
    fn counted_months_and_fiscal_anchors() {
        let q = parse_granularity("3 month").unwrap();
        assert_eq!(q.tick_intervals(1).unwrap().count(), 91 * DAY); // Q1 2000
        let fy = parse_granularity("12 month @ 2000-04").unwrap();
        assert_eq!(
            format_instant(fy.tick_intervals(1).unwrap().min()),
            "2000-04-01 00:00:00 Sat"
        );
        let fy2 = parse_granularity("1 year @ 2000-04").unwrap();
        assert_eq!(
            fy2.tick_intervals(1).unwrap().count(),
            fy.tick_intervals(1).unwrap().count()
        );
    }

    #[test]
    fn anchored_uniform() {
        let g = parse_granularity("1 day @ 2000-01-03").unwrap();
        assert_eq!(
            format_instant(g.tick_intervals(1).unwrap().min()),
            "2000-01-03 00:00:00 Mon"
        );
    }

    #[test]
    fn filtered_days() {
        let mwf = parse_granularity("days(mon,wed,fri)").unwrap();
        // Tick 1 = Mon 2000-01-03, tick 2 = Wed 2000-01-05.
        assert_eq!(mwf.tick_intervals(1).unwrap().min(), 2 * DAY);
        assert_eq!(mwf.tick_intervals(2).unwrap().min(), 4 * DAY);
        assert!(mwf.has_gaps());

        let bd = parse_granularity("business-day except 2000-01-03").unwrap();
        // First business day at/after the epoch is now Tuesday the 4th.
        assert_eq!(bd.tick_intervals(1).unwrap().min(), 3 * DAY);
    }

    #[test]
    fn grouped_spec() {
        let weekend = parse_granularity("days(sat,sun) into week").unwrap();
        let t1 = weekend.tick_intervals(1).unwrap();
        assert_eq!(t1.count(), 2 * DAY);
        assert_eq!(weekend.covering_tick(0), Some(1)); // Sat 2000-01-01
        assert_eq!(weekend.covering_tick(2 * DAY), None); // Monday

        let bmonth = parse_granularity("business-day into month").unwrap();
        assert_eq!(bmonth.tick_intervals(1).unwrap().count(), 21 * DAY);
    }

    #[test]
    fn day_window_specs() {
        let th = parse_granularity("09:30-16:00 of business-day").unwrap();
        // Monday 2000-01-03 10:00 is inside trading hours.
        assert_eq!(th.covering_tick(2 * DAY + 10 * 3_600), Some(1));
        assert_eq!(th.covering_tick(2 * DAY + 17 * 3_600), None); // after close
        assert_eq!(th.covering_tick(10 * 3_600), None); // Saturday
        // End is exclusive at the minute: 16:00:00 itself is outside.
        assert_eq!(th.covering_tick(2 * DAY + 16 * 3_600), None);
        assert_eq!(th.covering_tick(2 * DAY + 16 * 3_600 - 1), Some(1));

        let night = parse_granularity("00:00-06:00 of day").unwrap();
        assert_eq!(night.covering_tick(3_600), Some(1));
        assert_eq!(night.covering_tick(12 * 3_600), None);

        let mwf_morning = parse_granularity("08:00-12:00 of days(mon,wed,fri)").unwrap();
        assert_eq!(mwf_morning.covering_tick(2 * DAY + 9 * 3_600), Some(1)); // Mon
        assert_eq!(mwf_morning.covering_tick(3 * DAY + 9 * 3_600), None); // Tue

        assert!(parse_granularity("16:00-09:30 of business-day").is_err());
        assert!(parse_granularity("25:00-26:00 of day").is_err());
    }

    #[test]
    fn errors() {
        assert!(parse_granularity("fortnight").is_err());
        assert!(parse_granularity("0 day").is_err());
        assert!(parse_granularity("3 parsec").is_err());
        assert!(parse_granularity("days()").is_err());
        assert!(parse_granularity("days(funday)").is_err());
        assert!(parse_granularity("1 day @ 2000-13-01").is_err());
        assert!(parse_granularity("1 month @ 2000-01-01").is_err()); // want YYYY-MM
    }

    #[test]
    fn parsed_specs_compose_with_calendars() {
        let mut cal = crate::Calendar::standard();
        cal.register(parse_granularity("3 month").unwrap()).unwrap();
        assert!(cal.get("3 month").is_ok());
    }
}

/// Builds a calendar from a config text: one directive per line, `#`
/// comments. Directives:
///
/// ```text
/// holiday YYYY-MM-DD      # removes the day from the business types
/// gran <spec>             # registers a granularity from the DSL
/// ```
///
/// Holidays apply to the standard `business-day`/`business-week`/
/// `business-month` types regardless of directive order.
pub fn calendar_from_config(text: &str) -> Result<crate::Calendar, ParseError> {
    let mut holidays: Vec<i64> = Vec::new();
    let mut specs: Vec<&str> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(date) = line.strip_prefix("holiday ") {
            holidays.push(parse_date(date.trim())?);
        } else if let Some(spec) = line.strip_prefix("gran ") {
            specs.push(spec.trim());
        } else {
            return Err(ParseError::new(format!(
                "line {}: unknown directive `{line}`",
                lineno + 1
            )));
        }
    }
    let mut cal = crate::Calendar::with_holidays(holidays);
    for spec in specs {
        let g = parse_granularity(spec)?;
        cal.register(g)
            .map_err(|e| ParseError::new(e.to_string()))?;
    }
    Ok(cal)
}

#[cfg(test)]
mod config_tests {
    use super::*;

    #[test]
    fn config_round_trip() {
        let cal = calendar_from_config(
            "# trading calendar\n\
             holiday 2000-01-03   # observed New Year\n\
             gran 3 month\n\
             gran 09:30-16:00 of business-day\n",
        )
        .unwrap();
        // The holiday removed Monday 2000-01-03 from business days.
        let bd = cal.get("business-day").unwrap();
        assert_eq!(bd.covering_tick(2 * 86_400 + 100), None);
        assert!(cal.get("3 month").is_ok());
        assert!(cal.get("09:30-16:00 of business-day").is_ok());
    }

    #[test]
    fn config_errors() {
        assert!(calendar_from_config("holiday not-a-date").is_err());
        assert!(calendar_from_config("frobnicate day").is_err());
        assert!(calendar_from_config("gran lightyear").is_err());
        // Duplicate registration.
        assert!(calendar_from_config("gran 3 month\ngran 3 month").is_err());
        // Empty config is the standard calendar.
        let cal = calendar_from_config("").unwrap();
        assert!(cal.get("second").is_ok());
    }
}

//! Closed integer intervals and sorted disjoint interval sets.
//!
//! Tick extents are interval *sets* because ticks of derived granularities
//! (e.g. business month) are non-convex unions of seconds.

use std::fmt;

use crate::granularity::Second;

/// A non-empty closed interval `[start, end]` of seconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// First instant of the interval (inclusive).
    pub start: Second,
    /// Last instant of the interval (inclusive).
    pub end: Second,
}

impl Interval {
    /// Creates `[start, end]`. Panics if `start > end`.
    pub fn new(start: Second, end: Second) -> Self {
        assert!(start <= end, "empty interval [{start}, {end}]");
        Interval { start, end }
    }

    /// Number of seconds in the interval.
    pub fn len(&self) -> i64 {
        self.end - self.start + 1
    }

    /// Always false: intervals are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `t` lies inside the interval.
    pub fn contains(&self, t: Second) -> bool {
        self.start <= t && t <= self.end
    }

    /// The intersection with `other`, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let s = self.start.max(other.start);
        let e = self.end.min(other.end);
        (s <= e).then(|| Interval::new(s, e))
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

/// A non-empty set of instants represented as sorted, disjoint,
/// non-adjacent closed intervals.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IntervalSet {
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// A set consisting of one interval.
    pub fn single(iv: Interval) -> Self {
        IntervalSet { ivs: vec![iv] }
    }

    /// A set consisting of the single instant `t`.
    pub fn point(t: Second) -> Self {
        Self::single(Interval::new(t, t))
    }

    /// Builds a set from arbitrary intervals, normalizing (sorting and
    /// coalescing overlapping/adjacent intervals). Panics if `ivs` is empty.
    pub fn from_intervals(mut ivs: Vec<Interval>) -> Self {
        assert!(!ivs.is_empty(), "IntervalSet must be non-empty");
        ivs.sort();
        let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            match out.last_mut() {
                Some(last) if iv.start <= last.end.saturating_add(1) => {
                    last.end = last.end.max(iv.end);
                }
                _ => out.push(iv),
            }
        }
        IntervalSet { ivs: out }
    }

    /// The normalized intervals, sorted and disjoint.
    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    /// Earliest instant of the set.
    pub fn min(&self) -> Second {
        self.ivs[0].start
    }

    /// Latest instant of the set.
    pub fn max(&self) -> Second {
        self.ivs[self.ivs.len() - 1].end
    }

    /// Total number of instants in the set.
    pub fn count(&self) -> i64 {
        self.ivs.iter().map(Interval::len).sum()
    }

    /// Whether `t` belongs to the set.
    pub fn contains(&self, t: Second) -> bool {
        // Binary search over sorted disjoint intervals.
        let idx = self.ivs.partition_point(|iv| iv.end < t);
        self.ivs.get(idx).is_some_and(|iv| iv.contains(t))
    }

    /// Whether every instant of `self` belongs to `other`.
    pub fn is_subset_of(&self, other: &IntervalSet) -> bool {
        self.ivs.iter().all(|iv| {
            let idx = other.ivs.partition_point(|o| o.end < iv.start);
            other
                .ivs
                .get(idx)
                .is_some_and(|o| o.start <= iv.start && iv.end <= o.end)
        })
    }

    /// Intersection with a single interval, if non-empty.
    pub fn intersect_interval(&self, iv: &Interval) -> Option<IntervalSet> {
        let out: Vec<Interval> = self
            .ivs
            .iter()
            .filter_map(|x| x.intersect(iv))
            .collect();
        (!out.is_empty()).then_some(IntervalSet { ivs: out })
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(&self.ivs).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let iv = Interval::new(3, 7);
        assert_eq!(iv.len(), 5);
        assert!(iv.contains(3) && iv.contains(7));
        assert!(!iv.contains(2) && !iv.contains(8));
        assert_eq!(
            iv.intersect(&Interval::new(6, 10)),
            Some(Interval::new(6, 7))
        );
        assert_eq!(iv.intersect(&Interval::new(8, 10)), None);
    }

    #[test]
    #[should_panic]
    fn interval_rejects_inverted_bounds() {
        let _ = Interval::new(5, 4);
    }

    #[test]
    fn set_normalizes_overlaps_and_adjacency() {
        let s = IntervalSet::from_intervals(vec![
            Interval::new(10, 12),
            Interval::new(1, 3),
            Interval::new(4, 6), // adjacent to [1,3] -> coalesce
            Interval::new(11, 15),
        ]);
        assert_eq!(
            s.intervals(),
            &[Interval::new(1, 6), Interval::new(10, 15)]
        );
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 15);
        assert_eq!(s.count(), 12);
    }

    #[test]
    fn set_contains_binary_search() {
        let s = IntervalSet::from_intervals(vec![Interval::new(0, 2), Interval::new(10, 10)]);
        for t in [0, 1, 2, 10] {
            assert!(s.contains(t), "expected {t} in set");
        }
        for t in [-1, 3, 9, 11] {
            assert!(!s.contains(t), "expected {t} not in set");
        }
    }

    #[test]
    fn subset_checks_each_component() {
        let big = IntervalSet::from_intervals(vec![Interval::new(0, 10), Interval::new(20, 30)]);
        let inside =
            IntervalSet::from_intervals(vec![Interval::new(2, 4), Interval::new(25, 30)]);
        let straddling = IntervalSet::from_intervals(vec![Interval::new(8, 12)]);
        let in_gap = IntervalSet::from_intervals(vec![Interval::new(12, 15)]);
        assert!(inside.is_subset_of(&big));
        assert!(!straddling.is_subset_of(&big));
        assert!(!in_gap.is_subset_of(&big));
        assert!(big.is_subset_of(&big));
    }

    #[test]
    fn intersect_interval_clips() {
        let s = IntervalSet::from_intervals(vec![Interval::new(0, 5), Interval::new(10, 15)]);
        let clipped = s.intersect_interval(&Interval::new(4, 11)).unwrap();
        assert_eq!(
            clipped.intervals(),
            &[Interval::new(4, 5), Interval::new(10, 11)]
        );
        assert!(s.intersect_interval(&Interval::new(6, 9)).is_none());
    }
}

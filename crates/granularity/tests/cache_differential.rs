//! Differential property tests for the shared resolution cache: for every
//! builtin (and parsed) granularity, resolution through the cache — cold
//! (miss path) and warm (hit path) — must agree bit-for-bit with direct
//! calendar arithmetic (cache disabled).
//!
//! The enable flag is process-wide, so every test in this binary
//! serializes on one lock; other test binaries run in their own process.

use parking_lot::Mutex;
use proptest::prelude::*;
use tgm_granularity::{builtin, cache, convert_tick, Calendar, Gran, Granularity};

const DAY: i64 = 86_400;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Fresh granularity instances (cold caches) covering every builtin
/// flavour: periodic, month-based, filtered days with holidays, grouped,
/// and parsed specs.
fn fresh_grans() -> Vec<Gran> {
    let mut grans: Vec<Gran> = Calendar::with_holidays(vec![4, 17, 200, 366])
        .iter()
        .cloned()
        .collect();
    grans.push(Gran::new(builtin::trading_hours(vec![4, 17])));
    grans.push(Gran::new(builtin::Months::with_anchor("fiscal-year", 12, 3)));
    grans.push(tgm_granularity::parse::parse_granularity("90 minute").unwrap());
    grans.push(tgm_granularity::parse::parse_granularity("days(mon,wed,fri)").unwrap());
    grans.push(
        tgm_granularity::parse::parse_granularity("days(sat,sun) into week").unwrap(),
    );
    grans
}

proptest! {
    /// covering_tick and tick_intervals: disabled == cold cache == warm
    /// cache, for random instants and ticks in every granularity.
    #[test]
    fn resolution_agrees_with_cache_on_and_off(
        t in -400i64 * DAY..400 * DAY,
        z in -3_000i64..3_000,
    ) {
        let _serial = TEST_LOCK.lock();
        for g in fresh_grans() {
            cache::set_enabled(false);
            let cov_direct = g.covering_tick(t);
            let ints_direct = g.tick_intervals(z);
            cache::set_enabled(true);
            let cov_miss = g.covering_tick(t); // cold: miss path
            let cov_hit = g.covering_tick(t); // warm: hit path
            let ints_miss = g.tick_intervals(z);
            let ints_hit = g.tick_intervals(z);
            cache::set_enabled(true);
            prop_assert_eq!(cov_direct, cov_miss, "{}: covering miss path", g.name());
            prop_assert_eq!(cov_direct, cov_hit, "{}: covering hit path", g.name());
            prop_assert_eq!(&ints_direct, &ints_miss, "{}: intervals miss path", g.name());
            prop_assert_eq!(&ints_direct, &ints_hit, "{}: intervals hit path", g.name());
        }
    }

    /// Tick conversion through the per-granularity memo
    /// (`Gran::convert_tick_to`) agrees with the direct free function for
    /// every ordered pair of granularities, cold and warm.
    #[test]
    fn conversion_agrees_with_cache_on_and_off(
        z in -2_000i64..2_000,
        i in 0usize..64,
        j in 0usize..64,
    ) {
        let _serial = TEST_LOCK.lock();
        let grans = fresh_grans();
        let src = &grans[i % grans.len()];
        let dst = &grans[j % grans.len()];
        cache::set_enabled(false);
        let direct = convert_tick(src, z, dst);
        let memo_disabled = src.convert_tick_to(z, dst);
        cache::set_enabled(true);
        let memo_miss = src.convert_tick_to(z, dst);
        let memo_hit = src.convert_tick_to(z, dst);
        cache::set_enabled(true);
        prop_assert_eq!(direct, memo_disabled, "{}->{} disabled", src.name(), dst.name());
        prop_assert_eq!(direct, memo_miss, "{}->{} miss path", src.name(), dst.name());
        prop_assert_eq!(direct, memo_hit, "{}->{} hit path", src.name(), dst.name());
    }
}

/// Warm state left behind by one mode can never leak into the other: a
/// cache warmed with garbage-free entries then disabled must not be read.
#[test]
fn disabling_mid_stream_keeps_results_identical() {
    let _serial = TEST_LOCK.lock();
    let g = Gran::new(builtin::business_day(vec![4, 17]));
    for t in (-40 * DAY..40 * DAY).step_by(7_919) {
        cache::set_enabled(true);
        let warm = g.covering_tick(t);
        cache::set_enabled(false);
        let direct = g.covering_tick(t);
        assert_eq!(warm, direct, "t = {t}");
    }
    cache::set_enabled(true);
}

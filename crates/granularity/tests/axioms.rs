//! Property tests for the temporal-type axioms of the paper (§2) and the
//! soundness of conversion and size tables.

use std::sync::Arc;

use proptest::prelude::*;
use tgm_granularity::{builtin, convert_tick, Calendar, Gran, Granularity};

const DAY: i64 = 86_400;

fn all_grans() -> Vec<Gran> {
    let mut grans: Vec<Gran> = Calendar::with_holidays(vec![2, 6, 150, 151, 366])
        .iter()
        .cloned()
        .collect();
    // The extended types: trading hours, fiscal years/quarters, parsed
    // specs — all must satisfy the same axioms.
    grans.push(Gran::new(builtin::trading_hours(vec![2, 6])));
    grans.push(Gran::new(builtin::Months::with_anchor("fiscal-year", 12, 3)));
    grans.push(Gran::new(builtin::Months::with_anchor("odd-quarter", 3, 2)));
    grans.push(tgm_granularity::parse::parse_granularity("90 minute").unwrap());
    grans.push(tgm_granularity::parse::parse_granularity("days(mon,wed,fri)").unwrap());
    grans.push(tgm_granularity::parse::parse_granularity("days(sat,sun) into week").unwrap());
    grans.push(tgm_granularity::parse::parse_granularity("08:00-12:00 of days(mon,tue)").unwrap());
    grans
}

fn gran_strategy() -> impl Strategy<Value = Gran> {
    let grans = all_grans();
    (0..grans.len()).prop_map(move |i| grans[i].clone())
}

proptest! {
    /// Axiom 1 (monotonicity): ticks i < j have strictly ordered extents.
    #[test]
    fn monotonicity(g in gran_strategy(), z in -500i64..500, d in 1i64..100) {
        if let (Some(a), Some(b)) = (g.tick_intervals(z), g.tick_intervals(z + d)) {
            prop_assert!(a.max() < b.min(),
                "{}: tick {z} [{},{}] must precede tick {} [{},{}]",
                g.name(), a.min(), a.max(), z + d, b.min(), b.max());
        }
    }

    /// The two trait views agree: covering_tick(t) == z iff t in tick z.
    #[test]
    fn views_agree(g in gran_strategy(), t in -400i64 * DAY..400 * DAY) {
        match g.covering_tick(t) {
            Some(z) => {
                let set = g.tick_intervals(z).expect("covering tick must exist");
                prop_assert!(set.contains(t), "{}: tick {z} must contain {t}", g.name());
            }
            None => {
                // t is in a gap: neighbouring ticks must not contain it.
                if let Some(z) = g.next_tick_at_or_after(t) {
                    for w in [z - 1, z, z + 1] {
                        if let Some(set) = g.tick_intervals(w) {
                            prop_assert!(!set.contains(t),
                                "{}: gap instant {t} found in tick {w}", g.name());
                        }
                    }
                }
            }
        }
    }

    /// Ticks tile without overlap: each instant has at most one tick, and
    /// consecutive ticks never share instants.
    #[test]
    fn no_overlap(g in gran_strategy(), z in -500i64..500) {
        if let (Some(a), Some(b)) = (g.tick_intervals(z), g.tick_intervals(z + 1)) {
            prop_assert!(a.max() < b.min(), "{}: ticks {z},{} overlap", g.name(), z + 1);
        }
    }

    /// next_tick_at_or_after returns the first tick whose extent ends at or
    /// after t.
    #[test]
    fn next_tick_correct(g in gran_strategy(), t in -400i64 * DAY..400 * DAY) {
        if let Some(z) = g.next_tick_at_or_after(t) {
            let set = g.tick_intervals(z).expect("returned tick must exist");
            prop_assert!(set.max() >= t);
            if let Some(prev) = g.tick_intervals(z - 1) {
                prop_assert!(prev.max() < t,
                    "{}: tick {} also ends at/after {t}", g.name(), z - 1);
            }
        }
    }

    /// Conversion correctness: ⌈z⌉ is defined iff a covering tick exists,
    /// and when defined it covers the source tick.
    #[test]
    fn conversion_covering(src in gran_strategy(), dst in gran_strategy(), z in -400i64..400) {
        if let Some(set) = src.tick_intervals(z) {
            match convert_tick(&src, z, &dst) {
                Some(z2) => {
                    let big = dst.tick_intervals(z2).expect("target tick must exist");
                    prop_assert!(set.is_subset_of(&big));
                }
                None => {
                    // No target tick may cover the source tick: check the
                    // tick containing the source minimum (the only candidate
                    // by monotonicity).
                    if let Some(z2) = dst.covering_tick(set.min()) {
                        let big = dst.tick_intervals(z2).unwrap();
                        prop_assert!(!set.is_subset_of(&big));
                    }
                }
            }
        }
    }

    /// Size-table soundness: for every concrete run of k consecutive ticks,
    /// minsize <= span <= maxsize and gap >= mingap.
    #[test]
    fn size_bounds_sound(g in gran_strategy(), z in -400i64..400, k in 1u64..20) {
        let t = g.sizes();
        let ki = k as i64;
        if let (Some(first), Some(last)) = (g.tick_intervals(z), g.tick_intervals(z + ki - 1)) {
            let span = last.max() - first.min() + 1;
            let b = t.bounds(k);
            prop_assert!(b.min_span <= span,
                "{}: minsize({k})={} > observed span {span} at tick {z}", g.name(), b.min_span);
            prop_assert!(span <= b.max_span,
                "{}: maxsize({k})={} < observed span {span} at tick {z}", g.name(), b.max_span);
        }
        if let (Some(first), Some(next)) = (g.tick_intervals(z), g.tick_intervals(z + ki)) {
            let gap = next.min() - first.max();
            prop_assert!(t.bounds(k).min_gap <= gap,
                "{}: mingap({k}) too large at tick {z}", g.name());
        }
    }

    /// Gapless granularities really cover every instant.
    #[test]
    fn gapless_total(g in gran_strategy(), t in -400i64 * DAY..400 * DAY) {
        if !g.has_gaps() {
            prop_assert!(g.covering_tick(t).is_some(),
                "{}: claims gapless but {t} is uncovered", g.name());
        }
    }
}

#[test]
fn conversion_examples_from_paper() {
    let cal = Calendar::standard();
    let sec = cal.get("second").unwrap();
    let month = cal.get("month").unwrap();
    let week = cal.get("week").unwrap();
    let day = cal.get("day").unwrap();
    let bday = cal.get("business-day").unwrap();

    // ⌈z⌉ month over second is always defined.
    for z in [1i64, 1_000_000, 50_000_000] {
        assert!(convert_tick(&sec, z, &month).is_some());
    }
    // ⌈z⌉ month over week is undefined if the week straddles two months.
    assert_eq!(convert_tick(&week, 1, &month), None); // 1999-12-27..2000-01-02
    assert_eq!(convert_tick(&week, 2, &month), Some(1));
    // ⌈z⌉ b-day over day is undefined on Saturdays/Sundays.
    assert_eq!(convert_tick(&day, 1, &bday), None); // Sat 2000-01-01
    assert_eq!(convert_tick(&day, 2, &bday), None); // Sun 2000-01-02
    assert_eq!(convert_tick(&day, 3, &bday), Some(1)); // Mon 2000-01-03
}

#[test]
fn group_into_respects_frame_boundaries() {
    // Business-week of a week fully containing a holiday shrinks.
    let hol = 4 * DAY; // Wednesday 2000-01-05
    let cal = Calendar::with_holidays(vec![hol / DAY]);
    let bw = cal.get("business-week").unwrap();
    // Week 2 (Mon 2000-01-03 .. Sun 09) has 4 business days.
    assert_eq!(bw.tick_intervals(2).unwrap().count(), 4 * DAY);
    let plain = Calendar::standard().get("business-week").unwrap();
    assert_eq!(plain.tick_intervals(2).unwrap().count(), 5 * DAY);
}

#[test]
fn weekend_day_has_two_per_week() {
    let wd = builtin::weekend_day();
    // Ticks 1 and 2 are Sat/Sun 2000-01-01/02; tick 3 is Sat 2000-01-08.
    assert_eq!(wd.tick_intervals(1).unwrap().min(), 0);
    assert_eq!(wd.tick_intervals(2).unwrap().min(), DAY);
    assert_eq!(wd.tick_intervals(3).unwrap().min(), 7 * DAY);
}

#[test]
fn custom_granularity_composes() {
    // A "semester" = 6-month groups registered into a calendar.
    let mut cal = Calendar::standard();
    cal.register(Gran::new(builtin::n_month(6))).unwrap();
    let sem = cal.get("6-month").unwrap();
    // First semester of 2000: Jan..Jun = 182 days (leap year).
    assert_eq!(sem.tick_intervals(1).unwrap().count(), 182 * DAY);
    let month = cal.get("month").unwrap();
    assert_eq!(convert_tick(&month, 6, &sem), Some(1));
    assert_eq!(convert_tick(&month, 7, &sem), Some(2));
}

#[test]
fn business_month_group_into_arc_composition() {
    let bday: Arc<dyn Granularity> = Arc::new(builtin::business_day(Vec::new()));
    let quarter: Arc<dyn Granularity> = Arc::new(builtin::n_month(3));
    let bq = builtin::GroupInto::new("business-quarter", bday, quarter);
    // Q1 2000 business days: Jan 21 + Feb 21 + Mar 23 = 65.
    assert_eq!(bq.tick_intervals(1).unwrap().count(), 65 * DAY);
}

proptest! {
    /// The spec parser never panics on arbitrary input.
    #[test]
    fn spec_parser_never_panics(s in "\\PC{0,40}") {
        let _ = tgm_granularity::parse::parse_granularity(&s);
        let _ = tgm_granularity::parse::calendar_from_config(&s);
    }
}

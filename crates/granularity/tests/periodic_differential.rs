//! Differential property tests for the compiled periodic fast path: every
//! builtin and DSL granularity must compile (zero fallbacks), and every
//! answer served from a compiled table — resolution, next-tick, and tick
//! conversion — must agree bit-for-bit with the raw interval arithmetic
//! (periodic fast path and mutex cache both disabled).
//!
//! The enable flags are process-wide, so every test in this binary
//! serializes on one lock; other test binaries run in their own process.

use std::sync::OnceLock;

use parking_lot::Mutex;
use proptest::prelude::*;
use tgm_granularity::{cache, convert_tick, periodic, tick_covers, Calendar, Gran, Granularity};

const DAY: i64 = 86_400;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// DSL expressions exercising every compiler shape: uniform, anchored
/// uniform, month-based, filtered days with exceptions, day windows, and
/// grouped granularities.
const DSL_CORPUS: &[&str] = &[
    "weeks starting wed",
    "fiscal-years starting apr",
    "quarters starting feb",
    "90 minutes",
    "days mon,wed,fri",
    "business-days except 2000-01-17,2000-07-04",
    "weekends",
    "hours 9..17 of business-days",
    "trading-hours except 2000-01-17",
];

/// Shared handles (compiled once for the whole binary): the standard
/// calendar with holidays plus the DSL corpus.
fn corpus() -> &'static [Gran] {
    static CORPUS: OnceLock<Vec<Gran>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut grans: Vec<Gran> = Calendar::with_holidays(vec![4, 17, 200, 366])
            .iter()
            .cloned()
            .collect();
        for expr in DSL_CORPUS {
            grans.push(Gran::from_expr(expr).unwrap());
        }
        grans
    })
}

/// Every granularity of the default registry and the DSL corpus compiles —
/// the mutex-cache path survives only as a fallback, and nothing falls
/// back.
#[test]
fn every_standard_granularity_compiles() {
    let _serial = TEST_LOCK.lock();
    periodic::set_enabled(true);
    periodic::reset_stats();
    for g in Calendar::with_holidays(vec![4, 17, 200, 366]).iter() {
        assert!(g.compiled().is_some(), "{} fell back to the cache path", g.name());
    }
    for expr in DSL_CORPUS {
        let g = Gran::from_expr(expr).unwrap();
        assert!(g.compiled().is_some(), "{expr} fell back to the cache path");
    }
    let stats = periodic::stats();
    assert_eq!(stats.fallback, 0, "unexpected fallbacks: {stats:?}");
    assert!(stats.compiled > 0);
}

proptest! {
    /// covering_tick / tick_intervals / next_tick_at_or_after served by the
    /// compiled table == the raw interval arithmetic, plus the two-view
    /// round trip (the covering tick's interval set contains the instant).
    #[test]
    fn compiled_resolution_agrees_with_direct(
        t in -400i64 * DAY..400 * DAY,
        z in -3_000i64..3_000,
    ) {
        let _serial = TEST_LOCK.lock();
        for g in corpus() {
            periodic::set_enabled(true);
            prop_assert!(g.compiled().is_some(), "{} did not compile", g.name());
            let cov_fast = g.covering_tick(t);
            let ints_fast = g.tick_intervals(z);
            let next_fast = g.next_tick_at_or_after(t);
            periodic::set_enabled(false);
            cache::set_enabled(false);
            let cov_direct = g.covering_tick(t);
            let ints_direct = g.tick_intervals(z);
            let next_direct = g.next_tick_at_or_after(t);
            cache::set_enabled(true);
            periodic::set_enabled(true);
            prop_assert_eq!(cov_direct, cov_fast, "{}: covering_tick({t})", g.name());
            prop_assert_eq!(&ints_direct, &ints_fast, "{}: tick_intervals({z})", g.name());
            prop_assert_eq!(next_direct, next_fast, "{}: next_tick_at_or_after({t})", g.name());
            if let Some(zc) = cov_fast {
                let ints = g.tick_intervals(zc);
                prop_assert!(
                    ints.as_ref().is_some_and(|s| s.contains(t)),
                    "{}: tick {zc} does not contain {t}", g.name()
                );
            }
        }
    }

    /// Closed-form table-to-table conversion == the direct covering-tick
    /// conversion, and the result satisfies the paper's `tick_covers`
    /// two-view consistency.
    #[test]
    fn compiled_conversion_agrees_with_direct(
        z in -2_000i64..2_000,
        i in 0usize..64,
        j in 0usize..64,
    ) {
        let _serial = TEST_LOCK.lock();
        let grans = corpus();
        let src = &grans[i % grans.len()];
        let dst = &grans[j % grans.len()];
        periodic::set_enabled(true);
        prop_assert!(src.compiled().is_some() && dst.compiled().is_some());
        let fast = src.convert_tick_to(z, dst);
        periodic::set_enabled(false);
        cache::set_enabled(false);
        let direct = convert_tick(src, z, dst);
        let covers_direct = fast.map(|zt| tick_covers(dst, zt, src, z));
        cache::set_enabled(true);
        periodic::set_enabled(true);
        prop_assert_eq!(direct, fast, "{} -> {} at {z}", src.name(), dst.name());
        if let Some(zt) = fast {
            prop_assert_eq!(covers_direct, Some(true), "two-view direct");
            prop_assert!(
                tick_covers(dst, zt, src, z),
                "{} tick {zt} must cover {} tick {z}", dst.name(), src.name()
            );
        }
    }
}

/// Toggling the periodic fast path mid-stream never changes answers: warm
/// tables left behind by one mode cannot leak wrong results into the other.
#[test]
fn disabling_mid_stream_keeps_results_identical() {
    let _serial = TEST_LOCK.lock();
    let g = Gran::from_expr("hours 9..17 of business-days except 2000-01-17").unwrap();
    periodic::set_enabled(true);
    assert!(g.compiled().is_some());
    for t in (-40 * DAY..40 * DAY).step_by(7_919) {
        periodic::set_enabled(true);
        let fast = g.covering_tick(t);
        periodic::set_enabled(false);
        cache::set_enabled(false);
        let direct = g.covering_tick(t);
        cache::set_enabled(true);
        periodic::set_enabled(true);
        assert_eq!(fast, direct, "t = {t}");
    }
}

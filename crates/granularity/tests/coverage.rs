//! Coverage tests for the smaller public surfaces: tick_covers, handles,
//! error displays, registry behaviour, size-table edge cases.

use std::sync::Arc;

use tgm_granularity::{
    builtin, convert_tick, datetime_of, format_instant, instant, tick_covers, Calendar,
    CivilDate, DateTime, Gran, Granularity, GranularityError, Interval, IntervalSet, SizeTable,
    Weekday,
};

const DAY: i64 = 86_400;

#[test]
fn tick_covers_checks_containment() {
    let day = builtin::day();
    let week = builtin::week();
    // Week 2 = Mon 2000-01-03 .. Sun 09 covers day ticks 3..9.
    assert!(tick_covers(&week, 2, &day, 3));
    assert!(tick_covers(&week, 2, &day, 9));
    assert!(!tick_covers(&week, 2, &day, 10));
    assert!(!tick_covers(&day, 3, &week, 2)); // a day cannot cover a week
}

#[test]
fn gran_handle_traits() {
    let cal = Calendar::standard();
    let day = cal.get("day").unwrap();
    assert_eq!(format!("{day}"), "day");
    assert_eq!(format!("{day:?}"), "Gran(day)");
    // Ordering is by name.
    let hour = cal.get("hour").unwrap();
    assert!(day < hour);
    // Hashing by name: same-named handles collide. (`Gran` hashes by its
    // immutable name; clippy's interior-mutability lint sees only the
    // memoized size-table cache.)
    #[allow(clippy::mutable_key_type)]
    let mut set = std::collections::HashSet::new();
    set.insert(day.clone());
    set.insert(cal.get("day").unwrap());
    assert_eq!(set.len(), 1);
    // Calendar debug lists names.
    assert!(format!("{cal:?}").contains("business-day"));
}

#[test]
fn error_displays() {
    let cal = Calendar::standard();
    let err = cal.get("parsec").unwrap_err();
    assert!(err.to_string().contains("parsec"));
    assert!(matches!(err, GranularityError::UnknownName(_)));
    let mut cal = Calendar::standard();
    let dup = cal.register(Gran::new(builtin::day())).unwrap_err();
    assert!(dup.to_string().contains("already registered"));
    let ooh = GranularityError::OutOfHorizon {
        granularity: "month".into(),
        tick: 999_999,
    };
    assert!(ooh.to_string().contains("horizon"));
}

#[test]
fn datetime_surface() {
    let dt = DateTime::new(1996, 6, 3, 14, 30, 0);
    assert_eq!(dt.weekday(), Weekday::Mon);
    assert_eq!(dt.date, CivilDate::new(1996, 6, 3));
    let t = instant(1996, 6, 3, 14, 30, 0);
    assert_eq!(datetime_of(t), dt);
    assert!(format_instant(t).starts_with("1996-06-03 14:30:00"));
    assert_eq!(Weekday::from_index(7), Weekday::Mon); // wraps
}

#[test]
fn size_table_standalone() {
    let t = SizeTable::new(Arc::new(builtin::week()));
    assert_eq!(t.granularity().name(), "week");
    assert_eq!(t.min_size(3), 21 * DAY);
    assert_eq!(t.max_size(3), 21 * DAY);
    assert!(format!("{t:?}").contains("week"));
}

#[test]
fn months_horizon_boundaries() {
    let m = builtin::month();
    // Far outside the supported horizon: None rather than nonsense.
    assert!(m.tick_intervals(10_000_000).is_none());
    assert!(m.covering_tick(i64::MAX / 2).is_none());
    // Deep past within horizon still works.
    assert!(m.tick_intervals(-50_000).is_some());
}

#[test]
fn interval_set_apis() {
    let s = IntervalSet::point(42);
    assert_eq!((s.min(), s.max(), s.count()), (42, 42, 1));
    let s2 = IntervalSet::from_intervals(vec![Interval::new(0, 4), Interval::new(10, 14)]);
    assert!(!s2.is_subset_of(&s));
    assert!(s2.intersect_interval(&Interval::new(3, 11)).is_some());
    assert!(!Interval::new(1, 1).is_empty());
}

#[test]
fn convert_between_custom_anchored_types() {
    let fiscal_q = builtin::Months::with_anchor("fq", 3, 3); // Apr-anchored quarters
    let month = builtin::month();
    // April 2000 is month tick 4 and fiscal-quarter tick 1.
    assert_eq!(convert_tick(&month, 4, &fiscal_q), Some(1));
    assert_eq!(convert_tick(&month, 7, &fiscal_q), Some(2)); // July
    // An April-anchored quarter grid coincides with calendar quarters
    // (3 ≡ 0 mod 3), but a February-anchored one straddles them.
    let cal_q = builtin::n_month(3);
    assert_eq!(convert_tick(&cal_q, 1, &fiscal_q), Some(0));
    let feb_q = builtin::Months::with_anchor("feb-q", 3, 1);
    assert_eq!(convert_tick(&cal_q, 1, &feb_q), None);
}

#[test]
fn weekday_roundtrip_and_eq() {
    for i in 0..7 {
        assert_eq!(Weekday::from_index(i).index(), i);
    }
}

//! Property tests for scoped metric domains: concurrent scopes never
//! bleed into each other, and snapshot deltas are associative.
//!
//! This test binary runs in its own process, so it owns the process-wide
//! enable toggle; a file-local lock serializes the two properties (both
//! flip the toggle and the shim may run them on different threads).

use parking_lot::Mutex;
use proptest::prelude::*;
use tgm_obs::scope::ObsScope;
use tgm_obs::Snapshot;

static TOGGLE_LOCK: Mutex<()> = Mutex::new(());

/// Per-scope-exclusive metric names: scope `i` only ever receives
/// `COUNTERS[i]`/`SPANS[i]`/`HISTS[i]`, so any other name appearing in
/// its snapshot is a bleed.
const COUNTERS: [&str; 4] = ["iso.c.0", "iso.c.1", "iso.c.2", "iso.c.3"];
const SPANS: [&str; 4] = ["iso.s.0", "iso.s.1", "iso.s.2", "iso.s.3"];
const HISTS: [&str; 4] = ["iso.h.0", "iso.h.1", "iso.h.2", "iso.h.3"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N threads run interleaved scripts of "enter scope, emit, leave"
    /// ops against M shared scopes, snapshotting scopes mid-run; at the
    /// end every scope holds exactly the emissions addressed to it and
    /// none of its neighbours'.
    #[test]
    fn concurrent_scopes_never_bleed(
        n_scopes in 2usize..=4,
        scripts in proptest::collection::vec(
            proptest::collection::vec((any::<prop::sample::Index>(), 1u64..50), 1..40),
            2..5,
        ),
    ) {
        let _serial = TOGGLE_LOCK.lock();
        tgm_obs::set_enabled(true);
        let scopes: Vec<ObsScope> = (0..n_scopes).map(|_| ObsScope::new()).collect();

        // Expected per-scope counter totals, computed serially.
        let mut expected = vec![0u64; n_scopes];
        for script in &scripts {
            for (which, amount) in script {
                expected[which.index(n_scopes)] += amount;
            }
        }

        crossbeam::scope(|cb| {
            for script in &scripts {
                let scopes = &scopes;
                cb.spawn(move |_| {
                    for (which, amount) in script {
                        let i = which.index(scopes.len());
                        let _g = scopes[i].enter();
                        {
                            let _span = tgm_obs::span::span(SPANS[i]);
                            tgm_obs::metrics::counter_add(COUNTERS[i], *amount);
                            tgm_obs::metrics::histogram_record(HISTS[i], *amount);
                        }
                        // Interleaved capture: a mid-run snapshot must
                        // already be scope-pure and never overshoot.
                        let snap = scopes[i].snapshot();
                        assert!(snap.metrics.counter(COUNTERS[i]) >= *amount);
                        for (j, other) in COUNTERS.iter().enumerate().take(scopes.len()) {
                            if j != i {
                                assert_eq!(snap.metrics.counter(other), 0);
                            }
                        }
                    }
                });
            }
        })
        .expect("crossbeam scope");

        tgm_obs::set_enabled(false);
        for (i, scope) in scopes.iter().enumerate() {
            let snap = scope.snapshot();
            prop_assert_eq!(
                snap.metrics.counter(COUNTERS[i]), expected[i],
                "scope {} lost or gained counts", i
            );
            for j in 0..n_scopes {
                if j == i { continue; }
                prop_assert_eq!(
                    snap.metrics.counter(COUNTERS[j]), 0,
                    "scope {}'s counter bled into scope {}", j, i
                );
                prop_assert!(
                    snap.spans.get(SPANS[j]).is_none(),
                    "scope {}'s span bled into scope {}", j, i
                );
                prop_assert!(
                    snap.metrics.histogram(HISTS[j]).is_none(),
                    "scope {}'s histogram bled into scope {}", j, i
                );
            }
            let expected_samples = if expected[i] > 0 {
                prop_assert!(snap.spans.get(SPANS[i]).is_some());
                snap.metrics.histogram(HISTS[i]).map(|h| h.count()).unwrap_or(0)
            } else { 0 };
            let span_count = snap.spans.get(SPANS[i]).map(|s| s.count).unwrap_or(0);
            prop_assert_eq!(span_count, expected_samples,
                "scope {}: span count and sample count disagree", i);
        }
    }

    /// `delta(a, c) == delta(a, b) + delta(b, c)` for counters and
    /// histogram buckets, over three monotone captures of one scope.
    #[test]
    fn snapshot_delta_is_associative(
        phase1 in proptest::collection::vec((any::<prop::sample::Index>(), 0u64..2000), 0..30),
        phase2 in proptest::collection::vec((any::<prop::sample::Index>(), 0u64..2000), 0..30),
    ) {
        let _serial = TOGGLE_LOCK.lock();
        tgm_obs::set_enabled(true);
        let scope = ObsScope::new();
        let emit = |ops: &[(prop::sample::Index, u64)]| {
            for (which, v) in ops {
                let i = which.index(COUNTERS.len());
                scope.counter_add(COUNTERS[i], *v);
                scope.histogram_record(HISTS[i], *v);
            }
        };
        let a = scope.snapshot();
        emit(&phase1);
        let b = scope.snapshot();
        emit(&phase2);
        let c = scope.snapshot();
        tgm_obs::set_enabled(false);

        let whole: Snapshot = c.delta(&a);
        let parts: Snapshot = b.delta(&a) + c.delta(&b);
        prop_assert_eq!(
            &whole.metrics.counters, &parts.metrics.counters,
            "counter deltas are not associative"
        );
        prop_assert_eq!(
            &whole.metrics.histograms, &parts.metrics.histograms,
            "histogram bucket deltas are not associative"
        );
    }
}

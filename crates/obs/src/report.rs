//! The unified observability report: a human-readable funnel/timing tree
//! and a machine-readable JSON document over one capture of the span and
//! metric registries.

use std::fmt::Write as _;

use tgm_granularity::{cache, periodic, CacheStats};

use crate::metrics::{self, MetricsSnapshot};
use crate::span::{self, SpanSnapshot, SpanStats};

/// A single named value reported by an [`Observable`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ObsValue {
    /// An unsigned count.
    U64(u64),
    /// A ratio or other real quantity.
    F64(f64),
    /// A flag.
    Bool(bool),
}

impl std::fmt::Display for ObsValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsValue::U64(v) => write!(f, "{v}"),
            ObsValue::F64(v) => write!(f, "{v:.4}"),
            ObsValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl ObsValue {
    fn write_json(&self, out: &mut String) {
        match self {
            ObsValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            ObsValue::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            ObsValue::F64(_) => out.push_str("null"),
            ObsValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }
}

impl From<u64> for ObsValue {
    fn from(v: u64) -> Self {
        ObsValue::U64(v)
    }
}

impl From<usize> for ObsValue {
    fn from(v: usize) -> Self {
        ObsValue::U64(v as u64)
    }
}

impl From<f64> for ObsValue {
    fn from(v: f64) -> Self {
        ObsValue::F64(v)
    }
}

impl From<bool> for ObsValue {
    fn from(v: bool) -> Self {
        ObsValue::Bool(v)
    }
}

/// Uniform name/value reporting for the workspace's stats structs
/// (`RunStats`, [`CacheStats`], `PipelineStats`, …), so [`Report`]
/// ingests them all the same way instead of each consumer hand-printing
/// fields.
pub trait Observable {
    /// Appends `(name, value)` pairs describing this value. Names are
    /// short `snake_case` keys, stable across releases of the same
    /// struct.
    fn observe(&self, out: &mut Vec<(&'static str, ObsValue)>);

    /// The pairs as a fresh vector.
    fn observed(&self) -> Vec<(&'static str, ObsValue)> {
        let mut out = Vec::new();
        self.observe(&mut out);
        out
    }

    /// Looks up one reported value by name.
    fn observed_value(&self, name: &str) -> Option<ObsValue> {
        self.observed()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }
}

impl Observable for periodic::CompileStats {
    fn observe(&self, out: &mut Vec<(&'static str, ObsValue)>) {
        out.push(("compiled", self.compiled.into()));
        out.push(("fallback", self.fallback.into()));
    }
}

impl Observable for CacheStats {
    fn observe(&self, out: &mut Vec<(&'static str, ObsValue)>) {
        out.push(("hits", self.hits.into()));
        out.push(("misses", self.misses.into()));
        out.push(("lookups", self.lookups().into()));
        out.push(("hit_rate", self.hit_rate().into()));
    }
}

/// One stage of the §5 pruning funnel: how many candidates (or events,
/// or references) went in and how many survived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunnelStage {
    /// Stage name, e.g. `"step3.reference_pruning"`.
    pub step: String,
    /// Items entering the stage.
    pub input: u64,
    /// Items surviving the stage.
    pub output: u64,
    /// Free-form qualifier (what the items are, which switch was on).
    pub detail: String,
}

impl FunnelStage {
    /// Fraction of input pruned by this stage (0 on empty input).
    pub fn pruned_frac(&self) -> f64 {
        if self.input == 0 {
            0.0
        } else {
            1.0 - self.output as f64 / self.input as f64
        }
    }
}

/// A captured observability report.
///
/// [`Report::capture`] snapshots the span and metric registries plus the
/// process-wide granularity [`CacheStats`]; callers then attach stats
/// sections ([`Report::add_section`]) and the pruning funnel
/// ([`Report::set_funnel`]) before rendering.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Span aggregates at capture time.
    pub spans: SpanSnapshot,
    /// Counters and histograms at capture time.
    pub metrics: MetricsSnapshot,
    sections: Vec<(String, Vec<(&'static str, ObsValue)>)>,
    funnel: Vec<FunnelStage>,
}

impl Report {
    /// Snapshots the global registries. The granularity cache's
    /// process-wide counters are included automatically as a
    /// `granularity.cache` section, and the periodic compiler's
    /// compiled/fallback outcomes as `granularity.compile`.
    pub fn capture() -> Report {
        let mut r = Report {
            spans: span::snapshot(),
            metrics: metrics::snapshot(),
            sections: Vec::new(),
            funnel: Vec::new(),
        };
        r.add_section("granularity.cache", &cache::global_stats());
        r.add_section("granularity.compile", &periodic::stats());
        r
    }

    /// Attaches a named stats section via its [`Observable`] pairs.
    pub fn add_section(&mut self, name: &str, stats: &dyn Observable) {
        self.sections.push((name.to_string(), stats.observed()));
    }

    /// Sets the pruning-funnel stages (replacing any previous funnel).
    pub fn set_funnel(&mut self, stages: Vec<FunnelStage>) {
        self.funnel = stages;
    }

    /// The funnel stages, in order.
    pub fn funnel(&self) -> &[FunnelStage] {
        &self.funnel
    }

    /// The attached sections, in insertion order.
    pub fn sections(&self) -> &[(String, Vec<(&'static str, ObsValue)>)] {
        &self.sections
    }

    /// Renders the human-readable report: span tree, pruning funnel,
    /// counters, histogram summaries and attached sections.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== tgm observability report ==\n");

        if !self.spans.spans.is_empty() {
            out.push_str("\n-- spans --\n");
            render_span_tree(&self.spans, &mut out);
        }

        if !self.funnel.is_empty() {
            out.push_str("\n-- pruning funnel --\n");
            let widest = self.funnel.iter().map(|s| s.step.len()).max().unwrap_or(0);
            for stage in &self.funnel {
                let _ = writeln!(
                    out,
                    "  {:widest$}  {:>10} -> {:<10} ({:5.1}% pruned)  {}",
                    stage.step,
                    stage.input,
                    stage.output,
                    stage.pruned_frac() * 100.0,
                    stage.detail,
                );
            }
        }

        if !self.metrics.counters.is_empty() {
            out.push_str("\n-- counters --\n");
            for (name, v) in &self.metrics.counters {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }

        if !self.metrics.histograms.is_empty() {
            out.push_str("\n-- histograms (log2 buckets) --\n");
            for (name, h) in &self.metrics.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: n={} p50>={} p90>={} max>={}",
                    h.count(),
                    h.quantile_lo(0.5).unwrap_or(0),
                    h.quantile_lo(0.9).unwrap_or(0),
                    h.max_lo().unwrap_or(0),
                );
            }
        }

        for (name, pairs) in &self.sections {
            let _ = writeln!(out, "\n-- {name} --");
            for (k, v) in pairs {
                let _ = writeln!(out, "  {k} = {v}");
            }
        }
        out
    }

    /// Serializes the report as a JSON object (schema
    /// `tgm_obs_report/v1`). Hand-rolled like the workspace's other JSON
    /// writers; `crates/events`' `minijson` parses it back for schema
    /// validation in `obs_report`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"tgm_obs_report/v1\",\"spans\":{");
        for (i, (name, s)) in self.spans.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_str(name, &mut out);
            let _ = write!(
                out,
                ":{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                s.count, s.total_ns, s.max_ns
            );
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.metrics.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_str(name, &mut out);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.metrics.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_str(name, &mut out);
            let _ = write!(out, ":{{\"count\":{},\"buckets\":[", h.count());
            let mut first = true;
            for (b, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{},{}]", metrics::bucket_lo(b), c);
            }
            out.push_str("]}");
        }
        out.push_str("},\"funnel\":[");
        for (i, stage) in self.funnel.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"step\":");
            json_str(&stage.step, &mut out);
            let _ = write!(out, ",\"in\":{},\"out\":{},\"detail\":", stage.input, stage.output);
            json_str(&stage.detail, &mut out);
            out.push('}');
        }
        out.push_str("],\"sections\":{");
        for (i, (name, pairs)) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_str(name, &mut out);
            out.push_str(":{");
            for (j, (k, v)) in pairs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_str(k, &mut out);
                out.push(':');
                v.write_json(&mut out);
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

/// Renders the dotted span names as an indented tree. Parents that never
/// ran as spans themselves (e.g. `mining` under `mining.sweep.chunk`)
/// still appear as bare grouping lines.
fn render_span_tree(snap: &SpanSnapshot, out: &mut String) {
    let mut printed: Vec<String> = Vec::new();
    for (name, stats) in &snap.spans {
        let parts: Vec<&str> = name.split('.').collect();
        // Print any grouping ancestors not yet emitted.
        for d in 1..parts.len() {
            let prefix = parts[..d].join(".");
            if !printed.contains(&prefix) {
                if !snap.spans.contains_key(&prefix) {
                    let _ = writeln!(out, "  {}{}", "  ".repeat(d - 1), parts[d - 1]);
                }
                printed.push(prefix);
            }
        }
        let depth = parts.len() - 1;
        let _ = writeln!(
            out,
            "  {}{:24} total {:9.3} ms  n={:<6} mean {:9.1} ns  max {:9.1} us",
            "  ".repeat(depth),
            parts[depth],
            stats.total_ms(),
            stats.count,
            stats.mean_ns(),
            stats.max_ns as f64 / 1e3,
        );
        printed.push(name.clone());
    }
}

/// Writes `s` as a JSON string literal with escaping.
pub(crate) fn json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: the combined stats for spans rendered at the root of the
/// tree (total wall time attributed to top-level spans).
pub fn top_level_total(snap: &SpanSnapshot) -> SpanStats {
    let mut total = SpanStats::default();
    for (name, s) in &snap.spans {
        if !name.contains('.') {
            total = total + *s;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::TEST_LOCK;

    #[test]
    fn cache_stats_observable_pairs() {
        let s = CacheStats { hits: 3, misses: 1 };
        let pairs = s.observed();
        assert_eq!(pairs[0], ("hits", ObsValue::U64(3)));
        assert_eq!(s.observed_value("lookups"), Some(ObsValue::U64(4)));
        match s.observed_value("hit_rate") {
            Some(ObsValue::F64(r)) => assert!((r - 0.75).abs() < 1e-12),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn funnel_math() {
        let stage = FunnelStage {
            step: "s".into(),
            input: 10,
            output: 4,
            detail: String::new(),
        };
        assert!((stage.pruned_frac() - 0.6).abs() < 1e-12);
        let empty = FunnelStage {
            step: "s".into(),
            input: 0,
            output: 0,
            detail: String::new(),
        };
        assert_eq!(empty.pruned_frac(), 0.0);
    }

    #[test]
    fn report_renders_and_serializes() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(true);
        crate::reset();
        {
            let _a = crate::span!("report_test.outer");
            let _b = crate::span!("report_test.outer.inner");
            crate::metrics::counter_add("report_test.count", 7);
            crate::metrics::histogram_record("report_test.hist", 9);
        }
        let mut report = Report::capture();
        crate::set_enabled(false);
        report.set_funnel(vec![FunnelStage {
            step: "step1".into(),
            input: 100,
            output: 25,
            detail: "candidates".into(),
        }]);
        report.add_section("cache", &CacheStats { hits: 1, misses: 1 });

        let text = report.render();
        assert!(text.contains("outer"));
        assert!(text.contains("inner"));
        assert!(text.contains("report_test.count = 7"));
        assert!(text.contains("75.0% pruned"));
        assert!(text.contains("hit_rate"));

        let json = report.to_json();
        assert!(json.starts_with("{\"schema\":\"tgm_obs_report/v1\""));
        assert!(json.contains("\"report_test.outer.inner\""));
        assert!(json.contains("\"report_test.count\":7"));
        assert!(json.contains("\"step\":\"step1\",\"in\":100,\"out\":25"));
        crate::reset();
    }

    #[test]
    fn json_escaping() {
        let mut out = String::new();
        json_str("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nan_serializes_as_null() {
        let mut out = String::new();
        ObsValue::F64(f64::NAN).write_json(&mut out);
        assert_eq!(out, "null");
    }
}

//! Flight recorder: a fixed-capacity ring of recent structured events.
//!
//! Every [`ObsScope`](crate::scope::ObsScope) built with
//! [`with_recorder`](crate::scope::ObsScope::with_recorder) keeps the last
//! N structured events — span enter/exit, counter deltas, histogram
//! samples, eviction passes, limit verdicts — in a ring buffer. When a
//! `*_bounded` entry point returns a non-`Ok` verdict or a worker panic
//! is contained, the ring is dumped into a [`FlightDump`] retrievable via
//! [`ObsScope::take_dump`](crate::scope::ObsScope::take_dump), so every
//! `Interrupt` ships with its last-N-events context.
//!
//! Writers reserve a slot with one lock-free atomic `fetch_add` on the
//! ring cursor; publishing the event into the reserved slot takes an
//! uncontended per-slot `parking_lot` mutex (the crate forbids `unsafe`,
//! so slots are not raw cells). Concurrent writers therefore never
//! serialize on a shared lock — they only collide when the ring laps
//! itself onto the same slot, where "loser overwrites" is exactly the
//! ring semantics. Dumps walk the slots read-only and order by sequence
//! number.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One structured flight-recorder event. All payloads are `'static`
/// names plus integers, so recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecEvent {
    /// A timing span started.
    SpanEnter(&'static str),
    /// A timing span completed.
    SpanExit {
        /// Span name.
        name: &'static str,
        /// Elapsed nanoseconds.
        ns: u64,
    },
    /// A counter was incremented.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
    },
    /// A histogram recorded one sample.
    Sample {
        /// Histogram name.
        name: &'static str,
        /// The sample.
        value: u64,
    },
    /// A locally accumulated histogram was merged in.
    Merge {
        /// Histogram name.
        name: &'static str,
        /// Samples in the merged batch.
        count: u64,
    },
    /// A session eviction pass ran.
    Eviction {
        /// Frontier rows before the pass.
        before: u64,
        /// Frontier rows after it.
        after: u64,
    },
    /// A limits check produced a non-`Ok` verdict.
    Verdict {
        /// The observing call site (e.g. `"limits.check"`).
        site: &'static str,
        /// The interrupt class (`"deadline"`, `"budget"`, `"cancelled"`).
        interrupt: &'static str,
    },
    /// A worker panic was contained.
    WorkerPanic {
        /// The containment site (e.g. `"pipeline.step5.worker"`).
        site: &'static str,
    },
    /// A thread's span buffer was force-flushed from a panic containment
    /// site (the spans themselves land in the scope's aggregates; this
    /// event is the `panicked=true` tag).
    PanickedFlush {
        /// The containment site.
        site: &'static str,
    },
}

impl RecEvent {
    /// One-line human rendering, used by [`FlightDump::render`].
    pub fn describe(&self) -> String {
        match self {
            RecEvent::SpanEnter(name) => format!("span+ {name}"),
            RecEvent::SpanExit { name, ns } => format!("span- {name} ({ns} ns)"),
            RecEvent::Counter { name, delta } => format!("count {name} +{delta}"),
            RecEvent::Sample { name, value } => format!("hist  {name} <- {value}"),
            RecEvent::Merge { name, count } => format!("hist  {name} <- batch of {count}"),
            RecEvent::Eviction { before, after } => {
                format!("evict frontier {before} -> {after}")
            }
            RecEvent::Verdict { site, interrupt } => {
                format!("limit {interrupt} at {site}")
            }
            RecEvent::WorkerPanic { site } => format!("panic contained at {site}"),
            RecEvent::PanickedFlush { site } => {
                format!("spans flushed panicked=true at {site}")
            }
        }
    }
}

struct Slot {
    /// Sequence number + 1 of the event held (0 = never written).
    seq: AtomicU64,
    ev: Mutex<Option<RecEvent>>,
}

/// The ring buffer behind a scope's flight recorder (see the module
/// docs for the write protocol).
pub struct Recorder {
    slots: Box<[Slot]>,
    /// Next sequence number to reserve.
    cursor: AtomicU64,
    /// Total dumps triggered.
    dumps: AtomicU64,
    last_dump: Mutex<Option<FlightDump>>,
}

impl Recorder {
    /// A ring holding the most recent `capacity` events (rounded up to a
    /// power of two, minimum 8 — power-of-two capacity keeps the slot
    /// index a mask instead of a division).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                ev: Mutex::new(None),
            })
            .collect();
        Recorder {
            slots,
            cursor: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
            last_dump: Mutex::new(None),
        }
    }

    /// Slot capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends one event, overwriting the oldest when full.
    pub fn record(&self, ev: RecEvent) {
        let n = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n as usize) & (self.slots.len() - 1)];
        *slot.ev.lock() = Some(ev);
        slot.seq.store(n + 1, Ordering::Release);
    }

    /// Dumps the ring's current contents (oldest first) into the
    /// last-dump slot, tagged with `reason`; returns the event count.
    pub fn dump(&self, reason: &'static str) -> usize {
        let mut events: Vec<(u64, RecEvent)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            if let Some(ev) = *slot.ev.lock() {
                events.push((seq - 1, ev));
            }
        }
        events.sort_unstable_by_key(|(seq, _)| *seq);
        let len = events.len();
        *self.last_dump.lock() = Some(FlightDump { reason, events });
        self.dumps.fetch_add(1, Ordering::Relaxed);
        len
    }

    /// Takes the most recent dump, leaving `None` behind.
    pub fn take_dump(&self) -> Option<FlightDump> {
        self.last_dump.lock().take()
    }

    /// Total dumps triggered since construction (or the last clear).
    pub fn dump_count(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Clears the ring, the pending dump, and the dump counter.
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Relaxed);
            *slot.ev.lock() = None;
        }
        self.cursor.store(0, Ordering::Relaxed);
        self.dumps.store(0, Ordering::Relaxed);
        *self.last_dump.lock() = None;
    }
}

/// A captured ring: the last-N events (oldest first) with the trigger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightDump {
    /// Why the dump was triggered (e.g. `"interrupt:deadline"`).
    pub reason: &'static str,
    /// `(sequence, event)` pairs, ordered oldest first.
    pub events: Vec<(u64, RecEvent)>,
}

impl FlightDump {
    /// Human-readable rendering, one event per line.
    pub fn render(&self) -> String {
        let mut out = format!(
            "flight recorder dump ({}, {} events):\n",
            self.reason,
            self.events.len()
        );
        for (seq, ev) in &self.events {
            out.push_str(&format!("  #{seq:<8} {}\n", ev.describe()));
        }
        out
    }
}

/// Appends one event to the **current** scope's recorder, if it has one
/// (no-op while observability is disabled) — the hook instrumented code
/// calls without holding a scope handle.
pub fn record(ev: RecEvent) {
    if !crate::enabled() {
        return;
    }
    crate::scope::with_current_inner(|inner| {
        if let Some(r) = inner.recorder() {
            r.record(ev);
        }
    });
}

/// Records a limit verdict and dumps the current scope's ring: the
/// automatic "every `Interrupt` ships with context" trigger. `interrupt`
/// should be a short class name (`"deadline"`, `"budget"`, `"cancelled"`).
pub fn interrupt(site: &'static str, interrupt: &'static str) {
    if !crate::enabled() {
        return;
    }
    crate::scope::with_current_inner(|inner| {
        if let Some(r) = inner.recorder() {
            r.record(RecEvent::Verdict { site, interrupt });
            r.dump("interrupt");
        }
    });
}

/// Records a contained worker panic and dumps the current scope's ring.
pub fn worker_panic(site: &'static str) {
    if !crate::enabled() {
        return;
    }
    crate::scope::with_current_inner(|inner| {
        if let Some(r) = inner.recorder() {
            r.record(RecEvent::WorkerPanic { site });
            r.dump("worker_panic");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let r = Recorder::new(8);
        assert_eq!(r.capacity(), 8);
        for i in 0..20u64 {
            r.record(RecEvent::Counter {
                name: "c",
                delta: i,
            });
        }
        assert_eq!(r.dump("test"), 8);
        let d = r.take_dump().expect("dump stored");
        assert_eq!(d.reason, "test");
        assert_eq!(d.events.len(), 8);
        // Oldest-first ordering and exactly the last 8 writes (12..20).
        let deltas: Vec<u64> = d
            .events
            .iter()
            .map(|(_, e)| match e {
                RecEvent::Counter { delta, .. } => *delta,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(deltas, (12..20).collect::<Vec<_>>());
        assert!(r.take_dump().is_none(), "take drains");
        assert_eq!(r.dump_count(), 1);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Recorder::new(0).capacity(), 8);
        assert_eq!(Recorder::new(9).capacity(), 16);
        assert_eq!(Recorder::new(256).capacity(), 256);
    }

    #[test]
    fn concurrent_writers_never_lose_the_ring() {
        let r = Recorder::new(64);
        crossbeam::scope(|scope| {
            for w in 0..4u64 {
                let r = &r;
                scope.spawn(move |_| {
                    for i in 0..1000 {
                        r.record(RecEvent::Counter {
                            name: "w",
                            delta: w * 10_000 + i,
                        });
                    }
                });
            }
        })
        .expect("crossbeam scope");
        let n = r.dump("test");
        assert_eq!(n, 64, "a full ring dumps exactly its capacity");
        let d = r.take_dump().unwrap();
        // Sequence numbers are strictly increasing after the sort.
        for pair in d.events.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }
}

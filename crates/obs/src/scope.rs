//! Scoped metric domains.
//!
//! An [`ObsScope`] is an isolated observability registry — its own
//! counter/histogram shards, span aggregates, and (optionally) a
//! [`Recorder`](crate::recorder::Recorder) flight ring. Sessions, pipeline
//! runs, and tenants each get a scope whose [`Snapshot`] can be captured,
//! diffed ([`Snapshot::delta`]) and merged (`+`) without the `reset()`
//! races a single process-wide registry forces.
//!
//! The pre-existing global API ([`crate::metrics::counter_add`],
//! [`crate::span!`], [`crate::metrics::snapshot`], …) routes through the
//! **current** scope: the top of a thread-local scope stack maintained by
//! [`ObsScope::enter`], falling back to the process-wide **default scope**
//! when no scope is entered. Existing call sites therefore keep compiling
//! and keep their semantics — code that never enters a scope observes
//! exactly the old single-registry behavior.
//!
//! Emission is still gated on the process-wide [`crate::set_enabled`]
//! toggle, scoped or not: a scope isolates *where* data lands, not
//! *whether* instrumentation runs.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::metrics::{Histogram, MetricsSnapshot, Shard, SHARDS};
use crate::recorder::{FlightDump, RecEvent, Recorder};
use crate::span::{SpanSnapshot, SpanStats};

/// An isolated observability domain: cheap to clone (an [`Arc`] handle),
/// thread-safe, and independent of every other scope.
///
/// ```
/// use tgm_obs::scope::ObsScope;
/// tgm_obs::set_enabled(true);
/// let tenant = ObsScope::new();
/// {
///     let _g = tenant.enter();
///     tgm_obs::metrics::counter_add("demo.scoped", 7);
/// }
/// assert_eq!(tenant.snapshot().metrics.counter("demo.scoped"), 7);
/// // The default scope saw nothing.
/// assert_eq!(tgm_obs::scope::default_scope().snapshot().metrics.counter("demo.scoped"), 0);
/// tgm_obs::set_enabled(false);
/// ```
#[derive(Clone)]
pub struct ObsScope {
    inner: Arc<ScopeInner>,
}

impl std::fmt::Debug for ObsScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsScope")
            .field("recorder", &self.inner.recorder.is_some())
            .finish()
    }
}

impl Default for ObsScope {
    fn default() -> Self {
        Self::new()
    }
}

/// The registries one scope owns.
pub(crate) struct ScopeInner {
    /// Counter/histogram shards (same layout as the historical global
    /// registry; see [`crate::metrics`] for the sharding rationale).
    metrics: [Mutex<Shard>; SHARDS],
    /// Flushed span aggregates.
    spans: Mutex<Vec<(&'static str, SpanStats)>>,
    /// Optional flight recorder ring.
    recorder: Option<Recorder>,
}

impl ScopeInner {
    fn new(recorder: Option<Recorder>) -> Self {
        ScopeInner {
            metrics: [const { Mutex::new(Shard::new()) }; SHARDS],
            spans: Mutex::new(Vec::new()),
            recorder,
        }
    }

    pub(crate) fn counter_add(&self, name: &'static str, v: u64) {
        self.metrics[crate::metrics::shard_of(name)]
            .lock()
            .counter_add(name, v);
        if let Some(r) = &self.recorder {
            r.record(RecEvent::Counter { name, delta: v });
        }
    }

    pub(crate) fn histogram_record(&self, name: &'static str, v: u64) {
        self.metrics[crate::metrics::shard_of(name)]
            .lock()
            .histogram_record(name, v);
        if let Some(r) = &self.recorder {
            r.record(RecEvent::Sample { name, value: v });
        }
    }

    pub(crate) fn histogram_merge(&self, name: &'static str, local: &Histogram) {
        self.metrics[crate::metrics::shard_of(name)]
            .lock()
            .histogram_merge(name, local);
        if let Some(r) = &self.recorder {
            r.record(RecEvent::Merge {
                name,
                count: local.count(),
            });
        }
    }

    pub(crate) fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.metrics {
            shard.lock().accumulate_into(&mut snap);
        }
        snap
    }

    pub(crate) fn merge_spans(&self, agg: &mut Vec<(&'static str, SpanStats)>) {
        if agg.is_empty() {
            return;
        }
        let mut reg = self.spans.lock();
        for (name, s) in agg.drain(..) {
            if let Some((_, g)) = reg.iter_mut().find(|(n, _)| *n == name) {
                g.merge_from(s);
            } else {
                reg.push((name, s));
            }
        }
    }

    pub(crate) fn span_snapshot(&self) -> SpanSnapshot {
        let reg = self.spans.lock();
        SpanSnapshot {
            spans: reg.iter().map(|(n, s)| ((*n).to_string(), *s)).collect(),
        }
    }

    pub(crate) fn clear_metrics(&self) {
        for shard in &self.metrics {
            shard.lock().clear();
        }
    }

    pub(crate) fn clear_spans(&self) {
        self.spans.lock().clear();
    }

    pub(crate) fn reset(&self) {
        self.clear_metrics();
        self.clear_spans();
        if let Some(r) = &self.recorder {
            r.clear();
        }
    }

    pub(crate) fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }
}

impl ObsScope {
    /// A fresh, empty scope without a flight recorder.
    pub fn new() -> Self {
        ObsScope {
            inner: Arc::new(ScopeInner::new(None)),
        }
    }

    /// A fresh scope with a flight-recorder ring holding the most recent
    /// `capacity` structured events (rounded up to a power of two, minimum
    /// 8). See [`crate::recorder`].
    pub fn with_recorder(capacity: usize) -> Self {
        ObsScope {
            inner: Arc::new(ScopeInner::new(Some(Recorder::new(capacity)))),
        }
    }

    /// Makes this scope the calling thread's current scope until the
    /// returned guard drops (scopes nest; the previous scope is restored).
    ///
    /// The thread's pending span buffer is flushed on entry and on exit,
    /// so spans recorded under one scope never bleed into another.
    pub fn enter(&self) -> ScopeGuard {
        crate::span::flush_current_thread();
        let _ = CURRENT.try_with(|c| c.borrow_mut().push(self.clone()));
        ScopeGuard { _priv: () }
    }

    /// Adds `v` to the named counter in this scope (no-op while
    /// observability is disabled).
    pub fn counter_add(&self, name: &'static str, v: u64) {
        if !crate::enabled() || v == 0 {
            return;
        }
        self.inner.counter_add(name, v);
    }

    /// Records one histogram sample in this scope (no-op while disabled).
    pub fn histogram_record(&self, name: &'static str, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.inner.histogram_record(name, v);
    }

    /// Merges a locally accumulated histogram into this scope in one lock
    /// acquisition (no-op while disabled).
    pub fn histogram_merge(&self, name: &'static str, local: &Histogram) {
        if !crate::enabled() || local.count() == 0 {
            return;
        }
        self.inner.histogram_merge(name, local);
    }

    /// Appends one structured event to this scope's flight ring, if it
    /// has one (no-op while disabled).
    pub fn record(&self, ev: RecEvent) {
        if !crate::enabled() {
            return;
        }
        if let Some(r) = self.inner.recorder() {
            r.record(ev);
        }
    }

    /// Captures this scope's counters, histograms and span aggregates.
    ///
    /// The calling thread's pending span buffer is flushed to its
    /// *current* scope first, so a thread snapshotting the scope it is
    /// inside sees its own just-completed spans.
    pub fn snapshot(&self) -> Snapshot {
        crate::span::flush_current_thread();
        Snapshot {
            metrics: self.inner.metrics_snapshot(),
            spans: self.inner.span_snapshot(),
        }
    }

    /// Clears this scope's registries (and flight ring); other scopes are
    /// untouched — the races of a process-wide `reset()` don't exist here.
    pub fn reset(&self) {
        self.inner.reset();
    }

    /// Takes the most recent flight-recorder dump, if one was triggered
    /// (see [`crate::recorder`]); `None` when the scope has no recorder
    /// or nothing was dumped since the last take.
    pub fn take_dump(&self) -> Option<FlightDump> {
        self.inner.recorder().and_then(Recorder::take_dump)
    }

    /// Whether this scope carries a flight recorder.
    pub fn has_recorder(&self) -> bool {
        self.inner.recorder.is_some()
    }

    /// Whether two handles refer to the same scope.
    pub fn same_as(&self, other: &ObsScope) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    pub(crate) fn inner(&self) -> &ScopeInner {
        &self.inner
    }
}

/// RAII guard of [`ObsScope::enter`]; restores the previous current scope
/// on drop.
#[must_use = "dropping the guard immediately exits the scope"]
pub struct ScopeGuard {
    _priv: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        // Flush while the entered scope is still current, so its spans
        // land in it, then pop. TLS may be gone during thread teardown;
        // losing the pop there is harmless (the stack dies with it).
        crate::span::flush_current_thread();
        let _ = CURRENT.try_with(|c| {
            c.borrow_mut().pop();
        });
    }
}

thread_local! {
    /// The calling thread's scope stack; the top is the current scope.
    static CURRENT: RefCell<Vec<ObsScope>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide default scope — the registry behind the historical
/// global API whenever no scope is entered.
pub fn default_scope() -> &'static ObsScope {
    static DEFAULT: OnceLock<ObsScope> = OnceLock::new();
    DEFAULT.get_or_init(ObsScope::new)
}

/// A clone of the calling thread's current scope (the default scope when
/// none is entered) — capture this before spawning workers and
/// [`enter`](ObsScope::enter) it inside them, so worker emissions land in
/// the spawning scope instead of each worker thread's default.
pub fn current() -> ObsScope {
    CURRENT
        .try_with(|c| c.borrow().last().cloned())
        .ok()
        .flatten()
        .unwrap_or_else(|| default_scope().clone())
}

/// Runs `f` against the current scope's registries without cloning the
/// handle — the hot path under the global emission API.
pub(crate) fn with_current_inner<R>(f: impl FnOnce(&ScopeInner) -> R) -> R {
    let done = CURRENT.try_with(|c| {
        let stack = c.borrow();
        stack.last().map(|s| s.inner.clone())
    });
    match done {
        // During thread teardown (TLS destroyed) fall back to the default
        // scope rather than dropping the emission.
        Ok(Some(inner)) => f(&inner),
        _ => f(default_scope().inner()),
    }
}

/// A point-in-time copy of one scope's metrics and span aggregates —
/// capturable, diffable ([`delta`](Snapshot::delta)) and mergeable (`+`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counters and histograms.
    pub metrics: MetricsSnapshot,
    /// Span aggregates.
    pub spans: SpanSnapshot,
}

impl Snapshot {
    /// The change from `prev` (an earlier snapshot of the same scope) to
    /// `self`: per-counter and per-bucket saturating differences, with
    /// all-zero entries dropped.
    ///
    /// For snapshots of a monotonically growing scope (no intervening
    /// [`ObsScope::reset`]) the operation is associative —
    /// `c.delta(&a) == b.delta(&a) + c.delta(&b)` — which the workspace
    /// proptests pin. Span `max_ns` is a high-water mark, not a rate: the
    /// delta keeps the later snapshot's value.
    pub fn delta(&self, prev: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (name, &v) in &self.metrics.counters {
            let d = v.saturating_sub(prev.metrics.counter(name));
            if d > 0 {
                out.metrics.counters.insert(name.clone(), d);
            }
        }
        for (name, h) in &self.metrics.histograms {
            let d = match prev.metrics.histogram(name) {
                Some(p) => h.bucket_delta(p),
                None => h.clone(),
            };
            if d.count() > 0 {
                out.metrics.histograms.insert(name.clone(), d);
            }
        }
        for (name, s) in &self.spans.spans {
            let p = prev.spans.get(name).unwrap_or_default();
            let d = SpanStats {
                count: s.count.saturating_sub(p.count),
                total_ns: s.total_ns.saturating_sub(p.total_ns),
                max_ns: s.max_ns,
            };
            if d.count > 0 || d.total_ns > 0 {
                out.spans.spans.insert(name.clone(), d);
            }
        }
        out
    }
}

impl std::ops::Add for Snapshot {
    type Output = Snapshot;
    fn add(self, rhs: Snapshot) -> Snapshot {
        Snapshot {
            metrics: self.metrics + rhs.metrics,
            spans: self.spans + rhs.spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::TEST_LOCK;

    #[test]
    fn scopes_isolate_and_nest() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(true);
        crate::reset();
        let a = ObsScope::new();
        let b = ObsScope::new();
        {
            let _ga = a.enter();
            crate::metrics::counter_add("test.scope", 1);
            {
                let _gb = b.enter();
                crate::metrics::counter_add("test.scope", 10);
            }
            // Back in `a` after the inner guard dropped.
            crate::metrics::counter_add("test.scope", 2);
        }
        crate::metrics::counter_add("test.scope", 100); // default scope
        let snap_default = crate::metrics::snapshot();
        crate::set_enabled(false);
        assert_eq!(a.snapshot().metrics.counter("test.scope"), 3);
        assert_eq!(b.snapshot().metrics.counter("test.scope"), 10);
        assert_eq!(snap_default.counter("test.scope"), 100);
        crate::reset();
    }

    #[test]
    fn span_buffers_do_not_bleed_across_scopes() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(true);
        crate::reset();
        let a = ObsScope::new();
        let b = ObsScope::new();
        {
            // An outer span keeps the thread's stack depth above zero, so
            // nothing flushes on its own while we switch scopes.
            let _ga = a.enter();
            let _outer = crate::span!("test.bleed.outer");
            {
                let _inner = crate::span!("test.bleed.a");
            }
            {
                // Entering `b` flushes the pending `test.bleed.a` into `a`
                // even though the outer span is still live.
                let _gb = b.enter();
                let _inner = crate::span!("test.bleed.b");
            }
        }
        crate::set_enabled(false);
        let sa = a.snapshot();
        let sb = b.snapshot();
        assert!(sa.spans.get("test.bleed.a").is_some(), "a lost its span");
        assert!(sa.spans.get("test.bleed.b").is_none(), "b's span bled into a");
        assert!(sb.spans.get("test.bleed.b").is_some(), "b lost its span");
        assert!(sb.spans.get("test.bleed.a").is_none(), "a's span bled into b");
        crate::reset();
    }

    #[test]
    fn delta_subtracts_and_drops_zeros() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(true);
        let s = ObsScope::new();
        s.counter_add("c", 5);
        s.histogram_record("h", 4);
        let a = s.snapshot();
        s.counter_add("c", 2);
        s.counter_add("d", 1);
        s.histogram_record("h", 4);
        s.histogram_record("h", 1024);
        let b = s.snapshot();
        crate::set_enabled(false);
        let d = b.delta(&a);
        assert_eq!(d.metrics.counter("c"), 2);
        assert_eq!(d.metrics.counter("d"), 1);
        let h = d.metrics.histogram("h").expect("h grew");
        assert_eq!(h.count(), 2);
        // Unchanged entries disappear from the delta entirely.
        let none = b.delta(&b);
        assert!(none.metrics.counters.is_empty());
        assert!(none.metrics.histograms.is_empty());
        assert!(none.spans.spans.is_empty());
    }

    #[test]
    fn disabled_scope_emission_is_a_noop() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(false);
        let s = ObsScope::with_recorder(8);
        s.counter_add("test.off", 5);
        s.histogram_record("test.off_h", 5);
        s.record(RecEvent::Counter {
            name: "test.off",
            delta: 1,
        });
        let snap = s.snapshot();
        assert_eq!(snap.metrics.counter("test.off"), 0);
        assert!(snap.metrics.histogram("test.off_h").is_none());
    }
}

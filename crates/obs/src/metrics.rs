//! Named counters and base-2 log-scale histograms.
//!
//! Metric storage is sharded by name hash across a fixed set of
//! `parking_lot` mutexes, so concurrent sweep workers emitting different
//! metrics rarely contend. Each shard holds flat name-keyed vectors (the
//! workspace uses a few dozen metric names; a linear probe beats hashing
//! and `Vec::new` is `const`).
//!
//! Since the scoped-domain redesign every [`ObsScope`] owns its own shard
//! set; the free functions here route to the calling thread's *current*
//! scope (the process-wide default scope when none is entered), so the
//! historical global API keeps its exact semantics for code that never
//! enters a scope. See [`crate::scope`].
//!
//! [`ObsScope`]: crate::scope::ObsScope
//!
//! Hot loops should not emit per element: accumulate into a local
//! [`Histogram`] (or plain integer) during the run and publish once at
//! the end via [`histogram_merge`] / [`counter_add`] — the matcher's
//! frontier-size histogram works this way.

use std::collections::BTreeMap;

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `2^63..=u64::MAX`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 holds exactly 0, bucket `i >= 1` holds
/// `2^(i-1) ..= 2^i - 1`, and bucket 64 holds `2^63 ..= u64::MAX`.
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i` (see [`bucket_of`]).
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A base-2 log-scale histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Sample counts per bucket (see [`bucket_of`] for the bucket map).
    pub buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram; `const` so locals cost nothing to set up.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Lower bound of the bucket containing the `q`-quantile sample
    /// (`0.0 ..= 1.0`), or `None` when empty. Log-scale buckets make this
    /// a resolution-of-2x estimate, which is all the funnel reports need.
    ///
    /// # Lower-bound semantics and edge cases
    ///
    /// The returned value is the **inclusive lower bound** of the bucket
    /// the ranked sample fell into ([`bucket_lo`]), never the sample
    /// itself: the true sample lies in `[lo, 2·lo)` (or
    /// `[2^63, u64::MAX]` for the top bucket). In particular, a histogram
    /// whose samples all saturated into the top bucket answers
    /// `Some(2^63)` for *every* quantile — including `q = 0.0` — because
    /// bucket resolution is exhausted there.
    ///
    /// * An empty histogram returns `None` for every `q`.
    /// * `q` outside `[0, 1]` is clamped; a NaN `q` behaves like `0.0`
    ///   (the first non-empty bucket).
    /// * `q = 0.0` ranks the smallest sample (rank is floored at 1), so
    ///   it equals the first non-empty bucket's lower bound.
    pub fn quantile_lo(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * n as f64).ceil() as u64).max(1).min(n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_lo(i));
            }
        }
        // Unreachable when the bucket counts are consistent (rank <= n);
        // kept as a safe answer rather than a panic.
        Some(bucket_lo(BUCKETS - 1))
    }

    /// Lower bound of the highest non-empty bucket, or `None` when empty.
    ///
    /// Like [`quantile_lo`](Self::quantile_lo) this is a **bucket lower
    /// bound**, not the maximum sample: a histogram holding one
    /// `u64::MAX` sample answers `Some(2^63)` (the top bucket's lower
    /// bound), the tightest answer 2x-resolution buckets can give.
    pub fn max_lo(&self) -> Option<u64> {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_lo)
    }

    /// Per-bucket saturating difference `self - earlier`: the samples
    /// recorded between two cumulative captures of the same histogram.
    /// The building block of [`Snapshot::delta`](crate::scope::Snapshot).
    pub fn bucket_delta(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (o, (a, b)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(earlier.buckets.iter()))
        {
            *o = a.saturating_sub(*b);
        }
        out
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut m = f.debug_map();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                m.entry(&bucket_lo(i), &c);
            }
        }
        m.finish()
    }
}

impl std::ops::Add for Histogram {
    type Output = Histogram;
    fn add(mut self, rhs: Histogram) -> Histogram {
        self.merge(&rhs);
        self
    }
}

/// One lock's worth of a scope's metric registry (see the module docs
/// for the sharding rationale).
pub(crate) struct Shard {
    counters: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl Shard {
    pub(crate) const fn new() -> Self {
        Shard {
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    pub(crate) fn counter_add(&mut self, name: &'static str, v: u64) {
        if let Some((_, c)) = self.counters.iter_mut().find(|(n, _)| *n == name) {
            *c += v;
        } else {
            self.counters.push((name, v));
        }
    }

    pub(crate) fn histogram_record(&mut self, name: &'static str, v: u64) {
        if let Some((_, h)) = self.histograms.iter_mut().find(|(n, _)| *n == name) {
            h.record(v);
        } else {
            let mut h = Histogram::new();
            h.record(v);
            self.histograms.push((name, h));
        }
    }

    pub(crate) fn histogram_merge(&mut self, name: &'static str, local: &Histogram) {
        if let Some((_, h)) = self.histograms.iter_mut().find(|(n, _)| *n == name) {
            h.merge(local);
        } else {
            self.histograms.push((name, local.clone()));
        }
    }

    pub(crate) fn accumulate_into(&self, snap: &mut MetricsSnapshot) {
        for (n, v) in &self.counters {
            *snap.counters.entry((*n).to_string()).or_insert(0) += v;
        }
        for (n, h) in &self.histograms {
            snap.histograms
                .entry((*n).to_string())
                .or_default()
                .merge(h);
        }
    }

    pub(crate) fn clear(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }
}

pub(crate) const SHARDS: usize = 16;

/// FNV-1a over the name bytes, reduced to a shard index. Names are short
/// `'static` literals, so this is a handful of cycles.
pub(crate) fn shard_of(name: &str) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    (h as usize) % SHARDS
}

/// Adds `v` to the current scope's named counter (no-op while
/// observability is disabled).
pub fn counter_add(name: &'static str, v: u64) {
    if !crate::enabled() || v == 0 {
        return;
    }
    crate::scope::with_current_inner(|inner| inner.counter_add(name, v));
}

/// Records one sample into the current scope's named histogram (no-op
/// while disabled).
pub fn histogram_record(name: &'static str, v: u64) {
    if !crate::enabled() {
        return;
    }
    crate::scope::with_current_inner(|inner| inner.histogram_record(name, v));
}

/// Merges a locally accumulated histogram into the current scope's named
/// one in a single lock acquisition — the batch path for hot loops
/// (no-op while disabled).
pub fn histogram_merge(name: &'static str, local: &Histogram) {
    if !crate::enabled() || local.count() == 0 {
        return;
    }
    crate::scope::with_current_inner(|inner| inner.histogram_merge(name, local));
}

/// A point-in-time copy of every counter and histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counters keyed by name, sorted for stable rendering.
    pub counters: BTreeMap<String, u64>,
    /// Histograms keyed by name, sorted for stable rendering.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// The named counter's value (0 when never emitted).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

impl std::ops::Add for MetricsSnapshot {
    type Output = MetricsSnapshot;
    fn add(mut self, rhs: MetricsSnapshot) -> MetricsSnapshot {
        for (name, v) in rhs.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in rhs.histograms {
            self.histograms.entry(name).or_default().merge(&h);
        }
        self
    }
}

/// Captures every counter and histogram of the current scope (the
/// default scope when none is entered).
pub fn snapshot() -> MetricsSnapshot {
    crate::scope::with_current_inner(|inner| inner.metrics_snapshot())
}

/// Clears every counter and histogram of the current scope.
pub fn reset() {
    crate::scope::with_current_inner(|inner| inner.clear_metrics());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::TEST_LOCK;

    #[test]
    fn bucket_edges() {
        // The satellite-mandated edge cases: 0, 1, u64::MAX.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Power-of-two boundaries land in the bucket they open.
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1 << 63), 64);
        assert_eq!(bucket_of((1 << 63) - 1), 63);
        // bucket_lo inverts bucket_of at bucket starts.
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_lo(i)), i);
        }
        assert_eq!(bucket_lo(64), 1 << 63);
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[64], 1);
        assert_eq!(h.max_lo(), Some(1 << 63));
        assert_eq!(h.quantile_lo(0.0), Some(0));
        assert_eq!(h.quantile_lo(0.5), Some(1));
        assert_eq!(h.quantile_lo(1.0), Some(1 << 63));
        assert_eq!(Histogram::new().quantile_lo(0.5), None);
        assert_eq!(Histogram::new().max_lo(), None);
    }

    #[test]
    fn quantile_and_max_edge_cases_are_pinned() {
        // Empty histogram: every summary answers None, for any q.
        let empty = Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(empty.quantile_lo(q), None);
        }
        assert_eq!(empty.max_lo(), None);

        // Single sample saturated into the top bucket: every quantile —
        // including q=0 — answers the top bucket's *lower bound* 2^63,
        // never the sample itself (lower-bound semantics).
        let mut top = Histogram::new();
        top.record(u64::MAX);
        for q in [0.0, 0.25, 1.0] {
            assert_eq!(top.quantile_lo(q), Some(1u64 << 63));
        }
        assert_eq!(top.max_lo(), Some(1u64 << 63));

        // Out-of-range and NaN q clamp instead of panicking or skewing:
        // q < 0 and NaN behave like 0.0, q > 1 like 1.0.
        let mut h = Histogram::new();
        h.record(1);
        h.record(1000);
        assert_eq!(h.quantile_lo(-3.0), h.quantile_lo(0.0));
        assert_eq!(h.quantile_lo(f64::NAN), h.quantile_lo(0.0));
        assert_eq!(h.quantile_lo(7.5), h.quantile_lo(1.0));
        assert_eq!(h.quantile_lo(0.0), Some(1));
        assert_eq!(h.quantile_lo(1.0), Some(512));
    }

    #[test]
    fn bucket_delta_subtracts_per_bucket() {
        let mut a = Histogram::new();
        a.record(4);
        a.record(4);
        a.record(100);
        let mut b = a.clone();
        b.record(4);
        b.record(1 << 40);
        let d = b.bucket_delta(&a);
        assert_eq!(d.count(), 2);
        assert_eq!(d.buckets[bucket_of(4)], 1);
        assert_eq!(d.buckets[bucket_of(1 << 40)], 1);
        assert_eq!(d.buckets[bucket_of(100)], 0);
        // Saturating: an (impossible) shrink clamps to zero, not wraps.
        let z = a.bucket_delta(&b);
        assert_eq!(z.count(), 0);
    }

    #[test]
    fn concurrent_counters_accumulate_exactly() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(true);
        reset();
        const WORKERS: usize = 8;
        const PER_WORKER: u64 = 1000;
        crossbeam::scope(|scope| {
            for w in 0..WORKERS {
                scope.spawn(move |_| {
                    for _ in 0..PER_WORKER {
                        counter_add("test.concurrent", 1);
                        if w % 2 == 0 {
                            histogram_record("test.concurrent_hist", w as u64);
                        }
                    }
                });
            }
        })
        .expect("crossbeam scope");
        let snap = snapshot();
        crate::set_enabled(false);
        assert_eq!(snap.counter("test.concurrent"), WORKERS as u64 * PER_WORKER);
        assert_eq!(
            snap.histogram("test.concurrent_hist").unwrap().count(),
            (WORKERS as u64 / 2) * PER_WORKER
        );
        reset();
    }

    #[test]
    fn disabled_metrics_are_noops() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(false);
        reset();
        counter_add("test.off", 5);
        histogram_record("test.off_h", 5);
        histogram_merge("test.off_h", &{
            let mut h = Histogram::new();
            h.record(1);
            h
        });
        let snap = snapshot();
        assert_eq!(snap.counter("test.off"), 0);
        assert!(snap.histogram("test.off_h").is_none());
    }

    #[test]
    fn snapshots_add() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("c".into(), 2);
        let mut ha = Histogram::new();
        ha.record(4);
        a.histograms.insert("h".into(), ha);
        let mut b = MetricsSnapshot::default();
        b.counters.insert("c".into(), 3);
        b.counters.insert("d".into(), 1);
        let mut hb = Histogram::new();
        hb.record(4);
        hb.record(1024);
        b.histograms.insert("h".into(), hb);
        let sum = a + b;
        assert_eq!(sum.counter("c"), 5);
        assert_eq!(sum.counter("d"), 1);
        let h = sum.histogram("h").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets[bucket_of(4)], 2);
    }

    #[test]
    fn batch_merge_matches_per_sample_recording() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(true);
        reset();
        let mut local = Histogram::new();
        for v in [0u64, 1, 7, 7, 1 << 20] {
            local.record(v);
            histogram_record("test.per_sample", v);
        }
        histogram_merge("test.batch", &local);
        let snap = snapshot();
        crate::set_enabled(false);
        assert_eq!(
            snap.histogram("test.per_sample"),
            snap.histogram("test.batch")
        );
        reset();
    }
}

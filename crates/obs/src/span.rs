//! Hierarchical timing spans with per-thread buffering.
//!
//! A [`span`] call returns an RAII [`SpanGuard`]; dropping it records the
//! elapsed monotonic time into a thread-local aggregate keyed by the span
//! name. The aggregate flushes into the current scope's registry (see
//! [`crate::scope`]) whenever the thread's span stack unwinds to depth
//! zero, when it grows past a small bound, when the thread enters or
//! exits a scope, or when the thread exits — so nested spans on a hot
//! path touch no shared state, and parallel sweep workers only contend
//! once per top-level unit of work.
//!
//! A `catch_unwind`-contained worker panic is the one unwind that can
//! strand a partial span tree (the containment keeps the thread alive
//! with its depth counter out of sync); containment sites call
//! [`flush_panicked`] to push the partial aggregates out, tagged
//! `panicked=true` via the `obs.spans.panicked_flushes` counter and a
//! flight-recorder event.
//!
//! Hierarchy is by naming convention: dot-separated components
//! (`"pipeline.step5.scan"`), rendered as a tree by
//! [`Report::render`](crate::Report::render).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

use crate::recorder::RecEvent;

/// Aggregate timing for one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans under this name.
    pub count: u64,
    /// Total elapsed nanoseconds across all of them.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    /// Total elapsed time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    /// Mean elapsed nanoseconds per span (0 when none completed).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    fn merge(&mut self, other: SpanStats) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Crate-internal merge hook for the scope registries.
    pub(crate) fn merge_from(&mut self, other: SpanStats) {
        self.merge(other);
    }
}

impl std::ops::Add for SpanStats {
    type Output = SpanStats;
    fn add(mut self, rhs: SpanStats) -> SpanStats {
        self.merge(rhs);
        self
    }
}

/// Flush the thread-local aggregate once it holds this many distinct
/// names, even if the span stack has not unwound — a backstop for
/// long-lived threads that never leave a top-level span.
const FLUSH_NAMES: usize = 64;

struct Local {
    /// Live (started, not yet dropped) spans on this thread.
    depth: usize,
    /// Completed-span aggregate awaiting a flush.
    agg: Vec<(&'static str, SpanStats)>,
}

impl Local {
    const fn new() -> Self {
        Local {
            depth: 0,
            agg: Vec::new(),
        }
    }

    fn record(&mut self, name: &'static str, ns: u64) {
        let one = SpanStats {
            count: 1,
            total_ns: ns,
            max_ns: ns,
        };
        if let Some((_, s)) = self.agg.iter_mut().find(|(n, _)| *n == name) {
            s.merge(one);
        } else {
            self.agg.push((name, one));
        }
        if self.depth == 0 || self.agg.len() >= FLUSH_NAMES {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.agg.is_empty() {
            return;
        }
        crate::scope::with_current_inner(|inner| inner.merge_spans(&mut self.agg));
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = const { RefCell::new(Local::new()) };
}

/// RAII guard for one timing span; records on drop.
///
/// A guard created while observability is disabled is inert: it holds no
/// clock and records nothing.
#[must_use = "a span measures the scope of its guard; dropping it immediately records ~0ns"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Starts a span under `name` if observability is enabled (see
/// [`crate::set_enabled`]); prefer the [`crate::span!`] macro.
pub fn span(name: &'static str) -> SpanGuard {
    span_if(true, name)
}

/// Starts a span only when `want` is also true — the per-call-site
/// [`ObsOptions::spans`](crate::ObsOptions) knob.
pub fn span_if(want: bool, name: &'static str) -> SpanGuard {
    if !want || !crate::enabled() {
        return SpanGuard { name, start: None };
    }
    LOCAL.with(|l| l.borrow_mut().depth += 1);
    crate::recorder::record(RecEvent::SpanEnter(name));
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        crate::recorder::record(RecEvent::SpanExit { name: self.name, ns });
        // A TLS access can fail during thread teardown; losing the span
        // is preferable to aborting the process from a destructor.
        let _ = LOCAL.try_with(|l| {
            let mut l = l.borrow_mut();
            l.depth = l.depth.saturating_sub(1);
            l.record(self.name, ns);
        });
    }
}

/// Flushes the calling thread's pending span aggregates into the current
/// scope, regardless of span-stack depth. [`ObsScope::enter`] and scope
/// exit call this so buffered spans land in the scope they ran under.
///
/// [`ObsScope::enter`]: crate::scope::ObsScope::enter
pub fn flush_current_thread() {
    let _ = LOCAL.try_with(|l| l.borrow_mut().flush());
}

/// Force-flushes the calling thread's span buffer after a
/// `catch_unwind`-contained panic, tagging the flush `panicked=true`:
/// the partial aggregates merge into the current scope as usual, the
/// `obs.spans.panicked_flushes` counter increments, and a
/// [`PanickedFlush`](crate::recorder::RecEvent::PanickedFlush) event
/// lands in the scope's flight ring (if it has one).
///
/// Call this from the containment site, on the thread that panicked —
/// containment keeps the worker thread alive with its span depth out of
/// sync, which would otherwise strand the partial span tree in the
/// thread-local buffer until thread exit (and, for pooled threads,
/// possibly misattribute it to a later scope).
pub fn flush_panicked(site: &'static str) {
    if !crate::enabled() {
        return;
    }
    let _ = LOCAL.try_with(|l| {
        let mut l = l.borrow_mut();
        // A guard leaked mid-unwind leaves the depth stranded above zero,
        // deferring every later flush; containment is the thread's top
        // frame, so zero is the known-good depth to re-arm at.
        l.depth = 0;
        l.flush();
    });
    crate::metrics::counter_add("obs.spans.panicked_flushes", 1);
    crate::recorder::record(RecEvent::PanickedFlush { site });
}

/// A point-in-time copy of every flushed span aggregate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Aggregates keyed by span name, sorted for stable rendering.
    pub spans: BTreeMap<String, SpanStats>,
}

impl SpanSnapshot {
    /// Stats for one span name, if any spans completed under it.
    pub fn get(&self, name: &str) -> Option<SpanStats> {
        self.spans.get(name).copied()
    }
}

impl std::ops::Add for SpanSnapshot {
    type Output = SpanSnapshot;
    fn add(mut self, rhs: SpanSnapshot) -> SpanSnapshot {
        for (name, s) in rhs.spans {
            self.spans.entry(name).or_default().merge(s);
        }
        self
    }
}

/// Captures the current scope's span aggregates (flushing this thread's
/// buffer first; other threads' buffers flush when their span stacks
/// unwind or when they leave the scope).
pub fn snapshot() -> SpanSnapshot {
    LOCAL.with(|l| l.borrow_mut().flush());
    crate::scope::with_current_inner(|inner| inner.span_snapshot())
}

/// Clears the current scope's span registry and this thread's pending
/// buffer.
pub fn reset() {
    LOCAL.with(|l| l.borrow_mut().agg.clear());
    crate::scope::with_current_inner(|inner| inner.clear_spans());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::TEST_LOCK;

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(false);
        reset();
        {
            let _s = crate::span!("test.disabled");
        }
        assert!(snapshot().spans.is_empty());
    }

    #[test]
    fn nested_spans_aggregate_by_name() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(true);
        reset();
        for _ in 0..3 {
            let _outer = crate::span!("test.outer");
            let _inner = crate::span!("test.outer.inner");
        }
        let snap = snapshot();
        crate::set_enabled(false);
        let outer = snap.get("test.outer").expect("outer recorded");
        let inner = snap.get("test.outer.inner").expect("inner recorded");
        assert_eq!(outer.count, 3);
        assert_eq!(inner.count, 3);
        assert!(outer.total_ns >= inner.total_ns, "outer encloses inner");
        assert!(outer.max_ns <= outer.total_ns);
        reset();
    }

    #[test]
    fn worker_thread_spans_flush_on_exit() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(true);
        reset();
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    let _s = crate::span!("test.worker");
                });
            }
        })
        .expect("crossbeam scope");
        let snap = snapshot();
        crate::set_enabled(false);
        assert_eq!(snap.get("test.worker").expect("flushed").count, 4);
        reset();
    }

    #[test]
    fn contained_panic_flush_is_tagged_and_preserves_partial_spans() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(true);
        reset();
        let scope = crate::scope::ObsScope::with_recorder(32);
        crossbeam::scope(|s| {
            let scope = &scope;
            s.spawn(move |_| {
                let _g = scope.enter();
                // A live outer span keeps depth > 0, so the inner span
                // recorded during the unwind stays buffered — exactly the
                // partial tree a containment site must not drop.
                let _outer = crate::span!("test.panic.outer");
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _inner = crate::span!("test.panic.inner");
                    panic!("injected");
                }));
                assert!(r.is_err());
                flush_panicked("test.containment");
            });
        })
        .expect("crossbeam scope");
        {
            // Trigger a dump to inspect the ring for the panicked tag.
            let _g = scope.enter();
            crate::recorder::interrupt("test.containment", "test");
        }
        crate::set_enabled(false);
        let snap = scope.snapshot();
        assert!(
            snap.spans.get("test.panic.inner").is_some(),
            "partial span tree was dropped"
        );
        assert_eq!(
            snap.metrics.counter("obs.spans.panicked_flushes"),
            1,
            "flush was not tagged panicked=true"
        );
        let dump = scope.take_dump().expect("dump triggered");
        assert!(
            dump.events.iter().any(|(_, e)| matches!(
                e,
                RecEvent::PanickedFlush {
                    site: "test.containment"
                }
            )),
            "flight ring lacks the PanickedFlush event: {dump:?}"
        );
        let _g = scope.enter();
        reset();
    }

    #[test]
    fn snapshots_add_like_cache_stats() {
        let a = SpanSnapshot {
            spans: [(
                "x".to_string(),
                SpanStats {
                    count: 1,
                    total_ns: 10,
                    max_ns: 10,
                },
            )]
            .into_iter()
            .collect(),
        };
        let b = SpanSnapshot {
            spans: [
                (
                    "x".to_string(),
                    SpanStats {
                        count: 2,
                        total_ns: 30,
                        max_ns: 25,
                    },
                ),
                (
                    "y".to_string(),
                    SpanStats {
                        count: 1,
                        total_ns: 5,
                        max_ns: 5,
                    },
                ),
            ]
            .into_iter()
            .collect(),
        };
        let sum = a + b;
        assert_eq!(
            sum.get("x").unwrap(),
            SpanStats {
                count: 3,
                total_ns: 40,
                max_ns: 25
            }
        );
        assert_eq!(sum.get("y").unwrap().count, 1);
    }
}

//! Streaming snapshot exporter.
//!
//! An [`Exporter`] turns a scope's cumulative registries into **periodic
//! delta frames**: each [`frame`](Exporter::frame) call captures a
//! [`Snapshot`], diffs it against the previous capture
//! ([`Snapshot::delta`]) and hands back a [`StreamFrame`] carrying the
//! delta, the cumulative totals, and any caller-set gauges. Frames render
//! to one-line NDJSON under the `tgm_obs_stream/v1` schema
//! ([`StreamFrame::to_ndjson`]) or to Prometheus/OpenMetrics text
//! ([`StreamFrame::to_openmetrics`]).
//!
//! The exporter is **pull-based and passive**: nothing runs between
//! `frame()` calls, so the cadence belongs to the caller — the `tgm
//! stream` CLI polls it on the `MatchSession` event-count cadence
//! (`--stats-every N`), a service façade would poll it per scrape.
//!
//! # `tgm_obs_stream/v1` frame shape
//!
//! ```json
//! {"schema":"tgm_obs_stream/v1","seq":3,
//!  "gauges":{"frontier":12,"events_per_sec":48211.0,"watermark_lag":5},
//!  "counters":{"tag.session.events":1000},
//!  "histograms":{"tag.session.frontier":{"count":1000,"buckets":[[8,400],[16,600]]}},
//!  "spans":{"session.push":{"count":4,"total_ns":91810}}}
//! ```
//!
//! `counters`, `histograms` and `spans` hold the **delta** since the
//! previous frame (all-zero entries omitted); `gauges` are instantaneous
//! values set by the caller for exactly this frame.

use crate::report::json_str;
use crate::scope::{ObsScope, Snapshot};

/// Polls one scope for periodic delta frames (see the module docs).
pub struct Exporter {
    scope: ObsScope,
    prev: Snapshot,
    seq: u64,
    labels: Vec<(String, String)>,
}

impl Exporter {
    /// An exporter over `scope`, starting from an empty baseline: the
    /// first [`frame`](Exporter::frame) reports everything the scope has
    /// accumulated so far.
    pub fn new(scope: ObsScope) -> Self {
        Exporter {
            scope,
            prev: Snapshot::default(),
            seq: 0,
            labels: Vec::new(),
        }
    }

    /// Attaches a label stamped onto every frame this exporter produces —
    /// the per-tenant wiring: a multi-tenant server polls one exporter per
    /// tenant scope with `with_label("tenant", name)`, and the rendered
    /// NDJSON/OpenMetrics samples stay distinguishable after aggregation.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }

    /// An exporter over the calling thread's current scope.
    pub fn for_current() -> Self {
        Self::new(crate::scope::current())
    }

    /// Captures the scope now and returns the frame since the previous
    /// capture. Frame sequence numbers start at 0 and increment per call.
    pub fn frame(&mut self) -> StreamFrame {
        let now = self.scope.snapshot();
        let delta = now.delta(&self.prev);
        let cumulative = now.clone();
        self.prev = now;
        let seq = self.seq;
        self.seq += 1;
        StreamFrame {
            seq,
            delta,
            cumulative,
            gauges: Vec::new(),
            labels: self.labels.clone(),
        }
    }

    /// The scope this exporter polls.
    pub fn scope(&self) -> &ObsScope {
        &self.scope
    }
}

/// One periodic frame: the delta since the previous frame, the cumulative
/// totals, and caller-set instantaneous gauges.
pub struct StreamFrame {
    /// 0-based frame sequence number.
    pub seq: u64,
    /// Counters/histograms/spans accumulated since the previous frame.
    pub delta: Snapshot,
    /// Cumulative totals at capture time (used by the OpenMetrics
    /// rendering, where counters are cumulative by convention).
    pub cumulative: Snapshot,
    gauges: Vec<(&'static str, f64)>,
    labels: Vec<(String, String)>,
}

impl StreamFrame {
    /// Sets (or overwrites) an instantaneous gauge on this frame — e.g.
    /// live frontier size, events/sec, the Theorem-4 watermark lag.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        if let Some((_, v)) = self.gauges.iter_mut().find(|(n, _)| *n == name) {
            *v = value;
        } else {
            self.gauges.push((name, value));
        }
    }

    /// The named gauge, if set on this frame.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Sets (or overwrites) a label on this frame (see
    /// [`Exporter::with_label`]).
    pub fn set_label(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        if let Some((_, v)) = self.labels.iter_mut().find(|(k, _)| *k == key) {
            *v = value.into();
        } else {
            self.labels.push((key, value.into()));
        }
    }

    /// The frame's label set.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// Renders the frame as one `tgm_obs_stream/v1` NDJSON line
    /// (newline-terminated).
    pub fn to_ndjson(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":\"tgm_obs_stream/v1\",\"seq\":");
        out.push_str(&self.seq.to_string());
        if !self.labels.is_empty() {
            out.push_str(",\"labels\":{");
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_str(k, &mut out);
                out.push(':');
                json_str(v, &mut out);
            }
            out.push('}');
        }
        out.push_str(",\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_str(name, &mut out);
            out.push(':');
            push_f64(*v, &mut out);
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.delta.metrics.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_str(name, &mut out);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.delta.metrics.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_str(name, &mut out);
            out.push_str(":{\"count\":");
            out.push_str(&h.count().to_string());
            out.push_str(",\"buckets\":[");
            let mut first = true;
            for (b, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("[{},{}]", crate::metrics::bucket_lo(b), c));
            }
            out.push_str("]}");
        }
        out.push_str("},\"spans\":{");
        for (i, (name, s)) in self.delta.spans.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_str(name, &mut out);
            out.push_str(&format!(
                ":{{\"count\":{},\"total_ns\":{}}}",
                s.count, s.total_ns
            ));
        }
        out.push_str("}}\n");
        out
    }

    /// Renders the frame as Prometheus/OpenMetrics text: gauges as
    /// `gauge` samples, cumulative counters as `counter` samples with the
    /// conventional `_total` suffix, and histogram/span deltas reduced to
    /// `_count` totals (log-scale buckets don't map onto `le` buckets
    /// without lying about upper bounds). Metric names are sanitized
    /// (`.` and `-` become `_`) and prefixed `tgm_`.
    pub fn to_openmetrics(&self) -> String {
        let labels = render_labels(&self.labels);
        let mut out = String::with_capacity(256);
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE tgm_{n} gauge\ntgm_{n}{labels} "));
            push_f64(*v, &mut out);
            out.push('\n');
        }
        for (name, v) in &self.cumulative.metrics.counters {
            let n = sanitize(name);
            out.push_str(&format!(
                "# TYPE tgm_{n} counter\ntgm_{n}_total{labels} {v}\n"
            ));
        }
        for (name, h) in &self.cumulative.metrics.histograms {
            let n = sanitize(name);
            out.push_str(&format!(
                "# TYPE tgm_{n}_count counter\ntgm_{n}_count_total{labels} {}\n",
                h.count()
            ));
        }
        for (name, s) in &self.cumulative.spans.spans {
            let n = sanitize(name);
            out.push_str(&format!(
                "# TYPE tgm_{n}_seconds counter\ntgm_{n}_seconds_total{labels} "
            ));
            push_f64(s.total_ns as f64 / 1e9, &mut out);
            out.push('\n');
        }
        out
    }
}

/// Renders a label set as `{k="v",…}` with OpenMetrics escaping (empty
/// string for no labels).
fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sanitize(k));
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Writes a finite float in a JSON-safe way (NaN/inf become 0).
fn push_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push('0');
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::TEST_LOCK;

    #[test]
    fn frames_carry_deltas_and_gauges() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(true);
        let scope = ObsScope::new();
        let mut ex = Exporter::new(scope.clone());
        scope.counter_add("x.events", 10);
        scope.histogram_record("x.sizes", 5);
        let f0 = ex.frame();
        assert_eq!(f0.seq, 0);
        assert_eq!(f0.delta.metrics.counter("x.events"), 10);
        scope.counter_add("x.events", 7);
        let mut f1 = ex.frame();
        crate::set_enabled(false);
        assert_eq!(f1.seq, 1);
        assert_eq!(f1.delta.metrics.counter("x.events"), 7, "delta, not total");
        assert_eq!(f1.cumulative.metrics.counter("x.events"), 17);
        assert!(f1.delta.metrics.histogram("x.sizes").is_none(), "unchanged");
        f1.set_gauge("frontier", 3.0);
        f1.set_gauge("frontier", 4.0);
        assert_eq!(f1.gauge("frontier"), Some(4.0));
    }

    #[test]
    fn ndjson_line_is_well_formed() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(true);
        let scope = ObsScope::new();
        scope.counter_add("a.b", 2);
        scope.histogram_record("h", 9);
        let mut ex = Exporter::new(scope);
        let mut f = ex.frame();
        crate::set_enabled(false);
        f.set_gauge("watermark_lag", 5.0);
        let line = f.to_ndjson();
        assert!(line.ends_with('\n'));
        assert!(line.starts_with("{\"schema\":\"tgm_obs_stream/v1\",\"seq\":0,"));
        assert!(line.contains("\"watermark_lag\":5"));
        assert!(line.contains("\"a.b\":2"));
        assert!(line.contains("\"h\":{\"count\":1,\"buckets\":[[8,1]]}"));
    }

    #[test]
    fn labels_stamp_both_renderings() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(true);
        let scope = ObsScope::new();
        scope.counter_add("serve.requests", 3);
        let mut ex = Exporter::new(scope).with_label("tenant", "acme \"1\"");
        let mut f = ex.frame();
        crate::set_enabled(false);
        f.set_gauge("inflight", 1.0);
        let line = f.to_ndjson();
        assert!(
            line.contains("\"labels\":{\"tenant\":\"acme \\\"1\\\"\"}"),
            "{line}"
        );
        let om = f.to_openmetrics();
        assert!(
            om.contains("tgm_inflight{tenant=\"acme \\\"1\\\"\"} 1"),
            "{om}"
        );
        assert!(
            om.contains("tgm_serve_requests_total{tenant=\"acme \\\"1\\\"\"} 3"),
            "{om}"
        );
        // Unlabeled frames render exactly as before.
        let mut plain = Exporter::new(ObsScope::new());
        let pf = plain.frame();
        assert!(!pf.to_ndjson().contains("labels"));
    }

    #[test]
    fn openmetrics_renders_cumulative_counters() {
        let _guard = TEST_LOCK.lock();
        crate::set_enabled(true);
        let scope = ObsScope::new();
        scope.counter_add("tag.session.events", 100);
        let mut ex = Exporter::new(scope.clone());
        let _ = ex.frame();
        scope.counter_add("tag.session.events", 50);
        let mut f = ex.frame();
        crate::set_enabled(false);
        f.set_gauge("frontier", 2.0);
        let text = f.to_openmetrics();
        assert!(text.contains("tgm_frontier 2"), "{text}");
        assert!(
            text.contains("tgm_tag_session_events_total 150"),
            "cumulative, not delta: {text}"
        );
    }
}

//! Lightweight observability for the tgm workspace: spans, counters,
//! log-scale histograms, and a unified [`Report`].
//!
//! The paper's empirical story is a *pruning funnel* — the §5 discovery
//! pipeline exists to cut candidates cheaply before the expensive TAG
//! scan, and Theorem 4 bounds how much work the matcher does per event.
//! This crate makes that funnel a first-class artifact: the matcher, the
//! mining pipeline, the episode baseline and the granularity cache all
//! emit into one process-wide registry, and [`Report`] renders the result
//! as a human-readable timing/funnel tree or machine-readable JSON.
//!
//! # Design
//!
//! - **Off by default.** A process-wide [`set_enabled`] toggle mirrors the
//!   granularity cache's ablation switch
//!   ([`tgm_granularity::cache::set_enabled`]); when off, every
//!   instrumentation call is a single relaxed atomic load. Per-call-site
//!   granularity comes from [`ObsOptions`] embedded in the matcher's and
//!   pipeline's option structs.
//! - **Spans** ([`span`](mod@span)) are RAII guards over monotonic clocks.
//!   Completed spans aggregate in a thread-local buffer that flushes to
//!   the global registry when the thread's span stack unwinds to depth
//!   zero (or on thread exit), so parallel sweep workers never contend on
//!   a lock mid-measurement.
//! - **Metrics** ([`metrics`]) are named [`u64`] counters and
//!   base-2 log-scale histograms behind sharded `parking_lot` mutexes.
//!   [`MetricsSnapshot`] is `Add`-able across captures like
//!   [`CacheStats`](tgm_granularity::CacheStats).
//! - **Scoped domains** ([`scope`](mod@scope)) isolate full registries per
//!   session, pipeline run or tenant: the global API routes to the calling
//!   thread's *current* scope (the default scope when none is entered), so
//!   existing call sites kept their semantics when scopes landed.
//!   [`Snapshot`]s capture, diff ([`Snapshot::delta`]) and merge without
//!   `reset()` races.
//! - **Live export** ([`export`]) renders periodic delta snapshots as
//!   one-line `tgm_obs_stream/v1` NDJSON frames or Prometheus/OpenMetrics
//!   text — the `tgm stream --stats-every N` path.
//! - **Flight recorder** ([`recorder`]) keeps a fixed-capacity ring of
//!   recent structured events per scope, dumped automatically when a
//!   bounded entry point is interrupted or a worker panic is contained.
//! - **Never observable in results.** Instrumentation must not change
//!   any mining or matching output; the workspace's differential tests
//!   assert bit-identical results with the toggle on and off — and with
//!   scopes, the exporter and the recorder active.
//!
//! # Quickstart
//!
//! ```
//! tgm_obs::set_enabled(true);
//! {
//!     let _outer = tgm_obs::span!("demo.outer");
//!     let _inner = tgm_obs::span!("demo.outer.inner");
//!     tgm_obs::metrics::counter_add("demo.widgets", 3);
//!     tgm_obs::metrics::histogram_record("demo.sizes", 17);
//! }
//! let report = tgm_obs::Report::capture();
//! assert_eq!(report.spans.get("demo.outer").unwrap().count, 1);
//! assert_eq!(report.metrics.counter("demo.widgets"), 3);
//! tgm_obs::set_enabled(false);
//! tgm_obs::reset();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod scope;
pub mod span;

pub use export::{Exporter, StreamFrame};
pub use metrics::{Histogram, MetricsSnapshot};
pub use recorder::{FlightDump, RecEvent};
pub use report::{FunnelStage, Observable, ObsValue, Report};
pub use scope::{ObsScope, Snapshot};
pub use span::{SpanGuard, SpanSnapshot, SpanStats};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide switch for all observability (default: off).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables observability process-wide.
///
/// When disabled (the default), spans and metric emissions reduce to one
/// relaxed atomic load each; existing recorded data is kept (use
/// [`reset`] to clear it). Mirrors
/// [`tgm_granularity::cache::set_enabled`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether observability is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears the current scope's recorded spans and metrics (the enable
/// flag is unchanged). With no scope entered this clears the default
/// scope — exactly the historical process-wide behavior; other scopes
/// keep their data (see [`scope::ObsScope::reset`] for per-scope
/// clearing).
pub fn reset() {
    span::reset();
    metrics::reset();
}

/// Per-call-site observability knobs, embedded in `MatchOptions` and
/// `PipelineOptions` so one layer can be silenced without flipping the
/// process-wide toggle.
///
/// Both knobs default to on; nothing is emitted anywhere unless the
/// process-wide [`set_enabled`] switch is also on. Instrumented code
/// treats the effective setting as `obs::enabled() && opts.obs.<kind>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsOptions {
    /// Emit counters and histograms from this call site.
    pub metrics: bool,
    /// Record timing spans from this call site.
    pub spans: bool,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            metrics: true,
            spans: true,
        }
    }
}

impl ObsOptions {
    /// Both knobs off; handy for silencing one layer in ablations.
    pub fn silent() -> Self {
        ObsOptions {
            metrics: false,
            spans: false,
        }
    }

    /// Effective metric emission: the knob AND the process-wide toggle.
    pub fn metrics_on(&self) -> bool {
        self.metrics && enabled()
    }

    /// Effective span recording: the knob AND the process-wide toggle.
    pub fn spans_on(&self) -> bool {
        self.spans && enabled()
    }
}

/// Starts a named timing span; returns the RAII guard.
///
/// The name must be a `'static` string literal with dot-separated
/// components (`"pipeline.step2"`); [`Report::render`] derives the
/// display tree from the dots.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span($name)
    };
}

#[cfg(test)]
pub(crate) mod test_support {
    use parking_lot::Mutex;

    /// Serializes tests that toggle the process-wide enable flag or read
    /// the global registries (the harness runs tests concurrently in one
    /// process).
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());
}

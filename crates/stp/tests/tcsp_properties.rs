//! Property tests for the disjunctive TCSP solver: witness-backed
//! consistency, refutation against brute force, and soundness of loose
//! path consistency.

use proptest::prelude::*;
use tgm_stp::{Disjunction, Range, Tcsp, TcspOutcome};

/// A witnessed instance: the assignment plus `(i, j, disjunct-ranges)`.
type WitnessedTcsp = (Vec<i64>, Vec<(usize, usize, Vec<(i64, i64)>)>);

/// Builds a random TCSP around a witness: each constraint includes a
/// disjunct containing the witness difference plus random decoys.
fn witnessed_instance() -> impl Strategy<Value = WitnessedTcsp> {
    (2usize..6)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(-50i64..50, n),
                proptest::collection::vec(
                    (0..n, 0..n, 0i64..4, proptest::collection::vec((-60i64..60, 0i64..5), 0..3)),
                    1..8,
                ),
            )
        })
        .prop_map(|(xs, raw)| {
            let cons = raw
                .into_iter()
                .filter(|(i, j, _, _)| i != j)
                .map(|(i, j, slack, decoys)| {
                    let diff = xs[j] - xs[i];
                    let mut ranges = vec![(diff - slack, diff + slack)];
                    ranges.extend(decoys.iter().map(|&(lo, w)| (lo, lo + w)));
                    (i, j, ranges)
                })
                .collect();
            (xs, cons)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Witness-built TCSPs are solvable and the solution satisfies them.
    #[test]
    fn witnessed_tcsp_is_consistent((xs, cons) in witnessed_instance()) {
        let mut t = Tcsp::new(xs.len());
        for (i, j, ranges) in &cons {
            let d = Disjunction::new(
                ranges.iter().map(|&(lo, hi)| Range::new(lo, hi)).collect(),
            );
            t.constrain(*i, *j, d);
        }
        prop_assert!(t.satisfied_by(&xs), "witness satisfies by construction");
        match t.solve() {
            TcspOutcome::Consistent(sol) => prop_assert!(t.satisfied_by(&sol)),
            TcspOutcome::Inconsistent => prop_assert!(false, "witnessed TCSP refuted"),
        }
    }

    /// Loose path consistency never removes the witness's labelling.
    #[test]
    fn lpc_preserves_witness((xs, cons) in witnessed_instance()) {
        let mut t = Tcsp::new(xs.len());
        for (i, j, ranges) in &cons {
            t.constrain(*i, *j, Disjunction::new(
                ranges.iter().map(|&(lo, hi)| Range::new(lo, hi)).collect(),
            ));
        }
        let f = t.loose_path_consistency().expect("witnessed instance");
        prop_assert!(f.satisfied_by(&xs), "LPC dropped the witness");
        prop_assert!(f.labelling_count() <= t.labelling_count());
    }

    /// On tiny domains, solve() agrees with brute force.
    #[test]
    fn solve_matches_brute_force(
        n in 2usize..4,
        raw in proptest::collection::vec((0usize..4, 0usize..4, proptest::collection::vec((-6i64..6, 0i64..3), 1..3)), 1..5),
    ) {
        let mut t = Tcsp::new(n);
        let mut any = false;
        for (i, j, ranges) in &raw {
            let (i, j) = (i % n, j % n);
            if i == j { continue; }
            any = true;
            t.constrain(i, j, Disjunction::new(
                ranges.iter().map(|&(lo, w)| Range::new(lo, lo + w)).collect(),
            ));
        }
        prop_assume!(any);
        // Brute force over x in [-10, 10]^n with x0 = 0 (differences are
        // bounded by the generated ranges, so this window is complete).
        let mut found = false;
        let mut x = vec![0i64; n];
        fn rec(t: &Tcsp, x: &mut Vec<i64>, depth: usize, found: &mut bool) {
            if *found { return; }
            if depth == x.len() {
                if t.satisfied_by(x) { *found = true; }
                return;
            }
            for v in -10..=10 {
                x[depth] = v;
                rec(t, x, depth + 1, found);
            }
        }
        rec(&t, &mut x, 1, &mut found);
        let got = matches!(t.solve(), TcspOutcome::Consistent(_));
        prop_assert_eq!(got, found);
    }
}

//! Property tests for the STP substrate: minimality, decomposability,
//! soundness against random witnesses.

use proptest::prelude::*;
use tgm_stp::{Range, Stp};

/// A random constraint set generated FROM a witness assignment, so the STP
/// is consistent by construction.
fn consistent_instance() -> impl Strategy<Value = (Vec<i64>, Vec<(usize, usize, Range)>)> {
    (2usize..8)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(-1000i64..1000, n),
                proptest::collection::vec((0..n, 0..n, 0i64..50, 0i64..50), 1..20),
            )
        })
        .prop_map(|(xs, raw)| {
            let cons = raw
                .into_iter()
                .filter(|(i, j, _, _)| i != j)
                .map(|(i, j, slack_lo, slack_hi)| {
                    let diff = xs[j] - xs[i];
                    (i, j, Range::new(diff - slack_lo, diff + slack_hi))
                })
                .collect();
            (xs, cons)
        })
}

proptest! {
    /// An STP built around a witness is consistent, and the witness lies in
    /// every minimal range.
    #[test]
    fn witness_in_minimal_ranges((xs, cons) in consistent_instance()) {
        let mut stp = Stp::new(xs.len());
        for &(i, j, r) in &cons {
            stp.constrain(i, j, r);
        }
        let m = stp.minimize().expect("witness-built STP must be consistent");
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                prop_assert!(m.range(i, j).contains(xs[j] - xs[i]),
                    "witness diff x{j}-x{i}={} outside minimal {:?}",
                    xs[j] - xs[i], m.range(i, j));
            }
        }
    }

    /// The extracted solution satisfies every original constraint.
    #[test]
    fn extracted_solution_valid((xs, cons) in consistent_instance()) {
        let mut stp = Stp::new(xs.len());
        for &(i, j, r) in &cons {
            stp.constrain(i, j, r);
        }
        let sol = stp.minimize().unwrap().solution();
        for &(i, j, r) in &cons {
            prop_assert!(r.contains(sol[j] - sol[i]));
        }
    }

    /// Minimal ranges are at least as tight as the posted ones and
    /// minimization is idempotent.
    #[test]
    fn minimality_and_idempotence((xs, cons) in consistent_instance()) {
        let n = xs.len();
        let mut stp = Stp::new(n);
        for &(i, j, r) in &cons {
            stp.constrain(i, j, r);
        }
        let m = stp.minimize().unwrap();
        for &(i, j, r) in &cons {
            let t = m.range(i, j);
            prop_assert!(t.lo >= r.lo && t.hi <= r.hi, "range not tightened");
        }
        let m2 = m.as_stp().minimize().unwrap();
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(m.range(i, j), m2.range(i, j));
            }
        }
    }

    /// Bellman-Ford from each source agrees with the Floyd-Warshall row.
    #[test]
    fn sssp_matches_apsp((xs, cons) in consistent_instance()) {
        let n = xs.len();
        let mut stp = Stp::new(n);
        for &(i, j, r) in &cons {
            stp.constrain(i, j, r);
        }
        let m = stp.minimize().unwrap();
        for src in 0..n {
            let d = stp.distances_from(src).unwrap();
            for (j, &dj) in d.iter().enumerate() {
                prop_assert_eq!(dj, m.range(src, j).hi.min(tgm_stp::INF));
            }
        }
    }

    /// Tightening a minimal network to each minimal range keeps it
    /// consistent; tightening below the minimal lower bound fails.
    #[test]
    fn tighten_consistency((xs, cons) in consistent_instance(), pick in any::<prop::sample::Index>()) {
        let n = xs.len();
        let mut stp = Stp::new(n);
        for &(i, j, r) in &cons {
            stp.constrain(i, j, r);
        }
        let m = stp.minimize().unwrap();
        let (i, j) = (pick.index(n), (pick.index(n) + 1) % n);
        if i == j { return Ok(()); }
        let r = m.range(i, j);
        if r.is_finite() {
            // Pin to the minimal lower endpoint: always satisfiable.
            let mut m2 = m.clone();
            m2.tighten(i, j, Range::exactly(r.lo)).expect("endpoint must stay feasible");
            // Pinning outside the minimal range must fail.
            let mut m3 = m.clone();
            prop_assert!(m3.tighten(i, j, Range::exactly(r.hi + 1)).is_err());
        }
    }
}

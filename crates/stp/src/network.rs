//! STP networks, distance graphs, and minimal-network computation.

use std::fmt;

/// Sentinel for "+∞" (no upper bound). Kept far from `i64::MAX` so sums of
/// two finite weights can never be mistaken for it.
pub const INF: i64 = i64::MAX / 4;

/// Sentinel for "−∞" (no lower bound).
pub const NEG_INF: i64 = -INF;

#[inline]
fn add_weight(a: i64, b: i64) -> i64 {
    if a >= INF || b >= INF {
        INF
    } else {
        // Finite weights in practical networks are far below INF/2, so this
        // cannot overflow into the sentinel range.
        a + b
    }
}

/// A bounded-difference range `[lo, hi]` (use [`NEG_INF`]/[`INF`] for
/// unbounded sides).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Range {
    /// Lower bound on the difference.
    pub lo: i64,
    /// Upper bound on the difference.
    pub hi: i64,
}

impl Range {
    /// Creates `[lo, hi]`; panics if `lo > hi` (an empty range should be
    /// expressed by never adding it, or detected via inconsistency).
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        Range { lo, hi }
    }

    /// The unconstrained range `(-∞, +∞)`.
    pub fn full() -> Self {
        Range {
            lo: NEG_INF,
            hi: INF,
        }
    }

    /// A point range `[v, v]`.
    pub fn exactly(v: i64) -> Self {
        Range { lo: v, hi: v }
    }

    /// Range `[lo, +∞)`.
    pub fn at_least(lo: i64) -> Self {
        Range { lo, hi: INF }
    }

    /// Range `(-∞, hi]`.
    pub fn at_most(hi: i64) -> Self {
        Range { lo: NEG_INF, hi }
    }

    /// Whether `v` lies in the range.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Intersection, or `None` if empty.
    pub fn intersect(&self, other: &Range) -> Option<Range> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Range { lo, hi })
    }

    /// Whether both bounds are finite.
    pub fn is_finite(&self) -> bool {
        self.lo > NEG_INF && self.hi < INF
    }

    /// Whether this is the unconstrained range.
    pub fn is_full(&self) -> bool {
        self.lo <= NEG_INF && self.hi >= INF
    }

    /// The inverse relation: if `x_j − x_i ∈ [lo, hi]`, then
    /// `x_i − x_j ∈ [−hi, −lo]`.
    pub fn inverse(&self) -> Range {
        Range {
            lo: if self.hi >= INF { NEG_INF } else { -self.hi },
            hi: if self.lo <= NEG_INF { INF } else { -self.lo },
        }
    }

    /// Width `hi − lo` (saturating; `INF` when unbounded).
    pub fn width(&self) -> i64 {
        if self.is_finite() {
            self.hi - self.lo
        } else {
            INF
        }
    }
}

impl fmt::Debug for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.lo <= NEG_INF, self.hi >= INF) {
            (true, true) => write!(f, "(-inf, +inf)"),
            (true, false) => write!(f, "(-inf, {}]", self.hi),
            (false, true) => write!(f, "[{}, +inf)", self.lo),
            (false, false) => write!(f, "[{}, {}]", self.lo, self.hi),
        }
    }
}

/// The STP is unsatisfiable: the distance graph contains a negative cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Inconsistent {
    /// A variable lying on a negative cycle.
    pub witness: usize,
}

impl fmt::Display for Inconsistent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "STP inconsistent: negative cycle through variable {}",
            self.witness
        )
    }
}

impl std::error::Error for Inconsistent {}

/// A Simple Temporal Problem over `n` variables.
///
/// Internally a dense distance matrix `d[i][j]` = tightest known upper bound
/// on `x_j − x_i` (the distance-graph edge weight).
#[derive(Clone)]
pub struct Stp {
    n: usize,
    /// Row-major `n × n`; `d[i*n + j]` bounds `x_j − x_i` from above.
    d: Vec<i64>,
}

impl Stp {
    /// An unconstrained STP over `n` variables.
    pub fn new(n: usize) -> Self {
        let mut d = vec![INF; n * n];
        for i in 0..n {
            d[i * n + i] = 0;
        }
        Stp { n, d }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the network has no variables.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> i64 {
        self.d[i * self.n + j]
    }

    #[inline]
    fn at_mut(&mut self, i: usize, j: usize) -> &mut i64 {
        &mut self.d[i * self.n + j]
    }

    /// Adds (intersects in) the constraint `x_j − x_i ∈ r`.
    pub fn constrain(&mut self, i: usize, j: usize, r: Range) {
        assert!(i < self.n && j < self.n, "variable out of range");
        // x_j - x_i <= hi  and  x_i - x_j <= -lo.
        let ij = self.at_mut(i, j);
        *ij = (*ij).min(r.hi.min(INF));
        let ji = self.at_mut(j, i);
        let neg_lo = if r.lo <= NEG_INF { INF } else { -r.lo };
        *ji = (*ji).min(neg_lo);
    }

    /// The currently recorded (not necessarily minimal) range on
    /// `x_j − x_i`.
    pub fn range(&self, i: usize, j: usize) -> Range {
        let hi = self.at(i, j);
        let ji = self.at(j, i);
        Range {
            lo: if ji >= INF { NEG_INF } else { -ji },
            hi: if hi >= INF { INF } else { hi },
        }
    }

    /// Computes the minimal network via Floyd–Warshall; errs with a negative
    /// cycle witness if inconsistent. `O(n³)`.
    pub fn minimize(&self) -> Result<MinimalNetwork, Inconsistent> {
        let n = self.n;
        let mut d = self.d.clone();
        for k in 0..n {
            for i in 0..n {
                let dik = d[i * n + k];
                if dik >= INF {
                    continue;
                }
                for j in 0..n {
                    let via = add_weight(dik, d[k * n + j]);
                    if via < d[i * n + j] {
                        d[i * n + j] = via;
                    }
                }
            }
        }
        for i in 0..n {
            if d[i * n + i] < 0 {
                return Err(Inconsistent { witness: i });
            }
        }
        Ok(MinimalNetwork { inner: Stp { n, d } })
    }

    /// Consistency check without retaining the minimal network.
    pub fn is_consistent(&self) -> bool {
        self.minimize().is_ok()
    }

    /// Single-source shortest-path distances from `src` (Bellman–Ford),
    /// yielding the tightest upper bounds `x_j − x_src`. Errs on a negative
    /// cycle reachable from `src`.
    pub fn distances_from(&self, src: usize) -> Result<Vec<i64>, Inconsistent> {
        let n = self.n;
        let mut dist = vec![INF; n];
        dist[src] = 0;
        for round in 0..n {
            let mut changed = false;
            for i in 0..n {
                if dist[i] >= INF {
                    continue;
                }
                for j in 0..n {
                    let w = self.at(i, j);
                    if w >= INF {
                        continue;
                    }
                    let cand = add_weight(dist[i], w);
                    if cand < dist[j] {
                        dist[j] = cand;
                        changed = true;
                    }
                }
            }
            if !changed {
                return Ok(dist);
            }
            if round == n - 1 {
                return Err(Inconsistent { witness: src });
            }
        }
        Ok(dist)
    }
}

impl fmt::Debug for Stp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Stp(n={})", self.n)?;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j && !self.range(i, j).is_full() && i < j {
                    writeln!(f, "  x{j} - x{i} in {:?}", self.range(i, j))?;
                }
            }
        }
        Ok(())
    }
}

/// A consistent STP in minimal (all-pairs-tightest) form.
///
/// Obtained from [`Stp::minimize`]; exposes implied constraints and solution
/// extraction.
#[derive(Clone, Debug)]
pub struct MinimalNetwork {
    inner: Stp,
}

impl MinimalNetwork {
    /// Number of variables.
    pub fn len(&self) -> usize {
        self.inner.n
    }

    /// Whether the network has no variables.
    pub fn is_empty(&self) -> bool {
        self.inner.n == 0
    }

    /// The tightest implied range on `x_j − x_i`.
    pub fn range(&self, i: usize, j: usize) -> Range {
        self.inner.range(i, j)
    }

    /// The underlying minimized STP.
    pub fn as_stp(&self) -> &Stp {
        &self.inner
    }

    /// Extracts one solution with `x_0 = 0`, using the decomposability of
    /// minimal STP networks (assign variables in order, each within the
    /// intersection of ranges against already-assigned variables).
    pub fn solution(&self) -> Vec<i64> {
        let n = self.inner.n;
        let mut x = vec![0i64; n];
        for j in 1..n {
            let mut window = Range::full();
            for (i, &xi) in x.iter().enumerate().take(j) {
                let r = self.range(i, j);
                let shifted = Range {
                    lo: if r.lo <= NEG_INF { NEG_INF } else { r.lo + xi },
                    hi: if r.hi >= INF { INF } else { r.hi + xi },
                };
                window = window
                    .intersect(&shifted)
                    .expect("minimal network must be decomposable");
            }
            // Prefer the earliest finite value; an all-unbounded window means
            // the variable is fully unconstrained relative to x0..x_{j-1}.
            x[j] = if window.lo > NEG_INF {
                window.lo
            } else if window.hi < INF {
                window.hi
            } else {
                0
            };
        }
        x
    }

    /// Re-tightens `x_j − x_i` to `r` and restores minimality incrementally
    /// in `O(n²)`; errs if the tightening makes the network inconsistent.
    pub fn tighten(&mut self, i: usize, j: usize, r: Range) -> Result<(), Inconsistent> {
        let current = self.range(i, j);
        let Some(tight) = current.intersect(&r) else {
            return Err(Inconsistent { witness: i });
        };
        if tight == current {
            return Ok(());
        }
        self.inner.constrain(i, j, tight);
        let n = self.inner.n;
        // Propagate through the updated edge pair (i→j weight hi, j→i −lo):
        // new d[a][b] = min(old, d[a][i] + w(i,j) + d[j][b], d[a][j] + w(j,i) + d[i][b]).
        for a in 0..n {
            for b in 0..n {
                let via_ij = add_weight(
                    add_weight(self.inner.at(a, i), self.inner.at(i, j)),
                    self.inner.at(j, b),
                );
                let via_ji = add_weight(
                    add_weight(self.inner.at(a, j), self.inner.at(j, i)),
                    self.inner.at(i, b),
                );
                let best = self.inner.at(a, b).min(via_ij).min(via_ji);
                *self.inner.at_mut(a, b) = best;
            }
        }
        for v in 0..n {
            if self.inner.at(v, v) < 0 {
                return Err(Inconsistent { witness: v });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_implied_constraint() {
        let mut stp = Stp::new(3);
        stp.constrain(0, 1, Range::new(10, 20));
        stp.constrain(1, 2, Range::new(30, 40));
        let m = stp.minimize().unwrap();
        assert_eq!(m.range(0, 2), Range::new(40, 60));
        assert_eq!(m.range(2, 0), Range::new(-60, -40));
    }

    #[test]
    fn diamond_tightening() {
        // x3 - x0 in [0, 25] is tightened through both diamond branches to
        // [9, 20].
        let mut stp = Stp::new(4);
        stp.constrain(0, 1, Range::new(0, 10));
        stp.constrain(0, 2, Range::new(0, 10));
        stp.constrain(1, 3, Range::new(0, 10));
        stp.constrain(2, 3, Range::new(9, 10));
        stp.constrain(0, 3, Range::new(0, 25));
        let m = stp.minimize().unwrap();
        assert_eq!(m.range(0, 3), Range::new(9, 20));
    }

    #[test]
    fn negative_cycle_detected() {
        let mut stp = Stp::new(2);
        stp.constrain(0, 1, Range::new(5, 10));
        stp.constrain(1, 0, Range::new(0, 2)); // x0 - x1 in [0,2] contradicts
        assert!(stp.minimize().is_err());
        assert!(!stp.is_consistent());
    }

    #[test]
    fn diamond_inconsistent() {
        let mut stp = Stp::new(4);
        stp.constrain(0, 1, Range::new(0, 10));
        stp.constrain(0, 2, Range::new(0, 10));
        stp.constrain(1, 3, Range::new(0, 10));
        stp.constrain(2, 3, Range::new(9, 10));
        stp.constrain(0, 3, Range::new(0, 5));
        assert!(stp.minimize().is_err());
    }

    #[test]
    fn solution_satisfies_all_constraints() {
        let mut stp = Stp::new(5);
        let cons = [
            (0usize, 1usize, Range::new(2, 7)),
            (1, 2, Range::new(-3, 4)),
            (0, 3, Range::new(0, 100)),
            (3, 4, Range::new(5, 5)),
            (2, 4, Range::new(-10, 50)),
        ];
        for (i, j, r) in cons {
            stp.constrain(i, j, r);
        }
        let m = stp.minimize().unwrap();
        let x = m.solution();
        assert_eq!(x[0], 0);
        for (i, j, r) in cons {
            assert!(
                r.contains(x[j] - x[i]),
                "x{j} - x{i} = {} not in {r:?}",
                x[j] - x[i]
            );
        }
    }

    #[test]
    fn minimize_is_idempotent() {
        let mut stp = Stp::new(4);
        stp.constrain(0, 1, Range::new(1, 5));
        stp.constrain(1, 2, Range::new(1, 5));
        stp.constrain(0, 2, Range::new(3, 4));
        let m1 = stp.minimize().unwrap();
        let m2 = m1.as_stp().minimize().unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m1.range(i, j), m2.range(i, j));
            }
        }
    }

    #[test]
    fn incremental_tighten_matches_batch() {
        let mut stp = Stp::new(4);
        stp.constrain(0, 1, Range::new(0, 20));
        stp.constrain(1, 2, Range::new(0, 20));
        stp.constrain(2, 3, Range::new(0, 20));
        let mut inc = stp.minimize().unwrap();
        inc.tighten(0, 3, Range::new(30, 35)).unwrap();

        stp.constrain(0, 3, Range::new(30, 35));
        let batch = stp.minimize().unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(inc.range(i, j), batch.range(i, j), "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn incremental_tighten_detects_inconsistency() {
        let mut stp = Stp::new(3);
        stp.constrain(0, 1, Range::new(5, 10));
        stp.constrain(1, 2, Range::new(5, 10));
        let mut m = stp.minimize().unwrap();
        assert!(m.tighten(0, 2, Range::new(0, 9)).is_err());
    }

    #[test]
    fn bellman_ford_matches_floyd_warshall() {
        let mut stp = Stp::new(5);
        stp.constrain(0, 1, Range::new(2, 9));
        stp.constrain(1, 3, Range::new(1, 4));
        stp.constrain(0, 2, Range::new(0, 3));
        stp.constrain(2, 3, Range::new(2, 8));
        stp.constrain(3, 4, Range::new(-2, 2));
        let m = stp.minimize().unwrap();
        let d = stp.distances_from(0).unwrap();
        for (j, &dj) in d.iter().enumerate() {
            assert_eq!(dj, m.as_stp().at(0, j), "distance to {j}");
        }
    }

    #[test]
    fn range_algebra() {
        let r = Range::new(-3, 8);
        assert_eq!(r.inverse(), Range::new(-8, 3));
        assert_eq!(Range::at_least(5).inverse(), Range::at_most(-5));
        assert_eq!(Range::full().inverse(), Range::full());
        assert_eq!(
            Range::new(0, 10).intersect(&Range::new(5, 20)),
            Some(Range::new(5, 10))
        );
        assert_eq!(Range::new(0, 4).intersect(&Range::new(5, 6)), None);
        assert!(Range::full().is_full());
        assert_eq!(Range::new(2, 7).width(), 5);
    }

    #[test]
    fn unconstrained_variables_get_default_values() {
        let stp = Stp::new(3);
        let m = stp.minimize().unwrap();
        let x = m.solution();
        assert_eq!(x, vec![0, 0, 0]);
    }

    #[test]
    fn empty_network() {
        let stp = Stp::new(0);
        assert!(stp.is_empty());
        let m = stp.minimize().unwrap();
        assert!(m.solution().is_empty());
    }

    #[test]
    fn half_bounded_ranges() {
        let mut stp = Stp::new(2);
        stp.constrain(0, 1, Range::at_least(10));
        let m = stp.minimize().unwrap();
        assert_eq!(m.range(0, 1), Range::at_least(10));
        let x = m.solution();
        assert!(x[1] - x[0] >= 10);
    }
}

//! General (disjunctive) Temporal Constraint Satisfaction Problems — the
//! full TCSP model of Dechter, Meiri & Pearl (1991), of which the STP is
//! the tractable special case.
//!
//! A TCSP constraint on `x_j − x_i` is a *union* of intervals
//! `[l₁,u₁] ∪ … ∪ [l_k,u_k]`. Deciding consistency is NP-hard in general;
//! the classical solver enumerates *labellings* (one disjunct per
//! constraint), each of which is an STP, with backtracking and
//! forward-pruning. This is the machinery the paper's §3.1 alludes to when
//! it notes that multiple granularities "express a form of disjunction" —
//! the Figure 1(b) month-distance disjunction `{0} ∪ {12}` is exactly a
//! TCSP constraint.
//!
//! Also provides ULT-style *loose path consistency* (interval-set
//! composition/intersection), a sound polynomial filter that shrinks
//! disjunct sets before search.

use std::fmt;

use crate::network::{Inconsistent, Range, Stp, INF, NEG_INF};

/// A disjunctive constraint: `x_j − x_i` must lie in one of the ranges.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Disjunction {
    ranges: Vec<Range>,
}

impl Disjunction {
    /// Builds a disjunction, normalizing (sorting and merging overlapping
    /// or adjacent ranges). Panics if empty.
    pub fn new(mut ranges: Vec<Range>) -> Self {
        assert!(!ranges.is_empty(), "empty disjunction");
        ranges.sort_by_key(|r| (r.lo, r.hi));
        let mut out: Vec<Range> = Vec::with_capacity(ranges.len());
        for r in ranges {
            match out.last_mut() {
                Some(last) if r.lo <= last.hi.saturating_add(1) => {
                    last.hi = last.hi.max(r.hi);
                }
                _ => out.push(r),
            }
        }
        Disjunction { ranges: out }
    }

    /// A single-interval (STP) constraint.
    pub fn single(r: Range) -> Self {
        Disjunction { ranges: vec![r] }
    }

    /// The normalized disjuncts.
    pub fn ranges(&self) -> &[Range] {
        &self.ranges
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Never true (disjunctions are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether a value satisfies some disjunct.
    pub fn contains(&self, v: i64) -> bool {
        self.ranges.iter().any(|r| r.contains(v))
    }

    /// Pairwise intersection with another disjunction; `None` if empty.
    pub fn intersect(&self, other: &Disjunction) -> Option<Disjunction> {
        let mut out = Vec::new();
        for a in &self.ranges {
            for b in &other.ranges {
                if let Some(r) = a.intersect(b) {
                    out.push(r);
                }
            }
        }
        (!out.is_empty()).then(|| Disjunction::new(out))
    }

    /// Interval-set composition: the possible sums `a + b` with `a` in
    /// `self` and `b` in `other` (used by loose path consistency).
    pub fn compose(&self, other: &Disjunction) -> Disjunction {
        let mut out = Vec::new();
        for a in &self.ranges {
            for b in &other.ranges {
                let lo = if a.lo <= NEG_INF || b.lo <= NEG_INF {
                    NEG_INF
                } else {
                    a.lo + b.lo
                };
                let hi = if a.hi >= INF || b.hi >= INF {
                    INF
                } else {
                    a.hi + b.hi
                };
                out.push(Range { lo, hi });
            }
        }
        Disjunction::new(out)
    }

    /// The inverse relation (for the reversed pair).
    pub fn inverse(&self) -> Disjunction {
        Disjunction::new(self.ranges.iter().map(Range::inverse).collect())
    }

    /// The convex hull `[min lo, max hi]`.
    pub fn hull(&self) -> Range {
        Range {
            lo: self.ranges[0].lo,
            hi: self.ranges[self.ranges.len() - 1].hi,
        }
    }
}

impl fmt::Display for Disjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.ranges.iter().map(|r| format!("{r:?}")).collect();
        write!(f, "{}", parts.join(" u "))
    }
}

/// A disjunctive temporal constraint network over `n` variables.
///
/// ```
/// use tgm_stp::{Disjunction, Range, Tcsp, TcspOutcome};
///
/// // x1 - x0 is 0 or 12; x1 - x0 must also be at least 5: forces 12.
/// let mut t = Tcsp::new(2);
/// t.constrain(0, 1, Disjunction::new(vec![Range::new(0, 0), Range::new(12, 12)]));
/// t.constrain(0, 1, Disjunction::single(Range::at_least(5)));
/// match t.solve() {
///     TcspOutcome::Consistent(x) => assert_eq!(x[1] - x[0], 12),
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Tcsp {
    n: usize,
    /// Constraints keyed by ordered pair (i < j), on `x_j − x_i`.
    constraints: Vec<(usize, usize, Disjunction)>,
}

/// Result of solving a TCSP.
#[derive(Clone, Debug, PartialEq)]
pub enum TcspOutcome {
    /// A satisfying assignment (with `x_0 = 0`).
    Consistent(Vec<i64>),
    /// No labelling is consistent.
    Inconsistent,
}

impl Tcsp {
    /// An unconstrained TCSP over `n` variables.
    pub fn new(n: usize) -> Self {
        Tcsp {
            n,
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the network has no variables.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds (conjoins) the constraint `x_j − x_i ∈ d`. Multiple constraints
    /// on the same pair are intersected at solve time.
    pub fn constrain(&mut self, i: usize, j: usize, d: Disjunction) {
        assert!(i < self.n && j < self.n && i != j, "bad variable pair");
        if i < j {
            self.constraints.push((i, j, d));
        } else {
            self.constraints.push((j, i, d.inverse()));
        }
    }

    /// The number of complete labellings (product of disjunct counts) —
    /// the worst-case search space.
    pub fn labelling_count(&self) -> u128 {
        self.constraints
            .iter()
            .map(|(_, _, d)| d.len() as u128)
            .product()
    }

    /// Loose path consistency: for every constrained pair `(i, j)` and
    /// every intermediate `k` with constraints on `(i, k)` and `(k, j)`,
    /// intersect the `(i, j)` disjunction with the composition. Sound;
    /// iterates to a fixpoint; may detect inconsistency early.
    pub fn loose_path_consistency(&self) -> Result<Tcsp, Inconsistent> {
        // Collapse to one disjunction per ordered pair.
        let mut map: std::collections::BTreeMap<(usize, usize), Disjunction> =
            std::collections::BTreeMap::new();
        for (i, j, d) in &self.constraints {
            let entry = map.get(&(*i, *j)).cloned();
            let merged = match entry {
                Some(e) => e.intersect(d).ok_or(Inconsistent { witness: *i })?,
                None => d.clone(),
            };
            map.insert((*i, *j), merged);
        }
        let get = |m: &std::collections::BTreeMap<(usize, usize), Disjunction>,
                   a: usize,
                   b: usize|
         -> Option<Disjunction> {
            if a < b {
                m.get(&(a, b)).cloned()
            } else {
                m.get(&(b, a)).map(Disjunction::inverse)
            }
        };
        loop {
            let mut changed = false;
            let pairs: Vec<(usize, usize)> = map.keys().copied().collect();
            for &(i, j) in &pairs {
                for k in 0..self.n {
                    if k == i || k == j {
                        continue;
                    }
                    let (Some(ik), Some(kj)) = (get(&map, i, k), get(&map, k, j)) else {
                        continue;
                    };
                    let composed = ik.compose(&kj);
                    let cur = map.get(&(i, j)).expect("pair exists").clone();
                    let tightened = cur
                        .intersect(&composed)
                        .ok_or(Inconsistent { witness: i })?;
                    if tightened != cur {
                        map.insert((i, j), tightened);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Ok(Tcsp {
            n: self.n,
            constraints: map.into_iter().map(|((i, j), d)| (i, j, d)).collect(),
        })
    }

    /// Solves by backtracking over labellings with incremental STP
    /// consistency (runs loose path consistency first). Exponential in the
    /// number of disjunctive constraints, as NP-hardness demands.
    pub fn solve(&self) -> TcspOutcome {
        let filtered = match self.loose_path_consistency() {
            Ok(t) => t,
            Err(_) => return TcspOutcome::Inconsistent,
        };
        // Order constraints by ascending disjunct count (fail first).
        let mut cons = filtered.constraints.clone();
        cons.sort_by_key(|(_, _, d)| d.len());
        let base = Stp::new(self.n);
        match Self::search(&base, &cons, 0, self.n) {
            Some(solution) => TcspOutcome::Consistent(solution),
            None => TcspOutcome::Inconsistent,
        }
    }

    fn search(
        stp: &Stp,
        cons: &[(usize, usize, Disjunction)],
        depth: usize,
        _n: usize,
    ) -> Option<Vec<i64>> {
        if depth == cons.len() {
            return stp.minimize().ok().map(|m| m.solution());
        }
        let (i, j, d) = &cons[depth];
        for r in d.ranges() {
            let mut next = stp.clone();
            next.constrain(*i, *j, *r);
            // Prune: the labelled prefix must stay consistent.
            if next.is_consistent() {
                if let Some(sol) = Self::search(&next, cons, depth + 1, _n) {
                    return Some(sol);
                }
            }
        }
        None
    }

    /// Whether the assignment (indexed by variable) satisfies every
    /// constraint.
    pub fn satisfied_by(&self, x: &[i64]) -> bool {
        assert_eq!(x.len(), self.n);
        self.constraints
            .iter()
            .all(|(i, j, d)| d.contains(x[*j] - x[*i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: i64, hi: i64) -> Range {
        Range::new(lo, hi)
    }

    #[test]
    fn disjunction_normalization() {
        let d = Disjunction::new(vec![r(5, 8), r(0, 2), r(3, 4), r(20, 25)]);
        // [0,2] and [3,4] and [5,8] merge (adjacent); [20,25] stays apart.
        assert_eq!(d.ranges(), &[r(0, 8), r(20, 25)]);
        assert!(d.contains(7));
        assert!(!d.contains(15));
        assert_eq!(d.hull(), r(0, 25));
    }

    #[test]
    fn disjunction_algebra() {
        let a = Disjunction::new(vec![r(0, 0), r(12, 12)]);
        let b = Disjunction::new(vec![r(0, 5)]);
        assert_eq!(a.compose(&b).ranges(), &[r(0, 5), r(12, 17)]);
        assert_eq!(
            a.intersect(&Disjunction::single(r(10, 20))).unwrap().ranges(),
            &[r(12, 12)]
        );
        assert!(a.intersect(&Disjunction::single(r(3, 9))).is_none());
        assert_eq!(a.inverse().ranges(), &[r(-12, -12), r(0, 0)]);
    }

    #[test]
    fn figure_1b_style_disjunction_as_tcsp() {
        // x1 - x0 in {0} u {12}; x2 - x1 in {0} u {12}; x2 - x0 = 12:
        // solutions pick (0,12) or (12,0).
        let mut t = Tcsp::new(3);
        let d = Disjunction::new(vec![r(0, 0), r(12, 12)]);
        t.constrain(0, 1, d.clone());
        t.constrain(1, 2, d);
        t.constrain(0, 2, Disjunction::single(r(12, 12)));
        match t.solve() {
            TcspOutcome::Consistent(x) => {
                assert!(t.satisfied_by(&x));
                assert_eq!(x[2] - x[0], 12);
            }
            other => panic!("expected consistent, got {other:?}"),
        }
        // Target 24 is also fine (12 + 12), but 6 is not.
        let mut t6 = Tcsp::new(3);
        let d = Disjunction::new(vec![r(0, 0), r(12, 12)]);
        t6.constrain(0, 1, d.clone());
        t6.constrain(1, 2, d);
        t6.constrain(0, 2, Disjunction::single(r(6, 6)));
        assert_eq!(t6.solve(), TcspOutcome::Inconsistent);
    }

    #[test]
    fn subset_sum_as_tcsp() {
        // values {2, 3, 5}, target 8 => choose 3 + 5.
        let values = [2i64, 3, 5];
        let mut t = Tcsp::new(4);
        for (i, &v) in values.iter().enumerate() {
            t.constrain(i, i + 1, Disjunction::new(vec![r(0, 0), r(v, v)]));
        }
        t.constrain(0, 3, Disjunction::single(r(8, 8)));
        match t.solve() {
            TcspOutcome::Consistent(x) => {
                assert!(t.satisfied_by(&x));
                let picks: Vec<i64> = (0..3).map(|i| x[i + 1] - x[i]).collect();
                assert_eq!(picks.iter().sum::<i64>(), 8);
            }
            other => panic!("expected consistent, got {other:?}"),
        }
        // Target 4 has no subset.
        let mut t4 = Tcsp::new(4);
        for (i, &v) in values.iter().enumerate() {
            t4.constrain(i, i + 1, Disjunction::new(vec![r(0, 0), r(v, v)]));
        }
        t4.constrain(0, 3, Disjunction::single(r(4, 4)));
        assert_eq!(t4.solve(), TcspOutcome::Inconsistent);
    }

    #[test]
    fn loose_path_consistency_prunes() {
        let mut t = Tcsp::new(3);
        t.constrain(0, 1, Disjunction::new(vec![r(0, 2), r(10, 12)]));
        t.constrain(1, 2, Disjunction::single(r(0, 2)));
        t.constrain(0, 2, Disjunction::single(r(0, 5)));
        let f = t.loose_path_consistency().unwrap();
        // The disjunct [10,12] on (0,1) is impossible: composition with
        // (1,2) gives at least 10, exceeding the (0,2) bound of 5.
        let d01 = f
            .constraints
            .iter()
            .find(|(i, j, _)| (*i, *j) == (0, 1))
            .map(|(_, _, d)| d.clone())
            .unwrap();
        assert_eq!(d01.ranges(), &[r(0, 2)]);
        assert!(f.labelling_count() < t.labelling_count());
    }

    #[test]
    fn reversed_pairs_normalize() {
        let mut t = Tcsp::new(2);
        // Posted reversed: x0 - x1 in [-5, -3]  ==  x1 - x0 in [3, 5].
        t.constrain(1, 0, Disjunction::single(r(-5, -3)));
        match t.solve() {
            TcspOutcome::Consistent(x) => {
                assert!((3..=5).contains(&(x[1] - x[0])));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pure_stp_fast_path() {
        // All-singleton disjunctions behave like an STP.
        let mut t = Tcsp::new(3);
        t.constrain(0, 1, Disjunction::single(r(1, 4)));
        t.constrain(1, 2, Disjunction::single(r(2, 3)));
        assert_eq!(t.labelling_count(), 1);
        match t.solve() {
            TcspOutcome::Consistent(x) => assert!(t.satisfied_by(&x)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn conflicting_duplicate_pair_constraints() {
        let mut t = Tcsp::new(2);
        t.constrain(0, 1, Disjunction::single(r(0, 3)));
        t.constrain(0, 1, Disjunction::single(r(5, 9)));
        assert_eq!(t.solve(), TcspOutcome::Inconsistent);
    }
}

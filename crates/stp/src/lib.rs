//! Simple Temporal Problem (STP) networks, after Dechter, Meiri & Pearl,
//! *Temporal constraint networks* (Artificial Intelligence 49, 1991).
//!
//! An STP constrains pairs of real/integer variables by bounded differences
//! `lo ≤ x_j − x_i ≤ hi`. Its constraint graph maps to a *distance graph*
//! whose shortest paths yield the tightest implied constraints (the *minimal
//! network*); the STP is consistent iff the distance graph has no negative
//! cycle. Path consistency (here: Floyd–Warshall) is complete for STPs.
//!
//! This crate is the single-granularity constraint-propagation substrate of
//! the multi-granularity propagation algorithm in `tgm-core` (paper §3.2):
//! each granularity group `C_μ` of an event structure is an STP over tick
//! differences.
//!
//! # Example
//!
//! ```
//! use tgm_stp::{Stp, Range};
//!
//! let mut stp = Stp::new(3);
//! stp.constrain(0, 1, Range::new(10, 20)); // x1 - x0 in [10, 20]
//! stp.constrain(1, 2, Range::new(30, 40)); // x2 - x1 in [30, 40]
//! let min = stp.minimize().expect("consistent");
//! assert_eq!(min.range(0, 2), Range::new(40, 60)); // implied
//! let sol = min.solution();
//! assert!((10..=20).contains(&(sol[1] - sol[0])));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod network;
mod tcsp;

pub use network::{Inconsistent, MinimalNetwork, Range, Stp, INF, NEG_INF};
pub use tcsp::{Disjunction, Tcsp, TcspOutcome};

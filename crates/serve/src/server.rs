//! The serving core: a fixed worker pool behind a bounded admission queue,
//! fronted by an in-process [`Client`] and a TCP [`Server`].
//!
//! # Request path
//!
//! ```text
//! frame ──parse──▶ admission ──queue──▶ worker ──reply──▶ frame
//!                   │    │                │
//!                   │    └─ full ────────▶ Overloaded + retry_after_ms
//!                   ├─ tenant cap ───────▶ Overloaded + retry_after_ms
//!                   ├─ session quota ────▶ QuotaExceeded
//!                   └─ draining ─────────▶ Draining
//! ```
//!
//! Every admitted request executes under a [`Limits`] minted from its
//! tenant's [`Quotas`] (deadline measured from *admission*, so queue wait
//! counts against it) inside `catch_unwind`: a panicking worker answers
//! *that* request with a typed [`ErrorKind::WorkerPanic`] carrying the
//! tenant's flight-recorder dump, then picks up the next job — the pool
//! never shrinks and other tenants never notice.
//!
//! # Drain
//!
//! [`ServerCore::drain`] (and [`Server::drain`], which also stops the
//! acceptor) flips the draining flag (new work → [`ErrorKind::Draining`]),
//! closes the queue, waits for in-flight jobs to finish (they are already
//! bounded by their own deadlines), joins the workers, and returns one
//! final labelled telemetry frame per tenant so an operator's last
//! scrape is complete.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use std::collections::BTreeMap;

use tgm_core::ComplexEventType;
use tgm_events::minijson::write_escaped;
use tgm_events::{Event, EventSequence, EventType, TypeRegistry};
use tgm_limits::{fail, panic_message, Limits, Quotas};
use tgm_mining::{pipeline, DiscoveryProblem};
use tgm_tag::{build_tag, Completion, MatchSession, SessionStats};

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{error_response, ok_response, parse_request, ErrorKind, Request};
use crate::tenant::{SessionSlot, Tenant};

/// The failpoint site armed by the serve chaos suite; hit by every worker
/// at the top of every job, with the job's limits (so `Action::Cancel`
/// cancels exactly that request).
pub const WORKER_SITE: &str = "serve.worker";

/// Static configuration for a server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing engine work.
    pub workers: usize,
    /// Bounded queue depth between admission and the workers; a full
    /// queue sheds with `Overloaded`.
    pub queue_depth: usize,
    /// Quotas applied to tenants without an explicit override.
    pub default_quotas: Quotas,
    /// Per-tenant quota overrides by tenant name.
    pub tenant_quotas: Vec<(String, Quotas)>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_depth: 64,
            default_quotas: Quotas::unlimited(),
            tenant_quotas: Vec::new(),
        }
    }
}

struct Job {
    request: Request,
    tenant: Arc<Tenant>,
    limits: Limits,
    reply: SyncSender<String>,
}

/// The transport-independent serving core. [`Client`] calls it directly;
/// the TCP [`Server`] calls it per decoded frame.
pub struct ServerCore {
    config: ServerConfig,
    tenants: Mutex<BTreeMap<String, Arc<Tenant>>>,
    jobs: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    draining: AtomicBool,
    handled: AtomicU64,
}

impl ServerCore {
    /// Starts the worker pool and returns the shared core.
    pub fn start(config: ServerConfig) -> Arc<ServerCore> {
        // Telemetry (metrics + flight recorders) is the serve layer's
        // fault-attribution substrate, not an optional extra.
        tgm_obs::set_enabled(true);
        let workers = config.workers.max(1);
        let (tx, rx) = sync_channel::<Job>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let core = Arc::new(ServerCore {
            config,
            tenants: Mutex::new(BTreeMap::new()),
            jobs: Mutex::new(Some(tx)),
            workers: Mutex::new(Vec::new()),
            draining: AtomicBool::new(false),
            handled: AtomicU64::new(0),
        });
        let mut handles = core.workers.lock();
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("tgm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .unwrap_or_else(|e| panic!("spawning worker {i}: {e}")),
            );
        }
        drop(handles);
        core
    }

    /// An in-process client for this core.
    pub fn client(self: &Arc<Self>) -> Client {
        Client {
            core: Arc::clone(self),
        }
    }

    /// Total requests handled (any outcome, including sheds).
    pub fn requests_handled(&self) -> u64 {
        self.handled.load(Ordering::Acquire)
    }

    /// Total requests shed across all tenants.
    pub fn sheds(&self) -> u64 {
        self.tenants.lock().values().map(|t| t.sheds()).sum()
    }

    /// Whether the core is draining.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn tenant(&self, name: &str) -> Arc<Tenant> {
        let mut tenants = self.tenants.lock();
        if let Some(t) = tenants.get(name) {
            return Arc::clone(t);
        }
        let quotas = self
            .config
            .tenant_quotas
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, q)| *q)
            .unwrap_or(self.config.default_quotas);
        let t = Arc::new(Tenant::new(name, quotas));
        tenants.insert(name.to_string(), Arc::clone(&t));
        t
    }

    /// Handles one request payload, returning the response payload.
    /// Never panics and never returns a non-`tgm_serve/v1` document.
    pub fn handle(&self, payload: &[u8]) -> String {
        self.handled.fetch_add(1, Ordering::AcqRel);
        let payload = match std::str::from_utf8(payload) {
            Ok(p) => p,
            Err(e) => {
                return error_response(
                    ErrorKind::BadRequest,
                    &format!("payload is not UTF-8: {e}"),
                    None,
                    None,
                )
            }
        };
        let request = match parse_request(payload) {
            Ok(r) => r,
            Err(msg) => return error_response(ErrorKind::BadRequest, &msg, None, None),
        };
        if matches!(request, Request::Ping) {
            return ok_response("\"pong\":true");
        }
        let tenant = self.tenant(request.tenant().unwrap_or_default());
        if self.draining() {
            return error_response(
                ErrorKind::Draining,
                "server is draining; no new work admitted",
                None,
                None,
            );
        }
        // Stats is a cheap read of standing state — answered inline so an
        // operator can still scrape a saturated tenant.
        if let Request::Stats { openmetrics, .. } = request {
            let frame = tenant.stats_frame(openmetrics);
            let mut fields = String::from("\"frame\":");
            write_escaped(&mut fields, &frame);
            return ok_response(&fields);
        }
        // Session-open quota: a standing cap, not a load condition.
        if matches!(request, Request::SessionOpen { .. }) && tenant.session_quota_full() {
            return error_response(
                ErrorKind::QuotaExceeded,
                &format!(
                    "tenant `{}` is at its open-session quota",
                    tenant.name
                ),
                None,
                None,
            );
        }
        // Admission gate 1: the tenant's inflight cap.
        if let Err((kind, hint)) = tenant.try_admit() {
            return error_response(
                kind,
                &format!("tenant `{}` is over its inflight cap", tenant.name),
                Some(hint.as_millis() as u64),
                None,
            );
        }
        // The deadline starts at admission (queue wait counts), and every
        // request gets its own cancel token so chaos or future per-request
        // cancellation targets exactly one request.
        let limits = tenant
            .quotas
            .request_limits()
            .with_cancel(tgm_limits::CancelToken::new());
        let (reply_tx, reply_rx) = sync_channel::<String>(1);
        let job = Job {
            request,
            tenant: Arc::clone(&tenant),
            limits,
            reply: reply_tx,
        };
        // Admission gate 2: the bounded queue.
        let sent = match self.jobs.lock().as_ref() {
            Some(tx) => tx.try_send(job),
            None => {
                tenant.release();
                return error_response(
                    ErrorKind::Draining,
                    "server is draining; no new work admitted",
                    None,
                    None,
                );
            }
        };
        let response = match sent {
            Ok(()) => reply_rx.recv().unwrap_or_else(|_| {
                // The worker vanished without replying — contained as a
                // typed fault rather than a hung client.
                error_response(
                    ErrorKind::WorkerPanic,
                    "worker exited without a reply",
                    None,
                    tenant.dump().as_deref(),
                )
            }),
            Err(TrySendError::Full(_)) => {
                let hint = tenant.shed();
                error_response(
                    ErrorKind::Overloaded,
                    "admission queue is full",
                    Some(hint.as_millis() as u64),
                    None,
                )
            }
            Err(TrySendError::Disconnected(_)) => error_response(
                ErrorKind::Draining,
                "server is draining; no new work admitted",
                None,
                None,
            ),
        };
        tenant.release();
        response
    }

    /// Graceful drain: refuse new work, finish in-flight jobs, join the
    /// pool, and return one final telemetry frame per tenant (NDJSON).
    pub fn drain(&self) -> Vec<String> {
        self.draining.store(true, Ordering::Release);
        // Closing the queue lets workers exit once it empties.
        *self.jobs.lock() = None;
        let handles: Vec<JoinHandle<()>> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        self.tenants
            .lock()
            .values()
            .map(|t| t.stats_frame(false))
            .collect()
    }
}

/// An in-process handle to a [`ServerCore`] — same admission, limits, and
/// fault semantics as the TCP path, minus the framing.
#[derive(Clone)]
pub struct Client {
    core: Arc<ServerCore>,
}

impl Client {
    /// Sends one request payload; returns the response payload.
    pub fn request(&self, payload: &str) -> String {
        self.core.handle(payload.as_bytes())
    }

    /// Sends one request and parses the response.
    pub fn request_parsed(&self, payload: &str) -> Result<crate::proto::Response, String> {
        crate::proto::Response::parse(&self.request(payload))
    }
}

// -- worker pool ------------------------------------------------------------

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Holding the lock only serializes job *pickup*; execution is
        // parallel. `Err` means the queue closed: drain complete.
        let job = match rx.lock().recv() {
            Ok(j) => j,
            Err(_) => return,
        };
        let tenant = Arc::clone(&job.tenant);
        let reply = job.reply.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| execute(job)));
        let response = match outcome {
            Ok(resp) => resp,
            Err(panic) => {
                // Contain the panic to this request: record it in the
                // tenant's flight recorder, attach the dump, keep serving.
                let _g = tenant.scope.enter();
                tgm_obs::recorder::worker_panic(WORKER_SITE);
                tenant.scope.counter_add("serve.worker_panic", 1);
                tenant.account_panic();
                error_response(
                    ErrorKind::WorkerPanic,
                    &format!(
                        "worker panicked at {WORKER_SITE}: {}",
                        panic_message(&*panic)
                    ),
                    None,
                    tenant.dump().as_deref(),
                )
            }
        };
        // A receiver that gave up (deadline on the client side) is fine.
        let _ = reply.send(response);
    }
}

fn execute(job: Job) -> String {
    let tenant = job.tenant;
    let limits = job.limits;
    let _g = tenant.scope.enter();
    tenant.scope.counter_add("serve.requests", 1);
    fail::point(WORKER_SITE, Some(&limits));
    // An interrupt that already landed (cancel, queue wait past the
    // deadline) is answered before any engine work — this also covers
    // session ops, which run under the session's standing limits rather
    // than this request's.
    if let Err(i) = limits.check() {
        return interrupted(&tenant, i, "admission");
    }
    match job.request {
        Request::Ping | Request::Stats { .. } => {
            // Handled inline by `ServerCore::handle`; unreachable by
            // construction but kept total.
            ok_response("\"pong\":true")
        }
        Request::Match {
            structure,
            types,
            events,
            mut registry,
            ..
        } => {
            let phi: Vec<EventType> = types.iter().map(|n| registry.intern(n)).collect();
            let tag = build_tag(&ComplexEventType::new(structure, phi));
            let mut session = MatchSession::new(&tag)
                .with_limits(limits)
                .with_scope(tenant.scope.clone());
            session.push_batch(&events);
            let completions: Vec<Completion> = session.completed().collect();
            let (run, _) = session.finish();
            tenant.account(events.len(), 0);
            if let Some(i) = run.verdict.interrupt() {
                return interrupted(&tenant, i, "match");
            }
            let mut fields = completions_json(&completions);
            fields.push_str(&format!(
                ",\"events\":{},\"peak_configs\":{},\"expansions\":{}",
                run.stats.events, run.stats.peak_configs, run.stats.expansions
            ));
            ok_response(&fields)
        }
        Request::Mine {
            structure,
            events,
            reference,
            confidence,
            registry,
            ..
        } => {
            let n_events = events.len();
            let problem = DiscoveryProblem::new(structure, confidence, reference);
            let seq = EventSequence::from_events(events);
            let opts = pipeline::PipelineOptions::default();
            match pipeline::mine_bounded(&problem, &seq, &opts, &limits) {
                Err(wp) => {
                    tenant.account_panic();
                    error_response(
                        ErrorKind::WorkerPanic,
                        &wp.to_string(),
                        None,
                        tenant.dump().as_deref(),
                    )
                }
                Ok(mined) => {
                    tenant.account(n_events, 0);
                    if let Some(i) = mined.verdict.interrupt() {
                        return interrupted(&tenant, i, "mine");
                    }
                    let mut fields = String::from("\"solutions\":[");
                    for (i, sol) in mined.solutions.iter().enumerate() {
                        if i > 0 {
                            fields.push(',');
                        }
                        fields.push_str("{\"assignment\":[");
                        for (j, &t) in sol.assignment.iter().enumerate() {
                            if j > 0 {
                                fields.push(',');
                            }
                            write_escaped(&mut fields, registry.name(t));
                        }
                        fields.push_str(&format!(
                            "],\"frequency\":{},\"support\":{}}}",
                            sol.frequency, sol.support
                        ));
                    }
                    fields.push_str(&format!(
                        "],\"refs_total\":{},\"candidates_scanned\":{},\"tag_runs\":{}",
                        mined.stats.refs_total,
                        mined.stats.candidates_scanned,
                        mined.stats.tag_runs
                    ));
                    ok_response(&fields)
                }
            }
        }
        Request::SessionOpen {
            structure, types, ..
        } => {
            let mut registry = TypeRegistry::new();
            let phi: Vec<EventType> = types.iter().map(|n| registry.intern(n)).collect();
            let tag = Arc::new(build_tag(&ComplexEventType::new(structure, phi)));
            // Sessions outlive any single request, so they carry only the
            // tenant's standing frontier budget — never a deadline.
            let mut session_limits = Limits::none();
            if let Some(b) = tenant.quotas.budget() {
                session_limits = session_limits.with_budget(b);
            }
            let session = MatchSession::new(&tag)
                .with_limits(session_limits)
                .with_scope(tenant.scope.clone());
            let state = session.suspend();
            let id = tenant.next_session_id();
            tenant.sessions.lock().insert(
                id,
                SessionSlot {
                    tag,
                    state,
                    registry,
                    watermark: i64::MIN,
                    frontier: 0,
                    evicted_seen: 0,
                },
            );
            ok_response(&format!("\"session\":{id}"))
        }
        Request::SessionPush {
            session, events, names, ..
        } => {
            let Some(mut slot) = tenant.sessions.lock().remove(&session) else {
                return unknown_session(&tenant, session);
            };
            // Re-intern the batch into the session's own type universe.
            let mapped: Vec<Event> = events
                .iter()
                .map(|e| Event::new(slot.registry.intern(&names[e.ty.index()]), e.time))
                .collect();
            if mapped.first().is_some_and(|e| e.time < slot.watermark) {
                let watermark = slot.watermark;
                tenant.sessions.lock().insert(session, slot);
                return error_response(
                    ErrorKind::BadRequest,
                    &format!("events regress before the session watermark {watermark}"),
                    None,
                    None,
                );
            }
            let tag = Arc::clone(&slot.tag);
            let mut live = MatchSession::resume(&tag, slot.state);
            live.push_batch(&mapped);
            let completions: Vec<Completion> = live.completed().collect();
            let stats = live.stats();
            slot.watermark = mapped.last().map_or(slot.watermark, |e| e.time);
            slot.frontier = stats.frontier;
            let evicted_delta = stats.evicted_rows.saturating_sub(slot.evicted_seen);
            slot.evicted_seen = stats.evicted_rows;
            slot.state = live.suspend();
            tenant.sessions.lock().insert(session, slot);
            tenant.account(mapped.len(), evicted_delta);
            if let Some(i) = stats.interrupted {
                return interrupted(&tenant, i, "session.push");
            }
            let mut fields = completions_json(&completions);
            fields.push_str(&format!(",{}", stats_json(&stats)));
            ok_response(&fields)
        }
        Request::SessionClose { session, .. } => {
            let Some(slot) = tenant.sessions.lock().remove(&session) else {
                return unknown_session(&tenant, session);
            };
            let tag = Arc::clone(&slot.tag);
            let live = MatchSession::resume(&tag, slot.state);
            let stats = live.stats();
            let (run, _) = live.finish();
            let verdict = match run.verdict.interrupt() {
                None => "completed".to_string(),
                Some(i) => format!("{i:?}"),
            };
            let mut fields = stats_json(&stats);
            fields.push_str(",\"verdict\":");
            write_escaped(&mut fields, &verdict);
            ok_response(&fields)
        }
    }
}

fn unknown_session(tenant: &Tenant, session: u64) -> String {
    error_response(
        ErrorKind::UnknownSession,
        &format!(
            "tenant `{}` has no open session {session}",
            tenant.name
        ),
        None,
        None,
    )
}

/// A typed interrupt response: kind from the interrupt, flight dump
/// attached so the client sees what the engine was doing when it stopped.
fn interrupted(tenant: &Tenant, i: tgm_limits::Interrupt, op: &str) -> String {
    error_response(
        ErrorKind::from(i),
        &format!("{op} stopped early: {i:?}"),
        None,
        tenant.dump().as_deref(),
    )
}

fn completions_json(completions: &[Completion]) -> String {
    let mut out = String::from("\"completions\":[");
    for (i, c) in completions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"index\":{},\"at\":{}}}", c.index, c.at));
    }
    out.push(']');
    out
}

fn stats_json(s: &SessionStats) -> String {
    format!(
        "\"events\":{},\"completions\":{},\"frontier\":{},\"peak_frontier\":{},\
         \"expansions\":{},\"evicted_rows\":{},\"evictions\":{}",
        s.events, s.completions, s.frontier, s.peak_frontier, s.expansions, s.evicted_rows,
        s.evictions
    )
}

// -- TCP front end ----------------------------------------------------------

/// How often the acceptor polls for new connections and shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A TCP server speaking `tgm_serve/v1` frames over a [`ServerCore`].
pub struct Server {
    core: Arc<ServerCore>,
    local_addr: SocketAddr,
    stop_accept: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts accepting.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let core = ServerCore::start(config);
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop_accept = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop_accept);
            std::thread::Builder::new()
                .name("tgm-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &core, &stop))
                .map_err(std::io::Error::other)?
        };
        Ok(Server {
            core,
            local_addr,
            stop_accept,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared core (for in-process clients and counters).
    pub fn core(&self) -> &Arc<ServerCore> {
        &self.core
    }

    /// Stops accepting, drains the core, and returns the final per-tenant
    /// telemetry frames.
    pub fn drain(mut self) -> Vec<String> {
        self.stop_accept.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.core.drain()
    }
}

fn accept_loop(listener: &TcpListener, core: &Arc<ServerCore>, stop: &Arc<AtomicBool>) {
    loop {
        if stop.load(Ordering::Acquire) || crate::shutdown::requested() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let core = Arc::clone(core);
                let _ = std::thread::Builder::new()
                    .name("tgm-serve-conn".to_string())
                    .spawn(move || serve_conn(stream, &core));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// One connection: a frame loop. A poison frame (bad magic, bad length,
/// oversize) gets a typed `BadRequest` response and a close — the server
/// itself is unaffected.
fn serve_conn(stream: TcpStream, core: &Arc<ServerCore>) {
    let _ = stream.set_nonblocking(false);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_frame(&mut reader) {
            Ok(None) => return,
            Ok(Some(payload)) => {
                let response = core.handle(&payload);
                if write_frame(&mut writer, response.as_bytes()).is_err() {
                    return;
                }
            }
            Err(e @ (FrameError::BadHeader(_) | FrameError::Oversize { .. })) => {
                let response =
                    error_response(ErrorKind::BadRequest, &format!("bad frame: {e}"), None, None);
                let _ = write_frame(&mut writer, response.as_bytes());
                let _ = writer.flush();
                return;
            }
            Err(_) => return,
        }
    }
}

//! Process-wide graceful-shutdown token.
//!
//! One atomic flag, set by `Ctrl-C`/`SIGTERM` (when [`install`] has been
//! called) or programmatically by [`trigger`] — the latter is what CLI and
//! integration tests use, so drain behaviour is testable without
//! delivering real signals. Long-running loops ([`crate::Server`], the
//! CLI's `tgm stream` chunk loop) poll [`requested`] at their chunk
//! boundaries and switch to their bounded finalize path when it flips.
//!
//! The handler itself only stores to the atomic (the one operation that
//! is async-signal-safe); all draining work happens on the threads that
//! observe the flag.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);
static TRIGGERS: AtomicUsize = AtomicUsize::new(0);

/// Whether shutdown has been requested (by signal or [`trigger`]).
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Acquire)
}

/// Requests shutdown programmatically, exactly as a signal would.
pub fn trigger() {
    TRIGGERS.fetch_add(1, Ordering::AcqRel);
    REQUESTED.store(true, Ordering::Release);
}

/// Re-arms the token (test support: the flag is process-global).
pub fn reset() {
    REQUESTED.store(false, Ordering::Release);
}

/// How many times shutdown has been requested (a second `Ctrl-C` during a
/// drain means "stop waiting, finish now").
pub fn trigger_count() -> usize {
    TRIGGERS.load(Ordering::Acquire)
}

/// Installs `SIGINT`/`SIGTERM` handlers that [`trigger`] the token.
/// Idempotent; a no-op on non-Unix hosts (where only programmatic
/// triggering is available).
pub fn install() {
    if INSTALLED.swap(true, Ordering::AcqRel) {
        return;
    }
    sys::install_handlers();
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    //! The one unavoidable `unsafe` in the crate: registering a signal
    //! handler via libc's `signal(2)`, declared here directly so the
    //! workspace stays dependency-free. The handler body does nothing but
    //! an atomic store, which is async-signal-safe.

    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::TRIGGERS.fetch_add(1, Ordering::AcqRel);
        super::REQUESTED.store(true, Ordering::Release);
    }

    pub(super) fn install_handlers() {
        // SAFETY: `signal` is the C standard library's handler
        // registration; the handler passed performs only atomic stores.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub(super) fn install_handlers() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_sets_and_reset_clears() {
        reset();
        assert!(!requested());
        let before = trigger_count();
        trigger();
        assert!(requested());
        assert_eq!(trigger_count(), before + 1);
        reset();
        assert!(!requested());
    }
}

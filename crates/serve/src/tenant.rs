//! Per-tenant state: quotas, admission accounting, telemetry, sessions.
//!
//! Each tenant owns an [`ObsScope`] with a flight recorder (so a fault in
//! one tenant's request dumps *that tenant's* recent engine activity, not
//! a neighbour's) and a labelled [`Exporter`] whose frames carry
//! `tenant="<name>"` on every NDJSON and OpenMetrics sample — the
//! downstream `obs_report --validate-stream` checker tracks sequence
//! numbers per label set, so interleaved multi-tenant streams validate.
//!
//! Admission is two gates, both here:
//!
//! 1. **Inflight cap** (`Quotas::max_inflight`): a compare-exchange
//!    ticket; losing yields [`ErrorKind::Overloaded`] with a
//!    `retry_after_ms` hint from the deterministic jittered backoff in
//!    `tgm_limits::backoff`, seeded per tenant and escalating with the
//!    tenant's *consecutive* shed count (a successful admit resets it).
//! 2. **Session cap** (`Quotas::max_sessions`): checked at
//!    `session.open`; yields [`ErrorKind::QuotaExceeded`] — retrying does
//!    not help until the tenant closes a session, so no backoff hint.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tgm_events::TypeRegistry;
use tgm_limits::{backoff, Quotas};
use tgm_obs::{Exporter, ObsScope};
use tgm_tag::{SessionState, Tag};

use crate::proto::ErrorKind;

/// Flight-recorder capacity per tenant (power of two).
const RECORDER_CAP: usize = 64;

/// Base delay for the shed backoff hint.
const BACKOFF_BASE: Duration = Duration::from_millis(5);

/// Cap for the shed backoff hint.
const BACKOFF_CAP: Duration = Duration::from_millis(500);

/// A parked streaming session: the suspended matcher state plus the
/// automaton it must be resumed against and the tenant-visible bookkeeping.
///
/// Workers *remove* the slot from the map before resuming it and reinsert
/// it after suspending — so a panic mid-push destroys exactly one session
/// (the slot is already out of the map and is dropped with the unwound
/// stack) and can never poison the map or siblings.
pub struct SessionSlot {
    /// The automaton (shared so the slot is cheap to move around).
    pub tag: Arc<Tag>,
    /// The suspended matcher.
    pub state: SessionState,
    /// The session's type-name universe (push batches arrive with their
    /// own names and are re-interned into this registry).
    pub registry: TypeRegistry,
    /// High-water timestamp; pushes regressing below it are rejected.
    pub watermark: i64,
    /// Live frontier rows after the last push (for the tenant gauge).
    pub frontier: usize,
    /// Cumulative evicted rows already folded into the tenant totals
    /// (pushes report deltas against this).
    pub evicted_seen: u64,
}

/// One tenant's standing state inside a server.
pub struct Tenant {
    /// The tenant's wire name.
    pub name: String,
    /// The quotas admission enforces for this tenant.
    pub quotas: Quotas,
    /// The tenant's metric/recorder scope; entered around every request
    /// executed on its behalf.
    pub scope: ObsScope,
    exporter: Mutex<Exporter>,
    inflight: AtomicU32,
    shed_streak: AtomicU32,
    backoff_seed: u64,
    /// Open sessions by id. Slots are taken out while a worker operates
    /// on them (see [`SessionSlot`]).
    pub sessions: Mutex<BTreeMap<u64, SessionSlot>>,
    next_session: AtomicU64,
    events_total: AtomicU64,
    evicted_total: AtomicU64,
    shed_total: AtomicU64,
    requests_total: AtomicU64,
    panics_total: AtomicU64,
    born: Instant,
}

fn seed_from_name(name: &str) -> u64 {
    // FNV-1a; only needs to decorrelate tenants' jitter streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Tenant {
    /// Creates a tenant with its own recorder scope and labelled exporter.
    pub fn new(name: &str, quotas: Quotas) -> Self {
        let scope = ObsScope::with_recorder(RECORDER_CAP);
        let exporter = Exporter::new(scope.clone()).with_label("tenant", name);
        Tenant {
            name: name.to_string(),
            quotas,
            scope,
            exporter: Mutex::new(exporter),
            inflight: AtomicU32::new(0),
            shed_streak: AtomicU32::new(0),
            backoff_seed: seed_from_name(name),
            sessions: Mutex::new(BTreeMap::new()),
            next_session: AtomicU64::new(1),
            events_total: AtomicU64::new(0),
            evicted_total: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            panics_total: AtomicU64::new(0),
            born: Instant::now(),
        }
    }

    /// Tries to take an inflight ticket. On success the caller *must*
    /// balance with [`Tenant::release`]. On refusal, returns the error
    /// kind and the backoff hint for this shed.
    pub fn try_admit(&self) -> Result<(), (ErrorKind, Duration)> {
        let cap = self.quotas.max_inflight().unwrap_or(u32::MAX);
        let mut cur = self.inflight.load(Ordering::Acquire);
        loop {
            if cur >= cap {
                return Err((ErrorKind::Overloaded, self.shed()));
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.shed_streak.store(0, Ordering::Release);
                    self.requests_total.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns an inflight ticket taken by [`Tenant::try_admit`].
    pub fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Records a shed (any refusal after admission, e.g. a full queue)
    /// and returns the escalating, deterministic backoff hint.
    pub fn shed(&self) -> Duration {
        let attempt = self.shed_streak.fetch_add(1, Ordering::AcqRel);
        self.shed_total.fetch_add(1, Ordering::Relaxed);
        backoff::delay_for(self.backoff_seed, attempt, BACKOFF_BASE, BACKOFF_CAP)
    }

    /// Current inflight requests.
    pub fn inflight(&self) -> u32 {
        self.inflight.load(Ordering::Acquire)
    }

    /// Total requests shed so far.
    pub fn sheds(&self) -> u64 {
        self.shed_total.load(Ordering::Acquire)
    }

    /// Allocates the next session id.
    pub fn next_session_id(&self) -> u64 {
        self.next_session.fetch_add(1, Ordering::AcqRel)
    }

    /// Whether opening one more session would exceed the quota.
    pub fn session_quota_full(&self) -> bool {
        match self.quotas.max_sessions() {
            Some(cap) => self.sessions.lock().len() as u32 >= cap,
            None => false,
        }
    }

    /// Bumps the tenant's event/eviction totals after an engine op.
    pub fn account(&self, events: usize, evicted_delta: u64) {
        self.events_total.fetch_add(events as u64, Ordering::Relaxed);
        self.evicted_total.fetch_add(evicted_delta, Ordering::Relaxed);
    }

    /// Records a contained worker panic on this tenant's behalf.
    pub fn account_panic(&self) {
        self.panics_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Emits the tenant's next telemetry frame (NDJSON line or an
    /// OpenMetrics block), stamped with the `tenant` label and carrying
    /// the gauge set the stream validator requires plus the serve-layer
    /// admission gauges.
    pub fn stats_frame(&self, openmetrics: bool) -> String {
        let mut ex = self.exporter.lock();
        let mut frame = ex.frame();
        let events = self.events_total.load(Ordering::Acquire);
        let frontier: usize = self
            .sessions
            .lock()
            .values()
            .map(|s| s.frontier)
            .sum();
        let secs = self.born.elapsed().as_secs_f64();
        frame.set_gauge("frontier", frontier as f64);
        frame.set_gauge("events_total", events as f64);
        frame.set_gauge(
            "events_per_sec",
            if secs > 0.0 { events as f64 / secs } else { 0.0 },
        );
        frame.set_gauge(
            "evicted_rows_total",
            self.evicted_total.load(Ordering::Acquire) as f64,
        );
        // The serve layer has no wall-clock watermark; emit the same -1
        // sentinel `tgm stream` uses before its first watermark.
        frame.set_gauge("watermark_lag", -1.0);
        frame.set_gauge("inflight", f64::from(self.inflight()));
        frame.set_gauge("sessions_open", self.sessions.lock().len() as f64);
        frame.set_gauge("shed_total", self.sheds() as f64);
        frame.set_gauge(
            "worker_panics_total",
            self.panics_total.load(Ordering::Acquire) as f64,
        );
        frame.set_gauge(
            "requests_total",
            self.requests_total.load(Ordering::Acquire) as f64,
        );
        if openmetrics {
            frame.to_openmetrics()
        } else {
            frame.to_ndjson()
        }
    }

    /// Takes the tenant's flight-recorder dump, rendered, if the recorder
    /// holds anything.
    pub fn dump(&self) -> Option<String> {
        self.scope.take_dump().map(|d| d.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_cap_sheds_with_escalating_hints() {
        let t = Tenant::new("acme", Quotas::unlimited().with_max_inflight(2));
        assert!(t.try_admit().is_ok());
        assert!(t.try_admit().is_ok());
        let (kind, d1) = t.try_admit().unwrap_err();
        assert_eq!(kind, ErrorKind::Overloaded);
        let (_, d2) = t.try_admit().unwrap_err();
        // Deterministic: same streak position ⇒ same hint on a fresh
        // identical tenant.
        let t2 = Tenant::new("acme", Quotas::unlimited().with_max_inflight(2));
        assert!(t2.try_admit().is_ok());
        assert!(t2.try_admit().is_ok());
        assert_eq!(t2.try_admit().unwrap_err().1, d1);
        assert_eq!(t2.try_admit().unwrap_err().1, d2);
        assert_eq!(t.sheds(), 2);
        // An admit resets the streak.
        t.release();
        assert!(t.try_admit().is_ok());
        assert_eq!(t.try_admit().unwrap_err().1, d1);
    }

    #[test]
    fn different_tenants_get_decorrelated_hints() {
        let a = Tenant::new("tenant-a", Quotas::unlimited().with_max_inflight(0));
        let b = Tenant::new("tenant-b", Quotas::unlimited().with_max_inflight(0));
        let hints_a: Vec<Duration> = (0..8).map(|_| a.try_admit().unwrap_err().1).collect();
        let hints_b: Vec<Duration> = (0..8).map(|_| b.try_admit().unwrap_err().1).collect();
        assert_ne!(hints_a, hints_b);
    }

    #[test]
    fn stats_frame_is_labelled_and_has_required_gauges() {
        let t = Tenant::new("acme", Quotas::unlimited());
        t.account(42, 3);
        let line = t.stats_frame(false);
        assert!(line.contains("\"labels\":{\"tenant\":\"acme\"}"), "{line}");
        for g in [
            "\"frontier\":",
            "\"events_total\":",
            "\"events_per_sec\":",
            "\"evicted_rows_total\":",
            "\"watermark_lag\":",
            "\"inflight\":",
            "\"shed_total\":",
        ] {
            assert!(line.contains(g), "missing {g} in {line}");
        }
        let om = t.stats_frame(true);
        assert!(om.contains("tgm_frontier{tenant=\"acme\"}"), "{om}");
    }
}

//! The `tgm_serve/v1` wire framing.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! tgm1 <len>\n<len bytes of JSON payload>
//! ```
//!
//! The header is ASCII (`tgm1`, one space, the payload length in decimal,
//! one `\n`), so a frame stream is inspectable with a pager, and the
//! payload stays the workspace's existing JSON vocabulary. Framing exists
//! because the protocol multiplexes *sessions* over long-lived
//! connections: responses must be delimited without sniffing JSON
//! boundaries.
//!
//! # Hostile-input posture
//!
//! The decoder is written to survive arbitrary bytes (proptested in
//! `tests/frame_fuzz.rs`):
//!
//! * the length prefix is validated against [`MAX_FRAME_LEN`] **before any
//!   payload allocation** — a `tgm1 99999999999…` header is rejected from
//!   its digits alone, mirroring the minijson depth-limit fix (an attacker
//!   must not pick our allocation sizes);
//! * headers are capped at [`MAX_HEADER_LEN`] bytes, so an unterminated
//!   header cannot buffer unboundedly;
//! * every malformed shape is a typed [`FrameError`], never a panic.

use std::io::{self, Read, Write};

/// Hard cap on one frame's payload, checked before allocation (16 MiB:
/// generous for event batches, far below anything that could distress the
/// host).
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Magic + space + decimal u64 + newline can never legitimately exceed
/// this many bytes.
pub const MAX_HEADER_LEN: usize = 4 + 1 + 20 + 1;

const MAGIC: &[u8] = b"tgm1 ";

/// Why a frame could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The header does not start with `tgm1 ` or its length is not a
    /// plain decimal.
    BadHeader(String),
    /// The declared payload length exceeds [`MAX_FRAME_LEN`]; detected
    /// before allocating.
    Oversize {
        /// The declared length.
        declared: u64,
    },
    /// The stream ended mid-frame (header or payload).
    Truncated,
    /// Reading from the transport failed.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadHeader(msg) => write!(f, "bad frame header: {msg}"),
            FrameError::Oversize { declared } => write!(
                f,
                "frame length {declared} exceeds the {MAX_FRAME_LEN}-byte cap"
            ),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Io(e) => write!(f, "frame transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e.to_string())
    }
}

/// Writes one frame (header + payload) to `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    w.write_all(MAGIC)?;
    w.write_all(payload.len().to_string().as_bytes())?;
    w.write_all(b"\n")?;
    w.write_all(payload)?;
    w.flush()
}

/// Decodes one frame from the front of `buf` without consuming it.
///
/// Returns `Ok(None)` when `buf` holds a valid but incomplete prefix
/// (read more bytes and retry); `Ok(Some((consumed, payload)))` when a
/// whole frame is present. Never allocates for the payload — the returned
/// slice borrows `buf` — and never inspects bytes past the first frame.
pub fn decode(buf: &[u8]) -> Result<Option<(usize, &[u8])>, FrameError> {
    // Header: magic first (also rejects partial non-magic prefixes early).
    let probe = buf.len().min(MAGIC.len());
    if buf[..probe] != MAGIC[..probe] {
        return Err(FrameError::BadHeader(
            "missing `tgm1 ` magic".to_string(),
        ));
    }
    let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
        if buf.len() > MAX_HEADER_LEN {
            return Err(FrameError::BadHeader(
                "unterminated header".to_string(),
            ));
        }
        return Ok(None);
    };
    if nl > MAX_HEADER_LEN {
        return Err(FrameError::BadHeader("header too long".to_string()));
    }
    if nl < MAGIC.len() {
        return Err(FrameError::BadHeader("missing `tgm1 ` magic".to_string()));
    }
    let digits = &buf[MAGIC.len()..nl];
    let len = parse_len(digits)?;
    // The cap check happens here, on the parsed number — before the
    // caller could possibly size a buffer from it.
    if len > MAX_FRAME_LEN as u64 {
        return Err(FrameError::Oversize { declared: len });
    }
    let len = len as usize;
    let start = nl + 1;
    if buf.len() < start + len {
        return Ok(None);
    }
    Ok(Some((start + len, &buf[start..start + len])))
}

fn parse_len(digits: &[u8]) -> Result<u64, FrameError> {
    if digits.is_empty() || digits.len() > 20 {
        return Err(FrameError::BadHeader("bad length field".to_string()));
    }
    let mut n: u64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return Err(FrameError::BadHeader("bad length field".to_string()));
        }
        n = n
            .checked_mul(10)
            .and_then(|n| n.checked_add(u64::from(b - b'0')))
            .ok_or(FrameError::Oversize { declared: u64::MAX })?;
    }
    Ok(n)
}

/// Reads one frame from a blocking reader. `Ok(None)` on clean EOF at a
/// frame boundary; [`FrameError::Truncated`] on EOF mid-frame.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    // Header, byte by byte (headers are tiny; the payload read below is
    // the bulk transfer).
    let mut header = Vec::with_capacity(MAX_HEADER_LEN);
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte)? {
            0 => {
                if header.is_empty() {
                    return Ok(None);
                }
                return Err(FrameError::Truncated);
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                if header.len() >= MAX_HEADER_LEN {
                    return Err(FrameError::BadHeader("header too long".to_string()));
                }
                header.push(byte[0]);
            }
        }
    }
    if header.len() < MAGIC.len() || &header[..MAGIC.len()] != MAGIC {
        return Err(FrameError::BadHeader("missing `tgm1 ` magic".to_string()));
    }
    let len = parse_len(&header[MAGIC.len()..])?;
    if len > MAX_FRAME_LEN as u64 {
        // Declared size rejected before the allocation below.
        return Err(FrameError::Oversize { declared: len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e.to_string())
        }
    })?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"ping\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let (used, p) = decode(&buf).unwrap().unwrap();
        assert_eq!(p, b"{\"op\":\"ping\"}");
        let (used2, p2) = decode(&buf[used..]).unwrap().unwrap();
        assert_eq!(p2, b"");
        assert_eq!(used + used2, buf.len());

        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"op\":\"ping\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn incomplete_prefixes_ask_for_more() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        for cut in 0..buf.len() {
            assert_eq!(decode(&buf[..cut]).unwrap(), None, "cut {cut}");
        }
    }

    #[test]
    fn oversize_rejected_from_digits_alone() {
        // No payload bytes present: the declared length alone must trip.
        let hdr = format!("tgm1 {}\n", MAX_FRAME_LEN + 1);
        assert!(matches!(
            decode(hdr.as_bytes()),
            Err(FrameError::Oversize { .. })
        ));
        // Absurd 20-digit length overflowing through checked math.
        assert!(matches!(
            decode(b"tgm1 99999999999999999999\n"),
            Err(FrameError::Oversize { .. })
        ));
        let mut r = hdr.as_bytes();
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Oversize { .. })
        ));
    }

    #[test]
    fn malformed_headers_are_typed_errors() {
        for bad in [
            &b"tgmX 5\nhello"[..],
            b"tgm1 5x\nhello",
            b"tgm1 \nhello",
            b"http/1.1 200 OK\n",
            b"tgm1\n",
        ] {
            assert!(
                matches!(decode(bad), Err(FrameError::BadHeader(_))),
                "{bad:?}"
            );
            let mut r = bad;
            assert!(matches!(read_frame(&mut r), Err(FrameError::BadHeader(_))));
        }
    }

    #[test]
    fn truncated_stream_reports_truncated() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world").unwrap();
        let mut r = &buf[..buf.len() - 3];
        assert_eq!(read_frame(&mut r), Err(FrameError::Truncated));
        let mut r = &b"tgm1 5"[..]; // EOF inside the header
        assert_eq!(read_frame(&mut r), Err(FrameError::Truncated));
    }
}

//! The `tgm_serve/v1` request/response vocabulary.
//!
//! Payloads are JSON (parsed with the workspace's depth-limited
//! `minijson`, so hostile nesting is rejected, not recursed into). Every
//! request carries `"op"` and — except `ping` — `"tenant"`. Responses are
//! `{"ok":true,"result":{…}}` or `{"ok":false,"error":{…}}`; the error
//! object always has a `kind` from [`ErrorKind`]'s closed set, may carry
//! `retry_after_ms` (sheds) and `dump` (the tenant's flight-recorder
//! contents, attached to faults), and never leaks a raw panic backtrace.
//!
//! Request shapes:
//!
//! ```json
//! {"op":"ping"}
//! {"op":"match","tenant":"t1","structure":{…},"types":["rise","report","fall"],
//!  "events":[{"ty":"rise","time":208800},…]}
//! {"op":"mine","tenant":"t1","structure":{…},"events":[…],
//!  "reference":"rise","confidence":0.5}
//! {"op":"session.open","tenant":"t1","structure":{…},"types":[…]}
//! {"op":"session.push","tenant":"t1","session":3,"events":[…]}
//! {"op":"session.close","tenant":"t1","session":3}
//! {"op":"stats","tenant":"t1","format":"ndjson"}
//! ```
//!
//! `structure` uses the same document shape as `tgm match` files
//! (`variables` + `constraints`); `grans` (optional, array of granularity
//! spec strings, e.g. `"3 month"`) registers custom granularities for the
//! request, mirroring the CLI's `--gran`.

use tgm_core::json::structure_from_value;
use tgm_core::EventStructure;
use tgm_events::minijson::{self, write_escaped, Value};
use tgm_events::{Event, EventType, TypeRegistry};
use tgm_granularity::Calendar;
use tgm_limits::Interrupt;

/// The closed set of error kinds a `tgm_serve/v1` response can carry.
/// Everything a client can observe going wrong maps onto one of these —
/// there is no untyped "internal error" escape hatch (asserted by the
/// saturation gate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request payload is malformed (bad JSON, bad shape, unknown
    /// granularity, inconsistent structure, out-of-order events).
    BadRequest,
    /// The admission controller shed the request: the tenant's inflight
    /// quota or the global queue is full. Retry after `retry_after_ms`.
    Overloaded,
    /// A standing per-tenant quota (open sessions) is at its cap; retrying
    /// later will not help until the tenant closes something.
    QuotaExceeded,
    /// The request's deadline passed mid-execution.
    DeadlineExceeded,
    /// The request's work budget was exhausted mid-execution.
    BudgetExhausted,
    /// The request's cancel token fired.
    Cancelled,
    /// A worker panicked executing this request; the panic was contained
    /// to this request, the response carries the tenant's flight dump.
    WorkerPanic,
    /// `session` does not name an open session of this tenant.
    UnknownSession,
    /// The server is draining: no new work is admitted.
    Draining,
}

impl ErrorKind {
    /// The wire name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "BadRequest",
            ErrorKind::Overloaded => "Overloaded",
            ErrorKind::QuotaExceeded => "QuotaExceeded",
            ErrorKind::DeadlineExceeded => "DeadlineExceeded",
            ErrorKind::BudgetExhausted => "BudgetExhausted",
            ErrorKind::Cancelled => "Cancelled",
            ErrorKind::WorkerPanic => "WorkerPanic",
            ErrorKind::UnknownSession => "UnknownSession",
            ErrorKind::Draining => "Draining",
        }
    }

    /// Parses a wire name back into the kind (for typed clients).
    pub fn from_wire(s: &str) -> Option<Self> {
        Some(match s {
            "BadRequest" => ErrorKind::BadRequest,
            "Overloaded" => ErrorKind::Overloaded,
            "QuotaExceeded" => ErrorKind::QuotaExceeded,
            "DeadlineExceeded" => ErrorKind::DeadlineExceeded,
            "BudgetExhausted" => ErrorKind::BudgetExhausted,
            "Cancelled" => ErrorKind::Cancelled,
            "WorkerPanic" => ErrorKind::WorkerPanic,
            "UnknownSession" => ErrorKind::UnknownSession,
            "Draining" => ErrorKind::Draining,
            _ => return None,
        })
    }
}

impl From<Interrupt> for ErrorKind {
    fn from(i: Interrupt) -> Self {
        match i {
            Interrupt::DeadlineExceeded => ErrorKind::DeadlineExceeded,
            Interrupt::BudgetExhausted => ErrorKind::BudgetExhausted,
            Interrupt::Cancelled => ErrorKind::Cancelled,
        }
    }
}

/// A parsed, validated request. Structure documents are resolved at parse
/// time (cheap); automaton construction happens in the worker.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe; answered inline.
    Ping,
    /// One batch match over a complete event list.
    Match {
        /// The requesting tenant.
        tenant: String,
        /// The event structure to match.
        structure: EventStructure,
        /// Variable-to-type assignment (names, one per variable).
        types: Vec<String>,
        /// The events, sorted by time.
        events: Vec<Event>,
        /// The request's interned type names (index = `EventType`).
        registry: TypeRegistry,
    },
    /// One bounded pipeline-mine run.
    Mine {
        /// The requesting tenant.
        tenant: String,
        /// The event structure to mine assignments for.
        structure: EventStructure,
        /// The events, sorted by time.
        events: Vec<Event>,
        /// The reference (root) event type.
        reference: EventType,
        /// Minimum confidence in `[0, 1]`.
        confidence: f64,
        /// The request's interned type names.
        registry: TypeRegistry,
    },
    /// Opens a long-lived streaming session.
    SessionOpen {
        /// The requesting tenant.
        tenant: String,
        /// The event structure the session matches.
        structure: EventStructure,
        /// Variable-to-type assignment (names).
        types: Vec<String>,
    },
    /// Pushes a micro-batch into an open session.
    SessionPush {
        /// The requesting tenant.
        tenant: String,
        /// The session id from `session.open`.
        session: u64,
        /// The events, sorted by time.
        events: Vec<Event>,
        /// Names for the events' interned types, so the session can map
        /// them onto its own registry.
        names: Vec<String>,
    },
    /// Closes a session, returning its final stats.
    SessionClose {
        /// The requesting tenant.
        tenant: String,
        /// The session id.
        session: u64,
    },
    /// Per-tenant telemetry frame.
    Stats {
        /// The requesting tenant.
        tenant: String,
        /// `"ndjson"` (default) or `"openmetrics"`.
        openmetrics: bool,
    },
}

impl Request {
    /// The tenant the request belongs to (`None` for `ping`).
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Request::Ping => None,
            Request::Match { tenant, .. }
            | Request::Mine { tenant, .. }
            | Request::SessionOpen { tenant, .. }
            | Request::SessionPush { tenant, .. }
            | Request::SessionClose { tenant, .. }
            | Request::Stats { tenant, .. } => Some(tenant),
        }
    }
}

fn str_field(doc: &Value, name: &str) -> Result<String, String> {
    doc.get(name)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{name}`"))
}

/// Builds the request's calendar: the standard one plus any `grans` spec
/// strings (the CLI's `--gran` DSL).
fn calendar_for(doc: &Value) -> Result<Calendar, String> {
    let mut cal = Calendar::standard();
    if let Some(specs) = doc.get("grans") {
        let specs = specs
            .as_array()
            .ok_or_else(|| "`grans` must be an array of spec strings".to_string())?;
        for spec in specs {
            let spec = spec
                .as_str()
                .ok_or_else(|| "`grans` entries must be strings".to_string())?;
            let g = tgm_granularity::parse::parse_granularity(spec).map_err(|e| e.to_string())?;
            cal.register(g).map_err(|e| e.to_string())?;
        }
    }
    Ok(cal)
}

fn structure_field(doc: &Value, cal: &Calendar) -> Result<EventStructure, String> {
    let s = doc
        .get("structure")
        .ok_or_else(|| "missing `structure` object".to_string())?;
    structure_from_value(s, cal).map_err(|e| e.to_string())
}

fn types_field(doc: &Value) -> Result<Vec<String>, String> {
    doc.get("types")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing `types` array".to_string())?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| "`types` entries must be strings".to_string())
        })
        .collect()
}

/// Parses the `events` array, interning `ty` names into `reg`. Events are
/// sorted by time (the engines require non-decreasing timestamps).
fn events_field(doc: &Value, reg: &mut TypeRegistry) -> Result<Vec<Event>, String> {
    let arr = doc
        .get("events")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing `events` array".to_string())?;
    let mut events = Vec::with_capacity(arr.len());
    for (i, e) in arr.iter().enumerate() {
        let ty = e
            .get("ty")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing string `ty`"))?;
        let time = e
            .get("time")
            .and_then(Value::as_i64)
            .ok_or_else(|| format!("event {i}: missing integer `time`"))?;
        events.push(Event::new(reg.intern(ty), time));
    }
    events.sort_by_key(|e| e.time);
    Ok(events)
}

fn session_field(doc: &Value) -> Result<u64, String> {
    doc.get("session")
        .and_then(Value::as_u64)
        .ok_or_else(|| "missing u64 field `session`".to_string())
}

/// Parses one request payload. Errors are user-facing strings that the
/// server wraps as [`ErrorKind::BadRequest`].
pub fn parse_request(payload: &str) -> Result<Request, String> {
    let doc = minijson::parse(payload).map_err(|e| e.to_string())?;
    let op = str_field(&doc, "op")?;
    if op == "ping" {
        return Ok(Request::Ping);
    }
    let tenant = str_field(&doc, "tenant")?;
    if tenant.is_empty() {
        return Err("`tenant` must be non-empty".to_string());
    }
    match op.as_str() {
        "match" => {
            let cal = calendar_for(&doc)?;
            let structure = structure_field(&doc, &cal)?;
            let types = types_field(&doc)?;
            if types.len() != structure.len() {
                return Err(format!(
                    "`types` lists {} types but the structure has {} variables",
                    types.len(),
                    structure.len()
                ));
            }
            let mut registry = TypeRegistry::new();
            let events = events_field(&doc, &mut registry)?;
            Ok(Request::Match {
                tenant,
                structure,
                types,
                events,
                registry,
            })
        }
        "mine" => {
            let cal = calendar_for(&doc)?;
            let structure = structure_field(&doc, &cal)?;
            let mut registry = TypeRegistry::new();
            let events = events_field(&doc, &mut registry)?;
            let ref_name = str_field(&doc, "reference")?;
            let reference = registry
                .get(&ref_name)
                .ok_or_else(|| format!("reference type `{ref_name}` does not occur in the events"))?;
            let confidence = match doc.get("confidence") {
                None => 0.5,
                Some(Value::Int(n)) => *n as f64,
                Some(Value::Float(f)) => *f,
                Some(_) => return Err("`confidence` must be a number".to_string()),
            };
            if !(0.0..=1.0).contains(&confidence) {
                return Err(format!("`confidence` must be within [0, 1], got {confidence}"));
            }
            Ok(Request::Mine {
                tenant,
                structure,
                events,
                reference,
                confidence,
                registry,
            })
        }
        "session.open" => {
            let cal = calendar_for(&doc)?;
            let structure = structure_field(&doc, &cal)?;
            let types = types_field(&doc)?;
            if types.len() != structure.len() {
                return Err(format!(
                    "`types` lists {} types but the structure has {} variables",
                    types.len(),
                    structure.len()
                ));
            }
            Ok(Request::SessionOpen {
                tenant,
                structure,
                types,
            })
        }
        "session.push" => {
            let session = session_field(&doc)?;
            let mut registry = TypeRegistry::new();
            let events = events_field(&doc, &mut registry)?;
            let names = (0..events
                .iter()
                .map(|e| e.ty.0 + 1)
                .max()
                .unwrap_or(0))
                .map(|i| registry.name(EventType(i)).to_string())
                .collect();
            Ok(Request::SessionPush {
                tenant,
                session,
                events,
                names,
            })
        }
        "session.close" => Ok(Request::SessionClose {
            tenant,
            session: session_field(&doc)?,
        }),
        "stats" => {
            let openmetrics = match doc.get("format").and_then(Value::as_str) {
                None | Some("ndjson") => false,
                Some("openmetrics") => true,
                Some(other) => {
                    return Err(format!(
                        "bad `format` `{other}` (expected ndjson or openmetrics)"
                    ))
                }
            };
            Ok(Request::Stats { tenant, openmetrics })
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

// -- response building ------------------------------------------------------

/// Renders `{"ok":true,"result":{<fields>}}`; `fields` is pre-rendered
/// JSON object *content* (no braces).
pub fn ok_response(fields: &str) -> String {
    format!("{{\"ok\":true,\"result\":{{{fields}}}}}")
}

/// Renders a typed error response.
pub fn error_response(
    kind: ErrorKind,
    message: &str,
    retry_after_ms: Option<u64>,
    dump: Option<&str>,
) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"ok\":false,\"error\":{\"kind\":\"");
    out.push_str(kind.as_str());
    out.push_str("\",\"message\":");
    write_escaped(&mut out, message);
    if let Some(ms) = retry_after_ms {
        out.push_str(",\"retry_after_ms\":");
        out.push_str(&ms.to_string());
    }
    if let Some(d) = dump {
        out.push_str(",\"dump\":");
        write_escaped(&mut out, d);
    }
    out.push_str("}}");
    out
}

/// A parsed response, for typed clients (tests, the chaos client, the
/// saturation benchmark).
#[derive(Clone, Debug)]
pub enum Response {
    /// `{"ok":true,…}` with the raw result document.
    Ok(Value),
    /// `{"ok":false,…}` with the typed error.
    Err {
        /// The error kind (closed set).
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
        /// Backoff hint for sheds.
        retry_after_ms: Option<u64>,
        /// Flight-recorder dump attached to faults.
        dump: Option<String>,
    },
}

impl Response {
    /// Parses a response payload. `Err(String)` means the payload is not
    /// a well-formed `tgm_serve/v1` response at all — the untyped failure
    /// class the saturation gate asserts never happens.
    pub fn parse(payload: &str) -> Result<Response, String> {
        let doc = minijson::parse(payload).map_err(|e| e.to_string())?;
        match doc.get("ok") {
            Some(Value::Bool(true)) => Ok(Response::Ok(
                doc.get("result").cloned().unwrap_or(Value::Null),
            )),
            Some(Value::Bool(false)) => {
                let err = doc.get("error").ok_or("missing `error` object")?;
                let kind_name = err
                    .get("kind")
                    .and_then(Value::as_str)
                    .ok_or("missing error `kind`")?;
                let kind = ErrorKind::from_wire(kind_name)
                    .ok_or_else(|| format!("unknown error kind `{kind_name}`"))?;
                Ok(Response::Err {
                    kind,
                    message: err
                        .get("message")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    retry_after_ms: err.get("retry_after_ms").and_then(Value::as_u64),
                    dump: err
                        .get("dump")
                        .and_then(Value::as_str)
                        .map(str::to_string),
                })
            }
            _ => Err("missing bool `ok`".to_string()),
        }
    }

    /// The result document, if this is an ok response.
    pub fn result(&self) -> Option<&Value> {
        match self {
            Response::Ok(v) => Some(v),
            Response::Err { .. } => None,
        }
    }

    /// The error kind, if this is an error response.
    pub fn error_kind(&self) -> Option<ErrorKind> {
        match self {
            Response::Ok(_) => None,
            Response::Err { kind, .. } => Some(*kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRUCTURE: &str = r#""structure":{"variables":["rise","report","fall"],
        "constraints":[{"from":0,"to":1,"lo":1,"hi":1,"granularity":"business-day"},
                       {"from":1,"to":2,"lo":0,"hi":1,"granularity":"week"}]}"#;

    #[test]
    fn parses_match_request() {
        let payload = format!(
            r#"{{"op":"match","tenant":"t1",{STRUCTURE},
                "types":["rise","report","fall"],
                "events":[{{"ty":"report","time":250000}},{{"ty":"rise","time":208800}}]}}"#
        );
        let req = parse_request(&payload).unwrap();
        match req {
            Request::Match {
                tenant,
                structure,
                types,
                events,
                ..
            } => {
                assert_eq!(tenant, "t1");
                assert_eq!(structure.len(), 3);
                assert_eq!(types, ["rise", "report", "fall"]);
                // Sorted by time.
                assert_eq!(events[0].time, 208800);
                assert_eq!(events[1].time, 250000);
            }
            _ => panic!("wrong op"),
        }
    }

    #[test]
    fn custom_grans_resolve() {
        let payload = r#"{"op":"session.open","tenant":"t1","grans":["3 month"],
            "structure":{"variables":["a","b"],
                "constraints":[{"from":0,"to":1,"lo":1,"hi":1,"granularity":"3 month"}]},
            "types":["x","y"]}"#;
        assert!(matches!(
            parse_request(payload),
            Ok(Request::SessionOpen { .. })
        ));
    }

    #[test]
    fn bad_requests_are_typed_strings() {
        for (payload, want) in [
            ("{", "JSON"),
            (r#"{"op":"match"}"#, "tenant"),
            (r#"{"op":"nope","tenant":"t"}"#, "unknown op"),
            (r#"{"op":"match","tenant":"t"}"#, "structure"),
            (r#"{"op":"session.push","tenant":"t","events":[]}"#, "session"),
            (r#"{"op":"stats","tenant":"t","format":"xml"}"#, "format"),
        ] {
            let err = parse_request(payload).unwrap_err();
            assert!(err.contains(want), "`{err}` should mention {want}");
        }
    }

    #[test]
    fn response_round_trip() {
        let ok = ok_response("\"pong\":true");
        match Response::parse(&ok).unwrap() {
            Response::Ok(v) => assert_eq!(v.get("pong"), Some(&Value::Bool(true))),
            _ => panic!("not ok"),
        }
        let err = error_response(ErrorKind::Overloaded, "shed", Some(12), Some("dump text"));
        match Response::parse(&err).unwrap() {
            Response::Err {
                kind,
                retry_after_ms,
                dump,
                ..
            } => {
                assert_eq!(kind, ErrorKind::Overloaded);
                assert_eq!(retry_after_ms, Some(12));
                assert_eq!(dump.as_deref(), Some("dump text"));
            }
            _ => panic!("not err"),
        }
        assert!(Response::parse("{\"whatever\":1}").is_err());
    }

    #[test]
    fn every_kind_round_trips() {
        for kind in [
            ErrorKind::BadRequest,
            ErrorKind::Overloaded,
            ErrorKind::QuotaExceeded,
            ErrorKind::DeadlineExceeded,
            ErrorKind::BudgetExhausted,
            ErrorKind::Cancelled,
            ErrorKind::WorkerPanic,
            ErrorKind::UnknownSession,
            ErrorKind::Draining,
        ] {
            assert_eq!(ErrorKind::from_wire(kind.as_str()), Some(kind));
        }
    }
}

//! Multi-tenant serving front end for the tgm engines.
//!
//! The paper's algorithms (TAG matching, bounded mining) are libraries;
//! this crate is the *operational* layer that lets many tenants share one
//! process safely:
//!
//! * **Protocol** ([`proto`]): `tgm_serve/v1` — JSON payloads carrying
//!   batch match, bounded mine, and long-lived streaming-session
//!   commands, with a closed set of typed error kinds.
//! * **Framing** ([`frame`]): `tgm1 <len>\n<payload>` frames over any
//!   byte stream, with oversize lengths rejected *before* allocation and
//!   every malformed shape a typed error (proptested to never panic).
//! * **Admission** ([`tenant`]): per-tenant quotas
//!   ([`tgm_limits::Quotas`]) enforced as inflight tickets and session
//!   caps; sheds are typed (`Overloaded` / `QuotaExceeded`) and carry a
//!   deterministic jittered `retry_after_ms` hint.
//! * **Execution** ([`server`]): a fixed worker pool; every request runs
//!   under its tenant's [`tgm_limits::Limits`] inside `catch_unwind`, so
//!   a panic answers one request with a typed `WorkerPanic` (plus the
//!   tenant's flight-recorder dump) and the pool keeps serving.
//! * **Drain** ([`shutdown`], [`server::ServerCore::drain`]): a
//!   process-wide token flipped by `SIGINT`/`SIGTERM` or programmatically;
//!   draining refuses new work, bounds in-flight work, and flushes one
//!   final labelled telemetry frame per tenant.
//!
//! ```
//! use tgm_serve::{ServerConfig, ServerCore};
//! use tgm_limits::Quotas;
//!
//! let core = ServerCore::start(ServerConfig {
//!     workers: 2,
//!     queue_depth: 16,
//!     default_quotas: Quotas::unlimited().with_max_inflight(8),
//!     tenant_quotas: vec![],
//! });
//! let client = core.client();
//! let resp = client.request(r#"{"op":"ping"}"#);
//! assert!(resp.contains("\"pong\":true"));
//! let frames = core.drain();
//! assert!(frames.is_empty()); // no tenant ever spoke
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![deny(unsafe_code)] // one reviewed allow: the signal shim in `shutdown`
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod frame;
pub mod proto;
pub mod server;
pub mod shutdown;
pub mod tenant;

pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use proto::{ErrorKind, Request, Response};
pub use server::{Client, Server, ServerConfig, ServerCore, WORKER_SITE};
pub use tenant::Tenant;

//! Chaos suite (run with `--features failpoints`): every injected fault —
//! worker panic, injected delay past the deadline, spurious cancellation,
//! poisoned frame — must surface as a *typed* per-tenant error (with the
//! tenant's flight-recorder dump attached to faults), while the server
//! keeps serving and concurrently healthy tenants get responses
//! bit-identical to a fault-free run.
//!
//! The failpoint registry is process-global, so every test serializes on
//! one mutex and clears the registry on entry and exit (the workspace's
//! standard chaos idiom).

#![cfg(feature = "failpoints")]

use std::sync::Mutex;
use std::time::Duration;

use tgm_events::minijson::Value;
use tgm_limits::{fail, Quotas};
use tgm_serve::proto::{ErrorKind, Response};
use tgm_serve::{ServerConfig, ServerCore, WORKER_SITE};

static GUARD: Mutex<()> = Mutex::new(());

/// Holds the suite mutex and guarantees a clean registry on both sides.
struct Armed(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

impl Armed {
    fn lock() -> Self {
        let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        fail::clear_all();
        Armed(g)
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        fail::clear_all();
    }
}

const STRUCTURE: &str = r#""structure":{
  "variables": ["rise", "report", "fall"],
  "constraints": [
    {"from": 0, "to": 1, "lo": 1, "hi": 1, "granularity": "business-day"},
    {"from": 1, "to": 2, "lo": 0, "hi": 1, "granularity": "week"}
  ]}"#;

fn match_payload(tenant: &str) -> String {
    format!(
        r#"{{"op":"match","tenant":"{tenant}",{STRUCTURE},"types":["rise","report","fall"],
        "events":[{{"ty":"rise","time":208800}},{{"ty":"noise","time":250000}},
                  {{"ty":"report","time":291600}},{{"ty":"fall","time":500000}},
                  {{"ty":"rise","time":813600}}]}}"#
    )
}

fn config(tenant_quotas: Vec<(String, Quotas)>) -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 32,
        default_quotas: Quotas::unlimited(),
        tenant_quotas,
    }
}

#[test]
fn worker_panic_is_typed_dumped_and_contained() {
    let _armed = Armed::lock();

    // Fault-free baseline for the healthy tenant, on its own core.
    let baseline_core = ServerCore::start(config(vec![]));
    let baseline = baseline_core.client().request(&match_payload("healthy"));
    baseline_core.drain();

    let core = ServerCore::start(config(vec![]));
    let client = core.client();
    fail::set(WORKER_SITE, fail::Action::PanicOnce("injected chaos panic".into()));

    // The victim's request absorbs the one-shot panic...
    let victim = client.request_parsed(&match_payload("victim")).unwrap();
    let Response::Err {
        kind,
        message,
        dump,
        ..
    } = victim
    else {
        panic!("victim should observe the panic");
    };
    assert_eq!(kind, ErrorKind::WorkerPanic);
    assert!(message.contains("injected chaos panic"), "{message}");
    assert!(message.contains(WORKER_SITE), "{message}");
    let dump = dump.expect("faults carry the tenant's flight dump");
    assert!(dump.contains("flight recorder dump"), "{dump}");

    // ...and the pool keeps serving: the healthy tenant's response is
    // bit-identical to the fault-free run, and the victim can retry.
    let healthy = client.request(&match_payload("healthy"));
    assert_eq!(healthy, baseline);
    let retry = client.request_parsed(&match_payload("victim")).unwrap();
    assert!(matches!(retry, Response::Ok(_)), "victim retry succeeds");
    core.drain();
}

#[test]
fn injected_delay_trips_the_deadline_typed() {
    let _armed = Armed::lock();
    let core = ServerCore::start(config(vec![(
        "slow".to_string(),
        Quotas::unlimited().with_timeout(Duration::from_millis(20)),
    )]));
    let client = core.client();
    fail::set(WORKER_SITE, fail::Action::Delay(Duration::from_millis(60)));

    let resp = client.request_parsed(&match_payload("slow")).unwrap();
    assert_eq!(resp.error_kind(), Some(ErrorKind::DeadlineExceeded));

    // Disarm: the same tenant completes within a fresh deadline.
    fail::clear_all();
    let ok = client.request_parsed(&match_payload("slow")).unwrap();
    assert!(matches!(ok, Response::Ok(_)), "{ok:?}");
    core.drain();
}

#[test]
fn injected_cancel_is_typed_cancelled() {
    let _armed = Armed::lock();
    let core = ServerCore::start(config(vec![]));
    let client = core.client();
    fail::set(WORKER_SITE, fail::Action::Cancel);

    let resp = client.request_parsed(&match_payload("cancelled")).unwrap();
    assert_eq!(resp.error_kind(), Some(ErrorKind::Cancelled));

    fail::clear_all();
    let ok = client.request_parsed(&match_payload("cancelled")).unwrap();
    assert!(matches!(ok, Response::Ok(_)));
    core.drain();
}

#[test]
fn mining_worker_panic_propagates_as_typed_fault() {
    let _armed = Armed::lock();
    let core = ServerCore::start(config(vec![]));
    let client = core.client();
    // Arm the *mining* pipeline's own worker site: the serve layer must
    // relay the engine's contained panic as its typed error.
    fail::set(
        "pipeline.step5.worker",
        fail::Action::PanicOnce("engine-level chaos".into()),
    );
    let payload = format!(
        r#"{{"op":"mine","tenant":"miner",{STRUCTURE},
            "events":[{{"ty":"rise","time":208800}},{{"ty":"report","time":291600}},
                      {{"ty":"fall","time":500000}},{{"ty":"rise","time":813600}},
                      {{"ty":"report","time":900000}},{{"ty":"fall","time":1000000}}],
            "reference":"rise","confidence":0.1}}"#
    );
    let resp = client.request_parsed(&payload).unwrap();
    assert_eq!(resp.error_kind(), Some(ErrorKind::WorkerPanic), "{resp:?}");

    fail::clear_all();
    let ok = client.request_parsed(&payload).unwrap();
    assert!(matches!(ok, Response::Ok(_)), "{ok:?}");
    core.drain();
}

#[test]
fn chaos_under_concurrency_leaves_exactly_one_victim() {
    let _armed = Armed::lock();
    let core = ServerCore::start(ServerConfig {
        workers: 4,
        queue_depth: 64,
        default_quotas: Quotas::unlimited(),
        tenant_quotas: vec![],
    });
    fail::set(WORKER_SITE, fail::Action::PanicOnce("one-shot chaos".into()));

    let mut handles = Vec::new();
    for i in 0..12 {
        let client = core.client();
        handles.push(std::thread::spawn(move || {
            client
                .request_parsed(&match_payload(&format!("tenant-{i}")))
                .unwrap()
        }));
    }
    let mut panics = 0;
    for h in handles {
        match h.join().unwrap() {
            Response::Ok(result) => {
                let at: Vec<i64> = result
                    .get("completions")
                    .and_then(Value::as_array)
                    .unwrap()
                    .iter()
                    .filter_map(|c| c.get("at").and_then(Value::as_i64))
                    .collect();
                assert_eq!(at, [500000]);
            }
            Response::Err { kind, dump, .. } => {
                assert_eq!(kind, ErrorKind::WorkerPanic);
                assert!(dump.is_some());
                panics += 1;
            }
        }
    }
    assert_eq!(panics, 1, "exactly one victim absorbs a one-shot panic");
    core.drain();
}

#[test]
fn mid_stream_cancel_leaves_session_closeable() {
    let _armed = Armed::lock();
    let core = ServerCore::start(config(vec![]));
    let client = core.client();

    let open = format!(
        r#"{{"op":"session.open","tenant":"streamer",{STRUCTURE},"types":["rise","report","fall"]}}"#
    );
    let session = client
        .request_parsed(&open)
        .unwrap()
        .result()
        .and_then(|r| r.get("session").and_then(Value::as_u64))
        .unwrap();

    // First push is healthy.
    let push = |events: &str| {
        format!(
            r#"{{"op":"session.push","tenant":"streamer","session":{session},"events":[{events}]}}"#
        )
    };
    let r1 = client
        .request_parsed(&push(r#"{"ty":"rise","time":208800}"#))
        .unwrap();
    assert!(matches!(r1, Response::Ok(_)));

    // A cancel mid-stream is a typed per-request fault; the session slot
    // survives (reinserted around the fault) and close still works.
    fail::set(WORKER_SITE, fail::Action::Cancel);
    let r2 = client
        .request_parsed(&push(r#"{"ty":"report","time":291600}"#))
        .unwrap();
    assert_eq!(r2.error_kind(), Some(ErrorKind::Cancelled));
    fail::clear_all();

    let close = format!(r#"{{"op":"session.close","tenant":"streamer","session":{session}}}"#);
    let closed = client.request_parsed(&close).unwrap();
    assert!(closed.result().is_some(), "{closed:?}");
    core.drain();
}

//! Integration tests for the serving core: admission, quotas, session
//! lifecycle, TCP framing, and graceful drain — all over the same
//! rise/report/fall pattern the CLI tests use (one completion at the
//! `fall` event, t = 500000).

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;

use tgm_events::minijson::Value;
use tgm_limits::Quotas;
use tgm_serve::frame::{read_frame, write_frame};
use tgm_serve::proto::{ErrorKind, Response};
use tgm_serve::{Server, ServerConfig, ServerCore};

const STRUCTURE: &str = r#""structure":{
  "variables": ["rise", "report", "fall"],
  "constraints": [
    {"from": 0, "to": 1, "lo": 1, "hi": 1, "granularity": "business-day"},
    {"from": 1, "to": 2, "lo": 0, "hi": 1, "granularity": "week"}
  ]}"#;

const EVENTS: &str = r#""events":[
  {"ty":"rise","time":208800},
  {"ty":"noise","time":250000},
  {"ty":"report","time":291600},
  {"ty":"fall","time":500000},
  {"ty":"rise","time":813600}
]"#;

fn match_payload(tenant: &str) -> String {
    format!(
        r#"{{"op":"match","tenant":"{tenant}",{STRUCTURE},"types":["rise","report","fall"],{EVENTS}}}"#
    )
}

fn open_payload(tenant: &str) -> String {
    format!(
        r#"{{"op":"session.open","tenant":"{tenant}",{STRUCTURE},"types":["rise","report","fall"]}}"#
    )
}

fn push_payload(tenant: &str, session: u64, events: &[(&str, i64)]) -> String {
    let items: Vec<String> = events
        .iter()
        .map(|(ty, t)| format!(r#"{{"ty":"{ty}","time":{t}}}"#))
        .collect();
    format!(
        r#"{{"op":"session.push","tenant":"{tenant}","session":{session},"events":[{}]}}"#,
        items.join(",")
    )
}

fn completions_at(result: &Value) -> Vec<i64> {
    result
        .get("completions")
        .and_then(Value::as_array)
        .map(|arr| {
            arr.iter()
                .filter_map(|c| c.get("at").and_then(Value::as_i64))
                .collect()
        })
        .unwrap_or_default()
}

fn small_core() -> Arc<ServerCore> {
    ServerCore::start(ServerConfig {
        workers: 2,
        queue_depth: 32,
        default_quotas: Quotas::unlimited(),
        tenant_quotas: vec![],
    })
}

#[test]
fn ping_and_batch_match_in_process() {
    let core = small_core();
    let client = core.client();

    let pong = client.request_parsed(r#"{"op":"ping"}"#).unwrap();
    assert!(matches!(pong, Response::Ok(_)));

    let resp = client.request_parsed(&match_payload("acme")).unwrap();
    let Response::Ok(result) = resp else {
        panic!("match failed: {resp:?}");
    };
    assert_eq!(completions_at(&result), [500000]);
    assert_eq!(result.get("events").and_then(Value::as_i64), Some(5));
    core.drain();
}

#[test]
fn malformed_payloads_are_bad_requests_not_crashes() {
    let core = small_core();
    let client = core.client();
    for bad in [
        "",
        "not json",
        "{}",
        r#"{"op":"match","tenant":"t"}"#,
        r#"{"op":"match","tenant":"t","structure":{"variables":["a"]},"types":["x"],"events":[]}"#,
    ] {
        let resp = client.request_parsed(bad).unwrap();
        assert_eq!(
            resp.error_kind(),
            Some(ErrorKind::BadRequest),
            "payload {bad:?}"
        );
    }
    // The server is still healthy afterwards.
    let resp = client.request_parsed(&match_payload("acme")).unwrap();
    assert!(matches!(resp, Response::Ok(_)));
    core.drain();
}

#[test]
fn tcp_round_trip_is_bit_identical_to_in_process() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_depth: 32,
            default_quotas: Quotas::unlimited(),
            tenant_quotas: vec![],
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let payload = match_payload("acme");
    write_frame(&mut writer, payload.as_bytes()).unwrap();
    let tcp_response = read_frame(&mut reader).unwrap().unwrap();

    let inproc_response = server.core().client().request(&payload);
    assert_eq!(String::from_utf8(tcp_response).unwrap(), inproc_response);

    // Several frames over one connection.
    for _ in 0..3 {
        write_frame(&mut writer, br#"{"op":"ping"}"#).unwrap();
        let r = read_frame(&mut reader).unwrap().unwrap();
        assert!(String::from_utf8(r).unwrap().contains("\"pong\":true"));
    }
    drop(writer);
    server.drain();
}

#[test]
fn poison_frame_gets_typed_error_and_server_survives() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Oversize declared length: typed BadRequest, then close.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    std::io::Write::write_all(&mut writer, b"tgm1 99999999999999999999\n").unwrap();
    std::io::Write::flush(&mut writer).unwrap();
    let resp = read_frame(&mut reader).unwrap().unwrap();
    let parsed = Response::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(parsed.error_kind(), Some(ErrorKind::BadRequest));
    assert_eq!(read_frame(&mut reader).unwrap(), None, "connection closed");

    // Garbage magic: same containment.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    std::io::Write::write_all(&mut writer, b"GET / HTTP/1.1\r\n\r\n").unwrap();
    std::io::Write::flush(&mut writer).unwrap();
    let resp = read_frame(&mut reader).unwrap().unwrap();
    let parsed = Response::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(parsed.error_kind(), Some(ErrorKind::BadRequest));

    // A healthy client is unaffected.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    write_frame(&mut writer, match_payload("healthy").as_bytes()).unwrap();
    let resp = read_frame(&mut reader).unwrap().unwrap();
    let parsed = Response::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(completions_at(parsed.result().unwrap()), [500000]);
    server.drain();
}

#[test]
fn inflight_cap_sheds_overloaded_with_retry_hint() {
    let core = ServerCore::start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        default_quotas: Quotas::unlimited(),
        tenant_quotas: vec![("capped".to_string(), Quotas::unlimited().with_max_inflight(0))],
    });
    let client = core.client();
    let resp = client.request_parsed(&match_payload("capped")).unwrap();
    let Response::Err {
        kind,
        retry_after_ms,
        ..
    } = resp
    else {
        panic!("expected a shed");
    };
    assert_eq!(kind, ErrorKind::Overloaded);
    assert!(retry_after_ms.is_some(), "sheds carry a backoff hint");
    // An uncapped tenant on the same core is unaffected.
    let ok = client.request_parsed(&match_payload("open")).unwrap();
    assert!(matches!(ok, Response::Ok(_)));
    assert_eq!(core.sheds(), 1);
    core.drain();
}

#[test]
fn session_lifecycle_quota_and_ordering() {
    let core = ServerCore::start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        default_quotas: Quotas::unlimited().with_max_sessions(1),
        tenant_quotas: vec![],
    });
    let client = core.client();

    let resp = client.request_parsed(&open_payload("acme")).unwrap();
    let session = resp
        .result()
        .and_then(|r| r.get("session").and_then(Value::as_u64))
        .expect("open returns a session id");

    // The quota caps a second open...
    let second = client.request_parsed(&open_payload("acme")).unwrap();
    assert_eq!(second.error_kind(), Some(ErrorKind::QuotaExceeded));
    // ...but only for this tenant.
    let other = client.request_parsed(&open_payload("other")).unwrap();
    assert!(matches!(other, Response::Ok(_)));

    // Push in two batches; the completion lands in the second.
    let r1 = client
        .request_parsed(&push_payload(
            "acme",
            session,
            &[("rise", 208800), ("noise", 250000)],
        ))
        .unwrap();
    assert_eq!(completions_at(r1.result().unwrap()), []);
    let r2 = client
        .request_parsed(&push_payload(
            "acme",
            session,
            &[("report", 291600), ("fall", 500000), ("rise", 813600)],
        ))
        .unwrap();
    assert_eq!(completions_at(r2.result().unwrap()), [500000]);
    assert_eq!(
        r2.result().unwrap().get("events").and_then(Value::as_i64),
        Some(5)
    );

    // Regressing behind the watermark is a typed user error; the session
    // survives it.
    let bad = client
        .request_parsed(&push_payload("acme", session, &[("rise", 100)]))
        .unwrap();
    assert_eq!(bad.error_kind(), Some(ErrorKind::BadRequest));

    // Unknown session ids are typed.
    let missing = client
        .request_parsed(&push_payload("acme", 999, &[("rise", 900000)]))
        .unwrap();
    assert_eq!(missing.error_kind(), Some(ErrorKind::UnknownSession));

    // Close returns final stats; a second close is UnknownSession.
    let close = format!(r#"{{"op":"session.close","tenant":"acme","session":{session}}}"#);
    let closed = client.request_parsed(&close).unwrap();
    let result = closed.result().expect("close succeeds").clone();
    assert_eq!(result.get("events").and_then(Value::as_i64), Some(5));
    assert_eq!(
        result.get("verdict").and_then(Value::as_str),
        Some("completed")
    );
    let again = client.request_parsed(&close).unwrap();
    assert_eq!(again.error_kind(), Some(ErrorKind::UnknownSession));

    // With the slot closed, the quota frees up.
    let reopened = client.request_parsed(&open_payload("acme")).unwrap();
    assert!(matches!(reopened, Response::Ok(_)));
    core.drain();
}

#[test]
fn stats_frames_are_labelled_per_tenant() {
    let core = small_core();
    let client = core.client();
    client.request(&match_payload("acme"));
    let resp = client
        .request_parsed(r#"{"op":"stats","tenant":"acme"}"#)
        .unwrap();
    let frame = resp
        .result()
        .and_then(|r| r.get("frame").and_then(Value::as_str))
        .expect("stats returns a frame")
        .to_string();
    assert!(frame.contains("\"schema\":\"tgm_obs_stream/v1\""), "{frame}");
    assert!(frame.contains("\"labels\":{\"tenant\":\"acme\"}"), "{frame}");
    for gauge in [
        "\"frontier\":",
        "\"events_total\":5",
        "\"events_per_sec\":",
        "\"evicted_rows_total\":",
        "\"watermark_lag\":",
    ] {
        assert!(frame.contains(gauge), "missing {gauge} in {frame}");
    }
    let om = client
        .request_parsed(r#"{"op":"stats","tenant":"acme","format":"openmetrics"}"#)
        .unwrap();
    let om_frame = om
        .result()
        .and_then(|r| r.get("frame").and_then(Value::as_str))
        .unwrap()
        .to_string();
    assert!(om_frame.contains("tgm_events_total{tenant=\"acme\"} 5"), "{om_frame}");
    core.drain();
}

#[test]
fn drain_refuses_new_work_and_flushes_tenant_frames() {
    let core = small_core();
    let client = core.client();
    assert!(matches!(
        client.request_parsed(&match_payload("a")).unwrap(),
        Response::Ok(_)
    ));
    assert!(matches!(
        client.request_parsed(&match_payload("b")).unwrap(),
        Response::Ok(_)
    ));

    let frames = core.drain();
    assert_eq!(frames.len(), 2, "one final frame per tenant");
    assert!(frames.iter().any(|f| f.contains("\"tenant\":\"a\"")));
    assert!(frames.iter().any(|f| f.contains("\"tenant\":\"b\"")));

    let post = client.request_parsed(&match_payload("a")).unwrap();
    assert_eq!(post.error_kind(), Some(ErrorKind::Draining));
}

#[test]
fn concurrent_tenants_all_get_correct_typed_outcomes() {
    let core = ServerCore::start(ServerConfig {
        workers: 4,
        queue_depth: 64,
        default_quotas: Quotas::unlimited(),
        tenant_quotas: vec![(
            "capped".to_string(),
            Quotas::unlimited().with_max_inflight(0),
        )],
    });
    let mut handles = Vec::new();
    for i in 0..8 {
        let client = core.client();
        handles.push(std::thread::spawn(move || {
            let tenant = if i % 4 == 0 {
                "capped".to_string()
            } else {
                format!("tenant-{i}")
            };
            let mut outcomes = Vec::new();
            for _ in 0..5 {
                let resp = client.request_parsed(&match_payload(&tenant)).unwrap();
                outcomes.push((tenant.clone(), resp));
            }
            outcomes
        }));
    }
    for h in handles {
        for (tenant, resp) in h.join().unwrap() {
            if tenant == "capped" {
                assert_eq!(resp.error_kind(), Some(ErrorKind::Overloaded));
            } else {
                let result = resp.result().unwrap_or_else(|| {
                    panic!("healthy tenant {tenant} failed: {resp:?}")
                });
                assert_eq!(completions_at(result), [500000]);
            }
        }
    }
    core.drain();
}

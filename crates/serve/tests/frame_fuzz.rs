//! No-panic property tests for the `tgm_serve/v1` frame decoder and
//! protocol parser: arbitrary bytes, corrupted valid frames, hostile
//! length prefixes, and deeply nested payloads must all yield typed
//! results — never a panic, a hang, or an attacker-chosen allocation.

use proptest::prelude::*;
use tgm_serve::frame::{decode, read_frame, write_frame, FrameError, MAX_FRAME_LEN};
use tgm_serve::proto::{parse_request, Response};

/// Bytes biased toward frame structure so random inputs reach deep
/// decoder states instead of dying on the first byte.
const STRUCTURED: &[u8] = &[
    b't', b'g', b'm', b'1', b' ', b'\n', b'0', b'1', b'9', b'{', b'}', b'"', b':', b',', b'[',
    b']', 0x00, 0xff, b'-', b'o', b'p',
];

fn structured_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0usize..STRUCTURED.len(), 0..96)
        .prop_map(|picks| picks.into_iter().map(|i| STRUCTURED[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(buf in structured_bytes()) {
        let _ = decode(&buf);
        let mut r = &buf[..];
        let _ = read_frame(&mut r);
    }

    #[test]
    fn fully_random_bytes_never_panic_the_decoder(
        buf in proptest::collection::vec(0u8..=255, 0..96)
    ) {
        let _ = decode(&buf);
        let mut r = &buf[..];
        let _ = read_frame(&mut r);
    }

    #[test]
    fn corrupted_valid_frames_decode_or_error(
        payload in proptest::collection::vec(0u8..=255, 0..48),
        cut in 0usize..64,
        flip_at in 0usize..64,
        flip_to in 0u8..=255,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        // Truncate and overwrite one byte.
        buf.truncate(buf.len().min(cut.max(1)));
        if !buf.is_empty() {
            let i = flip_at % buf.len();
            buf[i] = flip_to;
        }
        let _ = decode(&buf);
        let mut r = &buf[..];
        let _ = read_frame(&mut r);
    }

    #[test]
    fn oversize_prefixes_reject_before_allocation(
        // Declared lengths straddling the cap, up to u64::MAX digits.
        len in proptest::collection::vec(0u32..10, 1..21),
    ) {
        let digits: String = len.iter().map(|d| char::from(b'0' + *d as u8)).collect();
        let header = format!("tgm1 {digits}\n");
        let declared: Option<u64> = digits.parse().ok();
        match decode(header.as_bytes()) {
            // In-cap lengths with no payload yet: ask for more bytes.
            Ok(None) => prop_assert!(declared.is_some_and(|n| n <= MAX_FRAME_LEN as u64)),
            Ok(Some(_)) => prop_assert_eq!(declared, Some(0)),
            Err(FrameError::Oversize { .. }) => {
                prop_assert!(declared.is_none_or(|n| n > MAX_FRAME_LEN as u64));
            }
            // 21+ digit fields are BadHeader; we generate at most 20.
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
        // The streaming reader agrees, and never allocates the payload.
        let mut r = header.as_bytes();
        match read_frame(&mut r) {
            Err(FrameError::Oversize { .. }) => {
                prop_assert!(declared.is_none_or(|n| n > MAX_FRAME_LEN as u64));
            }
            Err(FrameError::Truncated) | Ok(Some(_)) => {
                prop_assert!(declared.is_some_and(|n| n <= MAX_FRAME_LEN as u64));
            }
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn arbitrary_payloads_never_panic_the_protocol(s in "\\PC*") {
        let _ = parse_request(&s);
        let _ = Response::parse(&s);
    }

    #[test]
    fn deep_nesting_is_rejected_not_recursed(depth in 1usize..512) {
        // A request whose `structure` is `depth` nested arrays: the
        // depth-limited JSON parser must reject past its cap without
        // overflowing the stack.
        let mut payload = String::from(r#"{"op":"match","tenant":"t","structure":"#);
        payload.push_str(&"[".repeat(depth));
        payload.push_str(&"]".repeat(depth));
        payload.push('}');
        prop_assert!(parse_request(&payload).is_err());
    }
}

#[test]
fn zero_and_max_len_frames_round_trip() {
    let mut buf = Vec::new();
    write_frame(&mut buf, &[]).unwrap();
    let (used, p) = decode(&buf).unwrap().unwrap();
    assert_eq!((used, p), (buf.len(), &[][..]));

    // Exactly at the cap is legal.
    let big = vec![b'x'; MAX_FRAME_LEN];
    let mut buf = Vec::new();
    write_frame(&mut buf, &big).unwrap();
    let (_, p) = decode(&buf).unwrap().unwrap();
    assert_eq!(p.len(), MAX_FRAME_LEN);
}

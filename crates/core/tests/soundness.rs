//! Property tests for the soundness contracts of the core reasoning layer:
//!
//! * conversion (Appendix A.1): every pair satisfying the source TCG
//!   satisfies the converted TCG;
//! * propagation (Theorem 2): a structure built around a witness is never
//!   refuted, and the witness satisfies every derived constraint;
//! * exact checking: agrees with propagation-refutation and returns real
//!   witnesses.

use proptest::prelude::*;
use tgm_core::exact::{check_with, ExactOptions, ExactOutcome};
use tgm_core::propagate::propagate;
use tgm_core::{convert_constraint, StructureBuilder, Tcg, VarId};
use tgm_granularity::{Calendar, Gran, Granularity};

const DAY: i64 = 86_400;

fn calendar() -> Calendar {
    Calendar::with_holidays(vec![3, 17, 45])
}

fn all_grans() -> Vec<Gran> {
    calendar().iter().cloned().collect()
}

fn gapless_grans() -> Vec<Gran> {
    all_grans().into_iter().filter(|g| !g.has_gaps()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conversion soundness: satisfying pairs of the source constraint
    /// satisfy the converted constraint.
    #[test]
    fn conversion_sound(
        src_idx in 0..12usize,
        dst_idx in 0..7usize,
        m in 0u64..6,
        width in 0u64..6,
        t1 in 0i64..200 * DAY,
        d_frac in 0.0f64..1.0,
        within in 0.0f64..1.0,
    ) {
        let grans = all_grans();
        let gapless = gapless_grans();
        let src_g = grans[src_idx % grans.len()].clone();
        let dst_g = gapless[dst_idx % gapless.len()].clone();
        let tcg = Tcg::new(m, m + width, src_g.clone());
        let Some(conv) = convert_constraint(&tcg, &dst_g) else {
            // Only gapped targets are refused; dst is gapless.
            prop_assert!(false, "conversion to gapless target must succeed");
            return Ok(());
        };
        // Construct a satisfying pair: t1 in a tick, t2 in the tick d away.
        let Some(z1) = src_g.covering_tick(t1) else { return Ok(()) };
        let d = m + ((width as f64 + 0.999) * d_frac) as u64;
        let z2 = z1 + d as i64;
        let Some(set2) = src_g.tick_intervals(z2) else { return Ok(()) };
        // Pick an instant in tick z2 not before t1.
        let lo = set2.min().max(t1);
        if lo > set2.max() { return Ok(()); }
        let t2 = lo + ((set2.max() - lo) as f64 * within) as i64;
        let t2 = if set2.contains(t2) { t2 } else { set2.max() };
        if !tcg.satisfied(t1, t2) { return Ok(()); }
        prop_assert!(
            conv.satisfied(t1, t2),
            "{tcg} holds for ({t1},{t2}) but converted {conv} does not"
        );
    }

    /// Propagation soundness on randomly generated witness-backed chains
    /// with cross-links: never refuted; witness inside all derived TCGs and
    /// seconds windows.
    #[test]
    fn propagation_never_refutes_witnessed_structures(
        n_vars in 2usize..6,
        seed_times in proptest::collection::vec(0i64..120 * DAY, 6),
        gran_picks in proptest::collection::vec(0usize..12, 16),
        slacks in proptest::collection::vec((0u64..3, 0u64..3), 16),
        extra_arcs in proptest::collection::vec((0usize..6, 0usize..6), 0..6),
    ) {
        let grans = all_grans();
        // Witness: sorted distinct-ish times, variable i at times[i].
        let mut times: Vec<i64> = seed_times[..n_vars].to_vec();
        times.sort_unstable();

        let mut b = StructureBuilder::new();
        let vars: Vec<VarId> = (0..n_vars).map(|i| b.var(format!("X{i}"))).collect();
        let mut gp = gran_picks.iter().cycle();
        let mut sp = slacks.iter().cycle();
        let mut added = 0usize;

        // Backbone: root -> each var, using a constraint compatible with
        // the witness in some granularity with both ticks defined.
        let mut arcs: Vec<(usize, usize)> = (1..n_vars).map(|j| (0, j)).collect();
        for &(a, b_) in &extra_arcs {
            let (a, b_) = (a % n_vars, b_ % n_vars);
            if a < b_ {
                arcs.push((a, b_));
            }
        }
        for (i, j) in arcs {
            let (ti, tj) = (times[i], times[j]);
            // Try granularities until one has both ticks defined.
            let mut placed = false;
            for _ in 0..grans.len() {
                let g = grans[gp.next().unwrap() % grans.len()].clone();
                let (Some(zi), Some(zj)) = (g.covering_tick(ti), g.covering_tick(tj)) else {
                    continue;
                };
                let d = (zj - zi) as u64;
                let &(s_lo, s_hi) = sp.next().unwrap();
                let lo = d.saturating_sub(s_lo);
                b.constrain(vars[i], vars[j], Tcg::new(lo, d + s_hi, g));
                added += 1;
                placed = true;
                break;
            }
            if !placed && i == 0 {
                // Guarantee rootedness with the primitive type.
                let sec = grans.iter().find(|g| g.name() == "second").unwrap().clone();
                let d = (tj - ti) as u64;
                b.constrain(vars[i], vars[j], Tcg::new(d, d, sec));
                added += 1;
            }
        }
        prop_assume!(added > 0);
        let s = match b.build() {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        prop_assert!(s.satisfied_by(&times), "witness must match by construction");

        let p = propagate(&s);
        prop_assert!(p.is_consistent(), "sound propagation refuted a satisfiable structure:\n{s:?}witness {times:?}");

        for i in s.vars() {
            for j in s.vars() {
                if i == j { continue; }
                for t in p.derived_tcgs(i, j) {
                    prop_assert!(
                        t.satisfied(times[i.index()], times[j.index()]),
                        "derived {t} on ({i:?},{j:?}) violated by witness {times:?}\n{s:?}"
                    );
                }
                if let Some(w) = p.seconds_window(i, j) {
                    let diff = times[j.index()] - times[i.index()];
                    prop_assert!(
                        w.contains(diff),
                        "seconds window {w:?} on ({i:?},{j:?}) excludes witness diff {diff}"
                    );
                }
            }
        }
    }

    /// The exact checker finds a witness for small witnessed structures and
    /// the witness really matches.
    #[test]
    fn exact_finds_witness_for_small_structures(
        t1_day in 0i64..40,
        gap_days in 0u64..5,
        use_week in any::<bool>(),
    ) {
        let cal = calendar();
        let day = cal.get("day").unwrap();
        let week = cal.get("week").unwrap();
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        b.constrain(x0, x1, Tcg::new(gap_days, gap_days + 1, day));
        if use_week {
            b.constrain(x0, x1, Tcg::new(0, 1, week));
        }
        let s = b.build().unwrap();
        let opts = ExactOptions {
            horizon_start: t1_day * DAY,
            horizon_end: (t1_day + 30) * DAY,
            ..ExactOptions::default()
        };
        match check_with(&s, &opts).unwrap() {
            ExactOutcome::Consistent(times) => {
                prop_assert!(s.satisfied_by(&times));
                prop_assert!(times[0] >= opts.horizon_start && times[0] <= opts.horizon_end);
            }
            ExactOutcome::InconsistentWithinHorizon => {
                // [gap, gap+1] day with optional [0,1] week is always
                // satisfiable for gap <= 5 in a 30-day horizon.
                prop_assert!(gap_days > 7, "should have found a witness");
            }
        }
    }
}

#[test]
fn propagation_detects_planted_contradictions() {
    // Systematic small grid of contradictory same-granularity triangles.
    let cal = calendar();
    let day = cal.get("day").unwrap();
    for a in 0..4u64 {
        for b_ in 0..4u64 {
            let mut b = StructureBuilder::new();
            let x0 = b.var("X0");
            let x1 = b.var("X1");
            let x2 = b.var("X2");
            b.constrain(x0, x1, Tcg::new(a, a, day.clone()));
            b.constrain(x1, x2, Tcg::new(b_, b_, day.clone()));
            // Direct constraint incompatible with the sum.
            b.constrain(x0, x2, Tcg::new(a + b_ + 1, a + b_ + 2, day.clone()));
            let s = b.build().unwrap();
            assert!(
                !propagate(&s).is_consistent(),
                "triangle {a}+{b_} vs [{},{}] must be refuted",
                a + b_ + 1,
                a + b_ + 2
            );
        }
    }
}

//! Completeness of the exact checker within its horizon, verified against
//! brute force over a tiny discretized domain: structures whose
//! granularities are hours/days over a 4-day horizon, where exhaustive
//! enumeration of hour-grid assignments is feasible.
//!
//! Satisfaction of TCGs over {hour, day, business-day} depends only on the
//! hour each timestamp falls in, so enumerating one representative per
//! hour is itself complete — giving an independent ground truth.

use proptest::prelude::*;
use tgm_core::exact::{check_with, ExactOptions, ExactOutcome};
use tgm_core::{EventStructure, StructureBuilder, Tcg};
use tgm_granularity::{Calendar, Gran};

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;
const HORIZON_DAYS: i64 = 4;

fn brute_force_consistent(s: &EventStructure) -> bool {
    let n = s.len();
    // Only the ROOT is horizon-bounded (matching the exact checker's
    // semantics); non-root variables may land later — give them enough
    // head room for the widest generated constraint chain (2 arcs of at
    // most 7 business days each is well under 16 extra days).
    let root_slots: Vec<i64> = (0..HORIZON_DAYS * 24).map(|h| h * HOUR).collect();
    let free_slots: Vec<i64> = (0..(HORIZON_DAYS + 16) * 24).map(|h| h * HOUR).collect();
    let mut assignment = vec![0i64; n];
    fn rec(
        s: &EventStructure,
        root_slots: &[i64],
        free_slots: &[i64],
        assignment: &mut Vec<i64>,
        depth: usize,
    ) -> bool {
        if depth == s.len() {
            return s.satisfied_by(assignment);
        }
        let slots = if depth == 0 { root_slots } else { free_slots };
        for &t in slots {
            assignment[depth] = t;
            // Early pruning: check constraints among assigned prefix.
            let ok = (0..=depth).all(|i| {
                (0..=depth).all(|j| {
                    s.constraints(tgm_core::VarId(i), tgm_core::VarId(j))
                        .iter()
                        .all(|c| c.satisfied(assignment[i], assignment[j]))
                })
            });
            if ok && rec(s, root_slots, free_slots, assignment, depth + 1) {
                return true;
            }
        }
        false
    }
    rec(s, &root_slots, &free_slots, &mut assignment, 0)
}

fn grans() -> Vec<Gran> {
    let cal = Calendar::standard();
    ["hour", "day", "business-day"]
        .iter()
        .map(|n| cal.get(n).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact checker ≡ brute force on random 3-variable structures over a
    /// 4-day horizon.
    #[test]
    fn exact_checker_matches_brute_force(
        gran_picks in [0usize..3, 0usize..3, 0usize..3],
        bounds in [(0u64..4, 0u64..3), (0u64..4, 0u64..3), (0u64..4, 0u64..3)],
        triangle in any::<bool>(),
    ) {
        let gs = grans();
        let tcg = |i: usize| {
            let (lo, w) = bounds[i];
            Tcg::new(lo, lo + w, gs[gran_picks[i] % gs.len()].clone())
        };
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        b.constrain(x0, x1, tcg(0));
        b.constrain(x1, x2, tcg(1));
        if triangle {
            b.constrain(x0, x2, tcg(2));
        }
        let s = b.build().unwrap();

        let expected = brute_force_consistent(&s);
        let opts = ExactOptions {
            horizon_start: 0,
            // The brute force places every variable in [0, 4 days); the
            // root window must cover the same space.
            horizon_end: HORIZON_DAYS * DAY - 1,
            ..ExactOptions::default()
        };
        let got = match check_with(&s, &opts).expect("small instance") {
            ExactOutcome::Consistent(times) => {
                prop_assert!(s.satisfied_by(&times), "witness must really match");
                // The witness must also respect the horizon for the root.
                prop_assert!(times[0] >= 0 && times[0] <= opts.horizon_end);
                true
            }
            ExactOutcome::InconsistentWithinHorizon => false,
        };
        // Brute force only tries roots on the hour grid in [0, 4d); the
        // exact checker searches the same window with finer cells, so it
        // can only find MORE. Both directions must still agree because
        // hour-grid representatives are complete for these granularities.
        prop_assert_eq!(got, expected, "structure:\n{:?}", s);
    }
}

/// Deterministic spot checks where consistency is known by hand.
#[test]
fn exact_checker_known_cases() {
    let cal = Calendar::standard();
    let hour = cal.get("hour").unwrap();
    let day = cal.get("day").unwrap();
    let opts = ExactOptions {
        horizon_start: 0,
        horizon_end: HORIZON_DAYS * DAY - 1,
        ..ExactOptions::default()
    };

    // (a) X1 exactly 30 hours after X0 but the same day: impossible.
    let mut b = StructureBuilder::new();
    let x0 = b.var("X0");
    let x1 = b.var("X1");
    b.constrain(x0, x1, Tcg::new(30, 30, hour.clone()));
    b.constrain(x0, x1, Tcg::new(0, 0, day.clone()));
    let s = b.build().unwrap();
    assert_eq!(
        check_with(&s, &opts).unwrap(),
        ExactOutcome::InconsistentWithinHorizon
    );

    // (b) X1 12 hours after X0 and the next day: satisfiable only if X0 is
    // in the evening (after 12:00).
    let mut b = StructureBuilder::new();
    let x0 = b.var("X0");
    let x1 = b.var("X1");
    b.constrain(x0, x1, Tcg::new(12, 12, hour));
    b.constrain(x0, x1, Tcg::new(1, 1, day));
    let s = b.build().unwrap();
    match check_with(&s, &opts).unwrap() {
        ExactOutcome::Consistent(times) => {
            assert!(s.satisfied_by(&times));
            let hour_of_day = times[0].rem_euclid(DAY) / HOUR;
            assert!(hour_of_day >= 12, "root must be after noon, got {hour_of_day}");
        }
        other => panic!("expected a witness, got {other:?}"),
    }
}

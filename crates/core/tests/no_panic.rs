//! No-panic property tests for the structure-construction and checking
//! surfaces: arbitrary constraint graphs — self-loops, cycles, duplicate
//! edges, extreme bounds — fed through `StructureBuilder::build`,
//! `propagate_bounded`, and `check_bounded` must return `Ok`/`Err`, never
//! panic, even under tiny budgets and expired deadlines.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use tgm_core::exact::{check_bounded, ExactError, ExactOptions};
use tgm_core::reductions::{subset_sum_options, subset_sum_structure};
use tgm_core::{StructureBuilder, Tcg};
use tgm_core::propagate::{propagate_bounded, PropagateOptions};
use tgm_granularity::{Calendar, Gran};
use tgm_limits::{CancelToken, Limits};

fn grans() -> Vec<Gran> {
    let cal = Calendar::standard();
    ["second", "hour", "day", "week", "business-day", "month", "year"]
        .iter()
        .map(|n| cal.get(n).unwrap())
        .collect()
}

/// Bounds spanning the whole supported range, including the maximum.
const BOUNDS: &[u64] = &[0, 1, 2, 100, Tcg::MAX_BOUND - 1, Tcg::MAX_BOUND];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_constraint_graphs_never_panic(
        n_vars in 1usize..6,
        edges in proptest::collection::vec(
            (0usize..6, 0usize..6, 0usize..7, 0usize..6, 0usize..6),
            0..10,
        ),
        budget in 0u64..64,
    ) {
        let gs = grans();
        let mut b = StructureBuilder::new();
        let vars: Vec<_> = (0..n_vars).map(|i| b.var(format!("X{i}"))).collect();
        for &(from, to, g, lo, w) in &edges {
            // Arbitrary topology: self-loops, back edges, parallel edges.
            let lo = BOUNDS[lo % BOUNDS.len()];
            let hi = lo.saturating_add(BOUNDS[w % BOUNDS.len()]).min(Tcg::MAX_BOUND);
            b.constrain(
                vars[from % n_vars],
                vars[to % n_vars],
                Tcg::new(lo, hi, gs[g % gs.len()].clone()),
            );
        }
        let Ok(s) = b.build() else {
            // Rejected topologies (cycles, self-loops, …) are typed errors.
            return Ok(());
        };

        // Unlimited, budget-capped, and expired-deadline bounded runs must
        // all come back with a value or a typed interrupt.
        let _ = propagate_bounded(&s, &PropagateOptions::default(), &Limits::none());
        let _ = propagate_bounded(
            &s,
            &PropagateOptions::default(),
            &Limits::none().with_budget(budget),
        );
        let _ = propagate_bounded(
            &s,
            &PropagateOptions::default(),
            &Limits::none().with_deadline(Instant::now() - Duration::from_secs(1)),
        );
        let opts = ExactOptions::default();
        let _ = check_bounded(&s, &opts, &Limits::none().with_budget(budget));
        let _ = check_bounded(
            &s,
            &opts,
            &Limits::none().with_deadline(Instant::now() - Duration::from_secs(1)),
        );
    }
}

/// The E2 NP-hard workload (Theorem 1's SUBSET-SUM gadget) under tiny
/// limits: a small budget, an expired deadline, and a pre-cancelled token
/// must each come back promptly as a typed error — no panic, no hang.
#[test]
fn np_hard_gadget_under_tiny_limits_returns_typed_errors() {
    // Pairwise-coprime values (the largest instance E2 itself runs: the
    // gadget caps the value LCM at the month horizon).
    let values = [2u64, 3, 5, 7, 11, 13];
    let target = 17;
    let s = subset_sum_structure(&values, target);
    let opts = subset_sum_options(&values, target);

    let started = Instant::now();
    let budgeted = check_bounded(&s, &opts, &Limits::none().with_budget(4));
    assert!(
        matches!(budgeted, Err(ExactError::SearchBudgetExhausted)),
        "tiny budget must surface as a typed exhaustion: {budgeted:?}"
    );

    let expired = check_bounded(
        &s,
        &opts,
        &Limits::none().with_deadline(Instant::now() - Duration::from_secs(1)),
    );
    assert!(matches!(expired, Err(ExactError::DeadlineExceeded)), "{expired:?}");

    let token = CancelToken::new();
    token.cancel();
    let cancelled = check_bounded(&s, &opts, &Limits::none().with_cancel(token));
    assert!(matches!(cancelled, Err(ExactError::Cancelled)), "{cancelled:?}");

    assert!(
        started.elapsed() < Duration::from_secs(30),
        "limited runs must not explore the exponential space"
    );
}

//! Errors for event-structure construction and reasoning.

use std::fmt;

/// Validation errors from [`StructureBuilder::build`](crate::StructureBuilder::build).
#[derive(Clone, PartialEq, Eq)]
pub enum StructureError {
    /// The structure has no variables.
    Empty,
    /// A constraint references an unknown variable id.
    UnknownVariable,
    /// A variable is constrained against itself.
    SelfLoop(String),
    /// The graph contains a directed cycle.
    Cyclic,
    /// The first variable does not reach this variable.
    Unreachable(String),
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::Empty => write!(f, "event structure has no variables"),
            StructureError::UnknownVariable => {
                write!(f, "constraint references an unknown variable")
            }
            StructureError::SelfLoop(v) => write!(f, "variable {v} is constrained against itself"),
            StructureError::Cyclic => write!(f, "event structure graph is cyclic"),
            StructureError::Unreachable(v) => {
                write!(f, "variable {v} is not reachable from the root")
            }
        }
    }
}

impl fmt::Debug for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for StructureError {}

//! Event structures: rooted DAGs of event variables with TCG-labelled arcs
//! (paper §3), and complex event types (structures with instantiated
//! variables).

use std::collections::BTreeMap;
use std::fmt;

use tgm_events::EventType;
use tgm_granularity::{Gran, Second};

use crate::error::StructureError;
use crate::tcg::Tcg;

/// Index of an event variable within an [`EventStructure`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

impl VarId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// An event structure `(W, A, Γ)`: a rooted DAG over event variables whose
/// arcs carry *sets* of TCGs, interpreted conjunctively (§3).
///
/// Built via [`StructureBuilder`], which validates acyclicity and
/// single-root reachability at [`build`](StructureBuilder::build) time.
#[derive(Clone)]
pub struct EventStructure {
    names: Vec<String>,
    /// Arcs keyed `(from, to)`, each with ≥1 TCG.
    arcs: BTreeMap<(VarId, VarId), Vec<Tcg>>,
    root: VarId,
    topo: Vec<VarId>,
}

impl EventStructure {
    /// Number of variables `|W|`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the structure has no variables (never true: a structure has
    /// at least its root).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The root variable (reaches every other variable).
    pub fn root(&self) -> VarId {
        self.root
    }

    /// The display name of a variable.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    /// All variables in id order.
    pub fn vars(&self) -> impl Iterator<Item = VarId> {
        (0..self.names.len()).map(VarId)
    }

    /// A topological order of the variables (root first).
    pub fn topo_order(&self) -> &[VarId] {
        &self.topo
    }

    /// All arcs with their TCG sets.
    pub fn arcs(&self) -> impl Iterator<Item = (VarId, VarId, &[Tcg])> {
        self.arcs.iter().map(|(&(a, b), c)| (a, b, c.as_slice()))
    }

    /// The TCGs on arc `(from, to)` (empty if the arc does not exist).
    pub fn constraints(&self, from: VarId, to: VarId) -> &[Tcg] {
        self.arcs
            .get(&(from, to))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether arc `(from, to)` exists.
    pub fn has_arc(&self, from: VarId, to: VarId) -> bool {
        self.arcs.contains_key(&(from, to))
    }

    /// Direct successors of `v`.
    pub fn children(&self, v: VarId) -> Vec<VarId> {
        self.arcs
            .range((v, VarId(0))..=(v, VarId(usize::MAX)))
            .map(|(&(_, b), _)| b)
            .collect()
    }

    /// Direct predecessors of `v`.
    pub fn parents(&self, v: VarId) -> Vec<VarId> {
        self.arcs
            .keys()
            .filter(|&&(_, b)| b == v)
            .map(|&(a, _)| a)
            .collect()
    }

    /// Variables with no outgoing arcs.
    pub fn sinks(&self) -> Vec<VarId> {
        self.vars()
            .filter(|&v| self.children(v).is_empty())
            .collect()
    }

    /// The distinct granularities appearing in `Γ` (the set `M` of §3.2).
    pub fn granularities(&self) -> Vec<Gran> {
        let mut out: Vec<Gran> = Vec::new();
        for cs in self.arcs.values() {
            for c in cs {
                if !out.contains(c.gran()) {
                    out.push(c.gran().clone());
                }
            }
        }
        out.sort();
        out
    }

    /// Whether there is a directed path from `a` to `b`.
    pub fn has_path(&self, a: VarId, b: VarId) -> bool {
        if a == b {
            return true;
        }
        let mut stack = vec![a];
        let mut seen = vec![false; self.len()];
        seen[a.index()] = true;
        while let Some(v) = stack.pop() {
            for c in self.children(v) {
                if c == b {
                    return true;
                }
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        false
    }

    /// Whether the timestamp assignment (indexed by variable id) satisfies
    /// every TCG of every arc — i.e. whether it is a *complex event
    /// matching* the structure (§3, ignoring event types).
    pub fn satisfied_by(&self, times: &[Second]) -> bool {
        assert_eq!(times.len(), self.len(), "assignment arity mismatch");
        self.arcs.iter().all(|(&(a, b), cs)| {
            cs.iter()
                .all(|c| c.satisfied(times[a.index()], times[b.index()]))
        })
    }

    /// The maximum TCG range width `w = max(n − m)` appearing in `Γ` (the
    /// parameter of Theorem 2's complexity bound).
    pub fn max_range(&self) -> u64 {
        self.arcs
            .values()
            .flatten()
            .map(|c| c.hi() - c.lo())
            .max()
            .unwrap_or(0)
    }

    /// Total number of TCGs.
    pub fn constraint_count(&self) -> usize {
        self.arcs.values().map(Vec::len).sum()
    }
}

impl fmt::Debug for EventStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EventStructure({} vars, root {})", self.len(), self.name(self.root))?;
        for (a, b, cs) in self.arcs() {
            writeln!(
                f,
                "  {} -> {}: {}",
                self.name(a),
                self.name(b),
                cs.iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(" & ")
            )?;
        }
        Ok(())
    }
}

/// Builder for [`EventStructure`].
#[derive(Default)]
pub struct StructureBuilder {
    names: Vec<String>,
    arcs: BTreeMap<(VarId, VarId), Vec<Tcg>>,
}

impl StructureBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with a display name (e.g. `"X0"`); returns its id.
    /// The first variable added is expected to be the root.
    pub fn var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.names.len());
        self.names.push(name.into());
        id
    }

    /// Adds the TCG `c` to arc `(from, to)` (creating the arc if needed).
    pub fn constrain(&mut self, from: VarId, to: VarId, c: Tcg) -> &mut Self {
        self.arcs.entry((from, to)).or_default().push(c);
        self
    }

    /// Validates and builds the structure: the graph must be acyclic, have
    /// no self-loops, and its first variable must reach every variable.
    pub fn build(self) -> Result<EventStructure, StructureError> {
        let n = self.names.len();
        if n == 0 {
            return Err(StructureError::Empty);
        }
        for &(a, b) in self.arcs.keys() {
            if a.index() >= n || b.index() >= n {
                return Err(StructureError::UnknownVariable);
            }
            if a == b {
                return Err(StructureError::SelfLoop(self.names[a.index()].clone()));
            }
        }
        // Kahn's algorithm for a topological order.
        let mut indeg = vec![0usize; n];
        for &(_, b) in self.arcs.keys() {
            indeg[b.index()] += 1;
        }
        let mut queue: Vec<VarId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(VarId)
            .collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            topo.push(v);
            for (&(_, b), _) in self.arcs.range((v, VarId(0))..=(v, VarId(usize::MAX))) {
                indeg[b.index()] -= 1;
                if indeg[b.index()] == 0 {
                    queue.push(b);
                }
            }
        }
        if topo.len() != n {
            return Err(StructureError::Cyclic);
        }
        let root = VarId(0);
        let s = EventStructure {
            names: self.names,
            arcs: self.arcs,
            root,
            topo,
        };
        for v in s.vars() {
            if !s.has_path(root, v) {
                return Err(StructureError::Unreachable(s.name(v).to_owned()));
            }
        }
        Ok(s)
    }
}

/// A complex event type `(S, φ)` (§3): an event structure whose variables
/// are instantiated with event types.
#[derive(Clone, Debug)]
pub struct ComplexEventType {
    structure: EventStructure,
    /// `φ`, indexed by variable id.
    assignment: Vec<EventType>,
}

impl ComplexEventType {
    /// Pairs a structure with a variable-to-event-type assignment.
    pub fn new(structure: EventStructure, assignment: Vec<EventType>) -> Self {
        assert_eq!(
            assignment.len(),
            structure.len(),
            "assignment arity mismatch"
        );
        ComplexEventType {
            structure,
            assignment,
        }
    }

    /// The underlying structure `S`.
    pub fn structure(&self) -> &EventStructure {
        &self.structure
    }

    /// `φ(X)` for a variable.
    pub fn event_type(&self, v: VarId) -> EventType {
        self.assignment[v.index()]
    }

    /// The full assignment, indexed by variable id.
    pub fn assignment(&self) -> &[EventType] {
        &self.assignment
    }

    /// Whether the timed assignment (one `(type, timestamp)` per variable)
    /// is an occurrence of this complex event type: types match `φ` and all
    /// TCGs hold.
    pub fn occurred_by(&self, instance: &[(EventType, Second)]) -> bool {
        assert_eq!(instance.len(), self.structure.len());
        let types_ok = instance
            .iter()
            .zip(&self.assignment)
            .all(|(&(ty, _), &want)| ty == want);
        let times: Vec<Second> = instance.iter().map(|&(_, t)| t).collect();
        types_ok && self.structure.satisfied_by(&times)
    }
}

#[cfg(test)]
mod tests {
    use tgm_granularity::Calendar;

    use super::*;

    const DAY: i64 = 86_400;

    fn day_tcg(lo: u64, hi: u64) -> Tcg {
        Tcg::new(lo, hi, Calendar::standard().get("day").unwrap())
    }

    #[test]
    fn builder_diamond() {
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        let x3 = b.var("X3");
        b.constrain(x0, x1, day_tcg(0, 1));
        b.constrain(x0, x2, day_tcg(0, 5));
        b.constrain(x1, x3, day_tcg(0, 2));
        b.constrain(x2, x3, day_tcg(0, 2));
        let s = b.build().unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.root(), x0);
        assert_eq!(s.children(x0), vec![x1, x2]);
        assert_eq!(s.parents(x3), vec![x1, x2]);
        assert_eq!(s.sinks(), vec![x3]);
        assert!(s.has_path(x0, x3));
        assert!(!s.has_path(x1, x2));
        assert_eq!(s.topo_order()[0], x0);
        assert_eq!(s.max_range(), 5);
        assert_eq!(s.constraint_count(), 4);
    }

    #[test]
    fn cycle_rejected() {
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        b.constrain(x0, x1, day_tcg(0, 1));
        b.constrain(x1, x0, day_tcg(0, 1));
        assert_eq!(b.build().unwrap_err(), StructureError::Cyclic);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        b.constrain(x0, x0, day_tcg(0, 1));
        assert!(matches!(b.build(), Err(StructureError::SelfLoop(_))));
    }

    #[test]
    fn unreachable_rejected() {
        let mut b = StructureBuilder::new();
        let _x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        b.constrain(x1, x2, day_tcg(0, 1));
        assert!(matches!(b.build(), Err(StructureError::Unreachable(_))));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            StructureBuilder::new().build().unwrap_err(),
            StructureError::Empty
        );
    }

    #[test]
    fn single_variable_is_fine() {
        let mut b = StructureBuilder::new();
        b.var("X0");
        let s = b.build().unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.satisfied_by(&[42]));
    }

    #[test]
    fn satisfied_by_checks_all_arcs() {
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        b.constrain(x0, x1, day_tcg(1, 1));
        let s = b.build().unwrap();
        assert!(s.satisfied_by(&[0, DAY])); // next day
        assert!(!s.satisfied_by(&[0, 0])); // same day
        assert!(!s.satisfied_by(&[DAY, 0])); // wrong order
    }

    #[test]
    fn conjunction_on_one_arc() {
        // Same week AND at least 2 days later.
        let cal = Calendar::standard();
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        b.constrain(x0, x1, Tcg::new(0, 0, cal.get("week").unwrap()));
        b.constrain(x0, x1, Tcg::new(2, 10, cal.get("day").unwrap()));
        let s = b.build().unwrap();
        // Mon 2000-01-03 -> Wed 2000-01-05: same week, 2 days later.
        assert!(s.satisfied_by(&[2 * DAY, 4 * DAY]));
        // Mon -> Tue: same week but only 1 day later.
        assert!(!s.satisfied_by(&[2 * DAY, 3 * DAY]));
        // Fri 2000-01-07 -> Mon 2000-01-10: 3 days later but next week.
        assert!(!s.satisfied_by(&[6 * DAY, 9 * DAY]));
    }

    #[test]
    fn granularities_deduplicated() {
        let cal = Calendar::standard();
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        b.constrain(x0, x1, Tcg::new(0, 1, cal.get("day").unwrap()));
        b.constrain(x1, x2, Tcg::new(0, 1, cal.get("day").unwrap()));
        b.constrain(x0, x2, Tcg::new(0, 0, cal.get("week").unwrap()));
        let s = b.build().unwrap();
        let gs = s.granularities();
        assert_eq!(gs.len(), 2);
    }

    #[test]
    fn complex_event_type_occurrence() {
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        b.constrain(x0, x1, day_tcg(1, 1));
        let s = b.build().unwrap();
        let mut reg = tgm_events::TypeRegistry::new();
        let rise = reg.intern("IBM-rise");
        let fall = reg.intern("IBM-fall");
        let t = ComplexEventType::new(s, vec![rise, fall]);
        assert!(t.occurred_by(&[(rise, 0), (fall, DAY)]));
        assert!(!t.occurred_by(&[(fall, 0), (fall, DAY)])); // wrong type
        assert!(!t.occurred_by(&[(rise, 0), (fall, 3 * DAY)])); // wrong time
    }
}

//! Approximate constraint propagation for event structures (paper §3.2,
//! Theorem 2): sound, terminating, polynomial.
//!
//! The algorithm partitions the TCGs of an event structure into groups
//! `C_μ`, one per granularity `μ` appearing in `Γ` (always including the
//! primitive `second`). Each group is a Simple Temporal Problem over the
//! *tick indices* `⌈t_X⌉μ` of the variables. It then alternates
//!
//! 1. **path consistency** within each group (STP minimization — complete
//!    for single-granularity networks, per Dechter–Meiri–Pearl), and
//! 2. **conversion**: every finite derived constraint of one group is
//!    translated (Appendix A.1) into every *gap-free* other granularity and
//!    intersected into that group,
//!
//! until no group changes. Inconsistency of any group refutes the
//! structure; the reverse direction is necessarily incomplete (consistency
//! is NP-hard, Theorem 1).
//!
//! # Why this is sound
//!
//! Every constraint entering a group `C_μ` is satisfied by every complex
//! event matching the structure whenever the `μ`-ticks of its two variables
//! are defined:
//!
//! * *explicit* TCGs by the match semantics (which also force definedness
//!   of their endpoints' ticks);
//! * *precedence* constraints `⌈t_Y⌉μ − ⌈t_X⌉μ ≥ 0` for every arc
//!   `(X, Y)`, because arc semantics order the timestamps and temporal
//!   types are monotone;
//! * *converted* constraints because conversion targets either gap-free
//!   granularities (ticks always defined) or gapped ones restricted to
//!   variable pairs whose definedness is forced by explicit TCGs, and
//!   Appendix A.1 derives implied bounds.
//!
//! Any *finite* bound derived by shortest paths only traverses explicit or
//! converted edges between finite endpoints (precedence contributes only
//! zeroes), and every intermediate variable on such a path has a defined
//! tick (it is an endpoint of an explicit or converted constraint, whose
//! endpoints are defined by construction, or the granularity is gap-free),
//! so derived finite bounds hold for every matching event.

use std::collections::{BTreeMap, HashMap};

use tgm_granularity::{cache, Calendar, Gran, Granularity};
use tgm_limits::{Interrupt, Limits};
use tgm_stp::{MinimalNetwork, Range, Stp, INF};

use crate::structure::{EventStructure, VarId};
use crate::tcg::Tcg;

/// Conversions are pure functions of (source granularity instance, target
/// granularity instance, bounds); identical ranges recur across propagation
/// calls whenever the same calendar is reused (the mining pipeline invokes
/// propagation once per candidate sub-structure), so the memo is
/// process-wide. Keys use [`Gran::instance_id`] — process-unique and never
/// reused — so name collisions (e.g. `business-day` with different holiday
/// sets) cannot alias.
type ConvKey = (u64, u64, i64, i64);

fn converted_bounds_cached(
    src: &Gran,
    dst: &Gran,
    lo: i64,
    hi: i64,
    local: &mut HashMap<ConvKey, Option<(i64, i64)>>,
) -> Option<(i64, i64)> {
    let key = (src.instance_id(), dst.instance_id(), lo, hi);
    let compute = |src: &Gran, dst: &Gran| {
        let src_tcg = Tcg::new(lo as u64, hi as u64, src.clone());
        crate::convert::convert_constraint_for_defined_ticks(&src_tcg, dst)
            .map(|c| (c.lo() as i64, c.hi() as i64))
    };
    if !cache::enabled() {
        // Ablation mode: fall back to a per-call memo so propagation retains
        // its original (pre-shared-cache) behavior.
        return *local.entry(key).or_insert_with(|| compute(src, dst));
    }
    type ConvMap = HashMap<ConvKey, Option<(i64, i64)>>;
    static GLOBAL: parking_lot::Mutex<Option<ConvMap>> = parking_lot::Mutex::new(None);
    const MAX_ENTRIES: usize = 1 << 16;
    let mut guard = GLOBAL.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    if let Some(v) = map.get(&key) {
        return *v;
    }
    let v = compute(src, dst);
    if map.len() >= MAX_ENTRIES {
        map.clear();
    }
    map.insert(key, v);
    v
}

/// Options for [`propagate_with`].
#[derive(Clone, Debug)]
pub struct PropagateOptions {
    /// Always include the primitive `second` group, so second-level windows
    /// are available even when no explicit TCG uses seconds. Default: true.
    pub include_seconds: bool,
    /// Safety cap on propagation iterations (the algorithm terminates on
    /// its own; Theorem 2 bounds iterations by `n²·|M|·w`). Default: 100000.
    pub max_iterations: usize,
}

impl Default for PropagateOptions {
    fn default() -> Self {
        PropagateOptions {
            include_seconds: true,
            max_iterations: 100_000,
        }
    }
}

/// Result of approximate propagation: per-granularity minimal tick-distance
/// networks, or a refutation.
#[derive(Debug)]
pub struct Propagated {
    grans: Vec<Gran>,
    /// Minimal networks parallel to `grans`; `None` iff inconsistent.
    networks: Option<Vec<MinimalNetwork>>,
    /// `defined[g][v]`: matching events are guaranteed to have a defined
    /// `grans[g]`-tick for variable `v` (gap-free granularity, or `v` is an
    /// endpoint of an explicit TCG in that granularity).
    defined: Vec<Vec<bool>>,
    /// On refutation: the granularity group where the contradiction
    /// surfaced (either its own path consistency, or a converted
    /// constraint tightened it to empty).
    refuted_in: Option<Gran>,
    iterations: usize,
    n_vars: usize,
}

impl Propagated {
    /// Whether propagation failed to refute the structure. A `true` result
    /// does **not** prove consistency (the algorithm is approximate).
    pub fn is_consistent(&self) -> bool {
        self.networks.is_some()
    }

    /// Number of outer iterations (path consistency + conversion rounds)
    /// performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// On refutation, the granularity group in which the contradiction
    /// surfaced (useful for explaining why a structure was rejected).
    pub fn refuted_in(&self) -> Option<&Gran> {
        self.refuted_in.as_ref()
    }

    /// The granularity groups, in order.
    pub fn granularities(&self) -> &[Gran] {
        &self.grans
    }

    /// The minimal derived tick-distance range `⌈t_j⌉μ − ⌈t_i⌉μ` for a
    /// group, or `None` if the structure was refuted or `μ` has no group.
    pub fn range(&self, gran: &Gran, i: VarId, j: VarId) -> Option<Range> {
        let nets = self.networks.as_ref()?;
        let idx = self.grans.iter().position(|g| g == gran)?;
        Some(nets[idx].range(i.index(), j.index()))
    }

    /// The derived window on `t_j − t_i` in seconds (from the primitive
    /// group), or `None` if refuted or the seconds group is absent.
    pub fn seconds_window(&self, i: VarId, j: VarId) -> Option<Range> {
        let sec = self.grans.iter().find(|g| g.name() == "second")?;
        self.range(&sec.clone(), i, j)
    }

    /// All finite, forward (`lo ≥ 0`) derived constraints between `i` and
    /// `j`, one per group, expressed as TCGs — the `Γ'` sets used by the
    /// induced approximated sub-structures of §5.1.
    ///
    /// TCG semantics presuppose `t_i ≤ t_j` *and* defined covering ticks, so
    /// constraints are only reported when (a) the derived second-level
    /// window proves the order (which holds for all path-ordered pairs) and
    /// (b) every matching event is guaranteed a defined tick for both
    /// variables in that granularity — either because the granularity is
    /// gap-free or because the variable carries an explicit TCG in it.
    pub fn derived_tcgs(&self, i: VarId, j: VarId) -> Vec<Tcg> {
        let Some(nets) = self.networks.as_ref() else {
            return Vec::new();
        };
        if self.seconds_window(i, j).is_none_or(|r| r.lo < 0) {
            return Vec::new();
        }
        self.grans
            .iter()
            .enumerate()
            .zip(nets)
            .filter_map(|((gi, g), net)| {
                if !(self.defined[gi][i.index()] && self.defined[gi][j.index()]) {
                    return None;
                }
                let r = net.range(i.index(), j.index());
                (r.lo >= 0 && r.hi < INF)
                    .then(|| Tcg::new(r.lo as u64, r.hi as u64, g.clone()))
            })
            .collect()
    }
}

impl Propagated {
    /// Renders the derived minimal tick-distance ranges per granularity for
    /// every path-ordered pair — a human-readable propagation report.
    pub fn describe(&self, s: &EventStructure) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.is_consistent() {
            match self.refuted_in() {
                Some(g) => {
                    let _ = writeln!(
                        out,
                        "INCONSISTENT (refuted by propagation in the `{}` group)",
                        g.name()
                    );
                }
                None => out.push_str("INCONSISTENT (refuted by propagation)\n"),
            }
            return out;
        }
        for i in s.vars() {
            for j in s.vars() {
                if i == j || !s.has_path(i, j) {
                    continue;
                }
                let tcgs = self.derived_tcgs(i, j);
                if tcgs.is_empty() {
                    continue;
                }
                let parts: Vec<String> = tcgs.iter().map(|t| t.to_string()).collect();
                let _ = writeln!(out, "{} -> {}: {}", s.name(i), s.name(j), parts.join(" & "));
            }
        }
        out
    }
}

/// Runs approximate propagation with default options.
///
/// ```
/// use tgm_core::{propagate::propagate, StructureBuilder, Tcg};
/// use tgm_granularity::Calendar;
///
/// let cal = Calendar::standard();
/// let mut b = StructureBuilder::new();
/// let x0 = b.var("X0");
/// let x1 = b.var("X1");
/// // Same day, but at least 26 hours apart: contradictory across
/// // granularities — propagation refutes it.
/// b.constrain(x0, x1, Tcg::new(0, 0, cal.get("day").unwrap()));
/// b.constrain(x0, x1, Tcg::new(26, 30, cal.get("hour").unwrap()));
/// let s = b.build().unwrap();
/// assert!(!propagate(&s).is_consistent());
/// ```
pub fn propagate(s: &EventStructure) -> Propagated {
    propagate_with(s, &PropagateOptions::default())
}

/// Runs approximate propagation (paper §3.2).
pub fn propagate_with(s: &EventStructure, opts: &PropagateOptions) -> Propagated {
    match propagate_core(s, opts, None) {
        Ok(p) => p,
        // Unreachable: without limits nothing interrupts the fixpoint.
        Err(i) => unreachable!("unlimited propagation interrupted: {i}"),
    }
}

/// [`propagate_with`] under [`Limits`]: the fixpoint loop polls
/// cancellation and the deadline per conversion pass and returns `Err`
/// when interrupted (propagation has no meaningful partial result — a
/// half-tightened network is not sound to read). With [`Limits::none`]
/// behaves exactly like [`propagate_with`].
pub fn propagate_bounded(
    s: &EventStructure,
    opts: &PropagateOptions,
    limits: &Limits,
) -> Result<Propagated, Interrupt> {
    propagate_core(s, opts, Some(limits))
}

fn propagate_core(
    s: &EventStructure,
    opts: &PropagateOptions,
    limits: Option<&Limits>,
) -> Result<Propagated, Interrupt> {
    let n = s.len();
    let mut grans = s.granularities();
    if opts.include_seconds && !grans.iter().any(|g| g.name() == "second") {
        // The shared handle keeps one warm size table and resolution cache
        // across every propagation call instead of rebuilding them here.
        // Invariant: the standard calendar always defines `second`.
        #[allow(clippy::expect_used)]
        let second = Calendar::shared_standard()
            .get("second")
            .expect("standard calendar defines `second`");
        grans.push(second);
        grans.sort();
    }

    // Definedness guarantees per group (see `Propagated::defined`).
    let defined: Vec<Vec<bool>> = grans
        .iter()
        .map(|g| {
            if !g.has_gaps() {
                return vec![true; n];
            }
            let mut mask = vec![false; n];
            for (a, b, cs) in s.arcs() {
                if cs.iter().any(|c| c.gran() == g) {
                    mask[a.index()] = true;
                    mask[b.index()] = true;
                }
            }
            mask
        })
        .collect();

    // Build the initial group STPs: explicit TCGs plus arc precedence.
    let mut groups: BTreeMap<usize, Stp> = BTreeMap::new();
    for (gi, g) in grans.iter().enumerate() {
        let mut stp = Stp::new(n);
        for (a, b, cs) in s.arcs() {
            stp.constrain(a.index(), b.index(), Range::at_least(0));
            for c in cs {
                if c.gran() == g {
                    stp.constrain(a.index(), b.index(), Range::new(c.lo() as i64, c.hi() as i64));
                }
            }
        }
        groups.insert(gi, stp);
    }

    // Initial path consistency.
    let mut nets: Vec<MinimalNetwork> = Vec::with_capacity(grans.len());
    for gi in 0..grans.len() {
        match groups[&gi].minimize() {
            Ok(m) => nets.push(m),
            Err(_) => {
                let refuted_in = Some(grans[gi].clone());
                return Ok(Propagated {
                    grans,
                    networks: None,
                    defined,
                    iterations: 0,
                    n_vars: n,
                    refuted_in,
                });
            }
        }
    }

    // Conversion is only sound for timestamp-ordered pairs (the TCG and
    // size-table semantics assume t_i <= t_j), so restrict it to pairs
    // connected by a directed path.
    let mut ordered = vec![false; n * n];
    for i in s.vars() {
        for j in s.vars() {
            if i != j && s.has_path(i, j) {
                ordered[i.index() * n + j.index()] = true;
            }
        }
    }

    // Per-call fallback memo used when the shared cache layer is disabled
    // (see `converted_bounds_cached`).
    let mut conv_local: HashMap<ConvKey, Option<(i64, i64)>> = HashMap::new();

    // Alternate conversion + incremental re-tightening to a fixpoint.
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut changed = false;
        for src_idx in 0..grans.len() {
            for dst_idx in 0..grans.len() {
                if src_idx == dst_idx {
                    continue;
                }
                // Cooperative poll, once per conversion pass: the network
                // state between passes is consistent (tightenings are
                // individually sound), but we discard it anyway — see
                // propagate_bounded's contract.
                if let Some(l) = limits {
                    l.check()?;
                }
                let dst_gapped = grans[dst_idx].has_gaps();
                for i in 0..n {
                    for j in 0..n {
                        if i == j || !ordered[i * n + j] {
                            continue;
                        }
                        // Conversion into a gapped granularity is sound only
                        // when both endpoints are guaranteed defined ticks
                        // there (explicit TCGs force that); gap-free targets
                        // are unconditional. This realizes the paper's
                        // b-week -> b-day style conversions.
                        if dst_gapped && !(defined[dst_idx][i] && defined[dst_idx][j]) {
                            continue;
                        }
                        let r = nets[src_idx].range(i, j);
                        if r.lo < 0 || r.hi >= INF {
                            continue;
                        }
                        let converted = converted_bounds_cached(
                            &grans[src_idx],
                            &grans[dst_idx],
                            r.lo,
                            r.hi,
                            &mut conv_local,
                        );
                        let Some((clo, chi)) = converted else {
                            continue;
                        };
                        let target = Range::new(clo, chi);
                        let before = nets[dst_idx].range(i, j);
                        match nets[dst_idx].tighten(i, j, target) {
                            Ok(()) => {
                                if nets[dst_idx].range(i, j) != before {
                                    changed = true;
                                }
                            }
                            Err(_) => {
                                let refuted_in = Some(grans[dst_idx].clone());
                                return Ok(Propagated {
                                    grans,
                                    networks: None,
                                    defined,
                                    iterations,
                                    n_vars: n,
                                    refuted_in,
                                });
                            }
                        }
                    }
                }
            }
        }
        if !changed || iterations >= opts.max_iterations {
            break;
        }
    }

    Ok(Propagated {
        grans,
        networks: Some(nets),
        defined,
        iterations,
        n_vars: n,
        refuted_in: None,
    })
}

impl Propagated {
    /// Number of variables of the propagated structure.
    pub fn len(&self) -> usize {
        self.n_vars
    }

    /// Whether the propagated structure has no variables.
    pub fn is_empty(&self) -> bool {
        self.n_vars == 0
    }
}

#[cfg(test)]
mod tests {
    use tgm_granularity::Calendar;

    use super::*;
    use crate::structure::StructureBuilder;

    const DAY: i64 = 86_400;

    #[test]
    fn chain_derives_seconds_window() {
        let cal = Calendar::standard();
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        b.constrain(x0, x1, Tcg::new(1, 2, cal.get("day").unwrap()));
        b.constrain(x1, x2, Tcg::new(1, 2, cal.get("day").unwrap()));
        let s = b.build().unwrap();
        let p = propagate(&s);
        assert!(p.is_consistent());
        let day = cal.get("day").unwrap();
        // Day-distance X0..X2 is the sum [2, 4].
        assert_eq!(p.range(&day, x0, x2).unwrap(), Range::new(2, 4));
        // A seconds window must have been derived by conversion.
        let w = p.seconds_window(x0, x2).unwrap();
        assert!(w.lo >= 1, "lower bound should be positive, got {w:?}");
        assert!(w.hi <= 5 * DAY, "upper bound too loose: {w:?}");
    }

    #[test]
    fn contradictory_same_granularity_refuted() {
        let cal = Calendar::standard();
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        b.constrain(x0, x1, Tcg::new(3, 5, cal.get("day").unwrap()));
        b.constrain(x1, x2, Tcg::new(3, 5, cal.get("day").unwrap()));
        b.constrain(x0, x2, Tcg::new(0, 2, cal.get("day").unwrap()));
        let s = b.build().unwrap();
        assert!(!propagate(&s).is_consistent());
    }

    #[test]
    fn cross_granularity_refutation() {
        // Same day but at least 25 hours apart: refuted only via
        // conversion between the day and hour groups.
        let cal = Calendar::standard();
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        b.constrain(x0, x1, Tcg::new(0, 0, cal.get("day").unwrap()));
        b.constrain(x0, x1, Tcg::new(26, 40, cal.get("hour").unwrap()));
        let s = b.build().unwrap();
        assert!(!propagate(&s).is_consistent());
    }

    #[test]
    fn same_day_and_few_hours_is_kept() {
        let cal = Calendar::standard();
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        b.constrain(x0, x1, Tcg::new(0, 0, cal.get("day").unwrap()));
        b.constrain(x0, x1, Tcg::new(4, 6, cal.get("hour").unwrap()));
        let s = b.build().unwrap();
        let p = propagate(&s);
        assert!(p.is_consistent());
        // Witness check: 08:00 and 13:00 of day 0 match, and satisfy every
        // derived TCG (soundness).
        assert!(s.satisfied_by(&[8 * 3_600, 13 * 3_600]));
        for t in p.derived_tcgs(x0, x1) {
            assert!(t.satisfied(8 * 3_600, 13 * 3_600), "derived {t} violated");
        }
    }

    #[test]
    fn derived_tcgs_exclude_unrelated_pairs() {
        let cal = Calendar::standard();
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        b.constrain(x0, x1, Tcg::new(0, 1, cal.get("day").unwrap()));
        b.constrain(x0, x2, Tcg::new(0, 1, cal.get("day").unwrap()));
        let s = b.build().unwrap();
        let p = propagate(&s);
        // X1 and X2 are ordered neither way: day distance spans negatives,
        // so no forward TCG should be derived in either direction ... but
        // the day range [-1, 1] is not forward; ensure filtering applies.
        for t in p.derived_tcgs(x1, x2) {
            assert!(t.lo() == 0 || t.hi() < u64::MAX);
        }
        // The root-to-leaf windows exist.
        assert!(p.seconds_window(x0, x1).is_some());
    }

    #[test]
    fn iterations_reported() {
        let cal = Calendar::standard();
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        b.constrain(x0, x1, Tcg::new(0, 3, cal.get("week").unwrap()));
        let s = b.build().unwrap();
        let p = propagate(&s);
        assert!(p.is_consistent());
        assert!(p.iterations() >= 1);
        assert_eq!(p.len(), 2);
    }
}

#[cfg(test)]
mod describe_tests {
    use tgm_granularity::Calendar;

    use crate::examples::figure_1a;
    use crate::propagate::propagate;

    #[test]
    fn describe_renders_derived_constraints() {
        let cal = Calendar::standard();
        let (s, _) = figure_1a(&cal);
        let p = propagate(&s);
        let text = p.describe(&s);
        assert!(text.contains("X0 -> X3"), "{text}");
        assert!(text.contains("week"), "{text}");
        // Unordered pairs (X1, X2) are not reported.
        assert!(!text.contains("X1 -> X2"), "{text}");
        assert!(!text.contains("X2 -> X1"), "{text}");
    }

    #[test]
    fn describe_reports_refutation() {
        use crate::structure::StructureBuilder;
        use crate::tcg::Tcg;
        let cal = Calendar::standard();
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        b.constrain(x0, x1, Tcg::new(0, 0, cal.get("day").unwrap()));
        b.constrain(x0, x1, Tcg::new(26, 30, cal.get("hour").unwrap()));
        let s = b.build().unwrap();
        let p = propagate(&s);
        assert!(p.describe(&s).contains("INCONSISTENT"));
    }
}

#[cfg(test)]
mod refutation_tests {
    use tgm_granularity::Calendar;

    use crate::propagate::propagate;
    use crate::structure::StructureBuilder;
    use crate::tcg::Tcg;

    #[test]
    fn refutation_names_the_group() {
        let cal = Calendar::standard();
        // Contradiction entirely inside the day group.
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        b.constrain(x0, x1, Tcg::new(3, 3, cal.get("day").unwrap()));
        b.constrain(x1, x2, Tcg::new(3, 3, cal.get("day").unwrap()));
        b.constrain(x0, x2, Tcg::new(0, 1, cal.get("day").unwrap()));
        let s = b.build().unwrap();
        let p = propagate(&s);
        assert!(!p.is_consistent());
        assert_eq!(p.refuted_in().map(|g| g.name()), Some("day"));
        assert!(p.describe(&s).contains("`day` group"));

        // Cross-granularity contradiction surfaces in whichever group the
        // converted constraint empties — it must name *some* group.
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        b.constrain(x0, x1, Tcg::new(0, 0, cal.get("day").unwrap()));
        b.constrain(x0, x1, Tcg::new(26, 40, cal.get("hour").unwrap()));
        let s = b.build().unwrap();
        let p = propagate(&s);
        assert!(!p.is_consistent());
        assert!(p.refuted_in().is_some());
        // A consistent structure reports no refutation group.
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        b.constrain(x0, x1, Tcg::new(0, 1, cal.get("day").unwrap()));
        let s = b.build().unwrap();
        assert!(propagate(&s).refuted_in().is_none());
    }
}

#[cfg(test)]
mod gapped_conversion_tests {
    use tgm_granularity::Calendar;
    use tgm_stp::Range;

    use crate::propagate::propagate;
    use crate::structure::StructureBuilder;
    use crate::tcg::Tcg;

    /// Conversion INTO a gapped granularity (the paper's b-week -> b-day
    /// style) when explicit TCGs force definedness: an hour bound tightens
    /// a business-day range.
    #[test]
    fn hour_constraint_tightens_business_day_range() {
        let cal = Calendar::standard();
        let bday = cal.get("business-day").unwrap();
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        b.constrain(x0, x1, Tcg::new(0, 5, bday.clone()));
        b.constrain(x0, x1, Tcg::new(0, 30, cal.get("hour").unwrap()));
        let s = b.build().unwrap();
        let p = propagate(&s);
        assert!(p.is_consistent());
        // Within 30 hours one can reach at most 2 business days ahead
        // (Fri morning -> Sat crosses one b-day boundary; two boundaries
        // need > 30h... concretely mingap(b-day, 3) > 31h - 1).
        let r = p.range(&bday, x0, x1).unwrap();
        assert!(r.hi <= 2, "b-day range should tighten below 5, got {r:?}");
        assert_eq!(r.lo, 0);
        // And the derived TCG set on (X0, X1) includes the tightened b-day
        // constraint (definedness is forced by the explicit TCG).
        let derived = p.derived_tcgs(x0, x1);
        let got = derived.iter().find(|t| t.gran().name() == "business-day");
        assert!(got.is_some_and(|t| t.hi() <= 2), "{derived:?}");
    }

    /// Chains combine inside the gapped group across arcs.
    #[test]
    fn business_day_chain_composes() {
        let cal = Calendar::standard();
        let bday = cal.get("business-day").unwrap();
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        b.constrain(x0, x1, Tcg::new(1, 1, bday.clone()));
        b.constrain(x1, x2, Tcg::new(2, 2, bday.clone()));
        let s = b.build().unwrap();
        let p = propagate(&s);
        assert_eq!(p.range(&bday, x0, x2).unwrap(), Range::new(3, 3));
    }

    /// Variables WITHOUT explicit b-day constraints get no b-day-derived
    /// TCGs even if connected (definedness cannot be guaranteed).
    #[test]
    fn no_gapped_derivation_without_definedness() {
        let cal = Calendar::standard();
        let bday = cal.get("business-day").unwrap();
        let mut b = StructureBuilder::new();
        let x0 = b.var("X0");
        let x1 = b.var("X1");
        let x2 = b.var("X2");
        b.constrain(x0, x1, Tcg::new(0, 2, bday));
        b.constrain(x1, x2, Tcg::new(0, 10, cal.get("hour").unwrap()));
        let s = b.build().unwrap();
        let p = propagate(&s);
        assert!(p.is_consistent());
        // (x1, x2): x2 has no b-day TCG -> no derived b-day constraint.
        assert!(p
            .derived_tcgs(x1, x2)
            .iter()
            .all(|t| t.gran().name() != "business-day"));
        // (x0, x1): both defined -> a b-day constraint is derived.
        assert!(p
            .derived_tcgs(x0, x1)
            .iter()
            .any(|t| t.gran().name() == "business-day"));
    }
}

//! The paper's primary contribution: *temporal constraints with
//! granularities* (TCGs), *event structures*, and the reasoning machinery
//! around them.
//!
//! From Bettini, Wang & Jajodia, *Testing Complex Temporal Relationships
//! Involving Multiple Granularities and Its Application to Data Mining*
//! (PODS 1996):
//!
//! * [`Tcg`] — a constraint `[m, n] μ` relating two timestamps by the
//!   distance of their covering ticks in granularity `μ` (§3). Note the
//!   paper's headline observation: `[0,0] day` is *not* `[0, 86399] second`.
//! * [`EventStructure`] — a rooted DAG of event variables with sets of TCGs
//!   on its arcs (§3); [`ComplexEventType`] instantiates variables with
//!   event types.
//! * [`convert_constraint`] — the granularity-conversion algorithm of
//!   Appendix A.1 (Figure 3), built on `minsize`/`maxsize`/`mingap` tables.
//! * [`propagate`] — the approximate constraint-propagation algorithm of
//!   §3.2 (sound, polynomial; Theorem 2): per-granularity STP path
//!   consistency interleaved with cross-granularity conversion, iterated to
//!   a fixpoint.
//! * [`exact`] — a horizon-bounded *exact* consistency checker (consistency
//!   is NP-hard; Theorem 1), searching overlay-cell representatives.
//! * [`reductions`] — the SUBSET SUM gadget of the Theorem 1 proof.
//! * [`substructure`] — induced approximated sub-structures (§5.1) used to
//!   prune the data-mining hypothesis space.
//! * [`examples`] — the structures of Figure 1 and Example 1, used by tests
//!   and by the experiment harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod error;
mod structure;
mod tcg;

pub mod convert;
pub mod dot;
pub mod exact;
pub mod examples;
pub mod json;
pub mod propagate;
pub mod reductions;
pub mod repeat;
pub mod substructure;

pub use convert::{convert_constraint, convert_constraint_for_defined_ticks, convert_constraint_paper};
pub use error::StructureError;
pub use structure::{ComplexEventType, EventStructure, StructureBuilder, VarId};
pub use tcg::{OverflowError, Tcg};

//! Graphviz DOT export for event structures (handy for documentation and
//! for eyeballing reconstructed paper figures).

use std::fmt::Write as _;

use crate::structure::EventStructure;

/// Renders the structure as a Graphviz `digraph`.
pub fn structure_to_dot(s: &EventStructure, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    for v in s.vars() {
        let shape = if v == s.root() { "doublecircle" } else { "circle" };
        let _ = writeln!(out, "  {} [label=\"{}\", shape={shape}];", v.index(), s.name(v));
    }
    for (a, b, cs) in s.arcs() {
        let label = cs
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("\\n");
        let _ = writeln!(out, "  {} -> {} [label=\"{label}\"];", a.index(), b.index());
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use tgm_granularity::Calendar;

    use super::*;
    use crate::examples::figure_1a;

    #[test]
    fn dot_contains_all_arcs_and_labels() {
        let cal = Calendar::standard();
        let (s, _) = figure_1a(&cal);
        let dot = structure_to_dot(&s, "figure-1a");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("doublecircle")); // root highlighted
        assert!(dot.contains("[1,1]business-day"));
        assert!(dot.contains("[0,8]hour"));
        assert_eq!(dot.matches(" -> ").count(), 4);
    }
}

//! The event structures of the paper's Figure 1 and the complex event type
//! of Example 1, used by tests, examples, and the experiment harness.

// Everything here builds fixed, known-valid paper structures from the
// standard calendar; a panic is a bug in this module, not bad input.
#![allow(clippy::expect_used)]
//!
//! Figure 1(a) (reconstructed from Example 1 and the TAG of Figure 2):
//!
//! ```text
//!        [1,1] b-day          [0,1] week
//!   X0 ---------------> X1 ---------------> X3
//!    \                                      ^
//!     \  [0,5] b-day          [0,8] hour   /
//!      +--------------> X2 ---------------+
//! ```
//!
//! Figure 1(b) (the granularity-encoded disjunction of §3.1):
//!
//! ```text
//!   X0 --[11,11] month & [0,0] year--> X1
//!   X0 --[0,12] month--> X2
//!   X2 --[11,11] month & [0,0] year--> X3
//! ```
//!
//! In (b), the `X1` arc pins `X0` to the first month of a year and the `X3`
//! arc pins `X2` likewise, so the distance between `X0` and `X2` must be
//! 0 or 12 months — a disjunction expressed purely by granularities.

use tgm_events::{EventType, TypeRegistry};
use tgm_granularity::Calendar;

use crate::structure::{ComplexEventType, EventStructure, StructureBuilder, VarId};
use crate::tcg::Tcg;

/// Variable handles for [`figure_1a`].
#[derive(Clone, Copy, Debug)]
pub struct Figure1aVars {
    /// The root (IBM-rise in Example 1).
    pub x0: VarId,
    /// One business day after `x0` (IBM-earnings-report).
    pub x1: VarId,
    /// Within 5 business days after `x0` (HP-rise).
    pub x2: VarId,
    /// Same/next week of `x1`, within 8 hours after `x2` (IBM-fall).
    pub x3: VarId,
}

/// Builds the event structure of Figure 1(a).
pub fn figure_1a(cal: &Calendar) -> (EventStructure, Figure1aVars) {
    let bday = cal.get("business-day").expect("standard calendar");
    let week = cal.get("week").expect("standard calendar");
    let hour = cal.get("hour").expect("standard calendar");
    let mut b = StructureBuilder::new();
    let x0 = b.var("X0");
    let x1 = b.var("X1");
    let x2 = b.var("X2");
    let x3 = b.var("X3");
    b.constrain(x0, x1, Tcg::new(1, 1, bday.clone()));
    b.constrain(x1, x3, Tcg::new(0, 1, week));
    b.constrain(x0, x2, Tcg::new(0, 5, bday));
    b.constrain(x2, x3, Tcg::new(0, 8, hour));
    let s = b.build().expect("Figure 1(a) is a valid structure");
    (s, Figure1aVars { x0, x1, x2, x3 })
}

/// Variable handles for [`figure_1b`].
#[derive(Clone, Copy, Debug)]
pub struct Figure1bVars {
    /// The root.
    pub x0: VarId,
    /// Pins `x0` to the first month of a year.
    pub x1: VarId,
    /// 0–12 months after `x0`.
    pub x2: VarId,
    /// Pins `x2` to the first month of a year.
    pub x3: VarId,
}

/// Builds the event structure of Figure 1(b).
pub fn figure_1b(cal: &Calendar) -> (EventStructure, Figure1bVars) {
    let month = cal.get("month").expect("standard calendar");
    let year = cal.get("year").expect("standard calendar");
    let mut b = StructureBuilder::new();
    let x0 = b.var("X0");
    let x1 = b.var("X1");
    let x2 = b.var("X2");
    let x3 = b.var("X3");
    b.constrain(x0, x1, Tcg::new(11, 11, month.clone()));
    b.constrain(x0, x1, Tcg::new(0, 0, year.clone()));
    b.constrain(x0, x2, Tcg::new(0, 12, month.clone()));
    b.constrain(x2, x3, Tcg::new(11, 11, month));
    b.constrain(x2, x3, Tcg::new(0, 0, year));
    let s = b.build().expect("Figure 1(b) is a valid structure");
    (s, Figure1bVars { x0, x1, x2, x3 })
}

/// Event types of Example 1 (interned into `reg`).
#[derive(Clone, Copy, Debug)]
pub struct Example1Types {
    /// `IBM-rise` (assigned to X0).
    pub ibm_rise: EventType,
    /// `IBM-earnings-report` (assigned to X1).
    pub ibm_report: EventType,
    /// `HP-rise` (assigned to X2).
    pub hp_rise: EventType,
    /// `IBM-fall` (assigned to X3).
    pub ibm_fall: EventType,
}

/// Builds the complex event type of Example 1: Figure 1(a) with
/// `φ = {X0 ↦ IBM-rise, X1 ↦ IBM-earnings-report, X2 ↦ HP-rise,
/// X3 ↦ IBM-fall}`.
pub fn example_1(cal: &Calendar, reg: &mut TypeRegistry) -> (ComplexEventType, Example1Types) {
    let (s, _) = figure_1a(cal);
    let tys = Example1Types {
        ibm_rise: reg.intern("IBM-rise"),
        ibm_report: reg.intern("IBM-earnings-report"),
        hp_rise: reg.intern("HP-rise"),
        ibm_fall: reg.intern("IBM-fall"),
    };
    let cet = ComplexEventType::new(
        s,
        vec![tys.ibm_rise, tys.ibm_report, tys.hp_rise, tys.ibm_fall],
    );
    (cet, tys)
}

/// The discovery problem of the paper's Example 2 in structural form:
/// Figure 1(a) with the root fixed to `IBM-rise`, `X3` pinned to
/// `IBM-fall`, and `X1`, `X2` free — returned as the pieces
/// `(structure, reference, pinned-leaf)` so callers can build a
/// `DiscoveryProblem` without this crate depending on the mining layer.
pub fn example_2_pieces(
    cal: &Calendar,
    reg: &mut TypeRegistry,
) -> (EventStructure, EventType, (VarId, EventType)) {
    let (s, v) = figure_1a(cal);
    let rise = reg.intern("IBM-rise");
    let fall = reg.intern("IBM-fall");
    (s, rise, (v.x3, fall))
}

/// A timestamp witness for Figure 1(a) anchored on Monday 2000-01-03:
/// rise Monday 10:00, report Tuesday 09:00, HP rise Thursday 06:00,
/// fall Thursday 11:00.
pub fn figure_1a_witness() -> [i64; 4] {
    const DAY: i64 = 86_400;
    let monday = 2 * DAY;
    [
        monday + 10 * 3_600,           // X0: Mon 10:00
        monday + DAY + 9 * 3_600,      // X1: Tue 09:00 (next business day)
        monday + 3 * DAY + 6 * 3_600,  // X2: Thu 06:00 (4th b-day window)
        monday + 3 * DAY + 11 * 3_600, // X3: Thu 11:00 (same week, 5h after X2)
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgm_granularity::Granularity as _;

    #[test]
    fn figure_1a_witness_matches() {
        let cal = Calendar::standard();
        let (s, _) = figure_1a(&cal);
        assert!(s.satisfied_by(&figure_1a_witness()));
    }

    #[test]
    fn figure_1a_rejects_bad_assignments() {
        const DAY: i64 = 86_400;
        let cal = Calendar::standard();
        let (s, _) = figure_1a(&cal);
        let mut w = figure_1a_witness();
        // Move the report two business days out.
        w[1] += DAY;
        assert!(!s.satisfied_by(&w));
        // Weekend rise: business-day tick undefined.
        let mut w2 = figure_1a_witness();
        w2[0] = 10 * 3_600; // Saturday 2000-01-01
        assert!(!s.satisfied_by(&w2));
    }

    #[test]
    fn example_1_occurrence() {
        let cal = Calendar::standard();
        let mut reg = TypeRegistry::new();
        let (cet, tys) = example_1(&cal, &mut reg);
        let w = figure_1a_witness();
        let inst = [
            (tys.ibm_rise, w[0]),
            (tys.ibm_report, w[1]),
            (tys.hp_rise, w[2]),
            (tys.ibm_fall, w[3]),
        ];
        assert!(cet.occurred_by(&inst));
        // Swapping the types breaks the occurrence.
        let bad = [
            (tys.ibm_fall, w[0]),
            (tys.ibm_report, w[1]),
            (tys.hp_rise, w[2]),
            (tys.ibm_rise, w[3]),
        ];
        assert!(!cet.occurred_by(&bad));
    }

    #[test]
    fn figure_1b_builds_and_has_disjunction_shape() {
        let cal = Calendar::standard();
        let (s, v) = figure_1b(&cal);
        assert_eq!(s.len(), 4);
        assert_eq!(s.constraint_count(), 5);
        // January 2000 / December 2000 / January 2001 / December 2001.
        let month = cal.get("month").unwrap();
        let jan00 = month.tick_intervals(1).unwrap().min();
        let dec00 = month.tick_intervals(12).unwrap().min();
        let jan01 = month.tick_intervals(13).unwrap().min();
        let dec01 = month.tick_intervals(24).unwrap().min();
        let mut times = [0i64; 4];
        times[v.x0.index()] = jan00;
        times[v.x1.index()] = dec00;
        times[v.x2.index()] = jan01; // 12 months after X0: allowed
        times[v.x3.index()] = dec01;
        assert!(s.satisfied_by(&times));
        // X2 in July 2000 (6 months): pinning constraint fails.
        let jul00 = month.tick_intervals(7).unwrap().min();
        let jun01 = month.tick_intervals(18).unwrap().min();
        times[v.x2.index()] = jul00;
        times[v.x3.index()] = jun01;
        assert!(!s.satisfied_by(&times));
    }
}

#[cfg(test)]
mod example_2_tests {
    use super::*;

    #[test]
    fn example_2_pieces_shape() {
        let cal = Calendar::standard();
        let mut reg = TypeRegistry::new();
        let (s, reference, (pinned_var, pinned_ty)) = example_2_pieces(&cal, &mut reg);
        assert_eq!(s.len(), 4);
        assert_eq!(reg.name(reference), "IBM-rise");
        assert_eq!(pinned_var.index(), 3);
        assert_eq!(reg.name(pinned_ty), "IBM-fall");
    }
}

//! Temporal constraints with granularities (paper §3).

use std::fmt;

use tgm_granularity::{Gran, Granularity, Second};

/// A temporal constraint with granularity `[m, n] μ` (§3):
///
/// timestamps `t1 ≤ t2` satisfy it iff `⌈t1⌉μ` and `⌈t2⌉μ` are both defined
/// and `m ≤ ⌈t2⌉μ − ⌈t1⌉μ ≤ n`.
///
/// ```
/// use tgm_core::Tcg;
/// use tgm_granularity::Calendar;
///
/// let cal = Calendar::standard();
/// let same_day = Tcg::new(0, 0, cal.get("day").unwrap());
/// // 11 pm on 2000-01-01 and 4 am on 2000-01-02: within 24 hours but NOT
/// // the same day (the paper's "one day is not 24 hours" example).
/// let t1 = 23 * 3_600;
/// let t2 = 86_400 + 4 * 3_600;
/// assert!(!same_day.satisfied(t1, t2));
/// let within_24h = Tcg::new(0, 86_399, cal.get("second").unwrap());
/// assert!(within_24h.satisfied(t1, t2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tcg {
    lo: u64,
    hi: u64,
    gran: Gran,
}

impl Tcg {
    /// Largest representable bound (~10^12 ticks): keeps all downstream
    /// integer arithmetic (STP distance sums, size-table spans) far from
    /// overflow while covering any physically meaningful constraint
    /// (a trillion seconds is over 31,000 years).
    pub const MAX_BOUND: u64 = 1 << 40;

    /// Creates `[lo, hi] gran`; panics if `lo > hi` or `hi` exceeds
    /// [`MAX_BOUND`](Self::MAX_BOUND).
    pub fn new(lo: u64, hi: u64, gran: Gran) -> Self {
        assert!(lo <= hi, "empty TCG [{lo}, {hi}]");
        assert!(
            hi <= Self::MAX_BOUND,
            "TCG bound {hi} exceeds the supported maximum {}",
            Self::MAX_BOUND
        );
        Tcg { lo, hi, gran }
    }

    /// The lower bound `m` on the tick distance.
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// The upper bound `n` on the tick distance.
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// The granularity `μ`.
    pub fn gran(&self) -> &Gran {
        &self.gran
    }

    /// The tick distance `⌈t2⌉μ − ⌈t1⌉μ`, if both covering ticks exist.
    ///
    /// A distance that overflows `i64` (ticks near both `i64` extremes) is
    /// reported as `None` like a gap: since every representable bound is at
    /// most [`MAX_BOUND`](Self::MAX_BOUND) (`2^40`), such a distance could
    /// never satisfy a constraint anyway. Use
    /// [`try_tick_distance`](Self::try_tick_distance) to distinguish the
    /// two cases.
    pub fn tick_distance(&self, t1: Second, t2: Second) -> Option<i64> {
        self.try_tick_distance(t1, t2).ok().flatten()
    }

    /// The tick distance `⌈t2⌉μ − ⌈t1⌉μ`: `Ok(None)` when a covering tick
    /// is undefined (granularity gap), `Err` when the subtraction itself
    /// overflows `i64`.
    pub fn try_tick_distance(&self, t1: Second, t2: Second) -> Result<Option<i64>, OverflowError> {
        let (z1, z2) = match (self.gran.covering_tick(t1), self.gran.covering_tick(t2)) {
            (Some(z1), Some(z2)) => (z1, z2),
            _ => return Ok(None),
        };
        match z2.checked_sub(z1) {
            Some(d) => Ok(Some(d)),
            None => Err(OverflowError {
                context: "tick distance",
            }),
        }
    }

    /// Whether `(t1, t2)` satisfies the constraint (requires `t1 ≤ t2`,
    /// defined covering ticks, and the tick distance within `[lo, hi]`).
    pub fn satisfied(&self, t1: Second, t2: Second) -> bool {
        if t1 > t2 {
            return false;
        }
        match self.tick_distance(t1, t2) {
            Some(d) => d >= 0 && (self.lo as i64) <= d && d <= self.hi as i64,
            None => false,
        }
    }
}

/// Integer overflow in multi-granularity tick arithmetic — the inputs sit
/// so close to the `i64` extremes that a distance or bound computation is
/// not representable. Such values can never satisfy a representable
/// constraint ([`Tcg::MAX_BOUND`] is `2^40`), so callers either propagate
/// this error or treat the value as unsatisfiable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverflowError {
    /// What was being computed, e.g. `"tick distance"`.
    pub context: &'static str,
}

impl fmt::Display for OverflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "integer overflow computing {}", self.context)
    }
}

impl std::error::Error for OverflowError {}

impl fmt::Debug for Tcg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]{}", self.lo, self.hi, self.gran.name())
    }
}

impl fmt::Display for Tcg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use tgm_granularity::Calendar;

    use super::*;

    const DAY: i64 = 86_400;

    fn cal() -> Calendar {
        Calendar::standard()
    }

    #[test]
    fn same_day_vs_24_hours() {
        let c = cal();
        let same_day = Tcg::new(0, 0, c.get("day").unwrap());
        let day_secs = Tcg::new(0, 86_399, c.get("second").unwrap());
        // 23:00 day 0 and 04:00 day 1.
        let (t1, t2) = (23 * 3_600, DAY + 4 * 3_600);
        assert!(!same_day.satisfied(t1, t2));
        assert!(day_secs.satisfied(t1, t2));
        // 01:00 and 22:00 of day 0: both hold.
        let (t3, t4) = (3_600, 22 * 3_600);
        assert!(same_day.satisfied(t3, t4));
        assert!(day_secs.satisfied(t3, t4));
    }

    #[test]
    fn within_two_hours_example() {
        // Paper: e1, e2 satisfy [0,2] hour iff e2 in the same second or
        // within two (hour-tick distances of) hours after e1.
        let c = cal();
        let tcg = Tcg::new(0, 2, c.get("hour").unwrap());
        assert!(tcg.satisfied(100, 100));
        assert!(tcg.satisfied(100, 3_600 * 2 + 50)); // two hour-ticks later
        assert!(!tcg.satisfied(100, 3_600 * 3 + 1)); // three ticks later
        assert!(!tcg.satisfied(200, 100)); // order violated
    }

    #[test]
    fn next_month_example() {
        let c = cal();
        let tcg = Tcg::new(1, 1, c.get("month").unwrap());
        // Jan 31 and Feb 1 2000 are in consecutive months.
        assert!(tcg.satisfied(30 * DAY, 31 * DAY));
        // Jan 1 and Jan 31 are the same month.
        assert!(!tcg.satisfied(0, 30 * DAY));
    }

    #[test]
    fn undefined_tick_fails() {
        let c = cal();
        let bday = Tcg::new(0, 1, c.get("business-day").unwrap());
        // Epoch is a Saturday: no covering business day.
        assert!(!bday.satisfied(0, 3 * DAY));
        assert!(bday.satisfied(2 * DAY, 3 * DAY)); // Mon -> Tue
    }

    #[test]
    fn order_required_even_with_equal_ticks() {
        let c = cal();
        let same_day = Tcg::new(0, 0, c.get("day").unwrap());
        assert!(same_day.satisfied(100, 100));
        assert!(!same_day.satisfied(200, 100));
    }

    #[test]
    fn near_i64_max_distance_does_not_wrap() {
        // Second-granularity ticks are the timestamps themselves, so
        // timestamps near both i64 extremes used to wrap the subtraction
        // in release (and panic under overflow-checks). Now: typed
        // overflow from try_tick_distance, gap-like None (hence
        // unsatisfied) everywhere else.
        let c = cal();
        let tcg = Tcg::new(0, Tcg::MAX_BOUND, c.get("second").unwrap());
        let (t1, t2) = (i64::MIN + 10, i64::MAX - 10);
        assert_eq!(
            tcg.try_tick_distance(t1, t2),
            Err(OverflowError {
                context: "tick distance"
            })
        );
        assert_eq!(tcg.tick_distance(t1, t2), None);
        assert!(!tcg.satisfied(t1, t2));
        // Near-extreme but representable distances still work.
        assert_eq!(
            tcg.tick_distance(i64::MAX - 100, i64::MAX - 40),
            Some(60)
        );
        assert!(Tcg::new(50, 70, c.get("second").unwrap())
            .satisfied(i64::MAX - 100, i64::MAX - 40));
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_bounds() {
        let c = cal();
        let _ = Tcg::new(0, u64::MAX, c.get("second").unwrap());
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_bounds() {
        let c = cal();
        let _ = Tcg::new(3, 2, c.get("day").unwrap());
    }
}

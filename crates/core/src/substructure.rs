//! Induced approximated sub-structures (paper §5.1).
//!
//! Not every subset of variables induces a faithful sub-structure (the
//! example in §5.1: `{X0, X3}` of Figure 1(a) cannot carry the original
//! four constraints precisely), so the paper *approximates*: after running
//! the sound propagation of §3.2, the arc set of the induced sub-structure
//! connects `(X, Y)` whenever a path `X → Y` exists in the original
//! structure and some (original or derived) constraint relates them, and
//! its `Γ'` sets collect every finite derived constraint.
//!
//! The key property (inherited from propagation soundness): if a complex
//! event matches `S`, its restriction to the kept variables matches the
//! induced sub-structure — which is what makes the Apriori-style candidate
//! screening of §5.1 safe.

use crate::propagate::Propagated;
use crate::structure::{EventStructure, StructureBuilder, VarId};

/// Builds the approximated sub-structure of `s` induced by `keep`
/// (deduplicated, root added automatically if absent — the paper's usage
/// always keeps the root).
///
/// Returns the sub-structure together with the mapping from its variable
/// ids to the original ids.
pub fn induced_substructure(
    s: &EventStructure,
    p: &Propagated,
    keep: &[VarId],
) -> (EventStructure, Vec<VarId>) {
    assert!(p.is_consistent(), "cannot induce from a refuted structure");
    let mut kept: Vec<VarId> = Vec::new();
    if !keep.contains(&s.root()) {
        kept.push(s.root());
    }
    for &v in keep {
        if !kept.contains(&v) {
            kept.push(v);
        }
    }
    // Keep original relative order so the root stays first.
    kept.sort_by_key(|v| {
        if *v == s.root() {
            (0, v.index())
        } else {
            (1, v.index())
        }
    });

    let mut b = StructureBuilder::new();
    let new_ids: Vec<VarId> = kept.iter().map(|&v| b.var(s.name(v))).collect();
    for (ai, &a) in kept.iter().enumerate() {
        for (bi, &bv) in kept.iter().enumerate() {
            if a == bv || !s.has_path(a, bv) {
                continue;
            }
            for tcg in p.derived_tcgs(a, bv) {
                b.constrain(new_ids[ai], new_ids[bi], tcg);
            }
        }
    }
    // Invariant: the builder was fed a node-induced subgraph of a valid
    // structure that keeps the root.
    #[allow(clippy::expect_used)]
    let sub = b
        .build()
        .expect("induced sub-structure of a rooted DAG is a rooted DAG");
    (sub, kept)
}

#[cfg(test)]
mod tests {
    use tgm_granularity::Calendar;

    use super::*;
    use crate::examples::{figure_1a, figure_1a_witness};
    use crate::propagate::propagate;

    #[test]
    fn figure_1a_root_leaf_substructure() {
        let cal = Calendar::standard();
        let (s, v) = figure_1a(&cal);
        let p = propagate(&s);
        assert!(p.is_consistent());
        let (sub, kept) = induced_substructure(&s, &p, &[v.x3]);
        assert_eq!(sub.len(), 2);
        assert_eq!(kept, vec![v.x0, v.x3]);
        // The paper derives both a week and an hour constraint on (X0, X3).
        let tcgs = sub.constraints(VarId(0), VarId(1));
        let grans: Vec<&str> = tcgs.iter().map(|t| t.gran().name()).collect();
        assert!(grans.contains(&"week"), "expected a week constraint: {grans:?}");
        assert!(grans.contains(&"hour"), "expected an hour constraint: {grans:?}");
        // Soundness: the witness restriction matches the sub-structure.
        let w = figure_1a_witness();
        assert!(sub.satisfied_by(&[w[0], w[3]]));
    }

    #[test]
    fn substructure_adds_root_automatically() {
        let cal = Calendar::standard();
        let (s, v) = figure_1a(&cal);
        let p = propagate(&s);
        let (sub, kept) = induced_substructure(&s, &p, &[v.x1, v.x3]);
        assert_eq!(kept[0], v.x0);
        assert_eq!(sub.len(), 3);
        let w = figure_1a_witness();
        assert!(sub.satisfied_by(&[w[0], w[1], w[3]]));
    }

    #[test]
    fn unordered_pairs_get_no_arc() {
        let cal = Calendar::standard();
        let (s, v) = figure_1a(&cal);
        let p = propagate(&s);
        // X1 and X2 are not path-ordered: keeping both must not create an
        // arc between them.
        let (sub, kept) = induced_substructure(&s, &p, &[v.x1, v.x2]);
        assert_eq!(kept, vec![v.x0, v.x1, v.x2]);
        assert!(!sub.has_arc(VarId(1), VarId(2)));
        assert!(!sub.has_arc(VarId(2), VarId(1)));
    }
}

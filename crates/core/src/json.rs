//! JSON serialization of event structures and discovery problems, resolving
//! granularities by name against a [`Calendar`].
//!
//! Format:
//!
//! ```json
//! {
//!   "variables": ["X0", "X1", "X2"],
//!   "constraints": [
//!     { "from": 0, "to": 1, "lo": 1, "hi": 1, "granularity": "business-day" },
//!     { "from": 1, "to": 2, "lo": 0, "hi": 1, "granularity": "week" }
//!   ]
//! }
//! ```

use crate::{EventStructure, StructureBuilder, Tcg, VarId};
use tgm_events::minijson::{self, JsonError, Value};
use tgm_granularity::Calendar;

/// Errors from structure (de)serialization.
#[derive(Debug)]
pub enum StructureJsonError {
    /// Malformed JSON.
    Json(JsonError),
    /// Well-formed JSON that is not a structure document (wrong shape or
    /// field types).
    Shape(String),
    /// A constraint references an unknown granularity name.
    UnknownGranularity(String),
    /// A constraint has `lo > hi` or references an out-of-range variable.
    InvalidConstraint(String),
    /// The graph is not a rooted DAG.
    Structure(crate::StructureError),
}

impl std::fmt::Display for StructureJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructureJsonError::Json(e) => write!(f, "malformed JSON: {e}"),
            StructureJsonError::Shape(msg) => write!(f, "not a structure document: {msg}"),
            StructureJsonError::UnknownGranularity(g) => {
                write!(f, "unknown granularity `{g}`")
            }
            StructureJsonError::InvalidConstraint(msg) => write!(f, "invalid constraint: {msg}"),
            StructureJsonError::Structure(e) => write!(f, "invalid structure: {e}"),
        }
    }
}

impl std::error::Error for StructureJsonError {}

impl From<JsonError> for StructureJsonError {
    fn from(e: JsonError) -> Self {
        StructureJsonError::Json(e)
    }
}

/// Serializes an event structure (granularities stored by name).
pub fn structure_to_json(s: &EventStructure) -> String {
    let mut out = String::from("{\n  \"variables\": [");
    for (i, v) in s.vars().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        minijson::write_escaped(&mut out, s.name(v));
    }
    out.push_str("],\n  \"constraints\": [");
    let mut first = true;
    for (a, b, cs) in s.arcs() {
        for c in cs {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{ \"from\": {}, \"to\": {}, \"lo\": {}, \"hi\": {}, \"granularity\": ",
                a.index(),
                b.index(),
                c.lo(),
                c.hi()
            ));
            minijson::write_escaped(&mut out, c.gran().name());
            out.push_str(" }");
        }
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

fn shape(msg: impl Into<String>) -> StructureJsonError {
    StructureJsonError::Shape(msg.into())
}

/// Parses an event structure, resolving granularity names against `cal`.
pub fn structure_from_json(
    json: &str,
    cal: &Calendar,
) -> Result<EventStructure, StructureJsonError> {
    let doc = minijson::parse(json)?;
    structure_from_value(&doc, cal)
}

/// Builds an event structure from an already-parsed JSON value — the
/// entry point for callers that embed a structure document inside a
/// larger message (the serve protocol's `match`/`mine`/`session.open`
/// requests).
pub fn structure_from_value(
    doc: &Value,
    cal: &Calendar,
) -> Result<EventStructure, StructureJsonError> {
    let variables: Vec<&str> = doc
        .get("variables")
        .and_then(Value::as_array)
        .ok_or_else(|| shape("missing `variables` array"))?
        .iter()
        .map(|v| v.as_str().ok_or_else(|| shape("variable names must be strings")))
        .collect::<Result<_, _>>()?;
    let constraints = doc
        .get("constraints")
        .and_then(Value::as_array)
        .ok_or_else(|| shape("missing `constraints` array"))?;

    let mut b = StructureBuilder::new();
    let n = variables.len();
    let vars: Vec<VarId> = variables.iter().map(|name| b.var(*name)).collect();
    for c in constraints {
        let field = |name: &str| {
            c.get(name)
                .ok_or_else(|| shape(format!("constraint missing `{name}`")))
        };
        let index = |name: &str| -> Result<usize, StructureJsonError> {
            field(name)?
                .as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| shape(format!("constraint `{name}` must be a non-negative integer")))
        };
        let bound = |name: &str| -> Result<u64, StructureJsonError> {
            field(name)?
                .as_u64()
                .ok_or_else(|| shape(format!("constraint `{name}` must be a non-negative integer")))
        };
        let (from, to) = (index("from")?, index("to")?);
        let (lo, hi) = (bound("lo")?, bound("hi")?);
        let gran_name = field("granularity")?
            .as_str()
            .ok_or_else(|| shape("constraint `granularity` must be a string"))?;
        if from >= n || to >= n {
            return Err(StructureJsonError::InvalidConstraint(format!(
                "variable index out of range in ({from}, {to})"
            )));
        }
        if lo > hi {
            return Err(StructureJsonError::InvalidConstraint(format!(
                "empty bounds [{lo}, {hi}]"
            )));
        }
        if hi > Tcg::MAX_BOUND {
            return Err(StructureJsonError::InvalidConstraint(format!(
                "bound {} exceeds the supported maximum {}",
                hi,
                Tcg::MAX_BOUND
            )));
        }
        let gran = cal
            .get(gran_name)
            .map_err(|_| StructureJsonError::UnknownGranularity(gran_name.to_string()))?;
        b.constrain(vars[from], vars[to], Tcg::new(lo, hi, gran));
    }
    b.build().map_err(StructureJsonError::Structure)
}

#[cfg(test)]
mod tests {
    use crate::examples::figure_1a;

    use super::*;

    #[test]
    fn round_trip_figure_1a() {
        let cal = Calendar::standard();
        let (s, _) = figure_1a(&cal);
        let json = structure_to_json(&s);
        let back = structure_from_json(&json, &cal).unwrap();
        assert_eq!(back.len(), s.len());
        assert_eq!(back.constraint_count(), s.constraint_count());
        for (a, b, cs) in s.arcs() {
            assert_eq!(back.constraints(a, b), cs);
        }
        // Same witnesses.
        let w = crate::examples::figure_1a_witness();
        assert!(back.satisfied_by(&w));
    }

    #[test]
    fn unknown_granularity_rejected() {
        let cal = Calendar::standard();
        let json = r#"{"variables": ["A", "B"],
            "constraints": [{"from":0,"to":1,"lo":0,"hi":1,"granularity":"fortnight"}]}"#;
        assert!(matches!(
            structure_from_json(json, &cal),
            Err(StructureJsonError::UnknownGranularity(_))
        ));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let cal = Calendar::standard();
        assert!(matches!(
            structure_from_json("nonsense", &cal),
            Err(StructureJsonError::Json(_))
        ));
        let wrong_shape = r#"{"variables": ["A"]}"#;
        assert!(matches!(
            structure_from_json(wrong_shape, &cal),
            Err(StructureJsonError::Shape(_))
        ));
        let bad_field = r#"{"variables": ["A","B"],
            "constraints": [{"from":0,"to":1,"lo":"zero","hi":1,"granularity":"day"}]}"#;
        assert!(matches!(
            structure_from_json(bad_field, &cal),
            Err(StructureJsonError::Shape(_))
        ));
        let oob = r#"{"variables": ["A"],
            "constraints": [{"from":0,"to":5,"lo":0,"hi":1,"granularity":"day"}]}"#;
        assert!(matches!(
            structure_from_json(oob, &cal),
            Err(StructureJsonError::InvalidConstraint(_))
        ));
        let empty_bounds = r#"{"variables": ["A","B"],
            "constraints": [{"from":0,"to":1,"lo":3,"hi":1,"granularity":"day"}]}"#;
        assert!(matches!(
            structure_from_json(empty_bounds, &cal),
            Err(StructureJsonError::InvalidConstraint(_))
        ));
        let cyclic = r#"{"variables": ["A","B"],
            "constraints": [{"from":0,"to":1,"lo":0,"hi":1,"granularity":"day"},
                            {"from":1,"to":0,"lo":0,"hi":1,"granularity":"day"}]}"#;
        assert!(matches!(
            structure_from_json(cyclic, &cal),
            Err(StructureJsonError::Structure(_))
        ));
    }

    #[test]
    fn custom_calendar_names_resolve() {
        let mut cal = Calendar::standard();
        cal.register(tgm_granularity::Gran::new(
            tgm_granularity::builtin::n_month(6),
        ))
        .unwrap();
        let json = r#"{"variables": ["A", "B"],
            "constraints": [{"from":0,"to":1,"lo":1,"hi":1,"granularity":"6-month"}]}"#;
        let s = structure_from_json(json, &cal).unwrap();
        assert_eq!(s.constraint_count(), 1);
    }
}
